"""Tests for the streaming session runtime (clock → source → stages)."""

import numpy as np
import pytest

from repro.android.apps import CHASE
from repro.core.pipeline import (
    EavesdropAttack,
    run_sessions,
    simulate_credential_entry,
)
from repro.core.service import MonitoringService
from repro.gpu import counters as pc
from repro.gpu.pipeline import FrameStats
from repro.gpu.timeline import RenderTimeline
from repro.kgsl.device_file import DeviceClock, open_kgsl
from repro.kgsl.sampler import (
    DEFAULT_INTERVAL_S,
    PcSample,
    PerfCounterSampler,
    nonzero_deltas,
    nonzero_deltas_vectorized,
)
from repro.runtime import (
    IterableSource,
    RuntimeTrace,
    SamplerDeltaSource,
    Session,
    SessionRuntime,
    VirtualClock,
)

CID = pc.RAS_8X4_TILES.counter_id


def timeline_with_frames(times, amount=4000, render_time=0.0005):
    timeline = RenderTimeline()
    for t in times:
        inc = pc.CounterIncrement()
        inc.add(pc.RAS_8X4_TILES, amount)
        timeline.add_render(
            t, FrameStats(increment=inc, pixels_touched=amount, render_time_s=render_time)
        )
    return timeline


def make_sampler(timeline, seed=0, interval=DEFAULT_INTERVAL_S):
    dev = open_kgsl(timeline, clock=DeviceClock())
    return PerfCounterSampler(dev, interval_s=interval, rng=np.random.default_rng(seed))


class TestVirtualClock:
    def test_advance_to_moves_forward(self):
        clock = VirtualClock()
        clock.advance_to(1.5)
        assert clock.now == 1.5

    def test_advance_to_clamps_backwards(self):
        clock = VirtualClock(start=2.0)
        clock.advance_to(1.0)
        assert clock.now == 2.0

    def test_device_clock_compatible(self):
        clock = VirtualClock()
        clock.set(0.5)
        clock.advance(0.25)
        assert clock.now == pytest.approx(0.75)
        with pytest.raises(ValueError):
            clock.set(0.1)
        with pytest.raises(ValueError):
            clock.advance(-1.0)


class TestRuntimeTrace:
    def test_counters_and_selection(self):
        trace = RuntimeTrace()
        trace.emit(0.1, "s1", "engine", "key", char="a")
        trace.emit(0.2, "s1", "engine", "key", char="b")
        trace.emit(0.3, "s2", "engine", "noise")
        assert trace.count(kind="key") == 2
        assert trace.count(stage="engine") == 3
        assert [e.detail["char"] for e in trace.select(kind="key", session="s1")] == [
            "a",
            "b",
        ]
        assert trace.stage_counters("engine") == {"key": 2, "noise": 1}
        assert trace.summary() == {"engine.key": 2, "engine.noise": 1}

    def test_ring_capacity_bounds_events_not_counters(self):
        trace = RuntimeTrace(capacity=3)
        for i in range(10):
            trace.emit(float(i), "s", "stage", "tick")
        assert len(trace) == 3
        assert trace.events_dropped == 7
        assert trace.count(kind="tick") == 10
        assert [e.t for e in trace.events] == [7.0, 8.0, 9.0]


class TestVectorizedExtraction:
    def test_matches_scalar_path(self):
        sampler = make_sampler(timeline_with_frames([0.1, 0.3, 0.5]), seed=11)
        samples = sampler.sample_range(0.0, 1.0)
        assert nonzero_deltas_vectorized(samples) == nonzero_deltas(samples)

    def test_chunk_boundary_with_prev(self):
        sampler = make_sampler(timeline_with_frames([0.1, 0.3]), seed=12)
        samples = sampler.sample_range(0.0, 0.6)
        expected = nonzero_deltas(samples)
        mid = len(samples) // 2
        got = nonzero_deltas_vectorized(samples[:mid]) + nonzero_deltas_vectorized(
            samples[mid:], prev=samples[mid - 1]
        )
        assert got == expected

    def test_wraparound_handled(self):
        wrap = pc.CounterBank.WRAP
        a = PcSample(nominal_t=0.0, t=0.0, values={CID: wrap - 5})
        b = PcSample(nominal_t=0.008, t=0.008, values={CID: 3})
        [delta] = nonzero_deltas_vectorized([a, b])
        assert delta.values[CID] == 8

    def test_short_inputs(self):
        assert nonzero_deltas_vectorized([]) == []
        only = PcSample(nominal_t=0.0, t=0.0, values={CID: 1})
        assert nonzero_deltas_vectorized([only]) == []


class TestSamplerDeltaSource:
    @pytest.mark.parametrize("chunk", [1, 7, 64])
    def test_equivalent_to_batch_sampling(self, chunk):
        timeline = timeline_with_frames([0.1, 0.25, 0.4, 0.7])
        reference = make_sampler(timeline, seed=5)
        expected = nonzero_deltas(reference.sample_range(0.0, 1.0))

        streamed_sampler = make_sampler(timeline_with_frames([0.1, 0.25, 0.4, 0.7]), seed=5)
        source = SamplerDeltaSource(streamed_sampler, 0.0, 1.0, chunk=chunk)
        got = [payload for _, payload in source.events()]
        assert got == expected
        assert source.deltas_emitted == len(expected)
        assert source.reads_issued == reference.reads_issued

    def test_lazy_pull_stops_sampling(self):
        sampler = make_sampler(timeline_with_frames([0.1, 0.9]), seed=6)
        source = SamplerDeltaSource(sampler, 0.0, 2.0, chunk=1)
        stream = source.events()
        next(stream)  # first nonzero delta, around t=0.1
        assert sampler.reads_issued < 30, "reads beyond the first event not issued"

    def test_chunk_validation(self):
        sampler = make_sampler(timeline_with_frames([]))
        with pytest.raises(ValueError):
            SamplerDeltaSource(sampler, 0.0, 1.0, chunk=0)


class _Collect:
    """Terminal stage: records every event it sees."""

    name = "collect"

    def __init__(self):
        self.seen = []
        self.ended_at = None

    def on_event(self, session, t, payload):
        self.seen.append((session.id, t, payload))
        return None

    def on_end(self, session, t):
        self.ended_at = t
        session.result = [p for (_, _, p) in self.seen]
        return None


class _Double:
    """Pass-through stage that re-emits each payload twice."""

    name = "double"

    def on_event(self, session, t, payload):
        return [(t, payload), (t, payload)]

    def on_end(self, session, t):
        return None


class TestSessionRuntime:
    def test_single_session_dispatch_and_result(self):
        collect = _Collect()
        runtime = SessionRuntime()
        session = runtime.add_session(
            Session("s", IterableSource([(0.1, "a"), (0.2, "b")]), [collect])
        )
        trace = runtime.run()
        assert session.finished
        assert session.result == ["a", "b"]
        assert collect.ended_at == 0.2
        assert runtime.clock.now == pytest.approx(0.2)
        assert trace.count(kind="session_start") == 1
        assert trace.count(kind="session_end") == 1

    def test_stage_chain_emissions_flow_downstream(self):
        collect = _Collect()
        runtime = SessionRuntime()
        runtime.add_session(
            Session("s", IterableSource([(0.1, "x")]), [_Double(), collect])
        )
        runtime.run()
        assert [p for (_, _, p) in collect.seen] == ["x", "x"]

    def test_sessions_interleave_in_time_order(self):
        order = []

        class Record:
            name = "record"

            def on_event(self, session, t, payload):
                order.append((session.id, t))
                return None

            def on_end(self, session, t):
                return None

        runtime = SessionRuntime()
        runtime.add_session(
            Session("slow", IterableSource([(0.5, 1), (1.5, 2)]), [Record()])
        )
        runtime.add_session(
            Session("fast", IterableSource([(0.1, 1), (0.2, 2), (0.3, 3)]), [Record()])
        )
        runtime.run()
        # the scheduler always advances the session furthest behind, so
        # all of fast's early events land before slow's second one
        assert order.index(("fast", 0.3)) < order.index(("slow", 1.5))
        assert runtime.clock.now == pytest.approx(1.5)

    def test_mode_switch_replaces_source_and_stages(self):
        collect = _Collect()

        class Escalate:
            name = "escalate"

            def on_event(self, session, t, payload):
                if payload == "go":
                    session.switch_mode(
                        IterableSource([(t + 1.0, "after1"), (t + 2.0, "after2")]),
                        [collect],
                    )
                return None

            def on_end(self, session, t):
                return None

        runtime = SessionRuntime()
        session = runtime.add_session(
            Session(
                "svc",
                IterableSource([(0.1, "idle"), (0.2, "go"), (0.3, "abandoned")]),
                [Escalate()],
            )
        )
        trace = runtime.run()
        assert session.result == ["after1", "after2"]
        assert session.mode_switches == 1
        assert trace.count(kind="mode_switch") == 1
        # the pre-switch tail is never consumed
        assert all(p != "abandoned" for (_, _, p) in collect.seen)

    def test_empty_source_still_finishes(self):
        collect = _Collect()
        runtime = SessionRuntime()
        session = runtime.add_session(Session("s", IterableSource([]), [collect]))
        runtime.run()
        assert session.finished
        assert session.result == []

    def test_on_finish_callback(self):
        done = []
        runtime = SessionRuntime()
        runtime.add_session(
            Session("s", IterableSource([(0.1, "a")]), [_Collect()], on_finish=lambda s: done.append(s.id))
        )
        runtime.run()
        assert done == ["s"]

    def test_session_lookup(self):
        runtime = SessionRuntime()
        session = runtime.add_session(Session("s", IterableSource([]), [_Collect()]))
        assert runtime.session("s") is session
        with pytest.raises(KeyError):
            runtime.session("missing")


class TestFeedBatchParity:
    """`feed()`-driven inference must equal batch `process()` exactly."""

    @pytest.mark.parametrize(
        "text,seed",
        [
            ("secretpw1", 101),
            ("Tr0ub4dor&3", 202),
            ("aa..bb!!", 303),
        ],
    )
    def test_feed_equals_process(self, chase_model, config, text, seed):
        from repro.core.online import OnlineEngine

        trace = simulate_credential_entry(config, CHASE, text, seed=seed)
        kgsl = open_kgsl(trace.timeline, clock=DeviceClock())
        sampler = PerfCounterSampler(kgsl, rng=np.random.default_rng(seed + 1))
        stream = nonzero_deltas(sampler.sample_range(0.0, trace.end_time_s))

        batch = OnlineEngine(chase_model).process(stream)

        streaming_engine = OnlineEngine(chase_model)
        streaming_engine.begin()
        for delta in stream:
            streaming_engine.feed(delta)
        streamed = streaming_engine.finish()

        assert streamed.keys == batch.keys
        assert streamed.stats == batch.stats
        assert streamed.text == batch.text
        assert streamed.latency.count == batch.latency.count

    def test_feed_with_ambient_load_parity(self, chase_model, config):
        from repro.core.online import OnlineEngine

        trace = simulate_credential_entry(
            config, CHASE, "noisy1pw", seed=404, gpu_utilization=0.4
        )
        kgsl = open_kgsl(trace.timeline, clock=DeviceClock())
        sampler = PerfCounterSampler(kgsl, rng=np.random.default_rng(405))
        stream = nonzero_deltas(sampler.sample_range(0.0, trace.end_time_s))

        batch = OnlineEngine(chase_model).process(stream)
        engine = OnlineEngine(chase_model)
        for delta in stream:
            engine.feed(delta)
        streamed = engine.finish()
        assert streamed.keys == batch.keys
        assert streamed.stats == batch.stats


class TestPipelineOnRuntime:
    def test_run_on_trace_records_decisions(self, chase_store, config):
        attack = EavesdropAttack(chase_store, recognize_device=False)
        trace = simulate_credential_entry(config, CHASE, "secretpw1", seed=21)
        log = RuntimeTrace()
        result = attack.run_on_trace(trace, seed=22, runtime_trace=log)
        assert result.text == "secretpw1"
        assert log.count(kind="key", stage="engine") >= len("secretpw1")
        assert log.count(kind="session_end") == 1

    def test_batch_matches_individual_runs(self, chase_store, config):
        attack = EavesdropAttack(chase_store, recognize_device=False)
        texts = ["secretpw1", "hunter2ab", "passw0rd!"]
        traces = [
            simulate_credential_entry(config, CHASE, text, seed=30 + i)
            for i, text in enumerate(texts)
        ]
        batched = run_sessions(attack, traces, seed=60)
        individual = [
            attack.run_on_trace(
                simulate_credential_entry(config, CHASE, text, seed=30 + i),
                seed=60 + i,
            )
            for i, text in enumerate(texts)
        ]
        for got, want in zip(batched, individual):
            assert got.text == want.text
            assert got.online.keys == want.online.keys
            assert got.online.stats == want.online.stats
            assert got.reads_issued == want.reads_issued
            assert got.reads_dropped == want.reads_dropped

    def test_service_trace_shows_mode_switch(self, chase_store, config):
        from repro.android.device import VictimDevice
        from repro.android.events import KeyPress

        device = VictimDevice(config, CHASE, rng=np.random.default_rng(31))
        events = [KeyPress(t=3.0 + 0.45 * i, char=c) for i, c in enumerate("secret12")]
        trace = device.compile(events, end_time_s=9.0, launch_at_s=1.2)
        log = RuntimeTrace()
        service = MonitoringService(chase_store)
        report = service.run(trace, seed=77, runtime_trace=log)
        assert report.inferred_text == "secret12"
        assert log.count(kind="mode_switch") == 1
        assert log.count(kind="launch_detected", stage="launch-watch") == 1
        assert log.count(kind="key", stage="engine") >= len("secret12")
