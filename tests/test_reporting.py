"""Tests for the ASCII figure rendering helpers."""

from repro.analysis.reporting import (
    bar_chart,
    grouped_bar_chart,
    histogram,
    sparkline,
    table,
)


class TestBarChart:
    def test_rows_and_values_rendered(self):
        out = bar_chart({"alpha": 0.5, "beta": 1.0}, title="T", width=10)
        assert out.startswith("T")
        assert "alpha" in out and "beta" in out
        assert "0.500" in out and "1.000" in out

    def test_bar_length_proportional(self):
        out = bar_chart({"half": 0.5, "full": 1.0}, width=10, vmax=1.0)
        lines = out.splitlines()
        half_bar = lines[0].split("│")[1]
        full_bar = lines[1].split("│")[1]
        assert full_bar.count("█") == 10
        assert half_bar.count("█") == 5

    def test_empty_rows(self):
        assert bar_chart({}, title="only title") == "only title"

    def test_vmax_zero_safe(self):
        out = bar_chart({"z": 0.0}, width=10)
        assert "z" in out

    def test_custom_format(self):
        out = bar_chart({"x": 0.1234}, fmt="{:.1%}")
        assert "12.3%" in out


class TestGroupedBarChart:
    def test_two_series_per_label(self):
        out = grouped_bar_chart(
            {"chase": (0.8, 0.98)}, series=("text", "key"), width=10
        )
        assert "0.800" in out and "0.980" in out
        assert "░" in out and "█" in out

    def test_empty(self):
        assert grouped_bar_chart({}, series=("a", "b"), title="t") == "t"


class TestHistogram:
    def test_counts_and_percentages(self):
        out = histogram([1, 2, 3, 11, 12], edges=[0, 10, 20], unit="ms")
        assert "3 (60.0%)" in out
        assert "2 (40.0%)" in out

    def test_out_of_range_ignored(self):
        out = histogram([100], edges=[0, 10])
        assert "0 (0.0%)" in out

    def test_empty_values(self):
        out = histogram([], edges=[0, 1, 2])
        assert out.count("0 (0.0%)") == 2


class TestTable:
    def test_alignment_and_content(self):
        out = table(["name", "acc"], [["chase", 0.9], ["amex", 0.85]], title="apps")
        lines = out.splitlines()
        assert lines[0] == "apps"
        assert "name" in lines[1] and "acc" in lines[1]
        assert "chase" in out and "0.85" in out

    def test_wide_cells_expand_columns(self):
        out = table(["x"], [["averyverylongvalue"]])
        assert "averyverylongvalue" in out


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_values_monotone_blocks(self):
        from repro.analysis.reporting import _BLOCKS

        line = sparkline([1, 2, 3, 4], vmax=4)
        levels = [_BLOCKS.index(c) for c in line]
        assert levels == sorted(levels)

    def test_empty(self):
        assert sparkline([]) == ""
