"""Tests for session trace persistence."""

import numpy as np
import pytest

from repro.android.apps import CHASE
from repro.android.device import VictimDevice
from repro.android.events import BackspacePress, KeyPress
from repro.android.session_io import load_session, save_session
from repro.core.pipeline import EavesdropAttack


@pytest.fixture(scope="module")
def compiled(config):
    device = VictimDevice(config, CHASE, rng=np.random.default_rng(12))
    events = [
        KeyPress(t=0.6, char="a"),
        KeyPress(t=1.1, char="b"),
        BackspacePress(t=1.7),
    ]
    return device.compile(events, end_time_s=2.8)


class TestRoundTrip:
    def test_ground_truth_survives(self, compiled, tmp_path):
        path = tmp_path / "session.npz"
        save_session(compiled, path)
        loaded = load_session(path)
        assert loaded.final_text == compiled.final_text == "a"
        assert loaded.all_typed == "ab"
        assert loaded.backspaces == compiled.backspaces
        assert loaded.end_time_s == compiled.end_time_s

    def test_timeline_identical(self, compiled, tmp_path):
        path = tmp_path / "session.npz"
        save_session(compiled, path)
        loaded = load_session(path)
        assert len(loaded.timeline.frames) == len(compiled.timeline.frames)
        for a, b in zip(loaded.timeline.frames, compiled.timeline.frames):
            assert a.start_s == b.start_s
            assert a.label == b.label
            assert a.stats.increment.values == b.stats.increment.values
            assert a.stats.render_time_s == pytest.approx(b.stats.render_time_s)

    def test_config_reconstructed(self, compiled, tmp_path, config):
        path = tmp_path / "session.npz"
        save_session(compiled, path)
        loaded = load_session(path)
        assert loaded.config.config_key() == config.config_key()
        assert loaded.app.name == "chase"

    def test_attack_on_loaded_trace_matches(self, compiled, tmp_path, chase_store):
        path = tmp_path / "session.npz"
        save_session(compiled, path)
        loaded = load_session(path)
        attack = EavesdropAttack(chase_store, recognize_device=False)
        original = attack.run_on_trace(compiled, seed=5)
        replayed = attack.run_on_trace(loaded, seed=5)
        assert original.text == replayed.text

    def test_version_check(self, tmp_path):
        import json

        path = tmp_path / "bad.npz"
        np.savez_compressed(
            path,
            manifest=np.frombuffer(
                json.dumps({"version": 42}).encode(), dtype=np.uint8
            ),
        )
        with pytest.raises(ValueError):
            load_session(path)
