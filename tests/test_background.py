"""Tests for background workload generation (Section 7.3)."""

import numpy as np
import pytest

from repro.android.display import Display
from repro.gpu.adreno import adreno
from repro.gpu.timeline import RenderTimeline
from repro.workloads.background import (
    BackgroundRenderer,
    render_slowdown,
    with_background_load,
)


class TestBackgroundRenderer:
    def test_zero_utilization_renders_nothing(self):
        renderer = BackgroundRenderer(adreno(650), Display(), 0.0)
        assert renderer.timeline(0.0, 1.0).frames == []

    def test_frames_at_every_vsync(self):
        renderer = BackgroundRenderer(adreno(650), Display(), 0.5, rng=np.random.default_rng(0))
        timeline = renderer.timeline(0.0, 1.0)
        assert len(timeline.frames) == 60

    def test_busy_fraction_tracks_utilization(self):
        display = Display()
        low = BackgroundRenderer(adreno(650), display, 0.2, rng=np.random.default_rng(0))
        high = BackgroundRenderer(adreno(650), display, 0.75, rng=np.random.default_rng(0))
        low_busy = low.timeline(0.0, 2.0).busy_fraction(0.0, 2.0)
        high_busy = high.timeline(0.0, 2.0).busy_fraction(0.0, 2.0)
        assert high_busy > low_busy
        assert 0.05 < low_busy < 0.6
        assert high_busy > 0.4

    def test_invalid_utilization_rejected(self):
        with pytest.raises(ValueError):
            BackgroundRenderer(adreno(650), Display(), 1.5)


class TestRenderSlowdown:
    def test_identity_at_zero(self):
        assert render_slowdown(0.0) == pytest.approx(1.0)

    def test_monotone(self):
        values = [render_slowdown(u) for u in (0.0, 0.25, 0.5, 0.75, 1.0)]
        assert values == sorted(values)

    def test_75_percent_is_severe(self):
        assert render_slowdown(0.75) > 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            render_slowdown(-0.1)
        with pytest.raises(ValueError):
            render_slowdown(1.1)


class TestMerging:
    def test_with_background_load_adds_frames(self):
        victim = RenderTimeline()
        merged = with_background_load(
            victim, adreno(650), Display(), 0.5, t_end=1.0, rng=np.random.default_rng(0)
        )
        assert len(merged.frames) == 60

    def test_zero_load_returns_victim_unchanged(self):
        victim = RenderTimeline()
        assert with_background_load(victim, adreno(650), Display(), 0.0, 1.0) is victim
