"""Fault-matrix tests: engine components under unreliable sample streams.

The fault injector degrades the *input* of the online engine in two ways
the paper's Algorithm 1 never sees on the authors' rooted testbed:
sampling wakeups vanish (dropped field redraws, shortened bursts) and
wakeups land late (jittered timestamps).  These tests pin down how
:class:`~repro.core.corrections.CorrectionTracker` and
:class:`~repro.core.appswitch.AppSwitchDetector` behave on such streams —
both the cases they must survive and the documented failure modes.
"""

import numpy as np
import pytest

from repro.core.appswitch import AppSwitchDetector, BURST_GAP_S
from repro.core.classifier import Classification
from repro.core.corrections import CorrectionTracker
from repro.gpu import counters as pc
from repro.kgsl.sampler import PcDelta

CID = pc.RAS_8X4_TILES.counter_id
NOISE = Classification(label=None, distance=99.0)


def delta(t, total):
    return PcDelta(t=t, prev_t=t - 0.008, values={CID: total})


def typing_observations(chars, blink_s=0.5, key_s=0.45):
    """(t, field_length, keys_total) stream for typing ``chars`` keys,
    with a confirming cursor-blink redraw after every growth redraw."""
    stream = []
    for i in range(1, chars + 1):
        t = i * key_s
        stream.append((t, i, i))
        stream.append((t + blink_s * 0.5, i, i))
    return stream


class TestCorrectionTrackerUnderDrops:
    def test_growth_survives_dropped_confirmations(self):
        """Dropping the odd redraw only defers validation: the next
        surviving observation at the same length confirms the growth."""
        rng = np.random.default_rng(7)
        tracker = CorrectionTracker()
        tracker.observe(0.0, 0, 0)
        final = None
        for t, length, keys in typing_observations(8):
            if rng.random() < 0.3:  # injected drop
                continue
            tracker.observe(t, length, keys)
            final = length
        # one more blink always survives in practice (the field keeps
        # redrawing at the final length while the user reads the screen)
        tracker.observe(5.0, final, 8)
        tracker.observe(5.5, final, 8)
        assert tracker.current_length == 8
        assert tracker.deletions == []

    def test_deletion_survives_dropped_redraw(self):
        """If the backspace redraw itself is dropped, the following blink
        at the shorter length still lands the deletion — only its
        timestamp degrades to the confirming observation."""
        tracker = CorrectionTracker()
        tracker.observe(0.0, 3, 3)
        tracker.observe(0.4, 3, 3)
        # backspace redraw at t=1.0 dropped; blinks at len 2 survive
        tracker.observe(1.5, 2, 3)
        events = tracker.observe(2.0, 2, 3)
        assert len(events) == 1
        assert tracker.current_length == 2

    def test_single_surviving_dip_is_not_validated(self):
        """A lone shorter observation with no confirmation stays pending:
        a dropped stream cannot conjure a deletion out of one glitch."""
        tracker = CorrectionTracker()
        tracker.observe(0.0, 4, 4)
        tracker.observe(0.4, 4, 4)
        tracker.observe(1.0, 3, 4)  # dip whose confirmation is dropped
        assert tracker.deletions == []
        assert tracker.current_length == 4
        assert tracker.length_bounds() == (3, 4)


class TestCorrectionTrackerUnderJitter:
    def test_jittered_timestamps_do_not_reorder_decisions(self):
        """Per-wakeup jitter delays observations but preserves order, so
        the commit logic is unaffected; only event times shift."""
        rng = np.random.default_rng(3)
        clean, jittered = CorrectionTracker(), CorrectionTracker()
        t_jit = 0.0
        for t, length, keys in [(0.0, 0, 0)] + typing_observations(5):
            clean.observe(t, length, keys)
            t_jit = max(t_jit + 1e-4, t + float(rng.exponential(0.002)))
            jittered.observe(t_jit, length, keys)
        assert jittered.current_length == clean.current_length == 5
        assert len(jittered.deletions) == len(clean.deletions) == 0

    def test_jittered_deletion_keeps_dip_ordering(self):
        tracker = CorrectionTracker()
        jitter = 0.003
        tracker.observe(0.0, 3, 3)
        tracker.observe(0.4 + jitter, 3, 3)
        tracker.observe(1.0 + jitter, 2, 3)  # backspace redraw, late
        events = tracker.observe(1.5, 2, 3)
        assert len(events) == 1
        assert events[0].t == pytest.approx(1.0 + jitter)


def burst_times(t0, frames, gap=0.016):
    return [t0 + i * gap for i in range(frames)]


class TestAppSwitchDetectorUnderDrops:
    def test_burst_detected_despite_dropped_frames(self):
        """An app-switch burst is many frames long; losing some of them
        still leaves >= min_burst_length rapid big changes."""
        rng = np.random.default_rng(11)
        detector = AppSwitchDetector(big_threshold=1000)
        for t in burst_times(1.0, frames=10):
            if rng.random() < 0.3:  # injected drop
                continue
            detector.observe(delta(t, 10_000_000), NOISE)
        detector.observe(delta(2.0, 10), NOISE)  # quiet closes the burst
        assert detector.bursts_seen == 1
        assert not detector.in_target

    def test_decimated_burst_is_missed_and_documented(self):
        """Losing all but min_burst_length-1 frames hides the burst —
        the detector stays in-target.  This is the degradation mode the
        engine reports via the session's degraded flag, not a crash."""
        detector = AppSwitchDetector(big_threshold=1000, min_burst_length=3)
        detector.observe(delta(1.000, 10_000_000), NOISE)
        detector.observe(delta(1.016, 10_000_000), NOISE)
        detector.observe(delta(2.0, 10), NOISE)
        assert detector.bursts_seen == 0
        assert detector.in_target

    def test_drop_inside_burst_shorter_than_gap_keeps_run_alive(self):
        """One missing 16 ms frame leaves a 32 ms hole — still under the
        50 ms burst gap, so the run is not split in two."""
        detector = AppSwitchDetector(big_threshold=1000)
        for t in (1.000, 1.016, 1.048, 1.064):  # frame at 1.032 dropped
            detector.observe(delta(t, 10_000_000), NOISE)
        detector.observe(delta(2.0, 10), NOISE)
        assert detector.bursts_seen == 1


class TestAppSwitchDetectorUnderJitter:
    def test_mild_jitter_keeps_burst_frames_connected(self):
        """Exponential jitter with mean << burst_gap_s cannot split a
        burst: consecutive frames stay within the 50 ms window."""
        rng = np.random.default_rng(5)
        detector = AppSwitchDetector(big_threshold=1000)
        t = 1.0
        for _ in range(8):
            t += 0.016 + float(rng.exponential(0.002))
            detector.observe(delta(t, 10_000_000), NOISE)
        detector.observe(delta(t + 1.0, 10), NOISE)
        assert detector.bursts_seen == 1

    def test_pathological_jitter_splits_the_burst(self):
        """A stall longer than the burst cooldown mid-animation finishes
        the burst early; the remaining frames register as a second burst
        and the state flips twice — the documented harsh-profile hazard."""
        detector = AppSwitchDetector(big_threshold=1000)
        for t in burst_times(1.0, frames=4):
            detector.observe(delta(t, 10_000_000), NOISE)
        stalled = 1.0 + 3 * 0.016 + detector.cooldown_s + 0.05
        for t in burst_times(stalled, frames=4):
            detector.observe(delta(t, 10_000_000), NOISE)
        detector.observe(delta(stalled + 1.0, 10), NOISE)
        assert detector.bursts_seen == 2
        assert detector.in_target  # two toggles land back in-target

    def test_sub_cooldown_stall_does_not_split(self):
        """A stall longer than the 50 ms burst gap but shorter than the
        150 ms cooldown restarts the frame run without finishing the
        burst — the two halves still count as one switch."""
        detector = AppSwitchDetector(big_threshold=1000)
        for t in burst_times(1.0, frames=4):
            detector.observe(delta(t, 10_000_000), NOISE)
        stalled = 1.0 + 3 * 0.016 + BURST_GAP_S + 0.02
        for t in burst_times(stalled, frames=4):
            detector.observe(delta(t, 10_000_000), NOISE)
        detector.observe(delta(stalled + 1.0, 10), NOISE)
        assert detector.bursts_seen == 1
