"""Tests for trace inspection, confusion matrices and dataset persistence."""

import numpy as np
import pytest

from repro.analysis.confusion import ConfusionMatrix
from repro.analysis.traces import TraceSummary, annotate, render_trace
from repro.android.apps import CHASE
from repro.android.device import VictimDevice
from repro.android.events import KeyPress
from repro.core.dataset import load_training_data, save_training_data
from repro.core.offline import TrainingData
from repro.kgsl.device_file import DeviceClock, open_kgsl
from repro.kgsl.sampler import PerfCounterSampler


@pytest.fixture(scope="module")
def annotated_session(config, chase_model):
    device = VictimDevice(config, CHASE, rng=np.random.default_rng(3))
    events = [KeyPress(t=0.6 + 0.5 * i, char=c) for i, c in enumerate("wnq")]
    trace = device.compile(events, end_time_s=2.8)
    kgsl = open_kgsl(trace.timeline, clock=DeviceClock())
    sampler = PerfCounterSampler(kgsl, rng=np.random.default_rng(4))
    samples = sampler.sample_range(0.0, 2.8)
    return annotate(trace, samples, model=chase_model)


class TestAnnotate:
    def test_every_press_appears_in_truth_labels(self, annotated_session):
        labels = {label for entry in annotated_session for label in entry.truth_labels}
        assert {"press:w", "press:n", "press:q"} <= labels

    def test_classifications_present(self, annotated_session):
        classified = [e for e in annotated_session if e.classified is not None]
        assert classified
        # raw per-window classifications: split presses may show as None
        # here (the engine recombines them), but some keys classify direct
        keys = {e.classified for e in classified if e.classified.startswith("key:")}
        assert keys & {"key:w", "key:n", "key:q"}
        # field and dismiss families must classify as well
        assert any(e.classified.startswith("field:") for e in classified)

    def test_split_flag_marks_mid_render_reads(self, annotated_session):
        assert any(e.is_split for e in annotated_session)

    def test_truth_kinds_deduplicated(self, annotated_session):
        for entry in annotated_session:
            assert len(entry.truth_kinds) == len(set(entry.truth_kinds))

    def test_render_is_readable(self, annotated_session):
        text = render_trace(annotated_session, limit=10)
        assert "classified" in text.splitlines()[0]
        assert "press:w" in text

    def test_render_limit(self, annotated_session):
        text = render_trace(annotated_session, limit=2)
        assert "more" in text

    def test_summary_counts(self, annotated_session):
        summary = TraceSummary.from_annotated(annotated_session)
        assert summary.deltas == len(annotated_session)
        assert summary.classified + summary.rejected == summary.deltas
        assert "press" in summary.by_truth_kind


class TestConfusionMatrix:
    def test_diagonal_counts_matches(self):
        matrix = ConfusionMatrix()
        matrix.record("abc", "abc")
        assert matrix.accuracy("a") == 1.0
        assert matrix.overall_accuracy == 1.0

    def test_substitution_recorded(self):
        matrix = ConfusionMatrix()
        matrix.record("ab", "ax")
        assert matrix.counts[("b", "x")] == 1
        assert matrix.accuracy("b") == 0.0

    def test_missed_and_spurious(self):
        matrix = ConfusionMatrix()
        matrix.record("abc", "ac")
        matrix.record("a", "ax")
        assert matrix.miss_rate("b") == 1.0
        assert matrix.counts[(ConfusionMatrix.SPURIOUS, "x")] == 1

    def test_confusion_ranking(self):
        matrix = ConfusionMatrix()
        for _ in range(3):
            matrix.record(",", ".")
        matrix.record("a", "b")
        top = matrix.confusions()
        assert top[0] == (",", ".", 3)

    def test_symmetrized_pairs(self):
        matrix = ConfusionMatrix()
        matrix.record(",", ".")
        matrix.record(".", ",")
        pairs = matrix.most_confused_pairs()
        assert pairs[0] == (",", ".", 2)

    def test_unknown_key_accuracy_zero(self):
        assert ConfusionMatrix().accuracy("z") == 0.0


class TestDatasetPersistence:
    def test_round_trip(self, tmp_path):
        data = TrainingData()
        data.add("key:a", np.arange(11, dtype=float))
        data.add("key:a", np.arange(11, dtype=float) * 2)
        data.add("field:0:on", np.ones(11))
        data.clean_windows = 3
        data.discarded_windows = 1
        path = tmp_path / "dataset.npz"
        save_training_data(data, path)
        loaded = load_training_data(path)
        assert loaded.counts() == data.counts()
        assert loaded.clean_windows == 3
        assert loaded.discarded_windows == 1
        assert np.allclose(loaded.vectors_by_label["key:a"][1], np.arange(11) * 2)

    def test_loaded_data_trains_identical_model(self, tmp_path, config):
        from repro.core.classifier import build_model
        from repro.core.offline import OfflineTrainer

        trainer = OfflineTrainer(config, CHASE, rng=np.random.default_rng(5))
        data = trainer.collect(sweep_repeats=1)
        path = tmp_path / "collected.npz"
        save_training_data(data, path)
        loaded = load_training_data(path)
        original = build_model(data.vectors_by_label, model_key="x")
        reloaded = build_model(loaded.vectors_by_label, model_key="x")
        assert original.labels == reloaded.labels
        assert np.allclose(original.centroids, reloaded.centroids)
        assert original.cth == pytest.approx(reloaded.cth)

    def test_version_check(self, tmp_path):
        import json

        path = tmp_path / "bad.npz"
        np.savez_compressed(
            path,
            manifest=np.frombuffer(
                json.dumps({"version": 99, "labels": []}).encode(), dtype=np.uint8
            ),
        )
        with pytest.raises(ValueError):
            load_training_data(path)
