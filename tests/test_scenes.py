"""Tests for UI scene construction and damage clipping."""

import pytest

from repro.android.apps import CHASE, PNC
from repro.android.geometry import Rect
from repro.android.os_config import default_config
from repro.android.scenes import SceneBuilder, UiState


@pytest.fixture(scope="module")
def builder():
    return SceneBuilder(default_config())


@pytest.fixture()
def state():
    return UiState(app=CHASE)


class TestLayerStack:
    def test_full_stack_order(self, builder, state):
        layers = builder.full_layers(state.with_popup("g"))
        names = [layer.name for layer in layers]
        assert names[0].startswith("app:")
        assert any(n.startswith("keyboard:") for n in names)
        assert names[-1].startswith("popup:")

    def test_no_popup_layer_without_press(self, builder, state):
        names = [layer.name for layer in builder.full_layers(state)]
        assert not any(n.startswith("popup:") for n in names)

    def test_popup_layer_contains_body_and_glyph(self, builder, state):
        popup = builder.popup_layer(state.with_popup("w"))
        labels = [op.label for op in popup.ops]
        assert "popup_body" in labels
        assert any(label.startswith("popup_glyph") for label in labels)

    def test_popup_body_is_opaque(self, builder, state):
        popup = builder.popup_layer(state.with_popup("w"))
        body = next(op for op in popup.ops if op.label == "popup_body")
        assert body.opaque

    def test_popup_glyphs_differ_between_characters(self, builder, state):
        pop_w = builder.popup_layer(state.with_popup("w"))
        pop_i = builder.popup_layer(state.with_popup("i"))
        glyph_w = next(op for op in pop_w.ops if op.label.startswith("popup_glyph"))
        glyph_i = next(op for op in pop_i.ops if op.label.startswith("popup_glyph"))
        assert glyph_w.fragment_pixels != glyph_i.fragment_pixels

    def test_echo_glyph_count_tracks_typed_len(self, builder):
        def echoes(n):
            layer = builder.app_layer(UiState(app=CHASE, typed_len=n))
            return sum(1 for op in layer.ops if op.label.startswith("echo_"))

        assert echoes(0) == 0
        assert echoes(5) == 5
        assert echoes(16) == 16

    def test_cursor_toggles(self, builder):
        on = builder.app_layer(UiState(app=CHASE, cursor_on=True))
        off = builder.app_layer(UiState(app=CHASE, cursor_on=False))
        assert any(op.label == "cursor" for op in on.ops)
        assert not any(op.label == "cursor" for op in off.ops)

    def test_notification_icons_in_status_bar(self, builder):
        bar = builder.status_bar_layer(UiState(app=CHASE, notification_icons=4))
        icons = [op for op in bar.ops if op.label.startswith("notif_icon")]
        assert len(icons) == 4

    def test_web_app_adds_browser_chrome(self, builder):
        from repro.android.apps import CHASE_WEB

        native = builder.app_layer(UiState(app=CHASE))
        web = builder.app_layer(UiState(app=CHASE_WEB))
        native_labels = {op.label for op in native.ops}
        web_labels = {op.label for op in web.ops}
        assert "chrome_bar" in web_labels
        assert "chrome_bar" not in native_labels


class TestKeyboardPages:
    def test_lowercase_page_by_default(self, builder, state):
        layer = builder.keyboard_layer(state)
        assert any(op.label == "label_q" for op in layer.ops)
        assert not any(op.label == "label_Q" for op in layer.ops)

    def test_uppercase_press_switches_page(self, builder, state):
        layer = builder.keyboard_layer(state.with_popup("Q"))
        assert any(op.label == "label_Q" for op in layer.ops)
        assert not any(op.label == "label_q" for op in layer.ops)

    def test_symbol_press_switches_page(self, builder, state):
        layer = builder.keyboard_layer(state.with_popup("@"))
        assert any(op.label == "label_@" for op in layer.ops)
        assert not any(op.label == "label_q" for op in layer.ops)

    def test_digits_on_every_page(self, builder, state):
        for popup in (None, "Q", "@"):
            ui = state.with_popup(popup) if popup else state
            layer = builder.keyboard_layer(ui)
            assert any(op.label == "label_7" for op in layer.ops)


class TestDamageClipping:
    def test_all_clipped_ops_inside_damage(self, builder, state):
        damage = builder.popup_damage("g")
        scene = builder.damage_scene(state.with_popup("g"), damage)
        for layer in scene:
            for op in layer.ops:
                assert damage.contains(op.rect), (layer.name, op.label)

    def test_empty_damage_produces_empty_scene(self, builder, state):
        scene = builder.damage_scene(state, Rect(0, 0, 0, 0))
        assert len(scene) == 0

    def test_full_damage_includes_everything(self, builder, state):
        scene = builder.damage_scene(state, builder.display.bounds)
        assert scene.total_primitives > 100

    def test_field_damage_never_overlaps_any_popup(self, builder, state):
        """Echo frames must not contain popup geometry, or the Fig 14
        length signal would be polluted by the pressed key."""
        field = builder.field_damage(CHASE)
        for char in "qwertyuiop1234567890@#,.":
            pop = builder.layout.key(char).popup_rect
            assert not field.intersects(pop), char

    def test_popup_damage_covers_popup_and_key(self, builder):
        for char in "qgm,.":
            damage = builder.popup_damage(char)
            geo = builder.layout.key(char)
            assert damage.contains(geo.popup_rect), char
            assert damage.contains(geo.key_rect), char

    def test_popup_damage_differs_per_key(self, builder):
        assert builder.popup_damage("q") != builder.popup_damage("m")

    def test_status_bar_damage_at_top(self, builder):
        damage = builder.status_bar_damage()
        assert damage.top == 0
        assert damage.height < builder.display.resolution.height * 0.06


class TestOverviewAndAnimation:
    def test_overview_progress_bounds(self, builder):
        with pytest.raises(ValueError):
            builder.overview_scene(1.5)
        with pytest.raises(ValueError):
            builder.overview_scene(-0.1)

    def test_overview_scene_is_large(self, builder):
        scene = builder.overview_scene(0.5)
        screen = builder.display.resolution.pixel_count
        assert scene.total_fragment_pixels > screen  # dim layer + cards overdraw

    def test_animation_layer_only_for_animated_apps(self, builder):
        assert builder.animation_layer(UiState(app=CHASE), phase=0) is None
        pnc_builder = SceneBuilder(default_config())
        assert pnc_builder.animation_layer(UiState(app=PNC), phase=0) is not None

    def test_animation_drifts_with_phase(self):
        builder = SceneBuilder(default_config())
        state = UiState(app=PNC)
        r0 = builder.animation_damage(state, 0)
        r1 = builder.animation_damage(state, 1)
        assert r0 != r1
