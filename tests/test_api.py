"""Tests for the stable public facade (:mod:`repro.api`).

The facade is the supported surface for downstream users: typed
configuration, five entry points, a shared result protocol, and a
guarantee that the examples and the CLI consume nothing else.
"""

import dataclasses
import re
from pathlib import Path

import numpy as np
import pytest

from repro import api
from repro.api import (
    CHASE,
    AttackConfig,
    AttackResult,
    FaultPlan,
    OnlineResult,
    ServiceReport,
    SessionResult,
    attack,
    monitor,
    run_sessions,
    simulate,
    train,
)
from repro.core.pipeline import EavesdropAttack

REPO_ROOT = Path(__file__).resolve().parent.parent

CREDENTIAL = "secretpw1"


@pytest.fixture(scope="module")
def cfg():
    return AttackConfig(recognize_device=False)


@pytest.fixture(scope="module")
def trace(config, cfg):
    return simulate(config, CHASE, CREDENTIAL, seed=3, config=cfg)


def launch_session(config, text="secret12"):
    """A victim session with an app-launch burst, for the service path."""
    device = api.VictimDevice(config, CHASE, rng=np.random.default_rng(31))
    events = [api.KeyPress(t=3.0 + 0.45 * i, char=c) for i, c in enumerate(text)]
    return device.compile(events, end_time_s=9.0, launch_at_s=1.2)


class TestAttackConfig:
    def test_defaults_are_valid(self):
        cfg = AttackConfig()
        assert cfg.interval_s > 0
        assert cfg.fault_plan == "auto"
        assert cfg.load.cpu_utilization == 0.0

    @pytest.mark.parametrize("kwargs", [
        {"interval_s": 0.0},
        {"idle_interval_s": -0.1},
        {"attack_window_s": 0.0},
        {"chunk": 0},
        {"cpu_utilization": 1.5},
        {"gpu_utilization": -0.2},
        {"sweep_repeats": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            AttackConfig(**kwargs)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            AttackConfig().interval_s = 0.1  # type: ignore[misc]

    def test_dict_round_trip_with_defaults(self):
        cfg = AttackConfig()
        assert AttackConfig.from_dict(cfg.to_dict()) == cfg

    def test_dict_round_trip_with_nested_fault_plan(self):
        cfg = AttackConfig(fault_plan=FaultPlan.from_profile("mild", seed=9))
        data = cfg.to_dict()
        assert isinstance(data["fault_plan"], dict)
        assert AttackConfig.from_dict(data) == cfg

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown AttackConfig fields"):
            AttackConfig.from_dict({"interva1_s": 0.008})

    def test_resolved_fault_plan(self, monkeypatch):
        monkeypatch.delenv(api.FAULT_PROFILE_ENV, raising=False)
        assert AttackConfig(fault_plan=None).resolved_fault_plan() is None
        assert AttackConfig().resolved_fault_plan() is None
        plan = AttackConfig(fault_plan="harsh").resolved_fault_plan()
        assert plan is not None and plan.profile == "harsh"


class TestFacade:
    def test_train_matches_pipeline_defaults(self, config, chase_model, cfg):
        store = train([(config, CHASE)], config=cfg)
        assert store.keys() == [chase_model.model_key]
        assert store.get(store.keys()[0]).cth == chase_model.cth

    def test_attack_matches_direct_pipeline(self, chase_store, trace, cfg, monkeypatch):
        monkeypatch.delenv(api.FAULT_PROFILE_ENV, raising=False)
        via_facade = attack(chase_store, trace, seed=77, config=cfg)
        direct = EavesdropAttack(
            chase_store, recognize_device=False, fault_plan=None
        ).run_on_trace(trace, seed=77)
        assert via_facade.text == direct.text
        assert via_facade.reads_issued == direct.reads_issued

    def test_run_sessions_batches(self, chase_store, config, cfg, monkeypatch):
        monkeypatch.delenv(api.FAULT_PROFILE_ENV, raising=False)
        traces = [
            simulate(config, CHASE, CREDENTIAL, seed=3 + i, config=cfg)
            for i in range(2)
        ]
        results = run_sessions(chase_store, traces, seed=55, config=cfg)
        assert len(results) == 2
        assert all(isinstance(r, AttackResult) for r in results)

    def test_monitor_runs_the_service(self, chase_store, config, monkeypatch):
        monkeypatch.delenv(api.FAULT_PROFILE_ENV, raising=False)
        report = monitor(chase_store, launch_session(config), seed=77)
        assert isinstance(report, ServiceReport)
        assert report.launch_detected_at is not None
        assert report.text == "secret12"

    def test_all_names_resolve(self):
        missing = [name for name in api.__all__ if not hasattr(api, name)]
        assert missing == []


class TestResultProtocol:
    """Every result type exposes keys / text / stats / trace."""

    def test_attack_result_satisfies_protocol(self, chase_store, trace, cfg):
        result = attack(chase_store, trace, seed=77, config=cfg)
        assert isinstance(result, SessionResult)
        assert result.text == "".join(k.char for k in result.keys if not k.deleted)
        assert result.stats is result.online.stats
        assert result.trace is not None

    def test_online_result_satisfies_protocol(self):
        assert isinstance(OnlineResult(), SessionResult)

    def test_service_report_satisfies_protocol(self, chase_store, config):
        report = monitor(chase_store, launch_session(config), seed=77)
        assert isinstance(report, SessionResult)
        assert report.text == report.inferred_text

    def test_samples_taken_alias_warns_once_per_call(self, chase_store, trace, cfg):
        result = attack(chase_store, trace, seed=77, config=cfg)
        with pytest.deprecated_call():
            legacy = result.samples_taken
        assert legacy == result.reads_issued


class TestConsumersUseOnlyTheFacade:
    """Meta-test: examples and the CLI must import repro.api only."""

    CONSUMERS = sorted(
        list((REPO_ROOT / "examples").glob("*.py"))
        + [REPO_ROOT / "src" / "repro" / "cli.py"]
    )

    @pytest.mark.parametrize("path", CONSUMERS, ids=lambda p: p.name)
    def test_imports_only_repro_api(self, path):
        source = path.read_text()
        offenders = [
            line.strip()
            for line in source.splitlines()
            if re.match(r"^(from|import)\s+repro", line)
            and not re.match(r"^from\s+repro\.api\s+import\b", line)
        ]
        assert offenders == [], f"{path.name} bypasses repro.api: {offenders}"
