"""Smoke tests: every example script runs cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=300):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExamples:
    def test_quickstart(self):
        proc = run_example("quickstart.py", "secretpw1")
        assert proc.returncode == 0, proc.stderr
        assert "inferred credential" in proc.stdout
        assert "EXACT MATCH" in proc.stdout or "partial" in proc.stdout

    def test_credential_theft_demo(self):
        proc = run_example("credential_theft_demo.py")
        assert proc.returncode == 0, proc.stderr
        assert "device recognition" in proc.stdout
        assert "credentials stolen" in proc.stdout

    def test_mitigation_evaluation(self):
        proc = run_example("mitigation_evaluation.py")
        assert proc.returncode == 0, proc.stderr
        assert "RBAC whitelist" in proc.stdout
        assert "blinded at ioctl" in proc.stdout
        assert "popups disabled" in proc.stdout

    def test_trace_inspection(self):
        proc = run_example("trace_inspection.py", "wn")
        assert proc.returncode == 0, proc.stderr
        assert "press:w" in proc.stdout
        assert "summary:" in proc.stdout

    def test_multi_session_runtime(self):
        proc = run_example("multi_session_runtime.py", "4", "pw1x5")
        assert proc.returncode == 0, proc.stderr
        assert "exact matches" in proc.stdout
        assert "sessions/s" in proc.stdout
        assert "engine decisions" in proc.stdout

    def test_keyboard_survey(self):
        proc = run_example("keyboard_survey.py", "gboard")
        assert proc.returncode == 0, proc.stderr
        assert "Google Keyboard" in proc.stdout
        assert "weakest keys" in proc.stdout
