"""Tests for the GL_AMD_performance_monitor extension shim (Section 3.3)."""

import pytest

from repro.gpu import counters as pc
from repro.gpu.gl_amd import EXTENSION_NAME, GlAmdPerformanceMonitor


@pytest.fixture()
def gl():
    return GlAmdPerformanceMonitor()


def increment(spec, amount):
    inc = pc.CounterIncrement()
    inc.add(spec, amount)
    return inc


class TestEnumeration:
    def test_groups_are_the_table1_groups(self, gl):
        assert gl.get_perf_monitor_groups() == [0x5, 0x7, 0x19]

    def test_group_strings(self, gl):
        assert gl.get_perf_monitor_group_string(0x19) == "LRZ"
        assert gl.get_perf_monitor_group_string(0x7) == "RAS"
        assert gl.get_perf_monitor_group_string(0x5) == "VPC"
        with pytest.raises(ValueError):
            gl.get_perf_monitor_group_string(0x42)

    def test_counter_strings_match_table1(self, gl):
        assert (
            gl.get_perf_monitor_counter_string(0x19, 13)
            == "PERF_LRZ_VISIBLE_PRIM_AFTER_LRZ"
        )
        assert gl.get_perf_monitor_counter_string(0x7, 5) == "PERF_RAS_8X4_TILES"

    def test_discovery_loop_finds_all_eleven(self, gl):
        """The paper's counter-identification procedure."""
        found = gl.enumerate_all()
        assert len(found) == 11
        assert found["PERF_LRZ_FULL_8X8_TILES"] == (0x19, 14)
        assert all(name.startswith("PERF_") for name in found)

    def test_unknown_counter_rejected(self, gl):
        with pytest.raises(ValueError):
            gl.get_perf_monitor_counter_string(0x19, 99)
        with pytest.raises(ValueError):
            gl.get_perf_monitor_counters(0x42)

    def test_extension_name(self):
        assert EXTENSION_NAME == "GL_AMD_performance_monitor"


class TestMonitorLifecycle:
    def test_begin_end_reads_own_work(self, gl):
        (mid,) = gl.gen_perf_monitors()
        gl.select_perf_monitor_counters(mid, 0x7, [5])
        gl.begin_perf_monitor(mid)
        gl.submit_local_work(increment(pc.RAS_8X4_TILES, 321))
        gl.end_perf_monitor(mid)
        data = gl.get_perf_monitor_counter_data(mid)
        assert data[(pc.CounterGroup.RAS, 5)] == 321

    def test_result_unavailable_before_end(self, gl):
        (mid,) = gl.gen_perf_monitors()
        gl.select_perf_monitor_counters(mid, 0x7, [5])
        gl.begin_perf_monitor(mid)
        with pytest.raises(RuntimeError):
            gl.get_perf_monitor_counter_data(mid)

    def test_double_begin_rejected(self, gl):
        (mid,) = gl.gen_perf_monitors()
        gl.begin_perf_monitor(mid)
        with pytest.raises(RuntimeError):
            gl.begin_perf_monitor(mid)

    def test_select_while_active_rejected(self, gl):
        (mid,) = gl.gen_perf_monitors()
        gl.begin_perf_monitor(mid)
        with pytest.raises(RuntimeError):
            gl.select_perf_monitor_counters(mid, 0x7, [5])

    def test_delete(self, gl):
        (mid,) = gl.gen_perf_monitors()
        gl.delete_perf_monitors([mid])
        with pytest.raises(ValueError):
            gl.begin_perf_monitor(mid)

    def test_gen_many(self, gl):
        ids = gl.gen_perf_monitors(3)
        assert len(set(ids)) == 3


class TestLocalOnlySemantics:
    def test_extension_is_blind_to_other_apps(self, gl):
        """The limitation that motivates the KGSL device-file bypass:
        monitors only observe the calling context's own rendering."""
        (mid,) = gl.gen_perf_monitors()
        gl.select_perf_monitor_counters(mid, 0x19, [14])
        gl.begin_perf_monitor(mid)
        # a *victim* app renders a key press popup elsewhere: its counters
        # live in the global bank, not in this GL context's local bank, so
        # the extension never sees it.  (Only submit_local_work feeds the
        # local bank.)
        gl.end_perf_monitor(mid)
        data = gl.get_perf_monitor_counter_data(mid)
        assert data[(pc.CounterGroup.LRZ, 14)] == 0
