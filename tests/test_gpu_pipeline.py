"""Tests for the Adreno pipeline model and counter registry."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.android.geometry import Rect
from repro.android.layers import DrawOp, Layer, Scene, solid_quad
from repro.gpu import counters as pc
from repro.gpu.adreno import ADRENO_MODELS, LRZ_BLOCK, RAS_BLOCK, adreno
from repro.gpu.pipeline import AdrenoPipeline


@pytest.fixture(scope="module")
def pipeline():
    return AdrenoPipeline(adreno(650))


def scene_with(*layers):
    return Scene(list(layers))


class TestCounterRegistry:
    def test_table1_has_eleven_counters(self):
        assert len(pc.SELECTED_COUNTERS) == 11

    def test_table1_ids_exact(self):
        """Group/countable pairs exactly as printed in the paper's Table 1."""
        expected = {
            ("PERF_LRZ_VISIBLE_PRIM_AFTER_LRZ", pc.CounterGroup.LRZ, 13),
            ("PERF_LRZ_FULL_8X8_TILES", pc.CounterGroup.LRZ, 14),
            ("PERF_LRZ_PARTIAL_8X8_TILES", pc.CounterGroup.LRZ, 15),
            ("PERF_LRZ_VISIBLE_PIXEL_AFTER_LRZ", pc.CounterGroup.LRZ, 18),
            ("PERF_RAS_SUPERTILE_ACTIVE_CYCLES", pc.CounterGroup.RAS, 1),
            ("PERF_RAS_SUPER_TILES", pc.CounterGroup.RAS, 4),
            ("PERF_RAS_8X4_TILES", pc.CounterGroup.RAS, 5),
            ("PERF_RAS_FULLY_COVERED_8X4_TILES", pc.CounterGroup.RAS, 8),
            ("PERF_VPC_PC_PRIMITIVES", pc.CounterGroup.VPC, 9),
            ("PERF_VPC_SP_COMPONENTS", pc.CounterGroup.VPC, 10),
            ("PERF_VPC_LRZ_ASSIGN_PRIMITIVES", pc.CounterGroup.VPC, 12),
        }
        actual = {(s.name, s.group, s.countable) for s in pc.SELECTED_COUNTERS}
        assert actual == expected

    def test_group_ids_match_msm_kgsl_header(self):
        assert pc.CounterGroup.VPC == 0x5
        assert pc.CounterGroup.RAS == 0x7
        assert pc.CounterGroup.LRZ == 0x19

    def test_counter_by_name(self):
        spec = pc.counter_by_name("PERF_LRZ_FULL_8X8_TILES")
        assert spec.countable == 14
        with pytest.raises(KeyError):
            pc.counter_by_name("PERF_NOPE")


class TestCounterIncrement:
    def test_add_and_get(self):
        inc = pc.CounterIncrement()
        inc.add(pc.RAS_SUPER_TILES, 5)
        inc.add(pc.RAS_SUPER_TILES, 3)
        assert inc.get(pc.RAS_SUPER_TILES) == 8

    def test_negative_rejected(self):
        inc = pc.CounterIncrement()
        with pytest.raises(ValueError):
            inc.add(pc.RAS_SUPER_TILES, -1)

    def test_zero_add_is_noop(self):
        inc = pc.CounterIncrement()
        inc.add(pc.RAS_SUPER_TILES, 0)
        assert not inc

    def test_merge(self):
        a = pc.CounterIncrement()
        a.add(pc.RAS_SUPER_TILES, 2)
        b = pc.CounterIncrement()
        b.add(pc.RAS_SUPER_TILES, 3)
        b.add(pc.VPC_PC_PRIMITIVES, 7)
        merged = a.merge(b)
        assert merged.get(pc.RAS_SUPER_TILES) == 5
        assert merged.get(pc.VPC_PC_PRIMITIVES) == 7
        # originals untouched
        assert a.get(pc.RAS_SUPER_TILES) == 2

    def test_scaled(self):
        inc = pc.CounterIncrement()
        inc.add(pc.RAS_8X4_TILES, 100)
        assert inc.scaled(0.5).get(pc.RAS_8X4_TILES) == 50


class TestCounterBank:
    def test_apply_and_read(self):
        bank = pc.CounterBank()
        inc = pc.CounterIncrement()
        inc.add(pc.LRZ_FULL_8X8_TILES, 10)
        bank.apply(inc)
        bank.apply(inc)
        assert bank.read(pc.LRZ_FULL_8X8_TILES) == 20

    def test_wraparound_delta(self):
        before = {pc.LRZ_FULL_8X8_TILES.counter_id: pc.CounterBank.WRAP - 5}
        after = {pc.LRZ_FULL_8X8_TILES.counter_id: 10}
        assert pc.delta(before, after)[pc.LRZ_FULL_8X8_TILES.counter_id] == 15

    def test_snapshot_load_roundtrip(self):
        bank = pc.CounterBank()
        inc = pc.CounterIncrement()
        inc.add(pc.RAS_SUPER_TILES, 42)
        bank.apply(inc)
        other = pc.CounterBank()
        other.load(bank.snapshot())
        assert other.read(pc.RAS_SUPER_TILES) == 42


class TestPipeline:
    def test_deterministic(self, pipeline):
        scene = scene_with(Layer("l").add(solid_quad(Rect(0, 0, 100, 100))))
        a = pipeline.render(scene)
        b = pipeline.render(scene)
        assert a.increment.values == b.increment.values

    def test_vpc_counts_all_submitted_primitives(self, pipeline):
        layer = Layer("l")
        layer.add(DrawOp(rect=Rect(0, 0, 50, 50), primitives=6))
        layer.add(DrawOp(rect=Rect(0, 0, 50, 50), primitives=4))
        stats = pipeline.render(scene_with(layer))
        assert stats.increment.get(pc.VPC_PC_PRIMITIVES) == 10

    def test_lrz_assign_counts_only_opaque(self, pipeline):
        layer = Layer("l")
        layer.add(DrawOp(rect=Rect(0, 0, 50, 50), primitives=6, opaque=True))
        layer.add(DrawOp(rect=Rect(0, 0, 50, 50), primitives=4, opaque=False))
        stats = pipeline.render(scene_with(layer))
        assert stats.increment.get(pc.VPC_LRZ_ASSIGN_PRIMITIVES) == 6

    def test_occluded_layer_loses_visible_pixels(self, pipeline):
        bottom = Layer("bottom").add(solid_quad(Rect(0, 0, 100, 100)))
        top = Layer("top").add(solid_quad(Rect(0, 0, 100, 100)))
        occluded = pipeline.render(scene_with(bottom, top))
        alone = pipeline.render(scene_with(Layer("only").add(solid_quad(Rect(0, 0, 100, 100)))))
        # fully occluded bottom contributes nothing visible
        assert occluded.increment.get(pc.LRZ_VISIBLE_PIXEL_AFTER_LRZ) == alone.increment.get(
            pc.LRZ_VISIBLE_PIXEL_AFTER_LRZ
        )
        # but its primitives still went through the vertex stage
        assert occluded.increment.get(pc.VPC_PC_PRIMITIVES) == 2 * alone.increment.get(
            pc.VPC_PC_PRIMITIVES
        )

    def test_partial_occlusion_scales_visibility(self, pipeline):
        bottom = Layer("bottom").add(solid_quad(Rect(0, 0, 100, 100)))
        top = Layer("top").add(solid_quad(Rect(0, 0, 100, 50)))
        stats = pipeline.render(scene_with(bottom, top))
        # bottom: 5000 visible pixels; top: 5000 pixels
        assert stats.increment.get(pc.LRZ_VISIBLE_PIXEL_AFTER_LRZ) == 10000

    def test_translucent_op_does_not_occlude(self, pipeline):
        bottom = Layer("bottom").add(solid_quad(Rect(0, 0, 100, 100)))
        top = Layer("top").add(
            DrawOp(rect=Rect(0, 0, 100, 100), coverage=0.5, opaque=False)
        )
        stats = pipeline.render(scene_with(bottom, top))
        assert stats.increment.get(pc.LRZ_VISIBLE_PIXEL_AFTER_LRZ) == 10000 + 5000

    def test_sparse_glyph_coverage_reduces_full_tiles(self, pipeline):
        solid = scene_with(Layer("l").add(DrawOp(rect=Rect(0, 0, 64, 64), coverage=1.0)))
        sparse = scene_with(Layer("l").add(DrawOp(rect=Rect(0, 0, 64, 64), coverage=0.3)))
        s_full = pipeline.render(solid).increment.get(pc.LRZ_FULL_8X8_TILES)
        g_full = pipeline.render(sparse).increment.get(pc.LRZ_FULL_8X8_TILES)
        assert g_full < s_full

    def test_render_time_grows_with_pixels(self, pipeline):
        small = scene_with(Layer("l").add(solid_quad(Rect(0, 0, 50, 50))))
        large = scene_with(Layer("l").add(solid_quad(Rect(0, 0, 1000, 1000))))
        assert pipeline.render(large).render_time_s > pipeline.render(small).render_time_s

    def test_empty_scene_renders_empty(self, pipeline):
        stats = pipeline.render(Scene())
        assert stats.is_empty
        assert stats.pixels_touched == 0

    def test_supertile_counts_depend_on_gpu_model(self):
        scene = scene_with(Layer("l").add(solid_quad(Rect(0, 0, 512, 512))))
        st540 = AdrenoPipeline(adreno(540)).render(scene).increment.get(pc.RAS_SUPER_TILES)
        st660 = AdrenoPipeline(adreno(660)).render(scene).increment.get(pc.RAS_SUPER_TILES)
        # larger bins -> fewer supertiles
        assert st660 < st540

    def test_ras_cycles_positive_when_visible(self, pipeline):
        scene = scene_with(Layer("l").add(solid_quad(Rect(0, 0, 64, 64))))
        assert pipeline.render(scene).increment.get(pc.RAS_SUPERTILE_ACTIVE_CYCLES) > 0


@st.composite
def scenes(draw):
    """Random multi-layer scenes spanning the simulator's op shapes."""
    n_layers = draw(st.integers(min_value=1, max_value=4))
    layers = []
    for i in range(n_layers):
        layer = Layer(f"layer{i}")
        for _ in range(draw(st.integers(min_value=0, max_value=6))):
            left = draw(st.integers(min_value=-32, max_value=512))
            top = draw(st.integers(min_value=-32, max_value=512))
            width = draw(st.integers(min_value=0, max_value=256))
            height = draw(st.integers(min_value=0, max_value=256))
            layer.add(
                DrawOp(
                    rect=Rect(left, top, left + width, top + height),
                    coverage=draw(
                        st.one_of(
                            st.sampled_from([0.0, 0.3, 0.95, 1.0]),
                            st.floats(min_value=0.0, max_value=1.0),
                        )
                    ),
                    primitives=draw(st.integers(min_value=0, max_value=12)),
                    opaque=draw(st.booleans()),
                    textured=draw(st.booleans()),
                )
            )
        layers.append(layer)
    return Scene(layers)


class TestRenderParity:
    """The batched renderer must match the scalar reference exactly."""

    @given(scene=scenes())
    @settings(max_examples=150, deadline=None)
    def test_random_scenes_match_reference(self, scene):
        pipeline = AdrenoPipeline(adreno(650))
        fast = pipeline.render(scene)
        slow = pipeline.render_reference(scene)
        assert fast.increment.values == slow.increment.values
        assert fast.pixels_touched == slow.pixels_touched
        assert fast.render_time_s == slow.render_time_s

    @pytest.mark.parametrize("model", sorted(ADRENO_MODELS))
    def test_keyboard_like_scenes_match_on_every_model(self, model):
        rng = random.Random(model)
        pipeline = AdrenoPipeline(adreno(model))
        for _ in range(25):
            background = Layer("bg").add(solid_quad(Rect(0, 0, 1080, 2280)))
            keyboard = Layer("kbd").add(solid_quad(Rect(0, 1500, 1080, 2280)))
            for _ in range(rng.randint(1, 30)):
                x = rng.randrange(0, 1040)
                y = rng.randrange(1500, 2240)
                keyboard.add(
                    DrawOp(
                        rect=Rect(x, y, x + rng.randint(1, 90), y + rng.randint(1, 90)),
                        coverage=rng.choice([0.25, 0.5, 1.0]),
                        primitives=rng.randint(2, 8),
                        opaque=rng.random() < 0.5,
                        textured=rng.random() < 0.5,
                    )
                )
            popup = Layer("popup").add(solid_quad(Rect(400, 1400, 560, 1600)))
            scene = Scene([background, keyboard, popup])
            fast = pipeline.render(scene)
            slow = pipeline.render_reference(scene)
            assert fast.increment.values == slow.increment.values
            assert fast.pixels_touched == slow.pixels_touched

    def test_single_op_per_layer_matches(self):
        pipeline = AdrenoPipeline(adreno(640))
        scene = Scene(
            [
                Layer("a").add(DrawOp(rect=Rect(0, 0, 7, 3), coverage=0.5)),
                Layer("b").add(solid_quad(Rect(2, 1, 5, 9))),
            ]
        )
        fast = pipeline.render(scene)
        slow = pipeline.render_reference(scene)
        assert fast.increment.values == slow.increment.values


class TestAdrenoSpecs:
    def test_four_models(self):
        assert sorted(ADRENO_MODELS) == [540, 640, 650, 660]

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            adreno(730)

    def test_blocks_are_as_named_in_table1(self):
        assert LRZ_BLOCK == (8, 8)
        assert RAS_BLOCK == (8, 4)

    def test_newer_models_are_faster(self):
        assert adreno(660).fill_rate_gpix_s > adreno(540).fill_rate_gpix_s
        assert adreno(660).frame_overhead_us < adreno(540).frame_overhead_us

    def test_render_time_model(self):
        spec = adreno(650)
        assert spec.render_time_s(0) == pytest.approx(spec.frame_overhead_us * 1e-6)
        assert spec.render_time_s(10**7) > spec.render_time_s(10**5)
