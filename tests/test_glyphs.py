"""Tests for the glyph metrics table."""

import pytest

from repro.android.glyphs import KEYBOARD_CHARACTERS, GlyphMetrics, all_glyphs, glyph, has_glyph


class TestCoverage:
    def test_all_fig18_characters_have_glyphs(self):
        for char in KEYBOARD_CHARACTERS:
            assert has_glyph(char), f"missing glyph for {char!r}"

    def test_fig18_set_has_70_characters(self):
        # 26 lower + 10 digits + ',' '.' + 26 upper + 16 symbols
        assert len(KEYBOARD_CHARACTERS) == 80
        assert len(set(KEYBOARD_CHARACTERS)) == 80

    def test_mask_bullet_exists(self):
        assert has_glyph("•")

    def test_unknown_character_rejected(self):
        with pytest.raises(KeyError):
            glyph("£")

    def test_multichar_rejected(self):
        with pytest.raises(KeyError):
            glyph("ab")


class TestMetricRanges:
    def test_ink_fractions_are_plausible(self):
        for char, metrics in all_glyphs().items():
            assert 0.0 <= metrics.ink_fraction <= 0.5, char

    def test_width_fractions_are_plausible(self):
        for char, metrics in all_glyphs().items():
            assert 0.0 < metrics.width_fraction <= 1.0, char

    def test_comma_and_period_have_minimum_ink(self):
        """Paper Fig 17c/18: ',' and '.' cause the least overdraw."""
        letters_digits = [glyph(c) for c in "abcdefghijklmnopqrstuvwxyz1234567890"]
        comma, period = glyph(","), glyph(".")
        least_letter_ink = min(g.ink_fraction * g.width_fraction for g in letters_digits)
        assert comma.ink_fraction * comma.width_fraction < least_letter_ink
        assert period.ink_fraction * period.width_fraction < least_letter_ink

    def test_wide_characters_are_wide(self):
        assert glyph("m").width_fraction > glyph("i").width_fraction
        assert glyph("W").width_fraction > glyph("l").width_fraction
        assert glyph("@").width_fraction > 0.8


class TestCaseSeparability:
    def test_case_pairs_differ_in_some_metric(self):
        """Case pairs must be distinguishable or Fig 18's uppercase
        accuracy could not hold."""
        for lower in "abcdefghijklmnopqrstuvwxyz":
            lo, up = glyph(lower), glyph(lower.upper())
            assert (
                lo.strokes != up.strokes
                or abs(lo.ink_fraction - up.ink_fraction) > 0.01
                or abs(lo.width_fraction - up.width_fraction) > 0.05
            ), lower


class TestRendering:
    def test_ink_pixels_scale_with_font(self):
        g = glyph("a")
        assert g.ink_pixels(80) > g.ink_pixels(40) > 0

    def test_box_pixels(self):
        g = GlyphMetrics("x", ink_fraction=0.5, width_fraction=0.5, strokes=2)
        assert g.box_pixels(10) == 50
        assert g.ink_pixels(10) == 25

    def test_vector_primitives_are_two_per_stroke(self):
        g = glyph("8")
        assert g.primitives(vector=True) == 2 * g.strokes

    def test_bitmap_rendering_is_always_one_quad(self):
        """The Fig 14 invariant: every echoed character costs exactly 2
        primitives regardless of which character it is."""
        for char in KEYBOARD_CHARACTERS:
            assert glyph(char).primitives(vector=False) == 2
