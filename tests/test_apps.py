"""Tests for target application models."""

import pytest

from repro.android.apps import (
    CHASE,
    NATIVE_APPS,
    PNC,
    TARGET_APPS,
    app,
)
from repro.android.display import Display


class TestRegistry:
    def test_six_native_apps_from_fig19(self):
        assert [a.name for a in NATIVE_APPS] == [
            "chase",
            "amex",
            "fidelity",
            "schwab",
            "myfico",
            "experian",
        ]

    def test_three_web_targets(self):
        web = [a for a in TARGET_APPS.values() if a.is_web]
        assert sorted(a.name for a in web) == ["chase.com", "experian.com", "schwab.com"]

    def test_lookup(self):
        assert app("chase") is CHASE

    def test_unknown_app_rejected(self):
        with pytest.raises(KeyError):
            app("venmo")

    def test_categories(self):
        assert CHASE.category == "banking"
        assert app("fidelity").category == "investment"
        assert app("myfico").category == "credit"


class TestFieldGeometry:
    def test_field_rect_within_screen(self):
        display = Display()
        for spec in TARGET_APPS.values():
            field = spec.field_rect(display)
            assert display.bounds.contains(field), spec.name

    def test_field_positions_differ_across_apps(self):
        display = Display()
        tops = {spec.field_rect(display).top for spec in NATIVE_APPS}
        assert len(tops) == len(NATIVE_APPS)

    def test_fields_are_in_upper_half(self):
        """Login fields sit above the keyboard, so popups never overlap
        them — a structural assumption of the damage model."""
        display = Display()
        for spec in TARGET_APPS.values():
            field = spec.field_rect(display)
            assert field.bottom < display.resolution.height * 0.5, spec.name


class TestAnimation:
    def test_only_pnc_animates(self):
        animated = [a.name for a in TARGET_APPS.values() if a.animation is not None]
        assert animated == ["pnc"]

    def test_pnc_animation_is_aggressive(self):
        anim = PNC.animation
        assert anim.frame_interval_s <= 1 / 24
        assert anim.area_fraction > 0.1

    def test_passwords_masked_everywhere(self):
        for spec in TARGET_APPS.values():
            assert spec.masks_password, spec.name
