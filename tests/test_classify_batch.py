"""Tests for the vectorized classifier hot path.

``ClassificationModel.classify_batch`` scores an (n, 11) matrix against
every centroid in one GEMM; ``classify_vector`` / ``classify_vector_masked``
are now one-row delegates, and ``OnlineEngine.feed_many`` injects the
batched answers into the unchanged Algorithm-1 sequential pass.

Parity caveat (documented in ``docs/api.md``): an n-row GEMM and a
1-row matvec accumulate in different orders inside BLAS, so raw
distances may differ by ~1e-12.  The contract is therefore exact
equality of *labels, confidences and downstream decisions* and
``pytest.approx`` on distances.
"""

import numpy as np
import pytest

from repro.android.apps import CHASE
from repro.api import simulate
from repro.core import features
from repro.core.classifier import ClassificationModel, scaled_sq_dists
from repro.core.online import OnlineEngine
from repro.gpu import counters as pc
from repro.kgsl.device_file import DeviceClock, open_kgsl
from repro.kgsl.sampler import PcDelta, PerfCounterSampler, nonzero_deltas

D0 = pc.SELECTED_COUNTERS[0].counter_id
D1 = pc.SELECTED_COUNTERS[1].counter_id


def vec(values):
    v = np.zeros(features.DIMENSIONS)
    for i, x in values.items():
        v[i] = x
    return v


@pytest.fixture()
def model():
    labels = ["key:a", "key:b", "field:0:on", "reject:dismiss:a"]
    centroids = np.vstack(
        [
            vec({0: 1000, 1: 100}),
            vec({0: 2000, 1: 250}),
            vec({2: 50}),
            vec({0: 400, 1: 37}),
        ]
    )
    return ClassificationModel(
        labels=labels,
        centroids=centroids,
        scale=np.full(features.DIMENSIONS, 10.0),
        cth=2.0,
        model_key="toy",
    )


@pytest.fixture()
def rows(rng):
    """A mix of near-centroid hits, outliers and noise-floor rows."""
    base = [
        vec({0: 1000, 1: 100}),
        vec({0: 1990, 1: 248}),
        vec({2: 51}),
        vec({0: 407, 1: 36}),
        vec({5: 90000}),  # far from everything -> rejected
        np.zeros(features.DIMENSIONS),
    ]
    jitter = rng.normal(0, 3, size=(len(base), features.DIMENSIONS))
    return np.vstack(base) + jitter


def test_scaled_sq_dists_matches_naive(rng):
    rows = rng.normal(0, 5, size=(8, features.DIMENSIONS))
    cents = rng.normal(0, 5, size=(3, features.DIMENSIONS))
    sq = scaled_sq_dists(rows, cents)
    naive = np.array([[np.sum((r - c) ** 2) for c in cents] for r in rows])
    assert sq == pytest.approx(naive)
    assert np.all(sq >= 0.0)  # cancellation is clamped, never negative


def test_batch_matches_looped_classify(model, rows):
    batch = model.classify_batch(rows)
    looped = [model.classify_vector(row) for row in rows]
    assert [c.label for c in batch] == [c.label for c in looped]
    assert [c.confidence for c in batch] == [c.confidence for c in looped]
    for b, l in zip(batch, looped):
        assert b.distance == pytest.approx(l.distance, abs=1e-9)


def test_batch_matches_looped_masked(model, rows, rng):
    masks = rng.random(size=rows.shape) > 0.3
    masks[0] = True  # keep one fully observed row in the mix
    masks[-1] = False  # and one fully reclaimed row
    batch = model.classify_batch(rows, masks)
    looped = [model.classify_vector_masked(r, m) for r, m in zip(rows, masks)]
    assert [c.label for c in batch] == [c.label for c in looped]
    assert [c.confidence for c in batch] == [c.confidence for c in looped]
    for b, l in zip(batch, looped):
        if np.isfinite(l.distance):
            assert b.distance == pytest.approx(l.distance, abs=1e-9)
        else:
            assert not np.isfinite(b.distance)


def test_fully_masked_row_rejects_with_zero_confidence(model):
    rows = np.vstack([vec({0: 1000, 1: 100})])
    masks = np.zeros_like(rows, dtype=bool)
    (c,) = model.classify_batch(rows, masks)
    assert c.label is None
    assert c.confidence == 0.0
    assert not np.isfinite(c.distance)


def test_masked_confidence_is_observed_fraction(model):
    row = vec({0: 1000, 1: 100})
    mask = np.ones(features.DIMENSIONS, dtype=bool)
    mask[7:] = False
    (c,) = model.classify_batch(row[None, :], mask[None, :])
    assert c.confidence == pytest.approx(7 / features.DIMENSIONS)


def test_empty_batch(model):
    assert model.classify_batch(np.empty((0, features.DIMENSIONS))) == []


def test_distant_rows_are_rejected(model):
    (c,) = model.classify_batch(vec({5: 90000})[None, :])
    assert c.label is None
    assert c.distance > model.cth


def test_feed_many_matches_feed_loop(model):
    def deltas():
        out = []
        for i in range(12):
            t = 0.1 + i * 0.05
            if i % 3 == 0:
                out.append(PcDelta(t=t, prev_t=t - 0.008, values={D0: 1000, D1: 100}))
            elif i % 3 == 1:
                out.append(PcDelta(t=t, prev_t=t - 0.008, values={D0: 2000, D1: 250}))
            else:
                out.append(
                    PcDelta(
                        t=t, prev_t=t - 0.008, values={D0: 1000}, missing=(D1,)
                    )
                )
        return out

    looped = OnlineEngine(model, detect_switches=False).process(deltas())
    batched_engine = OnlineEngine(model, detect_switches=False)
    batched_engine.begin()
    batched = batched_engine.feed_many(deltas())
    batched = batched_engine.finish()
    assert [(k.char, k.t, k.low_confidence) for k in batched.keys] == [
        (k.char, k.t, k.low_confidence) for k in looped.keys
    ]
    assert batched.stats == looped.stats


def test_feed_many_end_to_end_matches_process(config, chase_model):
    """Real sampled deltas: the batched engine infers the same text,
    keys and stats as the sequential pass."""
    trace = simulate(config, CHASE, "hunter2secret", seed=3)
    kgsl = open_kgsl(trace.timeline, clock=DeviceClock())
    sampler = PerfCounterSampler(kgsl, rng=np.random.default_rng(3))
    deltas = nonzero_deltas(sampler.sample_range(0.0, trace.end_time_s))

    serial = OnlineEngine(chase_model).process(deltas)
    engine = OnlineEngine(chase_model)
    engine.begin()
    engine.feed_many(deltas)
    batched = engine.finish()
    assert batched.text == serial.text
    assert [(k.char, k.t, k.low_confidence) for k in batched.keys] == [
        (k.char, k.t, k.low_confidence) for k in serial.keys
    ]
    assert batched.stats == serial.stats
