"""Tests for the entropy-leak and bootstrap-statistics modules."""

import math

import numpy as np
import pytest

from repro.analysis.confusion import ConfusionMatrix
from repro.analysis.entropy import (
    LeakReport,
    conditional_entropy_bits,
    leak_report,
    prior_entropy_bits,
)
from repro.analysis.stats import (
    Interval,
    accuracy_interval,
    bootstrap_interval,
    difference_significant,
)


class TestPriorEntropy:
    def test_uniform_alphabet(self):
        assert prior_entropy_bits(1, 2) == pytest.approx(1.0)
        assert prior_entropy_bits(8, 64) == pytest.approx(48.0)

    def test_scales_linearly_with_length(self):
        assert prior_entropy_bits(16, 80) == pytest.approx(2 * prior_entropy_bits(8, 80))

    def test_validation(self):
        with pytest.raises(ValueError):
            prior_entropy_bits(-1)
        with pytest.raises(ValueError):
            prior_entropy_bits(8, 1)


class TestConditionalEntropy:
    def test_perfect_channel_is_zero_bits(self):
        matrix = ConfusionMatrix()
        for char in "abcd":
            for _ in range(5):
                matrix.record(char, char)
        assert conditional_entropy_bits(matrix) == pytest.approx(0.0)

    def test_fully_confused_pair_is_one_bit(self):
        matrix = ConfusionMatrix()
        # inferred 'a' is equally likely to be true 'a' or true 'b'
        for _ in range(10):
            matrix.record("a", "a")
            matrix.record("b", "a")
        assert conditional_entropy_bits(matrix) == pytest.approx(1.0)

    def test_empty_matrix(self):
        assert conditional_entropy_bits(ConfusionMatrix()) == 0.0

    def test_partial_confusion_between_zero_and_one_bit(self):
        matrix = ConfusionMatrix()
        for _ in range(9):
            matrix.record("a", "a")
        matrix.record("b", "a")
        bits = conditional_entropy_bits(matrix)
        assert 0.0 < bits < 1.0


class TestLeakReport:
    def test_perfect_attack_leaks_everything(self):
        matrix = ConfusionMatrix()
        for char in "abcdefgh":
            matrix.record(char, char)
        report = leak_report(matrix, length=12, alphabet_size=80)
        assert report.leak_fraction == pytest.approx(1.0)
        assert report.search_space_reduction > 1e20

    def test_useless_attack_leaks_nothing_much(self):
        matrix = ConfusionMatrix()
        # inferred symbol independent of truth over a 4-symbol alphabet
        for truth in "abcd":
            for inferred in "abcd":
                for _ in range(5):
                    matrix.record(truth, inferred)
        report = leak_report(matrix, length=8, alphabet_size=4)
        assert report.posterior_bits == pytest.approx(report.prior_bits, rel=0.01)
        assert report.leaked_bits == pytest.approx(0.0, abs=0.2)

    def test_report_fields(self):
        report = LeakReport(length=8, prior_bits=48.0, posterior_bits=8.0)
        assert report.leaked_bits == 40.0
        assert report.leak_fraction == pytest.approx(40.0 / 48.0)

    def test_measured_channel_leaks_most_bits(self, config, chase_model):
        """The real attack's confusion matrix: >90 % of credential entropy."""
        from repro.analysis.experiments import run_per_key_sweep, single_model_attack
        from repro.android.apps import CHASE
        from repro.core.pipeline import simulate_credential_entry
        from repro.workloads.credentials import credential_batch

        attack = single_model_attack(config, CHASE)
        matrix = ConfusionMatrix()
        rng = np.random.default_rng(5)
        for i, text in enumerate(credential_batch(rng, 10)):
            trace = simulate_credential_entry(config, CHASE, text, seed=800 + i)
            result = attack.run_on_trace(trace, seed=900 + i)
            matrix.record(text, result.text)
        report = leak_report(matrix, length=12)
        assert report.leak_fraction > 0.9


class TestBootstrap:
    def test_interval_contains_true_mean(self):
        rng = np.random.default_rng(0)
        values = rng.normal(0.8, 0.1, size=200)
        interval = bootstrap_interval(values)
        assert interval.contains(0.8)
        assert interval.width < 0.1

    def test_degenerate_sample(self):
        interval = bootstrap_interval([1.0] * 10)
        assert interval.estimate == 1.0
        assert interval.width == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_interval([])
        with pytest.raises(ValueError):
            bootstrap_interval([1.0], confidence=1.5)

    def test_accuracy_interval(self):
        interval = accuracy_interval(successes=80, trials=100)
        assert interval.estimate == pytest.approx(0.8)
        assert 0.7 < interval.low < 0.8 < interval.high < 0.9
        with pytest.raises(ValueError):
            accuracy_interval(5, 0)
        with pytest.raises(ValueError):
            accuracy_interval(7, 5)

    def test_difference_detection(self):
        rng = np.random.default_rng(1)
        a = rng.normal(0.9, 0.05, 100)
        b = rng.normal(0.5, 0.05, 100)
        assert difference_significant(a, b)
        assert not difference_significant(a, a)
        with pytest.raises(ValueError):
            difference_significant([], [1.0])

    def test_interval_str(self):
        interval = Interval(estimate=0.5, low=0.4, high=0.6, confidence=0.95)
        assert "[0.400, 0.600]" in str(interval)
