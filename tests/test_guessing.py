"""Tests for the candidate-guess generator."""

import numpy as np
import pytest

from repro.core import features
from repro.core.classifier import ClassificationModel
from repro.core.guessing import CandidateGenerator, PositionHypotheses
from repro.core.online import InferredKey, OnlineResult


def vec(**kw):
    v = np.zeros(features.DIMENSIONS)
    for index, value in kw.items():
        v[int(index[1:])] = value
    return v


@pytest.fixture()
def model():
    labels = ["key:a", "key:b", "key:c", "field:0:on"]
    centroids = np.vstack(
        [vec(d0=100), vec(d0=110), vec(d0=300), vec(d1=50)]
    )
    return ClassificationModel(
        labels=labels,
        centroids=centroids,
        scale=np.full(features.DIMENSIONS, 10.0),
        cth=2.0,
        model_key="toy",
    )


def result_with(chars_distances):
    result = OnlineResult()
    for i, (char, distance) in enumerate(chars_distances):
        result.keys.append(InferredKey(t=float(i), char=char, distance=distance))
    return result


class TestEnumeration:
    def test_first_candidate_is_the_inferred_text(self, model):
        generator = CandidateGenerator(model)
        result = result_with([("a", 0.1), ("c", 0.1)])
        guesses = generator.guesses(result, max_candidates=10)
        assert guesses[0] == "ac"

    def test_candidates_are_unique(self, model):
        generator = CandidateGenerator(model)
        result = result_with([("a", 0.5), ("b", 0.5), ("c", 0.5)])
        guesses = generator.guesses(result, max_candidates=30)
        assert len(guesses) == len(set(guesses))

    def test_uncertain_positions_vary_first(self, model):
        generator = CandidateGenerator(model, alternatives=3)
        # position 0 confident, position 1 very uncertain
        result = result_with([("a", 0.01), ("a", 1.9)])
        guesses = generator.guesses(result, max_candidates=4)
        # the second position should be the first to flip to its rival 'b'
        assert "ab" in guesses[:3]

    def test_candidate_count_respected(self, model):
        generator = CandidateGenerator(model, alternatives=3)
        result = result_with([("a", 1.0)] * 4)
        assert len(generator.guesses(result, max_candidates=7)) == 7

    def test_deleted_keys_excluded(self, model):
        generator = CandidateGenerator(model)
        result = result_with([("a", 0.1), ("b", 0.1)])
        result.keys[0].deleted = True
        assert generator.guesses(result, max_candidates=1) == ["b"]

    def test_empty_result_yields_nothing(self, model):
        generator = CandidateGenerator(model)
        assert generator.guesses(OnlineResult(), max_candidates=5) == []

    def test_rank_of(self, model):
        generator = CandidateGenerator(model)
        result = result_with([("a", 1.5)])
        assert generator.rank_of(result, "a") == 1
        rank_b = generator.rank_of(result, "b")
        assert rank_b is not None and rank_b >= 2
        assert generator.rank_of(result, "zzz") is None

    def test_validation(self, model):
        with pytest.raises(ValueError):
            CandidateGenerator(model, alternatives=0)


class TestAgainstTrainedModel:
    def test_guessing_recovers_single_substitutions(self, chase_model, config):
        """Section 7.1's claim: single errors fall to a few guesses."""
        from repro.analysis.experiments import single_model_attack
        from repro.android.apps import CHASE
        from repro.core.pipeline import simulate_credential_entry
        from repro.workloads.credentials import credential_batch

        attack = single_model_attack(config, CHASE)
        generator = CandidateGenerator(chase_model)
        rng = np.random.default_rng(17)
        recovered_1 = recovered_10 = total = 0
        for i, text in enumerate(credential_batch(rng, 12)):
            trace = simulate_credential_entry(config, CHASE, text, seed=600 + i)
            result = attack.run_on_trace(trace, seed=900 + i)
            rank = generator.rank_of(result.online, text, max_candidates=10)
            total += 1
            if rank == 1:
                recovered_1 += 1
            if rank is not None:
                recovered_10 += 1
        assert recovered_10 >= recovered_1
        assert recovered_10 / total > 0.7
