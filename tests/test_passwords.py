"""Tests for the realistic password generator."""

import numpy as np
import pytest

from repro.android.keyboard import KeyboardLayout
from repro.android.display import Display
from repro.android.keyboard import GBOARD
from repro.workloads.passwords import pattern_password, pattern_password_batch, pin


class TestPatternPasswords:
    def test_length_band(self, rng):
        for _ in range(100):
            password = pattern_password(rng)
            assert 8 <= len(password) <= 16

    def test_all_characters_typeable(self, rng):
        layout = KeyboardLayout(GBOARD, Display())
        for _ in range(100):
            for char in pattern_password(rng):
                assert layout.has_key(char), char

    def test_contains_digits_usually(self, rng):
        with_digits = sum(
            any(c.isdigit() for c in pattern_password(rng)) for _ in range(50)
        )
        assert with_digits > 40

    def test_batch(self, rng):
        batch = pattern_password_batch(rng, 10)
        assert len(batch) == 10
        assert len(set(batch)) > 3  # variety

    def test_deterministic(self):
        a = pattern_password(np.random.default_rng(1))
        b = pattern_password(np.random.default_rng(1))
        assert a == b


class TestPin:
    def test_length(self, rng):
        assert len(pin(rng, 6)) == 6
        assert pin(rng, 4).isdigit()

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            pin(rng, 0)
