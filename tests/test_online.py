"""Tests for the Algorithm 1 online engine on synthetic delta streams."""

import numpy as np
import pytest

from repro.core import features
from repro.core.classifier import ClassificationModel
from repro.core.online import OnlineEngine
from repro.gpu import counters as pc
from repro.kgsl.sampler import PcDelta

D0 = pc.SELECTED_COUNTERS[0].counter_id
D1 = pc.SELECTED_COUNTERS[1].counter_id
D2 = pc.SELECTED_COUNTERS[2].counter_id
D3 = pc.SELECTED_COUNTERS[3].counter_id


def vec(values):
    v = np.zeros(features.DIMENSIONS)
    for i, x in values.items():
        v[i] = x
    return v


@pytest.fixture()
def model():
    labels = [
        "key:a",
        "key:b",
        "field:0:on",
        "field:1:on",
        "field:2:on",
        "reject:dismiss:a",
        "reject:dismiss:b",
    ]
    centroids = np.vstack(
        [
            vec({0: 1000, 1: 100}),
            vec({0: 2000, 1: 250}),
            vec({2: 50}),
            vec({2: 50, 3: 20}),
            vec({2: 50, 3: 40}),
            vec({0: 400, 1: 37}),
            vec({0: 500, 1: 55}),
        ]
    )
    return ClassificationModel(
        labels=labels,
        centroids=centroids,
        scale=np.full(features.DIMENSIONS, 10.0),
        cth=2.0,
        model_key="toy",
    )


def delta(t, values, prev_dt=0.008):
    return PcDelta(t=t, prev_t=t - prev_dt, values=values)


def key_a(t):
    return delta(t, {D0: 1000, D1: 100})


def key_b(t):
    return delta(t, {D0: 2000, D1: 250})


def field(t, n):
    return delta(t, {D2: 50, D3: 20 * n})


def dismiss_a(t):
    return delta(t, {D0: 400, D1: 37})


def engine(model, **kw):
    return OnlineEngine(model, detect_switches=False, **kw)


class TestBasicInference:
    def test_clean_key_sequence(self, model):
        result = engine(model).process([key_a(1.0), key_b(1.5), key_a(2.0)])
        assert result.text == "aba"
        assert result.stats.keys_inferred == 3

    def test_timestamps_recorded(self, model):
        result = engine(model).process([key_a(1.25)])
        assert result.keys[0].t == pytest.approx(1.25)

    def test_noise_rejected(self, model):
        result = engine(model).process([delta(1.0, {D0: 123456, D1: 9999})])
        assert result.text == ""
        assert result.stats.noise_events == 1

    def test_empty_deltas_skipped(self, model):
        result = engine(model).process([delta(1.0, {D0: 0})])
        assert result.stats.deltas_seen == 0

    def test_inference_times_recorded(self, model):
        result = engine(model).process([key_a(1.0), key_b(1.5)])
        assert result.latency.count >= 2
        assert all(t0 >= 0 for t0 in result.latency.samples)


class TestDuplication:
    def test_duplicate_press_suppressed(self, model):
        result = engine(model).process([key_a(1.0), key_a(1.016)])
        assert result.text == "a"
        assert result.stats.duplicates_suppressed == 1

    def test_distinct_keys_outside_window_kept(self, model):
        result = engine(model).process([key_a(1.0), key_b(1.2)])
        assert result.text == "ab"


class TestSplitRecovery:
    def test_split_key_press_recombined(self, model):
        half1 = delta(1.000, {D0: 520, D1: 50})
        half2 = delta(1.008, {D0: 480, D1: 50})
        result = engine(model).process([half1, half2])
        assert result.text == "a"
        assert result.stats.splits_recovered == 1
        assert result.keys[0].from_split
        assert result.keys[0].t == pytest.approx(1.000)

    def test_split_too_far_apart_not_merged(self, model):
        half1 = delta(1.000, {D0: 520, D1: 50})
        half2 = delta(1.200, {D0: 480, D1: 50})
        result = engine(model).process([half1, half2])
        assert result.text == ""

    def test_merged_preferred_over_weak_direct_match(self, model):
        """A nearly-complete split tail can fall within cth of the wrong
        class; the engine must prefer the better merged interpretation."""
        part1 = delta(1.000, {D0: 985, D1: 98})  # almost all of key:a
        part2 = delta(1.008, {D0: 1015 + 2000 - 985, D1: 2 + 250 - 98})
        # part2 alone is close-ish to key:b but merged with part1's rest is exact
        stream = [part1, part2]
        result = engine(model).process(stream)
        assert "a" in result.text


class TestCollisionRecovery:
    def test_doubled_press_halved(self, model):
        result = engine(model).process([delta(1.0, {D0: 2000, D1: 200})])
        # 2x key:a is exactly key:b's D0 but not D1; halving matches key:a
        assert result.text in ("a", "")  # must not be 'b'... see below
        strict = engine(model, recover_collisions=True).process(
            [delta(1.0, {D0: 2004, D1: 202})]
        )
        assert strict.text in ("a", "")

    def test_dismiss_plus_press_composite(self, model):
        composite = delta(1.0, {D0: 1000 + 400, D1: 100 + 37})
        result = engine(model).process([composite])
        assert result.text == "a"

    def test_recovery_can_be_disabled(self, model):
        composite = delta(1.0, {D0: 1000 + 400, D1: 100 + 37})
        result = engine(model, recover_collisions=False).process([composite])
        assert result.text == ""


class TestCorrectionsIntegration:
    def test_confirmed_deletion_removes_key(self, model):
        stream = [
            key_a(1.0),
            field(1.1, 1),
            field(1.6, 1),
            key_b(2.0),
            field(2.1, 2),
            field(2.6, 2),
            field(3.0, 1),  # backspace
            field(3.5, 1),  # blink confirms
        ]
        result = engine(model).process(stream)
        assert result.text == "a"
        assert result.stats.deletions_detected == 1

    def test_deletion_targets_key_before_backspace(self, model):
        stream = [
            key_a(1.0),
            field(1.1, 1), field(1.6, 1),
            field(2.0, 0),            # backspace happens now
            key_b(2.2),               # user retypes before any blink
            field(2.3, 1),            # echo of 'b' validates the dip
            field(2.8, 1),
        ]
        result = engine(model).process(stream)
        assert result.text == "b"

    def test_corrections_can_be_disabled(self, model):
        stream = [
            key_a(1.0),
            field(2.0, 0),
            field(2.5, 0),
        ]
        result = engine(model, track_corrections=False).process(stream)
        assert result.text == "a"

    def test_unattributed_growth_flags_missed_press(self, model):
        stream = [
            field(0.5, 0), field(0.9, 0),
            # a press was missed here: field grows without an inferred key
            field(1.5, 1), field(1.9, 1),
        ]
        result = engine(model).process(stream)
        assert result.stats.unattributed_growth == 1


class TestSwitchSuppression:
    def test_keys_during_away_period_suppressed(self, model):
        eng = OnlineEngine(model, detect_switches=True)
        big = 10 * 2000 * 12  # far above 2.5x max key total
        burst1 = [delta(1.0 + i * 0.016, {D0: big}) for i in range(5)]
        away_key = [key_a(3.0)]
        burst2 = [delta(5.0 + i * 0.016, {D0: big}) for i in range(5)]
        in_target_key = [key_b(7.0)]
        result = eng.process(burst1 + away_key + burst2 + in_target_key)
        assert result.text == "b"
        assert result.stats.suppressed_by_switch > 0
