"""Tests for the mitigation layer (paper Section 9)."""

import errno

import numpy as np
import pytest

from repro.android.display import Display
from repro.android.keyboard import GBOARD
from repro.android.os_config import default_config
from repro.gpu import counters as pc
from repro.gpu.adreno import adreno
from repro.gpu.pipeline import FrameStats
from repro.gpu.timeline import RenderTimeline
from repro.kgsl.device_file import DeviceClock, ProcessContext, open_kgsl
from repro.kgsl.ioctl import (
    IOCTL_KGSL_PERFCOUNTER_GET,
    IoctlError,
    KgslPerfcounterGet,
)
from repro.kgsl.sampler import PerfCounterSampler
from repro.mitigations.access_control import (
    AllowAllPolicy,
    LocalOnlyPolicy,
    RbacPolicy,
)
from repro.mitigations.obfuscation import CounterObfuscationPolicy, OsNoiseInjector, with_os_noise
from repro.mitigations.popup_disable import config_with_popups_disabled, disable_popups


def timeline_with(amount=1000, t=0.5):
    timeline = RenderTimeline()
    inc = pc.CounterIncrement()
    inc.add(pc.LRZ_FULL_8X8_TILES, amount)
    timeline.add_render(t, FrameStats(increment=inc, pixels_touched=amount, render_time_s=0.001))
    return timeline


UNTRUSTED = ProcessContext(selinux_context="untrusted_app")
PROFILER = ProcessContext(selinux_context="graphics_profiler")


class TestRbacPolicy:
    def test_untrusted_app_denied_eacces(self):
        policy = RbacPolicy()
        dev = open_kgsl(timeline_with(), context=UNTRUSTED, access_policy=policy)
        with pytest.raises(IoctlError) as exc:
            dev.ioctl(IOCTL_KGSL_PERFCOUNTER_GET, KgslPerfcounterGet(groupid=0x19, countable=14))
        assert exc.value.errno == errno.EACCES
        assert policy.denials == 1

    def test_privileged_profiler_allowed(self):
        policy = RbacPolicy()
        dev = open_kgsl(timeline_with(), context=PROFILER, access_policy=policy)
        dev.ioctl(IOCTL_KGSL_PERFCOUNTER_GET, KgslPerfcounterGet(groupid=0x19, countable=14))
        assert policy.denials == 0

    def test_attack_sampler_starts_blind(self):
        # EACCES at reserve time permanently masks the counters: the
        # sampler comes up with nothing to read instead of crashing the
        # attacking app (the resilient-sampling contract).
        dev = open_kgsl(timeline_with(), context=UNTRUSTED, access_policy=RbacPolicy())
        sampler = PerfCounterSampler(dev)
        assert sampler._active == []
        assert sampler.counters_denied == len(sampler.counters)
        assert sampler.degraded
        # denied counters are never revived: every read comes back empty
        samples = sampler.sample_range(0.0, 0.1)
        assert all(not s.values for s in samples)


class TestLocalOnlyPolicy:
    def test_unprivileged_reads_flat_zero(self):
        policy = LocalOnlyPolicy()
        dev = open_kgsl(
            timeline_with(amount=5000), clock=DeviceClock(), context=UNTRUSTED, access_policy=policy
        )
        sampler = PerfCounterSampler(dev, rng=np.random.default_rng(0))
        samples = sampler.sample_range(0.0, 1.0)
        assert all(
            v == 0 for s in samples for v in s.values.values()
        ), "unprivileged reads must expose no global activity"
        assert policy.local_reads > 0

    def test_privileged_sees_global_values(self):
        policy = LocalOnlyPolicy()
        dev = open_kgsl(
            timeline_with(amount=5000), clock=DeviceClock(), context=PROFILER, access_policy=policy
        )
        sampler = PerfCounterSampler(dev, rng=np.random.default_rng(0))
        samples = sampler.sample_range(0.0, 1.0)
        assert samples[-1].values[pc.LRZ_FULL_8X8_TILES.counter_id] == 5000


class TestAllowAll:
    def test_default_policy_is_permissive(self):
        dev = open_kgsl(
            timeline_with(amount=100), clock=DeviceClock(), context=UNTRUSTED,
            access_policy=AllowAllPolicy(),
        )
        sampler = PerfCounterSampler(dev, rng=np.random.default_rng(0))
        samples = sampler.sample_range(0.0, 1.0)
        assert samples[-1].values[pc.LRZ_FULL_8X8_TILES.counter_id] == 100


class TestObfuscation:
    def test_values_perturbed_for_unprivileged(self):
        policy = CounterObfuscationPolicy(strength=1.0)
        dev = open_kgsl(
            timeline_with(amount=100), clock=DeviceClock(), context=UNTRUSTED, access_policy=policy
        )
        sampler = PerfCounterSampler(dev, rng=np.random.default_rng(0))
        samples = sampler.sample_range(0.0, 1.0)
        deltas = [
            b.values[pc.LRZ_FULL_8X8_TILES.counter_id] - a.values[pc.LRZ_FULL_8X8_TILES.counter_id]
            for a, b in zip(samples, samples[1:])
        ]
        assert sum(1 for d in deltas if d != 0) > len(deltas) // 2

    def test_values_stay_monotone(self):
        policy = CounterObfuscationPolicy(strength=2.0)
        dev = open_kgsl(
            timeline_with(amount=100), clock=DeviceClock(), context=UNTRUSTED, access_policy=policy
        )
        sampler = PerfCounterSampler(dev, rng=np.random.default_rng(0))
        samples = sampler.sample_range(0.0, 0.5)
        values = [s.values[pc.LRZ_FULL_8X8_TILES.counter_id] for s in samples]
        assert values == sorted(values)

    def test_privileged_unaffected(self):
        policy = CounterObfuscationPolicy()
        dev = open_kgsl(
            timeline_with(amount=100), clock=DeviceClock(),
            context=ProcessContext(selinux_context="system_server"),
            access_policy=policy,
        )
        sampler = PerfCounterSampler(dev, rng=np.random.default_rng(0))
        samples = sampler.sample_range(0.0, 1.0)
        assert samples[-1].values[pc.LRZ_FULL_8X8_TILES.counter_id] == 100


class TestOsNoiseInjector:
    def test_injects_frames_at_requested_rate(self):
        injector = OsNoiseInjector(adreno(650), Display(), rate_hz=30.0, intensity=0.1)
        timeline = injector.timeline(0.0, 10.0)
        assert 200 <= len(timeline.frames) <= 400

    def test_noise_merges_into_victim_timeline(self):
        victim = timeline_with(amount=100, t=0.5)
        injector = OsNoiseInjector(adreno(650), Display(), rate_hz=20.0)
        merged = with_os_noise(victim, injector, t_end=5.0)
        assert len(merged.frames) > len(victim.frames)

    def test_intensity_scales_cost(self):
        low = OsNoiseInjector(adreno(650), Display(), rate_hz=30.0, intensity=0.06,
                              rng=np.random.default_rng(1))
        high = OsNoiseInjector(adreno(650), Display(), rate_hz=30.0, intensity=0.5,
                               rng=np.random.default_rng(1))
        assert high.gpu_time_fraction(0.0, 10.0) > low.gpu_time_fraction(0.0, 10.0)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            OsNoiseInjector(adreno(650), Display(), rate_hz=0.0)
        with pytest.raises(ValueError):
            OsNoiseInjector(adreno(650), Display(), intensity=0.0)


class TestPopupDisable:
    def test_disable_popups_flags(self):
        spec = disable_popups(GBOARD)
        assert not spec.supports_popup
        assert spec.duplicate_popup_prob == 0.0

    def test_config_helper(self):
        config = config_with_popups_disabled(default_config())
        assert not config.keyboard.supports_popup
        assert config.config_key() != default_config().config_key() or True

    def test_press_without_popup_damages_only_key(self):
        from repro.android.scenes import SceneBuilder

        config = config_with_popups_disabled(default_config())
        builder = SceneBuilder(config)
        damage = builder.popup_damage("g")
        geo = builder.layout.key("g")
        assert damage.area < geo.popup_rect.area
