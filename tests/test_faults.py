"""Tests for the fault-injection subsystem and the resilient sampling path.

Covers the :mod:`repro.faults` plan/injector machinery in isolation, the
parity guarantee (no plan == disabled plan == pre-fault behavior, byte
for byte), and the end-to-end degradation contract of the ``mild`` and
``harsh`` CI profiles.
"""

import types

import pytest

from repro.android.apps import CHASE
from repro.core.pipeline import EavesdropAttack, simulate_credential_entry
from repro.faults import (
    FAULT_PROFILE_ENV,
    PROFILES,
    FaultInjector,
    FaultPlan,
    FaultStats,
    plan_from_env,
    resolve_plan,
)
from repro.kgsl.ioctl import (
    IOCTL_KGSL_PERFCOUNTER_GET,
    IOCTL_KGSL_PERFCOUNTER_READ,
    IoctlError,
)

CREDENTIAL = "hunter2secret"


@pytest.fixture(scope="module")
def trace(config):
    return simulate_credential_entry(config, CHASE, CREDENTIAL, seed=1)


def run_attack(store, trace, fault_plan, seed=101):
    attack = EavesdropAttack(store, recognize_device=False, fault_plan=fault_plan)
    return attack.run_on_trace(trace, seed=seed)


def key_sequence(result):
    return [(k.t, k.char, k.deleted) for k in result.online.keys]


class TestFaultStats:
    def test_total_sums_every_field(self):
        stats = FaultStats(read_errors=2, get_errors=1, reclaims=3, drops=4,
                           jitter_events=5, corruptions=6)
        assert stats.total == 21

    def test_as_dict_round_trips(self):
        stats = FaultStats(read_errors=7, drops=1)
        assert FaultStats(**stats.as_dict()) == stats


class TestFaultPlan:
    def test_default_plan_is_disabled(self):
        plan = FaultPlan()
        assert not plan.enabled
        assert plan.injector() is None

    def test_enabled_when_any_rate_positive(self):
        assert FaultPlan(drop_prob=0.01).enabled
        assert FaultPlan(reclaim_rate_hz=0.5).enabled
        assert isinstance(FaultPlan(jitter_prob=0.1).injector(), FaultInjector)

    @pytest.mark.parametrize("kwargs", [
        {"read_error_prob": 1.5},
        {"drop_prob": -0.1},
        {"reclaim_rate_hz": -1.0},
        {"jitter_s": -0.001},
        {"max_reclaims": -1},
    ])
    def test_validation_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            FaultPlan(**kwargs)

    def test_dict_round_trip(self):
        plan = FaultPlan.from_profile("harsh", seed=17)
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown FaultPlan fields"):
            FaultPlan.from_dict({"read_error_prob": 0.1, "typo_field": 1})

    def test_from_profile_seeds_the_plan(self):
        plan = FaultPlan.from_profile("mild", seed=42)
        assert plan.profile == "mild"
        assert plan.seed == 42
        assert plan.enabled

    def test_unknown_profile_raises(self):
        with pytest.raises(ValueError, match="unknown fault profile"):
            FaultPlan.from_profile("catastrophic")

    def test_profiles_registry_is_consistent(self):
        assert set(PROFILES) == {"none", "mild", "harsh"}
        assert not PROFILES["none"].enabled
        assert PROFILES["mild"].max_reclaims == 1
        assert PROFILES["harsh"].corrupt_prob > 0


class TestResolution:
    def test_env_unset_means_no_plan(self, monkeypatch):
        monkeypatch.delenv(FAULT_PROFILE_ENV, raising=False)
        assert plan_from_env() is None

    def test_env_selects_profile(self, monkeypatch):
        monkeypatch.setenv(FAULT_PROFILE_ENV, "mild")
        plan = plan_from_env()
        assert plan is not None and plan.profile == "mild"

    def test_env_none_profile_means_no_plan(self, monkeypatch):
        monkeypatch.setenv(FAULT_PROFILE_ENV, "none")
        assert plan_from_env() is None

    def test_resolve_none_overrides_env(self, monkeypatch):
        monkeypatch.setenv(FAULT_PROFILE_ENV, "harsh")
        assert resolve_plan(None) is None

    def test_resolve_auto_defers_to_env(self, monkeypatch):
        monkeypatch.setenv(FAULT_PROFILE_ENV, "harsh")
        plan = resolve_plan("auto")
        assert plan is not None and plan.profile == "harsh"

    def test_resolve_profile_name(self, monkeypatch):
        monkeypatch.delenv(FAULT_PROFILE_ENV, raising=False)
        assert resolve_plan("mild").profile == "mild"
        assert resolve_plan("none") is None

    def test_resolve_passes_plans_through(self):
        plan = FaultPlan(drop_prob=0.5)
        assert resolve_plan(plan) is plan
        assert resolve_plan(FaultPlan()) is None


class FakeDevice:
    """Minimal device stand-in for reclamation unit tests."""

    def __init__(self):
        self.clock = types.SimpleNamespace(now=0.0)
        self._reserved = [(0, 1), (0, 2), (3, 4)]
        self.revoked = []

    def reserved_counters(self):
        return list(self._reserved)

    def revoke_counter(self, key):
        self._reserved.remove(key)
        self.revoked.append(key)


class TestInjector:
    def test_same_seed_same_fault_sequence(self):
        plan = FaultPlan(seed=5, drop_prob=0.3, jitter_prob=0.3, jitter_s=0.001)
        a, b = plan.injector(seed_offset=9), plan.injector(seed_offset=9)
        seq_a = [(a.drop_sample(), a.extra_delay()) for _ in range(200)]
        seq_b = [(b.drop_sample(), b.extra_delay()) for _ in range(200)]
        assert seq_a == seq_b
        assert a.stats == b.stats

    def test_seed_offset_decorrelates_sessions(self):
        plan = FaultPlan(seed=5, drop_prob=0.3)
        a, b = plan.injector(seed_offset=1), plan.injector(seed_offset=2)
        assert [a.drop_sample() for _ in range(200)] != [b.drop_sample() for _ in range(200)]

    def test_reclamation_revokes_and_blocks_get(self):
        plan = FaultPlan(reclaim_rate_hz=1000.0, reclaim_window_s=0.5, max_reclaims=1)
        injector = plan.injector()
        device = FakeDevice()
        injector.on_ioctl(device, IOCTL_KGSL_PERFCOUNTER_READ, None)  # arms the clock
        device.clock.now = 0.1
        injector.on_ioctl(device, IOCTL_KGSL_PERFCOUNTER_READ, None)
        assert injector.stats.reclaims == 1
        assert len(device.revoked) == 1
        (key,) = injector.reclaimed_now
        arg = types.SimpleNamespace(groupid=key[0], countable=key[1])
        with pytest.raises(IoctlError) as exc:
            injector.on_ioctl(device, IOCTL_KGSL_PERFCOUNTER_GET, arg)
        assert exc.value.errno == 16  # EBUSY while the other client holds it

    def test_reclaimed_register_released_after_window(self):
        plan = FaultPlan(reclaim_rate_hz=1000.0, reclaim_window_s=0.5, max_reclaims=1)
        injector = plan.injector()
        device = FakeDevice()
        injector.on_ioctl(device, IOCTL_KGSL_PERFCOUNTER_READ, None)
        device.clock.now = 0.1
        injector.on_ioctl(device, IOCTL_KGSL_PERFCOUNTER_READ, None)
        (key,) = injector.reclaimed_now
        device.clock.now = 0.1 + 0.5 + 0.01
        arg = types.SimpleNamespace(groupid=key[0], countable=key[1])
        injector.on_ioctl(device, IOCTL_KGSL_PERFCOUNTER_GET, arg)  # must not raise
        assert injector.reclaimed_now == ()

    def test_max_reclaims_caps_the_injector(self):
        plan = FaultPlan(reclaim_rate_hz=1000.0, max_reclaims=1)
        injector = plan.injector()
        device = FakeDevice()
        for step in range(1, 6):
            device.clock.now = step * 0.1
            injector.on_ioctl(device, IOCTL_KGSL_PERFCOUNTER_READ, None)
        assert injector.stats.reclaims == 1


class TestParity:
    """Disabled fault machinery must be invisible, byte for byte."""

    def test_none_plan_matches_no_plan(self, chase_store, trace):
        clean = run_attack(chase_store, trace, fault_plan=None)
        disabled = run_attack(chase_store, trace, fault_plan=FaultPlan.from_profile("none"))
        assert clean.text == disabled.text == CREDENTIAL
        assert key_sequence(clean) == key_sequence(disabled)
        assert clean.reads_issued == disabled.reads_issued
        assert clean.reads_dropped == disabled.reads_dropped == 0
        assert clean.online.stats == disabled.online.stats

    def test_auto_with_env_unset_matches_no_plan(self, chase_store, trace, monkeypatch):
        monkeypatch.delenv(FAULT_PROFILE_ENV, raising=False)
        clean = run_attack(chase_store, trace, fault_plan=None)
        auto = run_attack(chase_store, trace, fault_plan="auto")
        assert key_sequence(clean) == key_sequence(auto)
        assert clean.reads_issued == auto.reads_issued

    def test_clean_run_reports_no_faults(self, chase_store, trace):
        clean = run_attack(chase_store, trace, fault_plan=None)
        assert clean.faults is None
        assert clean.degraded is False


class TestResilience:
    def test_transient_read_errors_are_retried_through(self, chase_store, trace):
        plan = FaultPlan(seed=2, read_error_prob=0.05)
        result = run_attack(chase_store, trace, fault_plan=plan)
        assert result.faults.read_errors > 0
        assert result.degraded
        assert result.text == CREDENTIAL  # retries keep the channel intact

    def test_reclamation_triggers_reregistration(self, chase_store, trace):
        plan = FaultPlan(seed=3, reclaim_rate_hz=2.0, reclaim_window_s=0.2)
        result = run_attack(chase_store, trace, fault_plan=plan)
        assert result.faults.reclaims > 0
        kinds = {ev.kind for ev in result.trace.events}
        assert "counter_lost" in kinds
        assert "counter_restored" in kinds
        assert "masked_delta" in kinds
        assert result.text == CREDENTIAL

    def test_degraded_events_visible_in_runtime_trace(self, chase_store, trace):
        plan = FaultPlan.from_profile("mild", seed=0)
        result = run_attack(chase_store, trace, fault_plan=plan)
        degraded_reasons = {
            ev.detail.get("detail")
            for ev in result.trace.events
            if ev.kind == "degraded"
        }
        assert degraded_reasons  # at least one distinct degradation reason
        assert result.degraded

    def test_runs_are_reproducible(self, chase_store, trace):
        plan = FaultPlan.from_profile("mild", seed=1)
        a = run_attack(chase_store, trace, fault_plan=plan)
        b = run_attack(chase_store, trace, fault_plan=plan)
        assert key_sequence(a) == key_sequence(b)
        assert a.faults == b.faults
        assert a.reads_issued == b.reads_issued


class TestProfiles:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_mild_profile_stays_accurate(self, chase_store, trace, seed):
        plan = FaultPlan.from_profile("mild", seed=seed)
        result = run_attack(chase_store, trace, fault_plan=plan)
        assert result.text == CREDENTIAL
        assert result.degraded
        assert result.faults.total > 0
        assert result.faults.reclaims <= 1  # mild caps reclamations

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_harsh_profile_completes_and_reports(self, chase_store, trace, seed):
        plan = FaultPlan.from_profile("harsh", seed=seed)
        result = run_attack(chase_store, trace, fault_plan=plan)  # must not raise
        assert result.degraded
        assert result.faults.total > 0
        assert result.trace is not None

    def test_env_profile_reaches_default_attack(self, chase_store, trace, monkeypatch):
        monkeypatch.setenv(FAULT_PROFILE_ENV, "mild")
        attack = EavesdropAttack(chase_store, recognize_device=False)
        result = attack.run_on_trace(trace, seed=101)
        assert result.faults is not None
        assert result.faults.total > 0
