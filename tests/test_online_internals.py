"""Tests for the online engine's internal machinery: ambient deflation,
noise-ring management, effective magnitudes, plausible-length windows."""

import numpy as np
import pytest

from repro.core import features
from repro.core.classifier import ClassificationModel
from repro.core.online import OnlineEngine
from repro.gpu import counters as pc
from repro.kgsl.sampler import PcDelta

D0 = pc.SELECTED_COUNTERS[0].counter_id
D1 = pc.SELECTED_COUNTERS[1].counter_id
D2 = pc.SELECTED_COUNTERS[2].counter_id


def vec(**kw):
    v = np.zeros(features.DIMENSIONS)
    for index, value in kw.items():
        v[int(index[1:])] = value
    return v


@pytest.fixture()
def model():
    labels = ["key:a", "key:b", "field:0:on", "field:1:on", "reject:dismiss:a"]
    centroids = np.vstack(
        [vec(d0=1000, d1=100), vec(d0=2000, d1=250), vec(d2=50), vec(d2=50, d1=20), vec(d0=400, d1=37)]
    )
    return ClassificationModel(
        labels=labels,
        centroids=centroids,
        scale=np.full(features.DIMENSIONS, 10.0),
        cth=2.0,
        model_key="toy",
    )


def delta(t, values, prev_dt=0.008):
    return PcDelta(t=t, prev_t=t - prev_dt, values=values)


def ambient_delta(t, magnitude):
    """Background contribution: fixed direction, varying magnitude."""
    return delta(t, {D0: int(60 * magnitude), D1: int(37 * magnitude), D2: int(11 * magnitude)})


class TestAmbientDirection:
    def test_no_direction_until_ring_full(self, model):
        engine = OnlineEngine(model, detect_switches=False)
        for i in range(engine.AMBIENT_WINDOW - 1):
            engine._note_noise(ambient_delta(i * 0.01, 10))
        assert engine._ambient_direction() is None

    def test_coherent_ring_yields_direction(self, model):
        engine = OnlineEngine(model, detect_switches=False)
        rng = np.random.default_rng(0)
        for i in range(engine.AMBIENT_WINDOW):
            engine._note_noise(ambient_delta(i * 0.01, 5 + 20 * rng.random()))
        direction = engine._ambient_direction()
        assert direction is not None
        raw_dir, scaled_dir = direction
        truth = np.zeros(features.DIMENSIONS)
        truth[0], truth[1], truth[2] = 60, 37, 11
        truth = truth / np.linalg.norm(truth)
        assert float(raw_dir @ truth) > 0.999
        assert np.isclose(np.linalg.norm(scaled_dir), 1.0)

    def test_incoherent_ring_rejected(self, model):
        engine = OnlineEngine(model, detect_switches=False)
        rng = np.random.default_rng(1)
        for i in range(engine.AMBIENT_WINDOW):
            values = {D0: int(rng.integers(1, 5000)), D1: int(rng.integers(1, 5000))}
            if i % 2:
                values = {D2: int(rng.integers(1, 5000))}
            engine._note_noise(delta(i * 0.01, values))
        assert engine._ambient_direction() is None

    def test_ring_is_bounded(self, model):
        engine = OnlineEngine(model, detect_switches=False)
        for i in range(engine.AMBIENT_WINDOW * 3):
            engine._note_noise(ambient_delta(i * 0.01, 10))
        assert len(engine._noise_ring) == engine.AMBIENT_WINDOW


class TestDeflationLifecycle:
    def _prime(self, engine):
        rng = np.random.default_rng(2)
        for i in range(engine.AMBIENT_WINDOW):
            engine._note_noise(ambient_delta(i * 0.01, 5 + 20 * rng.random()))
        engine._refresh_deflation()

    def test_refresh_adopts_deflated_model(self, model):
        engine = OnlineEngine(model, detect_switches=False)
        assert engine._active_model is model
        self._prime(engine)
        assert engine._deflation_u is not None
        assert engine._active_model is not model
        assert engine._active_model.deflate_direction is not None

    def test_refresh_is_stable_for_unchanged_direction(self, model):
        engine = OnlineEngine(model, detect_switches=False)
        self._prime(engine)
        adopted = engine._active_model
        engine._refresh_deflation()
        assert engine._active_model is adopted

    def test_deflated_model_ignores_ambient_component(self, model):
        engine = OnlineEngine(model, detect_switches=False)
        self._prime(engine)
        contaminated = vec(d0=1000 + 600, d1=100 + 370, d2=110)  # key:a + 10x ambient
        got = engine._active_model.classify_vector(contaminated)
        assert got.label == "key:a"

    def test_effective_magnitude_shrinks_ambient(self, model):
        engine = OnlineEngine(model, detect_switches=False)
        assert engine._effective_magnitude(ambient_delta(1.0, 10)) == pytest.approx(
            ambient_delta(1.0, 10).total
        )
        self._prime(engine)
        residual = engine._effective_magnitude(ambient_delta(1.0, 10))
        assert residual < 0.1 * ambient_delta(1.0, 10).total


class TestPlausibleLengths:
    def test_none_before_field_events(self, model):
        engine = OnlineEngine(model, detect_switches=False)
        assert engine._plausible_lengths() is None

    def test_window_spans_tracker_bounds(self, model):
        engine = OnlineEngine(model, detect_switches=False)
        engine.corrections.observe(0.5, 3, keys_inferred_total=0)
        engine.corrections.observe(1.0, 5, keys_inferred_total=2)
        lengths = engine._plausible_lengths()
        assert lengths is not None
        assert set(range(2, 8)) <= set(lengths)

    def test_disabled_when_corrections_off(self, model):
        engine = OnlineEngine(model, detect_switches=False, track_corrections=False)
        assert engine._plausible_lengths() is None
