"""Kill-and-restart suite: the journal, the router tier, and the drill.

The durable exactly-once contract is only real if it survives the fault
it was built for, so these tests escalate through three layers:

1. the journal file format alone (round trips, torn tails, dedup);
2. a *simulated* collector death — a fresh :class:`CollectorServer` on
   the same journal directory, the in-process equivalent of a restart;
3. the real thing — :class:`CollectorTier` processes SIGKILL'd
   mid-ingest and restarted on the same endpoint, then the full
   :class:`FleetDriver` kill drill asserting ``lost == 0`` with no
   double-aggregation in the merged report.
"""

import pytest

from repro.collector import (
    DRILL_RETRY,
    CollectorClient,
    CollectorConfig,
    CollectorHandle,
    CollectorJournal,
    CollectorTier,
    DeviceRouter,
    JournalError,
    KillDrill,
    RetryPolicy,
    SessionResultPayload,
    count_journal_records,
    dedupe_records,
    journal_path,
    read_journal,
)
from repro.collector.frames import Result
from repro.faults import FaultPlan

NO_SLEEP = lambda s: None  # noqa: E731 — instant backoff for tests
FAST_RETRY = RetryPolicy(max_attempts=8, base_delay_s=0.001, max_delay_s=0.01)
#: Patient enough to ride out a real shard-process respawn (~1s).
PATIENT_RETRY = RetryPolicy(max_attempts=20, base_delay_s=0.05, max_delay_s=0.5)


def frames_for(device_id, n, start_seq=0):
    return [
        Result(
            seq=start_seq + i,
            payload=SessionResultPayload(device_id, i, "pw", 2, exact=True),
        )
        for i in range(n)
    ]


# ---------------------------------------------------------------------------
# layer 1: the journal file


class TestJournal:
    def test_append_read_round_trip(self, tmp_path):
        path = journal_path(tmp_path, 0)
        frames = frames_for("device-0000", 5)
        with CollectorJournal(path) as journal:
            for frame in frames:
                journal.append(frame)
            assert journal.appended == 5
        recovery = read_journal(path)
        assert recovery.records == frames
        assert not recovery.torn
        assert count_journal_records(path) == 5

    def test_missing_file_is_an_empty_journal(self, tmp_path):
        recovery = read_journal(tmp_path / "never-written.wal")
        assert recovery.records == [] and not recovery.torn

    def test_torn_tail_is_truncated_and_appendable(self, tmp_path):
        path = journal_path(tmp_path, 0)
        frames = frames_for("device-0000", 3)
        with CollectorJournal(path) as journal:
            for frame in frames:
                journal.append(frame)
        intact = path.stat().st_size
        # a SIGKILL mid-write leaves a partial record at the tail
        with open(path, "ab") as fh:
            fh.write(b"\x00\x00\x01\x00partial-record-gar")
        journal = CollectorJournal(path)
        recovery = journal.open()
        assert recovery.records == frames
        assert recovery.torn
        assert recovery.valid_bytes == intact
        # the torn bytes are gone; appends after recovery stay parseable
        journal.append(frames_for("device-0000", 1, start_seq=3)[0])
        journal.close()
        reread = read_journal(path)
        assert not reread.torn
        assert [f.seq for f in reread.records] == [0, 1, 2, 3]

    def test_dedupe_records_first_seen_wins(self):
        frames = frames_for("device-0000", 2) + frames_for("device-0001", 1)
        unique, dupes = dedupe_records(frames + frames[:2])
        assert unique == frames
        assert dupes == 2

    def test_sync_mode_validated(self, tmp_path):
        with pytest.raises(ValueError, match="sync"):
            CollectorJournal(tmp_path / "x.wal", sync="eventually")
        with pytest.raises(ValueError, match="journal_sync"):
            CollectorConfig(journal_sync="eventually")

    def test_append_requires_open(self, tmp_path):
        journal = CollectorJournal(journal_path(tmp_path, 0))
        with pytest.raises(JournalError, match="not open"):
            journal.append(frames_for("d", 1)[0])

    def test_fsync_mode_round_trips(self, tmp_path):
        path = journal_path(tmp_path, 1)
        with CollectorJournal(path, sync="fsync") as journal:
            journal.append(frames_for("device-0001", 1)[0])
        assert count_journal_records(path) == 1


# ---------------------------------------------------------------------------
# layer 2: server replay (simulated kill — a fresh server, same journal)


class TestServerJournalReplay:
    def cfg(self, tmp_path):
        return CollectorConfig(retry=FAST_RETRY, journal_dir=str(tmp_path))

    def test_restarted_server_replays_and_dedupes(self, tmp_path):
        cfg = self.cfg(tmp_path)
        with CollectorHandle(cfg) as handle:
            with CollectorClient(
                handle.endpoint, "device-0000", config=cfg, sleep=NO_SLEEP
            ) as client:
                for i in range(3):
                    client.send_result(
                        SessionResultPayload("device-0000", i, "pw", 2, exact=True)
                    )
        assert count_journal_records(journal_path(tmp_path, 0)) == 3

        # "restart": a brand-new server process would see exactly this —
        # empty memory, the journal on disk
        revived = CollectorHandle(cfg)
        endpoint = revived.start()
        registry = revived.server.registry
        assert registry.counter("collector.journal.replayed").value == 3
        assert registry.counter("collector.sessions_ingested").value == 3
        assert len(revived.server.results) == 3
        # a client that never saw its acks resends seqs 0-2, then sends
        # genuinely new work; the replayed dedup set absorbs the former
        with CollectorClient(
            endpoint, "device-0000", config=cfg, sleep=NO_SLEEP
        ) as client:
            for i in range(5):
                client.send_result(
                    SessionResultPayload("device-0000", i, "pw", 2, exact=True)
                )
        revived.stop()
        assert registry.counter("collector.dupes_dropped").value == 3
        assert registry.counter("collector.sessions_ingested").value == 5
        assert len(revived.server.results) == 5
        assert count_journal_records(journal_path(tmp_path, 0)) == 5

    def test_replay_skips_on_result_callback(self, tmp_path):
        cfg = self.cfg(tmp_path)
        with CollectorHandle(cfg) as handle:
            with CollectorClient(
                handle.endpoint, "device-0000", config=cfg, sleep=NO_SLEEP
            ) as client:
                client.send_result(SessionResultPayload("device-0000", 0, "pw", 2))
        seen = []
        revived = CollectorHandle(cfg, on_result=seen.append)
        revived.start()
        revived.stop()
        # replay restored the count but did not re-fire the callback
        assert revived.server.registry.counter("collector.journal.replayed").value == 1
        assert seen == []


# ---------------------------------------------------------------------------
# layer 3: real shard processes


class TestCollectorTierProcesses:
    def test_kill_and_restart_preserves_exactly_once(self, tmp_path):
        cfg = CollectorConfig(
            shards=2, journal_dir=str(tmp_path), retry=PATIENT_RETRY
        )
        tier = CollectorTier(cfg, seed=3)
        router = tier.router
        # one device per shard, found by the same router the tier uses
        by_shard = {}
        i = 0
        while len(by_shard) < 2:
            device_id = f"device-{i:04d}"
            by_shard.setdefault(router.shard_of(device_id), device_id)
            i += 1
        victim_dev, bystander_dev = by_shard[0], by_shard[1]
        try:
            tier.start()
            with CollectorClient(
                tier.endpoint_for(victim_dev), victim_dev, config=cfg
            ) as client:
                for i in range(2):
                    client.send_result(
                        SessionResultPayload(victim_dev, i, "pw", 2, exact=True)
                    )
            with CollectorClient(
                tier.endpoint_for(bystander_dev), bystander_dev, config=cfg
            ) as client:
                client.send_result(
                    SessionResultPayload(bystander_dev, 0, "pw", 2, exact=True)
                )
            assert count_journal_records(tier.journal_file(0)) == 2

            tier.kill(0)
            assert not tier.is_alive(0)
            endpoint = tier.restart(0)
            assert endpoint == tier.endpoint_for(victim_dev)  # same address
            # a client that never saw acks for seqs 0-1 resends them,
            # then delivers new work — the replayed shard must dedup
            # the former and admit the latter
            with CollectorClient(endpoint, victim_dev, config=cfg) as client:
                for i in range(3):
                    client.send_result(
                        SessionResultPayload(victim_dev, i, "pw", 2, exact=True)
                    )
        finally:
            tier.stop()
        manifest = tier.merged_manifest(command="test")
        counters = manifest.counters
        assert counters["collector.sessions_ingested"] == 4  # 3 + 1, no doubles
        assert counters["collector.journal.replayed"] == 2
        assert counters["collector.dupes_dropped"] == 2
        assert counters["collector.devices_seen"] == 2
        payloads, journal_dupes = tier.journal_results()
        assert len(payloads) == 4
        assert journal_dupes == 0

    def test_shard_configs_do_not_collide(self, tmp_path):
        cfg = CollectorConfig(
            transport="unix", unix_path="ignored", shards=3,
            journal_dir=str(tmp_path), retry=FAST_RETRY,
        )
        tier = CollectorTier(cfg, seed=0)
        paths = {tier._shard_config(k).unix_path for k in range(3)}
        assert len(paths) == 3
        wals = {tier.journal_file(k) for k in range(3)}
        assert len(wals) == 3

    def test_tier_requires_journal_dir(self):
        with pytest.raises(ValueError, match="journal_dir"):
            CollectorTier(CollectorConfig(shards=2))


# ---------------------------------------------------------------------------
# the full drill: FleetDriver + SIGKILL + restart under faults


class TestFleetKillDrill:
    def test_drill_zero_loss_no_double_aggregation(
        self, config, chase_store, tmp_path
    ):
        from repro.android.apps import CHASE
        from repro.api import AttackConfig, run_fleet

        seed = 7
        shards = 4
        # aim the drill at a shard that actually receives traffic
        router = DeviceRouter(shards=shards, seed=seed)
        drill_shard = router.shard_of("device-0000")
        plan = FaultPlan(
            seed=4, read_error_prob=0.25, jitter_prob=0.25, jitter_s=1e-3
        )
        report = run_fleet(
            chase_store,
            config,
            CHASE,
            "drillpw1",
            devices=4,
            sessions_per_device=1,
            seed=seed,
            config=AttackConfig(recognize_device=False, fault_plan=plan),
            collector=CollectorConfig(
                shards=shards,
                journal_dir=str(tmp_path),
                retry=PATIENT_RETRY,
            ),
            drill=KillDrill(shard=drill_shard, after_results=1),
        )
        assert report.shards == shards
        assert report.lost == 0
        assert report.ingested == report.sessions_total == 4
        assert len(report.results) == 4
        assert report.replayed >= 1  # the restarted shard really replayed
        assert {p.device_id for p in report.results} == {
            f"device-{d:04d}" for d in range(4)
        }
        assert report.manifest.counters["collector.sessions_ingested"] == 4

    def test_drill_requires_multiple_shards(self, config, chase_store):
        from repro.android.apps import CHASE
        from repro.collector import FleetDriver

        with pytest.raises(ValueError, match="shards"):
            FleetDriver(
                chase_store, config, CHASE, "pw",
                collector=CollectorConfig(shards=1),
                drill=KillDrill(),
            )
        with pytest.raises(ValueError, match="out of range"):
            FleetDriver(
                chase_store, config, CHASE, "pw",
                collector=CollectorConfig(shards=2),
                drill=KillDrill(shard=5),
            )

    def test_drill_validation(self):
        with pytest.raises(ValueError, match="after_results"):
            KillDrill(after_results=0)
        with pytest.raises(ValueError, match="restart_delay_s"):
            KillDrill(restart_delay_s=-1.0)
        with pytest.raises(ValueError, match="shard"):
            KillDrill(shard=-1)
