"""Tests for the victim device event compiler."""

import numpy as np
import pytest

from repro.android.apps import CHASE, PNC
from repro.android.device import (
    CURSOR_BLINK_S,
    GroundTruthPress,
    VictimDevice,
)
from repro.android.events import (
    AppSwitchAway,
    AppSwitchBack,
    BackspacePress,
    KeyPress,
    NotificationArrival,
    ViewNotificationShade,
)
from repro.android.os_config import default_config


def device(config, app=CHASE, seed=0, **kw):
    return VictimDevice(config, app, rng=np.random.default_rng(seed), **kw)


def labels(trace, prefix=None):
    out = [f.label for f in trace.timeline.frames]
    if prefix is not None:
        out = [l for l in out if l.startswith(prefix)]
    return out


class TestKeyPressCompilation:
    def test_three_changes_per_press(self, config):
        """Paper Fig 3: popup appears, text echo, popup disappears."""
        trace = device(config, seed=1).compile([KeyPress(t=0.5, char="w")], end_time_s=1.2)
        assert labels(trace, "press:w")
        assert labels(trace, "echo:1")
        assert labels(trace, "dismiss:w")

    def test_press_order_in_time(self, config):
        trace = device(config, seed=1).compile([KeyPress(t=0.5, char="w")], end_time_s=1.2)
        frames = {f.label: f.start_s for f in trace.timeline.frames}
        assert frames["press:w"] < frames["echo:1"] < frames["dismiss:w"]

    def test_repeated_presses_same_increment(self, config):
        """Section 3.4: repetitive presses of the same key always produce
        (nearly) the same PC change; exact modulo the hardware jitter."""
        trace = device(config, seed=2).compile(
            [KeyPress(t=0.5, char="w"), KeyPress(t=1.5, char="w")], end_time_s=2.5
        )
        presses = [f for f in trace.timeline.frames if f.label == "press:w"]
        a, b = presses[0].stats.increment.total, presses[1].stats.increment.total
        assert abs(a - b) / a < 0.02

    def test_different_keys_different_increments(self, config):
        trace = device(config, seed=2).compile(
            [KeyPress(t=0.5, char="w"), KeyPress(t=1.5, char="n")], end_time_s=2.5
        )
        by_label = {f.label: f.stats.increment.total for f in trace.timeline.frames}
        assert by_label["press:w"] != by_label["press:n"]

    def test_duplication_rate_close_to_keyboard_spec(self, config):
        dev = device(config, seed=3)
        events = [KeyPress(t=0.5 + i * 0.5, char="a") for i in range(400)]
        trace = dev.compile(events, end_time_s=0.5 + 400 * 0.5 + 1)
        dups = len(labels(trace, "press_dup"))
        rate = dups / 400
        assert abs(rate - config.keyboard.duplicate_popup_prob) < 0.06

    def test_unknown_key_rejected(self, config):
        with pytest.raises(KeyError):
            device(config).compile([KeyPress(t=0.5, char="€")], end_time_s=1.0)

    def test_ground_truth_records_presses(self, config):
        trace = device(config).compile(
            [KeyPress(t=0.5, char="a"), KeyPress(t=1.0, char="b")], end_time_s=2.0
        )
        assert trace.final_text == "ab"
        assert trace.all_typed == "ab"


class TestBackspaceCompilation:
    def test_backspace_marks_deleted(self, config):
        trace = device(config).compile(
            [
                KeyPress(t=0.5, char="a"),
                KeyPress(t=1.0, char="b"),
                BackspacePress(t=1.6),
            ],
            end_time_s=2.5,
        )
        assert trace.final_text == "a"
        assert trace.all_typed == "ab"
        assert labels(trace, "backspace:1")

    def test_backspace_on_empty_field_is_noop(self, config):
        trace = device(config).compile([BackspacePress(t=0.5)], end_time_s=1.0)
        assert not labels(trace, "backspace")
        assert trace.backspaces == []

    def test_backspace_shows_no_popup(self, config):
        trace = device(config).compile(
            [KeyPress(t=0.5, char="a"), BackspacePress(t=1.2)], end_time_s=2.0
        )
        press_frames = labels(trace, "press")
        assert press_frames == ["press:a"]


class TestCursorBlink:
    def test_blinks_at_half_second_cadence(self, config):
        trace = device(config, seed=4).compile([], end_time_s=5.0)
        blinks = [f for f in trace.timeline.frames if f.label.startswith("cursor_blink")]
        assert 7 <= len(blinks) <= 10
        gaps = [b.start_s - a.start_s for a, b in zip(blinks, blinks[1:])]
        assert all(abs(g - CURSOR_BLINK_S) < 0.05 for g in gaps)

    def test_blink_length_tracks_typing(self, config):
        trace = device(config, seed=4).compile(
            [KeyPress(t=0.8, char="a"), KeyPress(t=2.2, char="b")], end_time_s=4.0
        )
        blink_labels = labels(trace, "cursor_blink")
        lengths = [int(l.split(":")[1]) for l in blink_labels]
        assert lengths == sorted(lengths)
        assert lengths[-1] == 2


class TestSwitchesAndNoise:
    def test_switch_burst_frames_rapid_and_large(self, config):
        trace = device(config, seed=5).compile(
            [AppSwitchAway(t=1.0), AppSwitchBack(t=4.0)], end_time_s=6.0
        )
        away = [f for f in trace.timeline.frames if f.label.startswith("switch_away")]
        assert len(away) >= 8
        gaps = [b.start_s - a.start_s for a, b in zip(away, away[1:])]
        assert all(g < 0.05 for g in gaps)  # paper: "<50ms"
        typing_scale = max(
            (f.stats.increment.total for f in trace.timeline.frames if f.label == "initial")
        )
        assert all(f.stats.increment.total > typing_scale * 0.3 for f in away)

    def test_away_activity_generated(self, config):
        trace = device(config, seed=5).compile(
            [AppSwitchAway(t=1.0), AppSwitchBack(t=9.0)], end_time_s=10.0
        )
        assert labels(trace, "other_app")

    def test_blinks_suspended_while_away(self, config):
        trace = device(config, seed=5).compile(
            [AppSwitchAway(t=1.0), AppSwitchBack(t=8.0)], end_time_s=10.0
        )
        blinks = [f for f in trace.timeline.frames if f.label.startswith("cursor_blink")]
        in_away = [f for f in blinks if 1.5 < f.start_s < 7.5]
        assert not in_away

    def test_notification_frames(self, config):
        trace = device(config, seed=6).compile([NotificationArrival(t=1.0)], end_time_s=2.0)
        assert labels(trace, "notification")

    def test_shade_view_produces_two_bursts(self, config):
        trace = device(config, seed=6).compile([ViewNotificationShade(t=1.0)], end_time_s=4.0)
        assert len(labels(trace, "shade_down")) == 6
        assert len(labels(trace, "shade_up")) == 6


class TestAnimation:
    def test_pnc_renders_animation_frames(self, config):
        trace = device(config, app=PNC, seed=7).compile([], end_time_s=2.0)
        anim = labels(trace, "anim_")
        assert len(anim) > 30  # 30 fps for 2 seconds

    def test_chase_has_no_animation(self, config):
        trace = device(config, seed=7).compile([], end_time_s=2.0)
        assert not labels(trace, "anim_")


class TestRenderSlowdown:
    def test_slowdown_stretches_render_times(self, config):
        from repro.android.device import WAKEUP_RENDER_S

        fast = device(config, seed=8).compile([KeyPress(t=0.5, char="a")], end_time_s=1.5)
        slow = device(config, seed=8, render_slowdown=3.0).compile(
            [KeyPress(t=0.5, char="a")], end_time_s=1.5
        )
        f = next(fr for fr in fast.timeline.frames if fr.label == "press:a")
        s = next(fr for fr in slow.timeline.frames if fr.label == "press:a")
        # both presses pay at most one GPU wake-up; the base render is 3x
        base_fast = f.stats.render_time_s
        base_slow = s.stats.render_time_s
        assert base_slow > 2.0 * base_fast
        assert base_slow <= 3.0 * base_fast + WAKEUP_RENDER_S + 1e-9

    def test_invalid_slowdown_rejected(self, config):
        with pytest.raises(ValueError):
            device(config, render_slowdown=0.5)

    def test_frames_start_shortly_after_vsync(self, config):
        """GPU work begins a bounded submit delay after a vsync boundary."""
        trace = device(config, seed=9).compile([KeyPress(t=0.5, char="a")], end_time_s=1.2)
        interval = config.display.frame_interval_s
        for frame in trace.timeline.frames:
            phase = frame.start_s % interval
            assert 0.0004 < phase < 0.0031, frame.label
