"""Tests for the background monitoring service (Fig 4 pipeline)."""

import numpy as np
import pytest

from repro.android.apps import CHASE
from repro.android.device import VictimDevice
from repro.android.events import KeyPress
from repro.core.model_store import ModelStore
from repro.core.service import MonitoringService, ServiceReport


@pytest.fixture(scope="module")
def service(chase_store):
    return MonitoringService(chase_store)


def session(config, text="secret12", start=3.0, end=9.0, seed=31, launch=1.2):
    device = VictimDevice(config, CHASE, rng=np.random.default_rng(seed))
    events = [KeyPress(t=start + 0.45 * i, char=c) for i, c in enumerate(text)]
    return device.compile(events, end_time_s=end, launch_at_s=launch)


class TestMonitoringService:
    def test_detects_launch_then_steals(self, service, config):
        trace = session(config)
        report = service.run(trace, seed=77)
        assert report.launch_detected_at is not None
        assert 1.2 < report.launch_detected_at < 3.0, "detection precedes typing"
        assert report.inferred_text == "secret12"
        assert report.model_key.endswith("/chase")

    def test_results_only_no_raw_traces(self, service, config):
        report = service.run(session(config), seed=78)
        fields = set(vars(report))
        assert "inferred_text" in fields
        assert not any("sample" in name or "delta" in name for name in fields)

    def test_idle_watch_saves_reads(self, service, config):
        report = service.run(session(config), seed=79)
        assert report.idle_reads > 0
        assert report.attack_reads > report.idle_reads
        assert report.reads_saved_vs_always_on > 0.0

    def test_no_launch_no_attack(self, service, config):
        """A session whose launch render is missing never escalates."""
        from repro.gpu.timeline import RenderTimeline
        from repro.android.device import SessionTrace

        original = session(config)
        quiet = RenderTimeline()
        for frame in original.timeline.frames:
            if frame.label != "initial":
                quiet.add(frame)
        trace = SessionTrace(
            timeline=quiet,
            config=original.config,
            app=original.app,
            end_time_s=original.end_time_s,
        )
        report = service.run(trace, seed=80)
        assert report.launch_detected_at is None
        assert report.inferred_text == ""
        assert report.attack_reads == 0

    def test_key_times_reported(self, service, config):
        report = service.run(session(config), seed=81)
        assert len(report.key_times) == len(report.inferred_text)
        assert report.key_times == sorted(report.key_times)

    def test_empty_store_rejected(self):
        with pytest.raises(ValueError):
            MonitoringService(ModelStore())

    def test_attack_window_truncates(self, chase_store, config):
        short = MonitoringService(chase_store, attack_window_s=2.0)
        trace = session(config, text="abcdefgh", start=2.0, end=8.0, launch=0.8)
        report = short.run(trace, seed=82)
        # only the first ~2 seconds of typing fit in the window
        assert report.launch_detected_at is not None
        assert len(report.inferred_text) < 8
