"""Property-based tests on the sampler and counter algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import counters as pc
from repro.gpu.pipeline import FrameStats
from repro.gpu.timeline import RenderTimeline
from repro.kgsl.device_file import DeviceClock, open_kgsl
from repro.kgsl.sampler import PerfCounterSampler, SystemLoad, deltas

CID = pc.RAS_8X4_TILES.counter_id


def build_timeline(frames):
    timeline = RenderTimeline()
    for start, amount in frames:
        inc = pc.CounterIncrement()
        inc.add(pc.RAS_8X4_TILES, amount)
        timeline.add_render(
            start,
            FrameStats(increment=inc, pixels_touched=amount, render_time_s=0.002),
        )
    return timeline


class TestSamplerProperties:
    @given(
        st.lists(
            st.tuples(st.floats(0.05, 2.0), st.integers(1, 10**5)),
            min_size=0,
            max_size=12,
        ),
        st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_sum_of_deltas_equals_total_rendered(self, frames, seed):
        timeline = build_timeline(frames)
        dev = open_kgsl(timeline, clock=DeviceClock())
        sampler = PerfCounterSampler(dev, rng=np.random.default_rng(seed))
        samples = sampler.sample_range(0.0, 2.5)
        total = sum(d.values.get(CID, 0) for d in deltas(samples))
        rendered = sum(amount for _, amount in frames)
        # the last read happens after every render completes
        first_value = samples[0].values.get(CID, 0)
        assert first_value + total == rendered

    @given(st.integers(0, 500), st.floats(0.0, 1.0))
    @settings(max_examples=30, deadline=None)
    def test_read_times_monotone_under_any_load(self, seed, cpu):
        timeline = build_timeline([(0.5, 100)])
        dev = open_kgsl(timeline, clock=DeviceClock())
        sampler = PerfCounterSampler(dev, rng=np.random.default_rng(seed))
        samples = sampler.sample_range(0.0, 1.5, load=SystemLoad(cpu_utilization=cpu))
        times = [s.t for s in samples]
        assert all(b > a for a, b in zip(times, times[1:]))

    @given(st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_values_never_decrease(self, seed):
        timeline = build_timeline([(0.2, 10), (0.6, 20), (1.0, 30)])
        dev = open_kgsl(timeline, clock=DeviceClock())
        sampler = PerfCounterSampler(dev, rng=np.random.default_rng(seed))
        samples = sampler.sample_range(0.0, 1.5)
        values = [s.values.get(CID, 0) for s in samples]
        assert values == sorted(values)

    @given(st.floats(0.0, 1.0), st.floats(0.0, 1.0))
    @settings(max_examples=30, deadline=None)
    def test_drop_rate_monotone_in_cpu_load(self, cpu_low, cpu_high):
        if cpu_low > cpu_high:
            cpu_low, cpu_high = cpu_high, cpu_low
        timeline = build_timeline([])

        def drops(cpu):
            dev = open_kgsl(timeline, clock=DeviceClock())
            sampler = PerfCounterSampler(dev, rng=np.random.default_rng(7))
            sampler.sample_range(0.0, 4.0, load=SystemLoad(cpu_utilization=cpu))
            return sampler.reads_dropped

        # same RNG seed: higher load can only convert more reads to drops
        assert drops(cpu_high) >= drops(cpu_low) - 2


class TestIncrementAlgebra:
    @given(st.integers(0, 10**9), st.integers(0, 10**9))
    def test_merge_adds(self, a, b):
        inc_a = pc.CounterIncrement()
        inc_a.add(pc.RAS_8X4_TILES, a)
        inc_b = pc.CounterIncrement()
        inc_b.add(pc.RAS_8X4_TILES, b)
        assert inc_a.merge(inc_b).get(pc.RAS_8X4_TILES) == a + b

    @given(st.integers(0, 10**9), st.floats(0.0, 2.0))
    def test_scaled_rounds(self, a, factor):
        inc = pc.CounterIncrement()
        inc.add(pc.RAS_8X4_TILES, a)
        scaled = inc.scaled(factor)
        assert scaled.get(pc.RAS_8X4_TILES) == int(round(a * factor))

    @given(st.integers(1, 10**9))
    def test_bank_wraps(self, a):
        bank = pc.CounterBank()
        bank.load({CID: pc.CounterBank.WRAP - 1})
        inc = pc.CounterIncrement()
        inc.add(pc.RAS_8X4_TILES, a)
        bank.apply(inc)
        assert bank.read_id(CID) == (pc.CounterBank.WRAP - 1 + a) % pc.CounterBank.WRAP
