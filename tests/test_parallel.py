"""Tests for the multi-process session sharding layer (:mod:`repro.parallel`).

The headline contract is parity: ``run_sessions(..., workers=N)`` must
be **byte-identical** to the serial run — same inferred keys, same text,
same merged trace event order, same manifest counters.  The rest covers
the shard plan, the merge edge cases ISSUE.md names (empty shard,
single-session shard, a worker dying mid-shard, metric-name collisions
in the manifest merge), and crash containment (degraded placeholders,
never lost sessions).
"""

from __future__ import annotations

import pytest

from repro.android.apps import CHASE
from repro.api import (
    AttackConfig,
    MetricsRegistry,
    monitor,
    run_sessions,
    simulate,
    train,
)
from repro.obs import RunManifest
from repro.parallel import (
    ShardPlan,
    ShardedRuntime,
    merge_attack_outputs,
    synthesize_crashed_shard,
)
from repro.runtime.trace import RuntimeTrace

CREDENTIALS = ["pw0aa", "pw1bb", "pw2cc", "pw3dd", "pw4ee", "pw5ff"]


@pytest.fixture(scope="module")
def cfg():
    return AttackConfig(recognize_device=False)


@pytest.fixture(scope="module")
def store(config, cfg):
    return train([(config, CHASE)], config=cfg)


@pytest.fixture(scope="module")
def traces(config, cfg):
    return [
        simulate(config, CHASE, cred, seed=30 + i, config=cfg)
        for i, cred in enumerate(CREDENTIALS)
    ]


def trace_tuples(runtime_trace):
    return [
        (e.t, e.session, e.stage, e.kind, dict(e.detail))
        for e in runtime_trace.events
    ]


def run_with(store, traces, cfg, workers, **kwargs):
    metrics = MetricsRegistry()
    rt = RuntimeTrace()
    if workers == 1:
        batch = run_sessions(
            store, traces, seed=99, config=cfg, metrics=metrics, runtime_trace=rt
        )
    else:
        sharded = ShardedRuntime(
            store, config=cfg, workers=workers, metrics=metrics, **kwargs
        )
        batch = sharded.run_sessions(traces, seed=99, runtime_trace=rt)
    return batch, rt, batch.manifest


# ----------------------------------------------------------------------
# ShardPlan


def test_shard_plan_partitions_every_index():
    plan = ShardPlan(10, 3, seed=5)
    shards = plan.shards()
    assert len(shards) == 3
    assert sorted(i for shard in shards for i in shard) == list(range(10))
    for shard_id, shard in enumerate(shards):
        for index in shard:
            assert plan.shard_of(index) == shard_id


def test_shard_plan_is_deterministic_and_seed_keyed():
    assert ShardPlan(20, 4, seed=7).shards() == ShardPlan(20, 4, seed=7).shards()
    assert ShardPlan(20, 4, seed=7).shards() != ShardPlan(20, 4, seed=8).shards()


def test_shard_plan_is_balanced():
    sizes = sorted(len(s) for s in ShardPlan(11, 4, seed=0).shards())
    assert max(sizes) - min(sizes) <= 1
    assert ShardPlan(11, 4, seed=0).max_shard_size == max(sizes)


def test_shard_plan_more_workers_than_sessions_leaves_empty_shards():
    shards = ShardPlan(2, 5, seed=0).shards()
    assert len(shards) == 5
    assert sorted(i for shard in shards for i in shard) == [0, 1]
    assert sum(1 for shard in shards if not shard) == 3


def test_shard_plan_validates():
    with pytest.raises(ValueError):
        ShardPlan(3, 0)
    with pytest.raises(ValueError):
        ShardPlan(-1, 2)
    with pytest.raises(IndexError):
        ShardPlan(3, 2).shard_of(3)


# ----------------------------------------------------------------------
# Parity: sharded output is byte-identical to serial


@pytest.mark.parametrize("mp_context", ["inline", None])
def test_workers4_matches_serial_byte_for_byte(store, traces, cfg, mp_context):
    serial_batch, serial_rt, serial_manifest = run_with(store, traces, cfg, 1)
    shard_batch, shard_rt, shard_manifest = run_with(
        store, traces, cfg, 4, mp_context=mp_context
    )
    assert [r.text for r in shard_batch] == [r.text for r in serial_batch]
    assert [
        [(k.char, k.t, k.low_confidence) for k in r.keys] for r in shard_batch
    ] == [[(k.char, k.t, k.low_confidence) for k in r.keys] for r in serial_batch]
    assert trace_tuples(shard_rt) == trace_tuples(serial_rt)
    assert shard_manifest.counters == serial_manifest.counters
    assert set(shard_manifest.histograms) == set(serial_manifest.histograms)


def test_single_session_shards(store, traces, cfg):
    """workers == sessions: every shard holds exactly one session."""
    serial_batch, serial_rt, _ = run_with(store, traces[:3], cfg, 1)
    shard_batch, shard_rt, _ = run_with(store, traces[:3], cfg, 3, mp_context="inline")
    assert [r.text for r in shard_batch] == [r.text for r in serial_batch]
    assert trace_tuples(shard_rt) == trace_tuples(serial_rt)


def test_more_workers_than_sessions(store, traces, cfg):
    """Empty shards are skipped, output still covers every session."""
    serial_batch, serial_rt, _ = run_with(store, traces[:2], cfg, 1)
    shard_batch, shard_rt, _ = run_with(store, traces[:2], cfg, 5, mp_context="inline")
    assert [r.text for r in shard_batch] == [r.text for r in serial_batch]
    assert trace_tuples(shard_rt) == trace_tuples(serial_rt)


def test_store_can_ship_as_a_path(store, traces, cfg, tmp_path):
    path = tmp_path / "store.json"
    store.save(path)
    from_dict, _, _ = run_with(store, traces[:3], cfg, 2, mp_context="inline")
    sharded = ShardedRuntime(path, config=cfg, workers=2, mp_context="inline")
    from_path = sharded.run_sessions(traces[:3], seed=99)
    assert [r.text for r in from_path] == [r.text for r in from_dict]


def test_monitor_workers_matches_serial(store, config, cfg):
    trace = simulate(config, CHASE, "secret99", seed=11)
    serial_rt, shard_rt = RuntimeTrace(), RuntimeTrace()
    m1, m2 = MetricsRegistry(), MetricsRegistry()
    r1 = monitor(store, trace, seed=1234, config=cfg, metrics=m1, runtime_trace=serial_rt)
    r2 = monitor(
        store, trace, seed=1234, config=cfg, metrics=m2, runtime_trace=shard_rt,
        workers=2,
    )
    assert r2.text == r1.text
    assert r2.launch_detected_at == r1.launch_detected_at
    assert trace_tuples(shard_rt) == trace_tuples(serial_rt)
    assert r2.manifest.counters == r1.manifest.counters


def test_workers1_facade_stays_serial(store, traces, cfg):
    """workers=1 through the facade must not touch the pool machinery."""
    batch = run_sessions(store, traces[:2], seed=99, config=cfg, workers=1)
    assert [r.degraded for r in batch] == [False, False]
    with pytest.raises(ValueError):
        run_sessions(store, traces[:2], seed=99, config=cfg, workers=0)


# ----------------------------------------------------------------------
# Crash containment


@pytest.mark.parametrize("fail_mode", ["raise", "mid"])
def test_worker_failure_degrades_only_its_shard(store, traces, cfg, fail_mode):
    sharded = ShardedRuntime(
        store, config=cfg, workers=2, mp_context="inline",
        fail_shards=[1], fail_mode=fail_mode,
    )
    batch = sharded.run_sessions(traces, seed=99)
    plan = ShardPlan(len(traces), 2, seed=99)
    lost = set(plan.shards()[1])
    assert len(batch) == len(traces)
    for i, result in enumerate(batch):
        if i in lost:
            assert result.degraded
            assert result.text == ""
        else:
            assert not result.degraded
            assert result.text == CREDENTIALS[i]
    # the lost sessions surface in the trace as degraded, not missing
    trace = batch[0].trace
    degraded = [e.session for e in trace.events if e.kind == "degraded"]
    assert sorted(degraded) == sorted(f"attack-{i}" for i in lost)
    starts = [e.session for e in trace.events if e.kind == "session_start"]
    assert sorted(starts) == sorted(f"attack-{i}" for i in range(len(traces)))


def test_worker_crash_counted_in_metrics(store, traces, cfg):
    metrics = MetricsRegistry()
    sharded = ShardedRuntime(
        store, config=cfg, workers=3, metrics=metrics, mp_context="inline",
        fail_shards=[0, 2],
    )
    sharded.run_sessions(traces, seed=99)
    assert metrics.counter("parallel.worker_crashes").value == 2


def test_hard_exit_breaks_pool_but_not_batch(store, traces, cfg):
    """os._exit in a worker breaks the whole pool; every session still
    comes back, the lost shard's as degraded placeholders."""
    sharded = ShardedRuntime(
        store, config=cfg, workers=2, fail_shards=[0], fail_mode="exit",
    )
    batch = sharded.run_sessions(traces[:4], seed=99)
    assert len(batch) == 4
    assert any(r.degraded for r in batch)


def test_process_raise_degrades_shard(store, traces, cfg):
    """Same containment through a real process pool."""
    sharded = ShardedRuntime(
        store, config=cfg, workers=2, fail_shards=[1], fail_mode="raise",
    )
    batch = sharded.run_sessions(traces[:4], seed=99)
    lost = set(ShardPlan(4, 2, seed=99).shards()[1])
    assert [r.degraded for r in batch] == [i in lost for i in range(4)]


def test_monitor_crash_degrades_report(store, config, cfg):
    trace = simulate(config, CHASE, "secret99", seed=11)
    sharded = ShardedRuntime(
        store, config=cfg, workers=1, mp_context="inline",
        fail_shards=[0],
    )
    (report,) = sharded.run_services([trace], seed=1234)
    assert report.degraded
    assert report.inferred_text == ""
    assert report.launch_detected_at is None


def test_invalid_construction():
    with pytest.raises(ValueError):
        ShardedRuntime("store.json", workers=0)
    with pytest.raises(ValueError):
        ShardedRuntime("store.json", fail_mode="explode")


# ----------------------------------------------------------------------
# Merge edge cases


def test_merge_rejects_duplicate_session_index():
    a = synthesize_crashed_shard(0, [0, 1], seed=0)
    b = synthesize_crashed_shard(1, [1, 2], seed=0)
    with pytest.raises(ValueError, match="two shards"):
        merge_attack_outputs([a, b], RuntimeTrace())


def test_merge_of_synthesized_shards_orders_by_index():
    a = synthesize_crashed_shard(0, [2, 0], seed=0)
    b = synthesize_crashed_shard(1, [1], seed=0)
    rt = RuntimeTrace()
    results = merge_attack_outputs([b, a], rt)
    assert sorted(results) == [0, 1, 2]
    starts = [e.session for e in rt.events if e.kind == "session_start"]
    assert starts == ["attack-0", "attack-1", "attack-2"]


def test_merge_empty_outputs_is_empty():
    rt = RuntimeTrace()
    assert merge_attack_outputs([], rt) == {}
    assert list(rt.events) == []


# ----------------------------------------------------------------------
# Manifest / snapshot merging


def test_merge_snapshot_sums_colliding_metric_names():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("shared.count").inc(3)
    b.counter("shared.count").inc(4)
    a.counter("only.a").inc(1)
    b.gauge("shared.gauge").set(2.5)
    a.histogram("shared.hist", buckets=(1.0, 2.0)).observe(0.5)
    b.histogram("shared.hist", buckets=(1.0, 2.0)).observe(1.5)
    merged = MetricsRegistry()
    merged.merge_snapshot(a.snapshot())
    merged.merge_snapshot(b.snapshot())
    assert merged.counter("shared.count").value == 7
    assert merged.counter("only.a").value == 1
    assert merged.gauge("shared.gauge").value == 2.5
    hist = merged.snapshot()["histograms"]["shared.hist"]
    assert hist["count"] == 2
    assert hist["counts"] == [1, 1, 0]


def test_merge_snapshot_rejects_bucket_layout_mismatch():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
    b.histogram("h", buckets=(1.0, 4.0)).observe(0.5)
    merged = MetricsRegistry()
    merged.merge_snapshot(a.snapshot())
    with pytest.raises(ValueError, match="bucket"):
        merged.merge_snapshot(b.snapshot())


def test_run_manifest_merge_classmethod():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("c").inc(1)
    b.counter("c").inc(2)
    merged = RunManifest.merge(
        [a.manifest(shard=0), b.manifest(shard=1)], sessions=2
    )
    assert merged.counters["c"] == 3
    assert merged.meta["sessions"] == 2
