"""Tests for target-app launch detection (Section 3.2)."""

import numpy as np
import pytest

from repro.android.apps import CHASE
from repro.android.device import VictimDevice
from repro.android.events import KeyPress
from repro.core.launch import IDLE_POLL_INTERVAL_S, LaunchDetector
from repro.kgsl.device_file import DeviceClock, open_kgsl
from repro.kgsl.sampler import PerfCounterSampler, nonzero_deltas


@pytest.fixture(scope="module")
def launch_stream(config):
    """Slow-poll deltas over a session that includes the app launch
    (initial full render at t=0) and subsequent typing."""
    device = VictimDevice(config, CHASE, rng=np.random.default_rng(21))
    events = [KeyPress(t=3.0 + 0.5 * i, char=c) for i, c in enumerate("abc")]
    trace = device.compile(events, end_time_s=6.0)
    kgsl = open_kgsl(trace.timeline, clock=DeviceClock())
    sampler = PerfCounterSampler(
        kgsl, interval_s=IDLE_POLL_INTERVAL_S, rng=np.random.default_rng(22)
    )
    samples = sampler.sample_range(0.0, 6.0)
    return nonzero_deltas(samples)


class TestLaunchDetector:
    def test_detects_the_launch(self, chase_model, launch_stream):
        detector = LaunchDetector(chase_model)
        events = detector.scan(launch_stream)
        assert events, "the app launch must be detected"
        assert events[0].t < 3.0, "detection must precede the credential typing"

    def test_idle_stream_triggers_nothing(self, chase_model, config):
        device = VictimDevice(config, CHASE, rng=np.random.default_rng(23))
        trace = device.compile([], end_time_s=5.0)
        # drop the initial render to simulate 'some other app idling'
        frames = [f for f in trace.timeline.frames if f.label != "initial"]
        from repro.gpu.timeline import RenderTimeline

        idle = RenderTimeline()
        for frame in frames:
            idle.add(frame)
        kgsl = open_kgsl(idle, clock=DeviceClock())
        sampler = PerfCounterSampler(
            kgsl, interval_s=IDLE_POLL_INTERVAL_S, rng=np.random.default_rng(24)
        )
        deltas = nonzero_deltas(sampler.sample_range(0.0, 5.0))
        detector = LaunchDetector(chase_model)
        assert detector.scan(deltas) == []

    def test_burst_without_confirmation_expires(self, chase_model, launch_stream):
        detector = LaunchDetector(chase_model, confirm_window_s=0.0)
        assert detector.scan(launch_stream) == []

    def test_custom_threshold(self, chase_model, launch_stream):
        detector = LaunchDetector(chase_model, burst_threshold=1e12)
        assert detector.scan(launch_stream) == []

    def test_empty_deltas_ignored(self, chase_model):
        from repro.kgsl.sampler import PcDelta

        detector = LaunchDetector(chase_model)
        assert detector.observe(PcDelta(t=1.0, prev_t=0.9, values={})) is None
