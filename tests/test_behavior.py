"""Tests for behavior scripts and event validation."""

import numpy as np
import pytest

from repro.android.events import (
    AppSwitchAway,
    AppSwitchBack,
    BackspacePress,
    KeyPress,
    NotificationArrival,
    sort_events,
)
from repro.workloads.behavior import (
    bot_key_sweep,
    noise_only_events,
    practical_session,
    typing_events,
    typing_with_corrections,
)
from repro.workloads.typing_model import TypingModel


class TestEventValidation:
    def test_keypress_validation(self):
        with pytest.raises(ValueError):
            KeyPress(t=0.0, char="ab")
        with pytest.raises(ValueError):
            KeyPress(t=0.0, char="a", duration=0.0)

    def test_sort_orders_by_time(self):
        events = [KeyPress(t=2.0, char="b"), KeyPress(t=1.0, char="a")]
        ordered = sort_events(events)
        assert [e.t for e in ordered] == [1.0, 2.0]

    def test_double_away_rejected(self):
        with pytest.raises(ValueError):
            sort_events([AppSwitchAway(t=1.0), AppSwitchAway(t=2.0)])

    def test_back_without_away_rejected(self):
        with pytest.raises(ValueError):
            sort_events([AppSwitchBack(t=1.0)])

    def test_typing_while_away_rejected(self):
        with pytest.raises(ValueError):
            sort_events(
                [AppSwitchAway(t=1.0), KeyPress(t=2.0, char="a"), AppSwitchBack(t=3.0)]
            )

    def test_valid_switch_pair_accepted(self):
        ordered = sort_events(
            [
                KeyPress(t=0.5, char="a"),
                AppSwitchAway(t=1.0),
                AppSwitchBack(t=3.0),
                KeyPress(t=4.0, char="b"),
            ]
        )
        assert len(ordered) == 4


class TestTypingScripts:
    def test_typing_events_one_per_char(self, rng):
        events = typing_events("secret", TypingModel(rng))
        assert len(events) == 6
        assert "".join(e.char for e in events) == "secret"

    def test_typing_events_monotone(self, rng):
        events = typing_events("longpassword", TypingModel(rng))
        times = [e.t for e in events]
        assert times == sorted(times)

    def test_speed_tier_honored(self, rng):
        events = typing_events("abcdefghijkl", TypingModel(rng), speed_tier="slow")
        intervals = [b.t - a.t for a, b in zip(events, events[1:])]
        assert np.median(intervals) > 0.4

    def test_corrections_script_restores_text(self, rng):
        typing = TypingModel(rng)
        events, final = typing_with_corrections("hello", typing, rng, typo_prob=1.0)
        assert final == "hello"
        presses = [e for e in events if isinstance(e, KeyPress)]
        backspaces = [e for e in events if isinstance(e, BackspacePress)]
        assert len(backspaces) == 5  # every char got one typo
        assert len(presses) == 10

    def test_corrections_script_zero_typos(self, rng):
        typing = TypingModel(rng)
        events, final = typing_with_corrections("hello", typing, rng, typo_prob=0.0)
        assert all(isinstance(e, KeyPress) for e in events)
        assert len(events) == 5


class TestBotSweep:
    def test_sweep_covers_all_chars_in_order(self):
        events = bot_key_sweep(["a", "b"], repeats=2, interval_s=0.5)
        chars = [e.char for e in events]
        assert chars == ["a", "b", "a", "b"]

    def test_sweep_cadence(self):
        events = bot_key_sweep(["a", "b", "c"], repeats=1, interval_s=0.5, start_s=1.0)
        assert [e.t for e in events] == [1.0, 1.5, 2.0]


class TestPracticalSession:
    def test_session_is_valid_event_script(self, rng):
        session = practical_session(rng, TypingModel(rng), duration_s=60.0)
        ordered = sort_events(session.events)  # must not raise
        assert ordered

    def test_credential_matches_typed_keys(self, rng):
        session = practical_session(rng, TypingModel(rng), duration_s=120.0, typo_prob=0.0)
        presses = [e for e in session.events if isinstance(e, KeyPress)]
        assert "".join(e.char for e in presses) == session.credential

    def test_session_has_behavioral_richness(self, rng):
        sessions = [
            practical_session(np.random.default_rng(seed), TypingModel(np.random.default_rng(seed)))
            for seed in range(8)
        ]
        assert any(s.switches > 0 for s in sessions)
        assert any(s.corrections > 0 for s in sessions)
        assert any(s.shade_views > 0 for s in sessions)

    def test_notifications_arrive(self, rng):
        session = practical_session(rng, TypingModel(rng), duration_s=180.0)
        notifs = [e for e in session.events if isinstance(e, NotificationArrival)]
        assert notifs

    def test_volunteer_attribution(self, rng):
        session = practical_session(rng, TypingModel(rng), volunteer_index=2)
        assert session.volunteer == "volunteer3"


class TestNoiseOnly:
    def test_noise_only_has_no_typing(self, rng):
        events = noise_only_events(rng, duration_s=60.0)
        assert all(isinstance(e, NotificationArrival) for e in events)
        assert events
