"""Tests for the layered scene model."""

import pytest

from repro.android.geometry import Rect
from repro.android.layers import (
    QUAD_COMPONENTS_PER_VERTEX,
    TEXTURED_COMPONENTS_PER_VERTEX,
    DrawOp,
    Layer,
    Scene,
    make_scene,
    solid_quad,
)


class TestDrawOp:
    def test_fragment_pixels_scaled_by_coverage(self):
        op = DrawOp(rect=Rect(0, 0, 10, 10), coverage=0.5)
        assert op.fragment_pixels == 50

    def test_invalid_coverage_rejected(self):
        with pytest.raises(ValueError):
            DrawOp(rect=Rect(0, 0, 1, 1), coverage=1.5)
        with pytest.raises(ValueError):
            DrawOp(rect=Rect(0, 0, 1, 1), coverage=-0.1)

    def test_negative_primitives_rejected(self):
        with pytest.raises(ValueError):
            DrawOp(rect=Rect(0, 0, 1, 1), primitives=-1)

    def test_vertices_per_quad(self):
        assert DrawOp(rect=Rect(0, 0, 1, 1), primitives=2).vertices == 4
        assert DrawOp(rect=Rect(0, 0, 1, 1), primitives=6).vertices == 12

    def test_vertex_components_plain_vs_textured(self):
        plain = DrawOp(rect=Rect(0, 0, 1, 1), primitives=2)
        textured = DrawOp(rect=Rect(0, 0, 1, 1), primitives=2, textured=True)
        assert plain.vertex_components == 4 * QUAD_COMPONENTS_PER_VERTEX
        assert textured.vertex_components == 4 * TEXTURED_COMPONENTS_PER_VERTEX

    def test_solid_quad_is_opaque_full_coverage(self):
        op = solid_quad(Rect(0, 0, 4, 4))
        assert op.opaque and op.coverage == 1.0 and op.primitives == 2


class TestLayer:
    def test_opaque_rects_only_from_opaque_ops(self):
        layer = Layer("l")
        layer.add(solid_quad(Rect(0, 0, 10, 10)))
        layer.add(DrawOp(rect=Rect(0, 0, 5, 5), coverage=0.5, opaque=False))
        assert layer.opaque_rects() == [Rect(0, 0, 10, 10)]

    def test_primitive_and_pixel_totals(self):
        layer = Layer("l")
        layer.add(DrawOp(rect=Rect(0, 0, 10, 10), primitives=4))
        layer.add(DrawOp(rect=Rect(0, 0, 10, 10), primitives=2, coverage=0.5))
        assert layer.primitives == 6
        assert layer.fragment_pixels == 150

    def test_bounds(self):
        layer = Layer("l")
        layer.add(solid_quad(Rect(0, 0, 5, 5)))
        layer.add(solid_quad(Rect(10, 10, 20, 20)))
        assert layer.bounds() == Rect(0, 0, 20, 20)

    def test_add_chains(self):
        layer = Layer("l").add(solid_quad(Rect(0, 0, 1, 1))).add(solid_quad(Rect(1, 1, 2, 2)))
        assert len(layer.ops) == 2


class TestScene:
    def _two_layer_scene(self):
        bottom = Layer("bottom")
        bottom.add(solid_quad(Rect(0, 0, 100, 100), label="bg"))
        top = Layer("top")
        top.add(solid_quad(Rect(25, 25, 75, 75), label="popup"))
        return make_scene([bottom, top])

    def test_len_and_iter(self):
        scene = self._two_layer_scene()
        assert len(scene) == 2
        assert [layer.name for layer in scene] == ["bottom", "top"]

    def test_totals(self):
        scene = self._two_layer_scene()
        assert scene.total_primitives == 4
        assert scene.total_fragment_pixels == 100 * 100 + 50 * 50

    def test_occluders_are_only_from_layers_above(self):
        scene = self._two_layer_scene()
        entries = list(scene.ops_with_occluders())
        bottom_entry = entries[0]
        top_entry = entries[1]
        assert bottom_entry[1].label == "bg"
        assert bottom_entry[2] == [Rect(25, 25, 75, 75)]
        assert top_entry[1].label == "popup"
        assert top_entry[2] == []

    def test_same_layer_ops_do_not_occlude_each_other(self):
        layer = Layer("only")
        layer.add(solid_quad(Rect(0, 0, 10, 10), label="a"))
        layer.add(solid_quad(Rect(0, 0, 10, 10), label="b"))
        entries = list(Scene([layer]).ops_with_occluders())
        for _, _, occluders in entries:
            assert occluders == []

    def test_three_layer_occlusion_accumulates(self):
        l0 = Layer("0").add(solid_quad(Rect(0, 0, 10, 10)))
        l1 = Layer("1").add(solid_quad(Rect(0, 0, 5, 5)))
        l2 = Layer("2").add(solid_quad(Rect(5, 5, 10, 10)))
        entries = list(Scene([l0, l1, l2]).ops_with_occluders())
        assert sorted(map(str, entries[0][2])) == sorted(
            map(str, [Rect(0, 0, 5, 5), Rect(5, 5, 10, 10)])
        )
        assert entries[1][2] == [Rect(5, 5, 10, 10)]

    def test_push_returns_scene(self):
        scene = Scene().push(Layer("a")).push(Layer("b"))
        assert len(scene) == 2
