"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestDevices:
    def test_lists_everything(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "oneplus8pro" in out
        assert "gboard" in out
        assert "chase" in out


class TestSteal:
    def test_end_to_end_exact(self, capsys):
        code = main(["steal", "hunterpw12", "--seed", "7"])
        out = capsys.readouterr().out
        assert "inferred" in out
        assert code == 0

    def test_unknown_phone_is_usage_error(self, capsys):
        # registry validation happens at argparse time: exit 2, no traceback
        with pytest.raises(SystemExit) as excinfo:
            main(["steal", "x" * 8, "--phone", "iphone15"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "unknown phone 'iphone15'" in err


class TestTrainAttack:
    def test_train_then_attack_roundtrip(self, tmp_path, capsys):
        store_path = tmp_path / "store.json"
        assert main(["train", str(store_path)]) == 0
        assert store_path.exists()
        code = main(["attack", str(store_path), "secretpw1", "--seed", "5"])
        out = capsys.readouterr().out
        assert "recognized" in out
        assert code in (0, 1)  # exact or guess-recovered vs not

    def test_attack_with_guessing_recovers(self, tmp_path, capsys):
        store_path = tmp_path / "store.json"
        main(["train", str(store_path)])
        # run a batch; at least one should succeed (exit 0)
        codes = [
            main(["attack", str(store_path), "pw" + "abcdef"[i] * 6, "--seed", str(40 + i)])
            for i in range(3)
        ]
        assert 0 in codes


class TestSurvey:
    def test_survey_prints_chart(self, capsys):
        assert main(["survey", "--keyboard", "gboard", "--repeats", "3"]) == 0
        out = capsys.readouterr().out
        assert "weakest keys" in out
        assert "overall per-key accuracy" in out

    def test_unknown_keyboard(self, capsys):
        # same argparse-time registry validation as steal/attack/fleet
        with pytest.raises(SystemExit) as excinfo:
            main(["survey", "--keyboard", "nokia3310"])
        assert excinfo.value.code == 2
        assert "unknown keyboard 'nokia3310'" in capsys.readouterr().err


class TestReport:
    def test_report_writes_figures(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "out")]) == 0
        out_dir = tmp_path / "out"
        assert (out_dir / "summary.md").exists()
        assert (out_dir / "fig17_accuracy.txt").exists()
        assert (out_dir / "table2_baseline.txt").exists()
        content = (out_dir / "fig17_accuracy.txt").read_text()
        assert "Fig 17" in content

    def test_report_scale_validation(self, tmp_path):
        import pytest as _pytest

        from repro.analysis.report import generate_report

        with _pytest.raises(ValueError):
            generate_report(tmp_path / "x", scale=0)
