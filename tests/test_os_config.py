"""Tests for device models and configurations."""

import pytest

from repro.android.display import Resolution
from repro.android.keyboard import SOGOU
from repro.android.os_config import (
    ANDROID_VERSIONS,
    PHONE_MODELS,
    DeviceConfig,
    default_config,
    phone,
)


class TestPhones:
    def test_six_phones_from_section75(self):
        assert sorted(PHONE_MODELS) == [
            "galaxy_s21",
            "lg_v30",
            "oneplus7pro",
            "oneplus8pro",
            "oneplus9",
            "pixel2",
        ]

    def test_gpu_assignments_match_paper(self):
        assert phone("lg_v30").gpu.model == 540
        assert phone("pixel2").gpu.model == 540
        assert phone("oneplus7pro").gpu.model == 640
        assert phone("oneplus8pro").gpu.model == 650
        assert phone("oneplus9").gpu.model == 660
        assert phone("galaxy_s21").gpu.model == 660

    def test_android_versions_match_paper(self):
        assert phone("lg_v30").android.version == "9"
        assert phone("pixel2").android.version == "10"
        assert phone("oneplus8pro").android.version == "11"

    def test_unknown_phone_rejected(self):
        with pytest.raises(KeyError):
            phone("iphone")

    def test_battery_energy(self):
        assert phone("oneplus8pro").battery_mwh == pytest.approx(4510 * 3.85)


class TestAndroidVersions:
    def test_versions_covered_by_fig24d(self):
        for version in ("8.1", "9", "10", "11"):
            assert version in ANDROID_VERSIONS

    def test_ui_metrics_differ_across_versions(self):
        scales = {v.popup_style_scale for v in ANDROID_VERSIONS.values()}
        assert len(scales) == len(ANDROID_VERSIONS)


class TestDeviceConfig:
    def test_defaults_resolve_from_phone(self):
        config = DeviceConfig(phone=phone("oneplus8pro"))
        assert config.resolution is Resolution.FHD_PLUS
        assert config.refresh_rate_hz == 60
        assert config.android.version == "11"

    def test_default_config_is_paper_workhorse(self):
        config = default_config()
        assert config.phone.name == "oneplus8pro"
        assert config.keyboard.name == "gboard"

    def test_overrides(self):
        config = default_config(keyboard=SOGOU, refresh_rate_hz=120)
        assert config.keyboard.name == "sogou"
        assert config.refresh_rate_hz == 120

    def test_config_key_distinguishes_configurations(self):
        a = default_config()
        b = default_config(keyboard=SOGOU)
        c = default_config(refresh_rate_hz=120)
        d = default_config(resolution=Resolution.QHD_PLUS)
        keys = {x.config_key() for x in (a, b, c, d)}
        assert len(keys) == 4

    def test_with_android(self):
        config = default_config().with_android("9")
        assert config.android.version == "9"
        assert "android9" in config.config_key()

    def test_ui_scale_combines_vendor_and_os(self):
        config = default_config()
        expected = config.phone.vendor_ui_scale * config.android.popup_style_scale
        assert config.ui_scale == pytest.approx(expected)

    def test_display_property(self):
        config = default_config(refresh_rate_hz=120)
        assert config.display.refresh_rate_hz == 120
        assert config.gpu.model == 650
