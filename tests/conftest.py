"""Shared fixtures: trained models are expensive enough to share per session."""

from __future__ import annotations

import numpy as np
import pytest

from repro.android.apps import app
from repro.android.os_config import default_config
from repro.core.model_store import ModelStore
from repro.core.pipeline import train_model


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate the golden-trace fixtures under tests/golden/ "
        "instead of asserting byte parity against them",
    )


@pytest.fixture()
def update_golden(request):
    """True when the run should rewrite golden fixtures rather than compare."""
    return request.config.getoption("--update-golden")


@pytest.fixture(scope="session")
def config():
    """The paper's workhorse configuration (Oneplus 8 Pro, Gboard)."""
    return default_config()


@pytest.fixture(scope="session")
def chase_model(config):
    """Offline-trained model for (Oneplus 8 Pro, Chase)."""
    return train_model(config, app("chase"), seed=7)


@pytest.fixture(scope="session")
def chase_store(chase_model):
    store = ModelStore()
    store.add(chase_model)
    return store


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
