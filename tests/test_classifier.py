"""Tests for the nearest-centroid classification model."""

import numpy as np
import pytest

from repro.core import features
from repro.core.classifier import (
    Classification,
    ClassificationModel,
    build_model,
)


def vec(**kw):
    v = np.zeros(features.DIMENSIONS)
    for index, value in kw.items():
        v[int(index[1:])] = value
    return v


def toy_model(cth=5.0):
    labels = ["key:a", "key:b", "field:3:on", "reject:dismiss:a"]
    centroids = np.vstack(
        [
            vec(d0=100, d1=10),
            vec(d0=200, d1=20),
            vec(d0=50, d2=5),
            vec(d0=80, d3=8),
        ]
    )
    scale = np.ones(features.DIMENSIONS)
    return ClassificationModel(labels=labels, centroids=centroids, scale=scale, cth=cth, model_key="toy")


class TestClassification:
    def test_nearest_centroid_wins(self):
        model = toy_model()
        result = model.classify_vector(vec(d0=101, d1=10))
        assert result.label == "key:a"
        assert result.is_key
        assert result.key_char == "a"

    def test_threshold_rejects_far_points(self):
        model = toy_model(cth=2.0)
        result = model.classify_vector(vec(d0=150, d1=15))
        assert result.label is None
        assert not result.is_key

    def test_field_parsing(self):
        model = toy_model()
        result = model.classify_vector(vec(d0=50, d2=5))
        assert result.is_field
        assert result.field_length == 3
        assert result.key_char is None

    def test_key_char_multicharacter_labels(self):
        c = Classification(label="key::", distance=0.0)
        assert c.key_char == ":"

    def test_reject_class_is_neither_key_nor_field(self):
        model = toy_model()
        result = model.classify_vector(vec(d0=80, d3=8))
        assert result.label == "reject:dismiss:a"
        assert not result.is_key and not result.is_field


class TestValidation:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ClassificationModel(
                labels=["a"], centroids=np.zeros((1, 3)), scale=np.ones(3), cth=1.0
            )

    def test_label_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ClassificationModel(
                labels=["a", "b"],
                centroids=np.zeros((1, features.DIMENSIONS)),
                scale=np.ones(features.DIMENSIONS),
                cth=1.0,
            )

    def test_nonpositive_cth_rejected(self):
        with pytest.raises(ValueError):
            toy_model(cth=0.0)


class TestBuildModel:
    def test_builds_centroids_from_medians(self):
        samples = {
            "key:a": [vec(d0=10), vec(d0=12), vec(d0=11)],
            "key:b": [vec(d0=100), vec(d0=104)],
        }
        model = build_model(samples, model_key="m")
        a = model.centroid("key:a")
        assert a[0] == pytest.approx(11)

    def test_cth_covers_worst_key_spread(self):
        samples = {
            "key:a": [vec(d0=10), vec(d0=30)],  # radius 10 around median 20
            "key:b": [vec(d0=1000)],
        }
        model = build_model(samples, cth_margin=2.0)
        # every training sample must classify back to its own class
        for label, vectors in samples.items():
            for v in vectors:
                assert model.classify_vector(v).label == label

    def test_reject_spread_does_not_inflate_cth(self):
        tight = {
            "key:a": [vec(d0=10), vec(d0=10.5)],
            "key:b": [vec(d0=50)],
        }
        noisy = dict(tight)
        noisy["reject:transient"] = [vec(d0=10000), vec(d0=90000)]
        assert build_model(noisy).cth == pytest.approx(build_model(tight).cth)

    def test_scale_comes_from_key_classes(self):
        samples = {
            "key:a": [vec(d0=10)],
            "key:b": [vec(d0=20)],
            "reject:transient": [vec(d0=10**7), vec(d1=10**7)],
        }
        model = build_model(samples)
        # the transient magnitude must not appear in the scale
        assert model.scale[0] < 100

    def test_empty_data_rejected(self):
        with pytest.raises(ValueError):
            build_model({})

    def test_metadata_preserved(self):
        model = build_model({"key:a": [vec(d0=1)]}, metadata={"app": "chase"})
        assert model.metadata["app"] == "chase"


class TestSerialization:
    def test_roundtrip(self):
        model = toy_model()
        clone = ClassificationModel.from_json(model.to_json())
        assert clone.labels == model.labels
        assert clone.cth == model.cth
        assert np.allclose(clone.centroids, model.centroids)
        result = clone.classify_vector(vec(d0=101, d1=10))
        assert result.label == "key:a"

    def test_size_bytes_positive(self):
        assert toy_model().size_bytes() > 100


class TestCompositeClassification:
    def test_subtracting_dismiss_reveals_key(self):
        model = toy_model()
        composite = vec(d0=180, d1=10, d3=8)  # key:a + reject:dismiss:a
        direct = model.classify_vector(composite)
        assert direct.label is None or not direct.is_key
        recovered = model.classify_composite(composite)
        assert recovered.label == "key:a"

    def test_subtracting_field_reveals_key(self):
        model = toy_model()
        composite = vec(d0=150, d1=10, d2=5)  # key:a + field:3:on
        recovered = model.classify_composite(composite)
        assert recovered.label == "key:a"

    def test_random_vector_not_recovered(self):
        model = toy_model(cth=1.0)
        garbage = vec(d0=1234, d1=777, d4=55)
        assert model.classify_composite(garbage).label is None

    def test_no_subtract_classes_returns_none(self):
        model = ClassificationModel(
            labels=["key:a"],
            centroids=vec(d0=10)[None, :],
            scale=np.ones(features.DIMENSIONS),
            cth=1.0,
        )
        assert model.classify_composite(vec(d0=10)).label is None


class TestRealModel:
    """Against the offline-trained Chase model (session fixture)."""

    def test_all_centroids_self_classify(self, chase_model):
        for label in chase_model.labels:
            if label.startswith("reject:transient"):
                continue  # transient class has huge spread by design
            got = chase_model.classify_vector(chase_model.centroid(label))
            assert got.label == label, label

    def test_key_class_count_covers_keyboard(self, chase_model):
        assert len(chase_model.key_labels) == 80

    def test_model_size_is_kilobytes(self, chase_model):
        """The paper reports ~3.6 KB models; ours carry ~200 classes of
        11 rounded floats, landing in the same order of magnitude."""
        assert 2_000 < chase_model.size_bytes() < 64_000

    def test_field_family_present_to_length_16(self, chase_model):
        lengths = {
            int(label.split(":")[1])
            for label in chase_model.labels
            if label.startswith("field:")
        }
        assert set(range(0, 17)) <= lengths
