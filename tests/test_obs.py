"""Tests for the observability layer (:mod:`repro.obs`).

Covers the instrument primitives, span nesting, the run-manifest
export, and — most importantly — the parity contract: running with the
default no-op registry must be byte-identical to running uninstrumented,
and an *enabled* registry must observe a run without changing it
(mirrors the fault subsystem's disabled-plan contract in
``test_faults.py``).
"""

import json

import pytest

from repro.android.apps import CHASE
from repro.api import attack, monitor, run_sessions, simulate
from repro.core.online import OnlineResult
from repro.core.pipeline import SessionBatch
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS_S,
    NULL_REGISTRY,
    NULL_SPAN,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    RunManifest,
    new_latency_histogram,
    resolve_registry,
)
from repro.obs.manifest import SCHEMA
from repro.runtime.trace import RuntimeTrace
from repro.api import AttackConfig, FAULT_PROFILE_ENV

CREDENTIAL = "hunter2secret"


@pytest.fixture(scope="module")
def cfg():
    return AttackConfig(recognize_device=False, fault_plan=None)


@pytest.fixture(scope="module")
def trace(config, cfg):
    return simulate(config, CHASE, CREDENTIAL, seed=11, config=cfg)


def key_sequence(result):
    return [(k.t, k.char, k.deleted) for k in result.online.keys]


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError, match="counters only go up"):
            Counter("x").inc(-1)


class TestGauge:
    def test_last_value_wins(self):
        g = Gauge("x")
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5


class TestHistogram:
    def test_bucketing_counts_and_overflow(self):
        h = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.0, 1.5, 3.0, 100.0):
            h.observe(v)
        # bisect_left: values equal to a bound land in that bound's bucket
        assert h.counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.min == 0.5 and h.max == 100.0
        assert h.mean == pytest.approx(sum((0.5, 1.0, 1.5, 3.0, 100.0)) / 5)

    def test_fraction_below(self):
        h = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 9.0):
            h.observe(v)
        assert h.fraction_below(2.0) == pytest.approx(0.5)
        assert h.fraction_below(4.0) == pytest.approx(0.75)
        assert Histogram("empty", buckets=(1.0,)).fraction_below(1.0) == 0.0

    def test_samples_kept_only_on_request(self):
        plain = Histogram("h", buckets=(1.0,))
        plain.observe(0.5)
        assert plain.samples is None
        keeper = new_latency_histogram()
        keeper.observe(1e-5)
        keeper.observe(2e-5)
        assert keeper.samples == [1e-5, 2e-5]
        assert keeper.buckets == DEFAULT_LATENCY_BUCKETS_S

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=())

    def test_to_dict_is_json_ready(self):
        h = Histogram("h", buckets=(1.0, 2.0))
        h.observe(0.5)
        data = h.to_dict()
        json.dumps(data)
        assert data["count"] == 1 and data["counts"] == [1, 0, 0]


class TestRegistry:
    def test_instruments_are_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")
        assert reg.enabled

    def test_snapshot_sorted_and_complete(self):
        reg = MetricsRegistry()
        reg.counter("z.last").inc(2)
        reg.counter("a.first").inc(1)
        reg.gauge("mid").set(0.5)
        reg.histogram("lat").observe(1e-5)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a.first", "z.last"]
        assert snap["gauges"] == {"mid": 0.5}
        assert snap["histograms"]["lat"]["count"] == 1

    def test_span_nesting_builds_slash_paths(self):
        reg = MetricsRegistry()
        with reg.span("outer"):
            with reg.span("inner"):
                pass
            with reg.span("inner"):
                pass
        spans = reg.spans
        assert set(spans) == {"outer", "outer/inner"}
        assert spans["outer"].count == 1
        assert spans["outer/inner"].count == 2
        assert spans["outer"].total_s >= 0.0

    def test_span_with_injected_clock(self):
        class FakeClock:
            now = 0.0

        clock = FakeClock()
        reg = MetricsRegistry()
        with reg.span("timed", clock=clock):
            clock.now = 2.5
        assert reg.spans["timed"].total_s == pytest.approx(2.5)
        assert reg.spans["timed"].max_s == pytest.approx(2.5)

    def test_span_emits_into_runtime_trace(self):
        class FakeClock:
            now = 1.0

        trace = RuntimeTrace()
        reg = MetricsRegistry()
        with reg.span("work", clock=FakeClock(), trace=trace, session="s0", stage="obs"):
            pass
        events = [e for e in trace.events if e.kind == "span"]
        assert len(events) == 1
        assert events[0].session == "s0"
        assert events[0].detail["name"] == "work"
        assert events[0].detail["duration_s"] == pytest.approx(0.0)


class TestNullRegistry:
    def test_disabled_and_shared_instruments(self):
        assert not NULL_REGISTRY.enabled
        assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.counter("b")
        assert NULL_REGISTRY.gauge("a") is NULL_REGISTRY.histogram("b")
        assert NULL_REGISTRY.span("s") is NULL_SPAN

    def test_null_instruments_swallow_everything(self):
        c = NULL_REGISTRY.counter("x")
        c.inc(10)
        c.set(5.0)
        c.observe(1.0)
        assert c.value == 0
        with NULL_REGISTRY.span("s"):
            pass
        assert NULL_REGISTRY.spans == {}
        assert NULL_REGISTRY.snapshot()["counters"] == {}

    def test_resolve_registry(self):
        assert resolve_registry(None) is NULL_REGISTRY
        reg = MetricsRegistry()
        assert resolve_registry(reg) is reg
        null = NullRegistry()
        assert resolve_registry(null) is null
        with pytest.raises(TypeError, match="MetricsRegistry or None"):
            resolve_registry({"not": "a registry"})


class TestRunManifest:
    def make_registry(self):
        reg = MetricsRegistry()
        reg.counter("sampler.reads_issued").inc(7)
        reg.gauge("runtime.wall_s").set(1.25)
        reg.histogram("engine.inference_latency_s").observe(5e-5)
        with reg.span("runtime.run"):
            pass
        return reg

    def test_to_dict_shape(self):
        manifest = self.make_registry().manifest(
            config={"interval_s": 0.008}, command="test", sessions=3
        )
        data = manifest.to_dict()
        assert data["schema"] == SCHEMA == "repro.obs/1"
        assert data["meta"] == {"command": "test", "sessions": 3}
        assert data["config"] == {"interval_s": 0.008}
        assert data["metrics"]["counters"]["sampler.reads_issued"] == 7
        assert data["metrics"]["gauges"]["runtime.wall_s"] == 1.25
        assert data["metrics"]["histograms"]["engine.inference_latency_s"]["count"] == 1
        assert data["spans"]["runtime.run"]["count"] == 1

    def test_accessor_properties(self):
        manifest = self.make_registry().manifest()
        assert manifest.counters["sampler.reads_issued"] == 7
        assert manifest.gauges["runtime.wall_s"] == 1.25
        assert manifest.histograms["engine.inference_latency_s"]["count"] == 1

    def test_write_load_round_trip(self, tmp_path):
        path = tmp_path / "manifest.json"
        manifest = self.make_registry().manifest(command="round-trip")
        manifest.write(path)
        text = path.read_text()
        assert text.endswith("\n")
        loaded = RunManifest.load(path)
        assert loaded.to_dict() == manifest.to_dict()

    def test_from_dict_rejects_wrong_schema(self):
        data = self.make_registry().manifest().to_dict()
        data["schema"] = "repro.obs/999"
        with pytest.raises(ValueError, match="schema"):
            RunManifest.from_dict(data)


class TestParity:
    """An observed run must be indistinguishable from an unobserved one."""

    def test_enabled_registry_does_not_change_the_attack(
        self, chase_store, trace, cfg, monkeypatch
    ):
        monkeypatch.delenv(FAULT_PROFILE_ENV, raising=False)
        plain = attack(chase_store, trace, seed=101, config=cfg)
        nulled = attack(
            chase_store, trace, seed=101, config=cfg, metrics=NullRegistry()
        )
        observed = attack(
            chase_store, trace, seed=101, config=cfg, metrics=MetricsRegistry()
        )
        for other in (nulled, observed):
            assert other.text == plain.text
            assert key_sequence(other) == key_sequence(plain)
            assert other.reads_issued == plain.reads_issued
            assert other.reads_dropped == plain.reads_dropped
            assert other.stats == plain.stats

    def test_manifest_absent_without_metrics(self, chase_store, trace, cfg, monkeypatch):
        monkeypatch.delenv(FAULT_PROFILE_ENV, raising=False)
        result = attack(chase_store, trace, seed=101, config=cfg)
        assert result.manifest is None
        batch = run_sessions(chase_store, [trace], seed=101, config=cfg)
        assert batch.manifest is None


class TestManifestIntegration:
    """The facade returns the run manifest with the promised contents."""

    def test_attack_manifest(self, chase_store, trace, cfg, monkeypatch):
        monkeypatch.delenv(FAULT_PROFILE_ENV, raising=False)
        registry = MetricsRegistry()
        result = attack(chase_store, trace, seed=101, config=cfg, metrics=registry)
        manifest = result.manifest
        assert isinstance(manifest, RunManifest)
        counters = manifest.counters
        assert counters["sampler.reads_issued"] == result.reads_issued > 0
        assert counters["source.deltas_emitted"] > 0
        assert counters["runtime.sessions_completed"] == 1
        assert counters["engine.keys_inferred"] == result.stats.keys_inferred
        hist = manifest.histograms["engine.inference_latency_s"]
        assert hist["count"] == result.latency.count > 0
        assert "runtime.run" in manifest.to_dict()["spans"]
        assert manifest.meta["command"] == "attack"
        assert manifest.config["interval_s"] == cfg.interval_s

    def test_run_sessions_manifest(self, chase_store, config, cfg, monkeypatch):
        monkeypatch.delenv(FAULT_PROFILE_ENV, raising=False)
        traces = [
            simulate(config, CHASE, CREDENTIAL, seed=21 + i, config=cfg)
            for i in range(2)
        ]
        registry = MetricsRegistry()
        batch = run_sessions(
            chase_store, traces, seed=55, config=cfg, metrics=registry
        )
        assert isinstance(batch, SessionBatch) and len(batch) == 2
        manifest = batch.manifest
        assert manifest.meta == {"command": "run_sessions", "sessions": 2}
        assert manifest.counters["runtime.sessions_completed"] == 2
        assert manifest.counters["sampler.reads_issued"] == sum(
            r.reads_issued for r in batch
        )
        assert manifest.gauges["runtime.sessions_per_s"] > 0

    def test_monitor_manifest(self, chase_store, config, monkeypatch):
        import numpy as np

        from repro import api

        monkeypatch.delenv(FAULT_PROFILE_ENV, raising=False)
        device = api.VictimDevice(config, CHASE, rng=np.random.default_rng(31))
        events = [api.KeyPress(t=3.0 + 0.45 * i, char=c) for i, c in enumerate("secret12")]
        session = device.compile(events, end_time_s=9.0, launch_at_s=1.2)
        registry = MetricsRegistry()
        report = monitor(chase_store, session, seed=77, metrics=registry)
        manifest = report.manifest
        assert isinstance(manifest, RunManifest)
        counters = manifest.counters
        assert counters["service.runs"] == 1
        assert counters["service.idle_reads"] == report.idle_reads > 0
        assert counters["service.attack_reads"] == report.attack_reads > 0
        assert counters["service.launches_detected"] == 1
        assert manifest.gauges["service.launch_detected_at_s"] == pytest.approx(
            report.launch_detected_at
        )
        assert manifest.meta["command"] == "monitor"


class TestLatencyShims:
    """Raw ``inference_times_s`` lists live on as deprecated views."""

    def test_online_result_shim_warns_and_matches(self):
        result = OnlineResult()
        result.latency.observe(1e-5)
        result.latency.observe(2e-5)
        with pytest.deprecated_call():
            legacy = result.inference_times_s
        assert legacy == [1e-5, 2e-5]
        assert legacy == result.latency.samples

    def test_attack_result_shim_warns_and_matches(self, chase_store, trace, cfg):
        result = attack(chase_store, trace, seed=101, config=cfg)
        with pytest.deprecated_call():
            legacy = result.inference_times_s
        assert legacy == list(result.latency.samples)
        assert result.latency is result.online.latency
