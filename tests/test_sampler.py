"""Tests for the periodic counter sampler and the power model."""

import numpy as np
import pytest

from repro.gpu import counters as pc
from repro.gpu.pipeline import FrameStats
from repro.gpu.timeline import RenderTimeline
from repro.kgsl.device_file import DeviceClock, open_kgsl
from repro.kgsl.sampler import (
    DEFAULT_INTERVAL_S,
    IDLE,
    PcDelta,
    PerfCounterSampler,
    PowerModel,
    SystemLoad,
    deltas,
    nonzero_deltas,
)


def timeline_with_frames(times, amount=100, render_time=0.0005):
    timeline = RenderTimeline()
    for t in times:
        inc = pc.CounterIncrement()
        inc.add(pc.RAS_8X4_TILES, amount)
        timeline.add_render(
            t, FrameStats(increment=inc, pixels_touched=amount, render_time_s=render_time)
        )
    return timeline


def make_sampler(timeline, seed=0, interval=DEFAULT_INTERVAL_S):
    dev = open_kgsl(timeline, clock=DeviceClock())
    return PerfCounterSampler(dev, interval_s=interval, rng=np.random.default_rng(seed))


CID = pc.RAS_8X4_TILES.counter_id


class TestSamplingLoop:
    def test_default_interval_is_8ms(self):
        assert DEFAULT_INTERVAL_S == pytest.approx(0.008)

    def test_sample_count_matches_duration(self):
        sampler = make_sampler(timeline_with_frames([]))
        samples = sampler.sample_range(0.0, 1.0)
        assert 110 <= len(samples) <= 125  # 125 nominal ticks, some drop-free

    def test_read_times_strictly_increasing(self):
        sampler = make_sampler(timeline_with_frames([0.5]), seed=3)
        samples = sampler.sample_range(0.0, 2.0)
        times = [s.t for s in samples]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_values_monotone(self):
        sampler = make_sampler(timeline_with_frames([0.1, 0.2, 0.3]))
        samples = sampler.sample_range(0.0, 1.0)
        values = [s.values[CID] for s in samples]
        assert values == sorted(values)

    def test_total_delta_equals_rendered_amount(self):
        sampler = make_sampler(timeline_with_frames([0.1, 0.5], amount=123))
        samples = sampler.sample_range(0.0, 1.0)
        assert samples[-1].values[CID] == 246

    def test_invalid_interval_rejected(self):
        dev = open_kgsl(timeline_with_frames([]))
        with pytest.raises(ValueError):
            PerfCounterSampler(dev, interval_s=0.0)

    def test_reserves_all_selected_counters(self):
        timeline = timeline_with_frames([])
        dev = open_kgsl(timeline)
        PerfCounterSampler(dev)
        assert dev.ioctl_count == len(pc.SELECTED_COUNTERS)


class TestDeltas:
    def test_deltas_reconstruct_events(self):
        sampler = make_sampler(timeline_with_frames([0.25], amount=500))
        samples = sampler.sample_range(0.0, 0.5)
        nz = nonzero_deltas(samples)
        assert sum(d.values[CID] for d in nz) == 500

    def test_delta_merge(self):
        a = PcDelta(t=1.0, prev_t=0.99, values={CID: 30})
        b = PcDelta(t=1.01, prev_t=1.0, values={CID: 70})
        merged = b.merge(a)
        assert merged.values[CID] == 100
        assert merged.prev_t == 0.99
        assert merged.t == 1.01

    def test_delta_scaled(self):
        d = PcDelta(t=1.0, prev_t=0.9, values={CID: 101})
        assert d.scaled(0.5).values[CID] == 50 or d.scaled(0.5).values[CID] == 51

    def test_delta_bool(self):
        assert not PcDelta(t=1.0, prev_t=0.9, values={CID: 0})
        assert PcDelta(t=1.0, prev_t=0.9, values={CID: 1})

    def test_merge_rejects_swapped_order(self):
        a = PcDelta(t=1.0, prev_t=0.99, values={CID: 30})
        b = PcDelta(t=1.01, prev_t=1.0, values={CID: 70})
        with pytest.raises(ValueError, match="earlier delta"):
            a.merge(b)  # swapped: a precedes b, so b cannot be the argument

    def test_merge_allows_equal_timestamps(self):
        # split() halves share timestamps; merging them must stay legal
        d = PcDelta(t=1.0, prev_t=0.9, values={CID: 10})
        part, remainder = d.split(0.5)
        merged = remainder.merge(part)
        assert merged.t == d.t and merged.prev_t == d.prev_t

    def test_scaled_floors(self):
        d = PcDelta(t=1.0, prev_t=0.9, values={CID: 101})
        assert d.scaled(0.5).values[CID] == 50  # floor, never bankers-rounded

    def test_split_round_trips_odd_values(self):
        for v in (1, 7, 101, 999, 12345):
            d = PcDelta(t=1.0, prev_t=0.9, values={CID: v}, missing=(77,), gap=True)
            part, remainder = d.split(0.5)
            assert part.values[CID] + remainder.values[CID] == v
            merged = remainder.merge(part)
            assert merged.values == d.values
            assert merged.missing == d.missing
            assert merged.gap == d.gap

    def test_split_rejects_bad_factor(self):
        d = PcDelta(t=1.0, prev_t=0.9, values={CID: 10})
        with pytest.raises(ValueError):
            d.split(1.5)
        with pytest.raises(ValueError):
            d.split(-0.1)

    def test_deltas_pairwise(self):
        sampler = make_sampler(timeline_with_frames([]))
        samples = sampler.sample_range(0.0, 0.1)
        assert len(deltas(samples)) == len(samples) - 1


class TestMaskedGet:
    SPEC = pc.RAS_8X4_TILES

    def test_present_counter_reads_value(self):
        d = PcDelta(t=1.0, prev_t=0.9, values={CID: 42})
        assert d.get(self.SPEC) == 42

    def test_absent_unmasked_counter_reads_zero(self):
        # never-selected counter: no change was observed because none happened
        d = PcDelta(t=1.0, prev_t=0.9, values={})
        assert d.get(self.SPEC) == 0

    def test_masked_counter_raises_without_default(self):
        # reclaimed counter: the change over the window is unknown, not zero
        d = PcDelta(t=1.0, prev_t=0.9, values={}, missing=(CID,))
        with pytest.raises(KeyError, match="masked"):
            d.get(self.SPEC)

    def test_masked_counter_honors_explicit_default(self):
        d = PcDelta(t=1.0, prev_t=0.9, values={}, missing=(CID,))
        assert d.get(self.SPEC, default=0) == 0
        assert d.get(self.SPEC, default=-1) == -1

    def test_present_value_wins_over_default(self):
        d = PcDelta(t=1.0, prev_t=0.9, values={CID: 5}, missing=(CID,))
        assert d.get(self.SPEC, default=99) == 5


class TestLoadEffects:
    def test_system_load_validation(self):
        with pytest.raises(ValueError):
            SystemLoad(cpu_utilization=1.5)
        with pytest.raises(ValueError):
            SystemLoad(gpu_utilization=-0.1)

    def test_idle_drops_nothing(self):
        sampler = make_sampler(timeline_with_frames([]))
        sampler.sample_range(0.0, 2.0, load=IDLE)
        assert sampler.reads_dropped == 0

    def test_heavy_cpu_load_drops_reads(self):
        sampler = make_sampler(timeline_with_frames([]), seed=5)
        sampler.sample_range(0.0, 5.0, load=SystemLoad(cpu_utilization=1.0))
        assert sampler.reads_dropped > 0

    def test_cpu_load_increases_latency(self):
        idle_sampler = make_sampler(timeline_with_frames([]), seed=6)
        idle = idle_sampler.sample_range(0.0, 3.0)
        busy_sampler = make_sampler(timeline_with_frames([]), seed=6)
        busy = busy_sampler.sample_range(0.0, 3.0, load=SystemLoad(cpu_utilization=0.9))
        lag = lambda ss: np.mean([s.t - s.nominal_t for s in ss])
        assert lag(busy) > lag(idle)


class TestPowerModel:
    def test_overhead_grows_with_time(self):
        model = PowerModel()
        one_hour = model.extra_consumption_percent(3600.0)
        two_hours = model.extra_consumption_percent(7200.0)
        assert two_hours > one_hour > 0

    def test_overhead_under_five_percent_for_two_hours(self):
        """Fig 26: at most ~4 % extra battery after two hours."""
        model = PowerModel()
        for power in (85.0, 90.0, 95.0, 120.0):
            pct = model.extra_consumption_percent(7200.0, gpu_sample_power_mw=power)
            assert pct < 5.0

    def test_faster_sampling_costs_more(self):
        model = PowerModel()
        fast = model.extra_consumption_percent(3600.0, interval_s=0.004)
        slow = model.extra_consumption_percent(3600.0, interval_s=0.012)
        assert fast > slow
