"""Tests for the duplication filter (Section 5.1, Δt1 = 75 ms)."""

import pytest

from repro.core.dedup import DEDUP_WINDOW_S, DuplicationFilter


class TestDuplicationFilter:
    def test_window_matches_paper(self):
        assert DEDUP_WINDOW_S == pytest.approx(0.075)

    def test_first_press_admitted(self):
        f = DuplicationFilter()
        assert f.admit(1.0)

    def test_duplicate_within_window_suppressed(self):
        f = DuplicationFilter()
        assert f.admit(1.0)
        assert not f.admit(1.016)  # one frame later: the popup animation
        assert f.suppressed == 1

    def test_press_after_window_admitted(self):
        f = DuplicationFilter()
        assert f.admit(1.0)
        assert f.admit(1.076)

    def test_boundary_is_exclusive(self):
        f = DuplicationFilter()
        assert f.admit(1.0)
        assert f.admit(1.0 + DEDUP_WINDOW_S + 1e-9)

    def test_suppression_does_not_extend_window(self):
        """A suppressed duplicate must not push the window forward, or a
        legitimate fast keystroke after it would also be lost."""
        f = DuplicationFilter()
        assert f.admit(1.000)
        assert not f.admit(1.016)
        assert f.admit(1.080)

    def test_sequence_of_presses(self):
        f = DuplicationFilter()
        admitted = [t for t in (0.0, 0.016, 0.2, 0.21, 0.4) if f.admit(t)]
        assert admitted == [0.0, 0.2, 0.4]
        assert f.suppressed == 2

    def test_reset(self):
        f = DuplicationFilter()
        assert f.admit(1.0)
        f.reset()
        assert f.admit(1.001)

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            DuplicationFilter(window_s=0.0)

    def test_last_key_time_tracked(self):
        f = DuplicationFilter()
        assert f.last_key_time is None
        f.admit(2.5)
        assert f.last_key_time == 2.5
