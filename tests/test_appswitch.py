"""Tests for the app-switch burst detector (Section 5.2, Fig 13)."""

from repro.core.appswitch import AppSwitchDetector, BURST_GAP_S
from repro.core.classifier import Classification
from repro.gpu import counters as pc
from repro.kgsl.sampler import PcDelta

CID = pc.RAS_8X4_TILES.counter_id
NOISE = Classification(label=None, distance=99.0)
FIELD = Classification(label="field:3:on", distance=0.01)


def delta(t, total):
    return PcDelta(t=t, prev_t=t - 0.008, values={CID: total})


def burst(detector, t0, frames=6, magnitude=10_000_000):
    for i in range(frames):
        detector.observe(delta(t0 + i * 0.016, magnitude), NOISE)


class TestBurstDetection:
    def test_initially_in_target(self):
        d = AppSwitchDetector(big_threshold=1000)
        assert d.in_target

    def test_small_changes_never_toggle(self):
        d = AppSwitchDetector(big_threshold=1_000_000)
        for i in range(50):
            obs = d.observe(delta(i * 0.1, 500), NOISE)
            assert not obs.suppress
        assert d.in_target

    def test_burst_suppresses_and_toggles(self):
        d = AppSwitchDetector(big_threshold=1000)
        burst(d, 1.0)
        # during the burst, deltas are suppressed
        obs = d.observe(delta(1.12, 2000), NOISE)
        assert obs.suppress
        # after quiet time, the state flips to away
        obs = d.observe(delta(2.0, 10), NOISE)
        assert not d.in_target
        assert obs.suppress  # away from target -> still suppressed
        assert d.bursts_seen == 1

    def test_second_burst_returns_to_target(self):
        d = AppSwitchDetector(big_threshold=1000)
        burst(d, 1.0)
        d.observe(delta(2.0, 10), NOISE)  # finishes burst 1, away
        burst(d, 3.0)
        obs = d.observe(delta(4.0, 10), NOISE)
        assert d.in_target
        assert not obs.suppress
        assert d.bursts_seen == 2

    def test_short_run_is_not_a_burst(self):
        d = AppSwitchDetector(big_threshold=1000, min_burst_length=3)
        d.observe(delta(1.000, 5000), NOISE)
        d.observe(delta(1.016, 5000), NOISE)
        obs = d.observe(delta(2.0, 10), NOISE)
        assert d.in_target
        assert not obs.suppress

    def test_spread_out_big_changes_do_not_form_burst(self):
        """Gaps larger than 50 ms break the run (the paper's criterion)."""
        d = AppSwitchDetector(big_threshold=1000)
        for i in range(6):
            d.observe(delta(1.0 + i * (BURST_GAP_S * 3), 5000), NOISE)
        d.observe(delta(3.0, 10), NOISE)
        assert d.in_target

    def test_flush_finishes_pending_burst(self):
        d = AppSwitchDetector(big_threshold=1000)
        burst(d, 1.0)
        d.flush(5.0)
        assert not d.in_target


class TestSelfHealing:
    def test_field_event_forces_in_target(self):
        d = AppSwitchDetector(big_threshold=1000)
        burst(d, 1.0)
        d.observe(delta(2.0, 10), NOISE)
        assert not d.in_target
        # a text-field redraw can only come from the target app
        obs = d.observe(delta(2.5, 300), FIELD)
        assert d.in_target
        assert not obs.suppress

    def test_field_during_burst_does_not_heal(self):
        d = AppSwitchDetector(big_threshold=1000)
        burst(d, 1.0)
        obs = d.observe(delta(1.1, 300), FIELD)
        assert obs.suppress


class TestValidation:
    def test_invalid_threshold(self):
        import pytest

        with pytest.raises(ValueError):
            AppSwitchDetector(big_threshold=0)
