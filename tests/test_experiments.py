"""Tests for the shared experiment harness."""

import numpy as np
import pytest

from repro.analysis.experiments import (
    cached_model,
    format_accuracy_table,
    run_credential_batch,
    run_per_key_sweep,
    run_practical_sessions,
    single_model_attack,
)
from repro.android.apps import CHASE


class TestModelCache:
    def test_same_key_returns_same_object(self, config):
        a = cached_model(config, CHASE)
        b = cached_model(config, CHASE)
        assert a is b

    def test_interval_is_part_of_the_key(self, config):
        a = cached_model(config, CHASE, interval_s=0.008)
        b = cached_model(config, CHASE, interval_s=0.004)
        assert a is not b


class TestCredentialBatch:
    def test_batch_reports_counts(self, config):
        batch = run_credential_batch(config, CHASE, n_texts=4, seed=55)
        assert batch.report.traces == 4
        assert 0.0 <= batch.text_accuracy <= 1.0
        assert batch.key_accuracy > 0.8
        assert batch.inference_times_s

    def test_explicit_texts_override_count(self, config):
        batch = run_credential_batch(
            config, CHASE, n_texts=99, texts=["abcd1234"], seed=56
        )
        assert batch.report.traces == 1

    def test_attack_kwargs_forwarded(self, config):
        batch = run_credential_batch(
            config, CHASE, n_texts=2, seed=57, recover_collisions=False
        )
        assert batch.report.traces == 2

    def test_deterministic_given_seed(self, config):
        a = run_credential_batch(config, CHASE, n_texts=3, seed=58)
        b = run_credential_batch(config, CHASE, n_texts=3, seed=58)
        assert a.text_accuracy == b.text_accuracy
        assert a.key_accuracy == b.key_accuracy


class TestPerKeySweep:
    def test_covers_all_characters(self, config):
        stats = run_per_key_sweep(config, CHASE, repeats=2, seed=60)
        assert len(stats) >= 75
        for char, (correct, total) in stats.items():
            assert 0 <= correct <= total, char


class TestPracticalSessions:
    def test_reports_per_volunteer(self, config):
        reports = run_practical_sessions(
            config, CHASE, volunteers=2, repeats=1, duration_s=60.0, seed=61
        )
        assert set(reports) == {"volunteer1", "volunteer2"}
        for report in reports.values():
            assert report.traces == 1


class TestFormatting:
    def test_accuracy_table(self):
        out = format_accuracy_table({"chase": (0.8, 0.98)}, "title")
        assert "title" in out and "chase" in out and "0.980" in out


class TestSingleModelAttack:
    def test_attack_has_one_model(self, config):
        attack = single_model_attack(config, CHASE)
        assert len(attack.store) == 1
        assert not attack.recognize_device
