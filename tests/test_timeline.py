"""Tests for the render timeline and split-read mechanics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import counters as pc
from repro.gpu.pipeline import FrameStats
from repro.gpu.timeline import COUNTER_ORDER, FrameRender, RenderTimeline, merge_timelines


def make_stats(amount=100, render_time=0.001, spec=pc.RAS_8X4_TILES):
    inc = pc.CounterIncrement()
    inc.add(spec, amount)
    return FrameStats(increment=inc, pixels_touched=amount, render_time_s=render_time)


CID = pc.RAS_8X4_TILES.counter_id


class TestFrameRender:
    def test_end_time(self):
        frame = FrameRender(start_s=1.0, stats=make_stats(render_time=0.002))
        assert frame.end_s == pytest.approx(1.002)

    def test_progress_clamps(self):
        frame = FrameRender(start_s=1.0, stats=make_stats(render_time=0.002))
        assert frame.progress(0.5) == 0.0
        assert frame.progress(1.001) == pytest.approx(0.5)
        assert frame.progress(2.0) == 1.0

    def test_zero_duration_completes_instantly(self):
        frame = FrameRender(start_s=1.0, stats=make_stats(render_time=0.0))
        assert frame.progress(1.0 + 1e-12) == 1.0


class TestValuesAt:
    def test_empty_timeline_reads_zero(self):
        timeline = RenderTimeline()
        values = timeline.values_at(5.0)
        assert all(v == 0 for v in values.values())
        assert set(values) == set(COUNTER_ORDER)

    def test_before_first_frame_is_zero(self):
        timeline = RenderTimeline()
        timeline.add_render(1.0, make_stats(100))
        assert timeline.values_at(0.5)[CID] == 0

    def test_after_frame_full_increment(self):
        timeline = RenderTimeline()
        timeline.add_render(1.0, make_stats(100, render_time=0.001))
        assert timeline.values_at(1.5)[CID] == 100

    def test_mid_render_partial_accrual(self):
        timeline = RenderTimeline()
        timeline.add_render(1.0, make_stats(100, render_time=0.010))
        assert timeline.values_at(1.005)[CID] == 50

    def test_split_parts_sum_exactly(self):
        """The two halves of a split read must sum to the full increment
        (Algorithm 1's recombination relies on this)."""
        timeline = RenderTimeline()
        timeline.add_render(1.0, make_stats(997, render_time=0.010))
        before = timeline.values_at(0.999)[CID]
        mid = timeline.values_at(1.003)[CID]
        after = timeline.values_at(1.2)[CID]
        assert (mid - before) + (after - mid) == 997

    def test_multiple_frames_accumulate(self):
        timeline = RenderTimeline()
        for i in range(5):
            timeline.add_render(float(i), make_stats(10, render_time=0.001))
        assert timeline.values_at(10.0)[CID] == 50

    def test_out_of_order_insertion_is_sorted(self):
        timeline = RenderTimeline()
        timeline.add_render(2.0, make_stats(10, render_time=0.001))
        timeline.add_render(1.0, make_stats(5, render_time=0.001))
        assert timeline.values_at(1.5)[CID] == 5
        assert timeline.values_at(3.0)[CID] == 15

    @given(st.lists(st.tuples(st.floats(0, 10), st.integers(1, 1000)), min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_values_monotone_in_time(self, frames):
        timeline = RenderTimeline()
        for start, amount in frames:
            timeline.add_render(start, make_stats(amount, render_time=0.005))
        times = sorted({t for t, _ in frames} | {0.0, 5.0, 10.0, 11.0})
        values = [timeline.values_at(t)[CID] for t in times]
        assert values == sorted(values)

    @given(st.lists(st.tuples(st.floats(0, 5), st.integers(1, 500)), min_size=1, max_size=20))
    @settings(max_examples=50)
    def test_final_value_is_total(self, frames):
        timeline = RenderTimeline()
        total = 0
        for start, amount in frames:
            timeline.add_render(start, make_stats(amount, render_time=0.002))
            total += amount
        assert timeline.values_at(100.0)[CID] == total


class TestQueries:
    def test_frames_between(self):
        timeline = RenderTimeline()
        for i in range(10):
            timeline.add_render(float(i), make_stats(1), label=f"f{i}")
        picked = timeline.frames_between(2.5, 5.5)
        assert [f.label for f in picked] == ["f3", "f4", "f5"]

    def test_end_time(self):
        timeline = RenderTimeline()
        timeline.add_render(1.0, make_stats(1, render_time=0.25))
        timeline.add_render(2.0, make_stats(1, render_time=0.003))
        assert timeline.end_time_s == pytest.approx(2.003)

    def test_busy_fraction(self):
        timeline = RenderTimeline()
        timeline.add_render(0.0, make_stats(1, render_time=0.5))
        assert timeline.busy_fraction(0.0, 1.0) == pytest.approx(0.5)
        assert timeline.busy_fraction(2.0, 3.0) == 0.0

    def test_busy_fraction_capped_at_one(self):
        timeline = RenderTimeline()
        timeline.add_render(0.0, make_stats(1, render_time=1.0))
        timeline.add_render(0.0, make_stats(1, render_time=1.0))
        assert timeline.busy_fraction(0.0, 1.0) == 1.0

    def test_merge_timelines(self):
        a = RenderTimeline()
        a.add_render(1.0, make_stats(10))
        b = RenderTimeline()
        b.add_render(0.5, make_stats(5))
        merged = merge_timelines([a, b])
        assert merged.values_at(2.0)[CID] == 15
        assert [f.start_s for f in merged.frames] == [0.5, 1.0]
