"""The scenario registry: the PR-6 contract surface.

Four layers under test:

* the generic :class:`repro.registry.Registry` semantics every producer
  shares — unified unknown-name errors with did-you-mean suggestions;
* the deprecated module-constant aliases (``CHASE``, ``SWIFTKEY``, …)
  still resolving, still identical to the registered specs, and warning;
* :class:`repro.scenarios.Scenario` / ``AttackConfig(scenario=...)``
  serialization round-trips and facade threading;
* the PIN-pad extension — a keyboard + scenario registered entirely
  outside the core tables attacking end to end.
"""

from __future__ import annotations

import warnings

import pytest

from repro.android.apps import APP_REGISTRY, TARGET_APPS, app
from repro.android.display import Display
from repro.android.keyboard import (
    KEYBOARD_REGISTRY,
    KEYBOARDS,
    KeyboardLayout,
    KeyboardSpec,
    keyboard,
)
from repro.android.os_config import PHONE_MODELS, PHONE_REGISTRY, phone
from repro.api import AttackConfig, attack, simulate, train
from repro.registry import Registry, UnknownNameError
from repro.scenarios import (
    SCENARIO_REGISTRY,
    Scenario,
    register_scenario,
    scenario,
    scenario_names,
)


class TestUnifiedUnknownNameErrors:
    """Satellite 1: one error shape across keyboard/app/phone/scenario."""

    @pytest.mark.parametrize(
        "lookup, typo, suggestion",
        [
            (keyboard, "gbord", "gboard"),
            (app, "chsae", "chase"),
            (phone, "oneplus8pr", "oneplus8pro"),
            (scenario, "pinpda", "pinpad"),
        ],
    )
    def test_did_you_mean(self, lookup, typo, suggestion):
        with pytest.raises(UnknownNameError) as excinfo:
            lookup(typo)
        message = str(excinfo.value)
        assert f"'{typo}'" in message
        assert "known:" in message
        assert f"did you mean '{suggestion}'" in message

    def test_unknown_name_error_is_a_key_error(self):
        # callers with pre-registry ``except KeyError`` handlers keep working
        with pytest.raises(KeyError):
            keyboard("nope")

    def test_no_suggestion_when_nothing_close(self):
        with pytest.raises(UnknownNameError) as excinfo:
            keyboard("zzzzzzzzzz")
        assert "did you mean" not in str(excinfo.value)


class TestRegistrySemantics:
    def test_reregistering_identical_spec_is_idempotent(self):
        spec = keyboard("gboard")
        assert KEYBOARD_REGISTRY.register(spec) is spec

    def test_reregistering_different_spec_raises_without_replace(self):
        import dataclasses

        clash = dataclasses.replace(keyboard("gboard"), display_name="Impostor")
        with pytest.raises(ValueError, match="already registered"):
            KEYBOARD_REGISTRY.register(clash)

    def test_names_sorted_regardless_of_registration_order(self):
        forward, backward = Registry("thing"), Registry("thing")

        class Named:
            def __init__(self, name):
                self.name = name

        specs = [Named(n) for n in ("zeta", "alpha", "mid")]
        for spec in specs:
            forward.register(spec)
        for spec in reversed(specs):
            backward.register(spec)
        assert forward.names() == backward.names() == ["alpha", "mid", "zeta"]
        assert forward.get("alpha").name == backward.get("alpha").name

    def test_snapshots_stay_paper_sized_after_extensions(self):
        # pinpad is registered, but the paper-set snapshots don't grow
        assert len(KEYBOARDS) == 6
        assert "pinpad" not in KEYBOARDS
        assert "pinpad" in KEYBOARD_REGISTRY
        assert len(TARGET_APPS) == 10
        assert len(PHONE_MODELS) == 6
        assert len(PHONE_REGISTRY) == 6


class TestDeprecatedAliases:
    """Satellite 3: legacy constants warn but still resolve identically."""

    @pytest.mark.parametrize(
        "module_name, attr, registry_name, lookup",
        [
            ("repro.android.apps", "CHASE", "chase", app),
            ("repro.android.apps", "PNC", "pnc", app),
            ("repro.android.keyboard", "SWIFTKEY", "swift", keyboard),
            ("repro.android.keyboard", "GBOARD", "gboard", keyboard),
            ("repro.android.os_config", "ONEPLUS_8_PRO", "oneplus8pro", phone),
        ],
    )
    def test_constant_warns_and_is_registered_object(
        self, module_name, attr, registry_name, lookup
    ):
        import importlib

        module = importlib.import_module(module_name)
        with pytest.warns(DeprecationWarning, match=attr):
            value = getattr(module, attr)
        assert value is lookup(registry_name)

    def test_native_apps_tuple_warns_and_keeps_order(self):
        import repro.android.apps as apps

        with pytest.warns(DeprecationWarning, match="NATIVE_APPS"):
            native = apps.NATIVE_APPS
        assert [spec.name for spec in native] == [
            "chase", "amex", "fidelity", "schwab", "myfico", "experian",
        ]

    def test_api_reexports_resolve_with_warning(self):
        import repro.api as api

        with pytest.warns(DeprecationWarning):
            assert api.CHASE is app("chase")
        with pytest.warns(DeprecationWarning):
            assert api.GRAMMARLY is keyboard("grammarly")

    def test_plain_import_of_repro_is_warning_free(self):
        # the aliases are lazy: importing the package must not warn
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            import repro  # noqa: F401
            import repro.api  # noqa: F401
            import repro.scenarios  # noqa: F401


class TestScenarioSpec:
    def test_builtin_matrix_is_registered(self):
        names = scenario_names()
        for kb in KEYBOARDS:
            for target in ("chase", "schwab"):
                assert f"{kb}-{target}" in names
        assert "gboard-pnc" in names
        assert "gboard-chase-slow" in names
        assert "pinpad" in names

    def test_scenario_round_trips_through_dict(self):
        scn = scenario("gboard-chase-fast")
        assert Scenario.from_dict(scn.to_dict()) == scn

    def test_from_dict_rejects_unknown_fields(self):
        data = scenario("pinpad").to_dict()
        data["surprise"] = 1
        with pytest.raises(ValueError, match="surprise"):
            Scenario.from_dict(data)

    def test_register_rejects_unknown_axis(self):
        with pytest.raises(UnknownNameError):
            register_scenario(
                Scenario(name="broken", keyboard="not-a-kb", app="chase")
            )
        assert "broken" not in SCENARIO_REGISTRY

    def test_register_rejects_charset_off_the_keyboard(self):
        with pytest.raises(ValueError, match="no key"):
            register_scenario(
                Scenario(
                    name="broken-charset",
                    keyboard="pinpad",
                    app="chase",
                    charset="12ab",
                )
            )

    def test_credential_pool_respects_charset(self):
        assert scenario("pinpad").credential_pool() == "1234567890"
        # default pool = trainable characters of the keyboard layout
        pool = scenario("gboard-chase").credential_pool()
        assert set("abc123,.") <= set(pool)

    def test_every_scenario_serializes_and_resolves(self):
        for name in scenario_names():
            scn = scenario(name)
            assert Scenario.from_dict(scn.to_dict()) == scn
            assert scn.keyboard_spec().name == scn.keyboard
            assert scn.app_spec().name == scn.app
            assert scn.phone_spec().name == scn.phone


class TestAttackConfigScenario:
    def test_scenario_field_normalizes_to_name_and_round_trips(self):
        cfg = AttackConfig(scenario=scenario("pinpad"))
        assert cfg.scenario == "pinpad"
        assert AttackConfig.from_dict(cfg.to_dict()) == cfg
        assert cfg.resolved_scenario() is scenario("pinpad")

    def test_unknown_scenario_fails_at_construction(self):
        with pytest.raises(UnknownNameError):
            AttackConfig(scenario="never-registered")

    def test_scenarioless_config_round_trip_unchanged(self):
        cfg = AttackConfig()
        assert cfg.scenario is None
        assert AttackConfig.from_dict(cfg.to_dict()) == cfg
        assert cfg.resolved_scenario() is None

    def test_facade_requires_scenario_or_explicit_args(self):
        with pytest.raises(ValueError, match="scenario"):
            train(config=AttackConfig())
        with pytest.raises(ValueError, match="scenario"):
            simulate(credential="x", config=AttackConfig())


class TestPinpadExtension:
    """The extensibility proof: registered outside the core tables."""

    def test_layout_has_ten_digit_keys(self):
        layout = KeyboardLayout(keyboard("pinpad"), Display())
        assert layout.spec.layout == "pinpad"
        for digit in "1234567890":
            assert layout.has_key(digit)
        assert not layout.has_key("a")

    def test_backspace_sits_bottom_right_of_zero(self):
        layout = KeyboardLayout(keyboard("pinpad"), Display())
        zero = layout.key("0").key_rect
        backspace = layout.backspace_rect()
        assert backspace.top == zero.top  # same (bottom) row
        assert backspace.left > zero.right  # to the right

    def test_pinpad_attack_recovers_pin_exactly(self):
        cfg = AttackConfig(
            scenario="pinpad", sweep_repeats=2, recognize_device=False
        )
        store = train(config=cfg)
        trace = simulate(credential="19374", seed=5, config=cfg)
        result = attack(store, trace, seed=6, config=cfg)
        assert result.text == "19374"

    def test_speed_tier_scenario_threads_into_simulate(self):
        slow = AttackConfig(scenario="gboard-chase-slow")
        fast = AttackConfig(scenario="gboard-chase-fast")
        slow_trace = simulate(credential="abcdef", seed=3, config=slow)
        fast_trace = simulate(credential="abcdef", seed=3, config=fast)
        assert slow_trace.end_time_s > fast_trace.end_time_s
