"""End-to-end CLI smoke tests: the real process, the real entry point.

``tests/test_cli.py`` calls :func:`repro.cli.main` in-process, which is
fast but cannot catch packaging-level breakage — import cycles that only
bite on cold start, output buffered but never flushed, exit codes
swallowed by the ``python -m repro`` shim, manifests written relative to
an unexpected cwd.  These tests spawn ``sys.executable -m repro`` as a
real subprocess and assert on the three observable surfaces a scripted
caller depends on: exit code, stdout shape, and the ``--metrics-out``
JSON schema.

Kept to one invocation per command (plus one shared train step) so the
subprocess overhead stays in smoke-test territory.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parents[1] / "src")

MANIFEST_SCHEMA = "repro.obs/1"


def run_cli(*argv, timeout=120):
    """Run ``python -m repro <argv>`` with src/ on PYTHONPATH."""
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = SRC + (os.pathsep + existing if existing else "")
    # keep subprocess runs hermetic: the fault-matrix env var must not
    # leak into smoke assertions about exit codes
    env.pop("REPRO_FAULT_PROFILE", None)
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
    )


def assert_manifest_schema(path: Path, command: str) -> dict:
    """The contract every ``--metrics-out`` file honours."""
    manifest = json.loads(path.read_text())
    assert manifest["schema"] == MANIFEST_SCHEMA
    assert manifest["meta"]["command"] == command
    assert isinstance(manifest["meta"]["sessions"], int)
    assert isinstance(manifest["config"], dict)
    metrics = manifest["metrics"]
    for section in ("counters", "gauges", "histograms"):
        assert isinstance(metrics[section], dict)
    assert all(isinstance(v, int) for v in metrics["counters"].values())
    assert isinstance(manifest["spans"], dict)
    return manifest


@pytest.fixture(scope="module")
def trained_store(tmp_path_factory):
    """One ``repro train`` subprocess shared by the attack tests."""
    store_path = tmp_path_factory.mktemp("cli_e2e") / "store.json"
    proc = run_cli("train", str(store_path))
    assert proc.returncode == 0, proc.stderr
    assert store_path.exists()
    return store_path


class TestStealE2E:
    def test_steal_exit_code_stdout_and_manifest(self, tmp_path):
        metrics_path = tmp_path / "steal_manifest.json"
        proc = run_cli(
            "steal", "hunterpw12", "--seed", "7",
            "--metrics-out", str(metrics_path),
        )
        assert proc.returncode == 0, proc.stderr
        out = proc.stdout
        assert "typed    : 'hunterpw12'" in out
        assert "inferred :" in out
        assert "outcome  : EXACT" in out
        manifest = assert_manifest_schema(metrics_path, "steal")
        assert manifest["metrics"]["counters"]["sampler.reads_issued"] > 0

    def test_unknown_app_fails_nonzero(self):
        proc = run_cli("steal", "hunterpw12", "--app", "definitely-not-an-app")
        assert proc.returncode != 0

    def test_keyboard_typo_is_usage_error_not_traceback(self):
        proc = run_cli("steal", "hunterpw12", "--keyboard", "gbord")
        assert proc.returncode == 2
        combined = proc.stderr + proc.stdout
        assert "Traceback" not in combined
        assert "unknown keyboard 'gbord'" in combined
        assert "did you mean 'gboard'" in combined

    def test_scenario_flag_runs_pinpad_end_to_end(self):
        proc = run_cli("steal", "1932", "--scenario", "pinpad", "--seed", "7")
        assert proc.returncode == 0, proc.stderr
        assert "outcome  : EXACT" in proc.stdout


class TestAttackE2E:
    def test_attack_workers2_batch(self, trained_store, tmp_path):
        metrics_path = tmp_path / "attack_manifest.json"
        proc = run_cli(
            "attack", str(trained_store), "secretpw1",
            "--sessions", "2", "--workers", "2", "--seed", "5",
            "--metrics-out", str(metrics_path),
        )
        assert proc.returncode in (0, 1), proc.stderr
        out = proc.stdout
        assert "session   0:" in out
        assert "session   1:" in out
        assert "typed          : 'secretpw1'" in out
        assert "sessions       : 2 (workers=2)" in out
        assert "exact matches  :" in out
        assert "throughput     :" in out
        manifest = assert_manifest_schema(metrics_path, "attack")
        assert manifest["meta"]["sessions"] == 2

    def test_attack_missing_store_fails(self, tmp_path):
        proc = run_cli("attack", str(tmp_path / "nope.json"), "secretpw1")
        assert proc.returncode != 0


class TestFleetE2E:
    def test_fleet_streams_devices_through_collector(self, tmp_path):
        metrics_path = tmp_path / "fleet_manifest.json"
        proc = run_cli(
            "fleet", "pw123456",
            "--devices", "2", "--sessions", "1", "--seed", "3",
            "--metrics-out", str(metrics_path),
        )
        assert proc.returncode == 0, proc.stderr
        out = proc.stdout
        assert "fleet      : 2 devices x 1 sessions" in out
        assert "ingested   : 2/2 results (0 lost" in out
        assert "delivery   :" in out
        assert "exact      :" in out
        assert "throughput :" in out
        manifest = assert_manifest_schema(metrics_path, "fleet")
        counters = manifest["metrics"]["counters"]
        assert counters["collector.sessions_ingested"] == 2
        assert counters["collector.devices_seen"] == 2

    def test_fleet_rejects_bad_device_count(self):
        proc = run_cli("fleet", "pw123456", "--devices", "0")
        assert proc.returncode != 0


class TestTopLevelE2E:
    def test_no_args_shows_usage_exit_2(self):
        proc = run_cli()
        assert proc.returncode == 2
        assert "usage" in (proc.stderr + proc.stdout).lower()

    def test_devices_lists_inventory(self):
        proc = run_cli("devices")
        assert proc.returncode == 0
        for expected in ("oneplus8pro", "gboard", "chase", "pinpad", "scenarios:"):
            assert expected in proc.stdout


class TestScenariosE2E:
    def test_scenarios_list_covers_matrix_and_extension(self):
        proc = run_cli("scenarios", "list")
        assert proc.returncode == 0
        for expected in ("gboard-chase", "swift-schwab", "pinpad"):
            assert expected in proc.stdout

    def test_scenarios_show_dumps_spec(self):
        proc = run_cli("scenarios", "show", "pinpad")
        assert proc.returncode == 0
        assert "charset" in proc.stdout
        assert "'1234567890'" in proc.stdout

    def test_scenarios_smoke_single_name(self):
        proc = run_cli("scenarios", "smoke", "pinpad")
        assert proc.returncode == 0, proc.stderr
        assert "1/1 scenarios passed" in proc.stdout

    def test_scenarios_smoke_unknown_name_usage_error(self):
        proc = run_cli("scenarios", "smoke", "pinpda")
        assert proc.returncode == 2
        combined = proc.stderr + proc.stdout
        assert "Traceback" not in combined
        assert "did you mean 'pinpad'" in combined
