"""The online signature lifecycle, proven end to end.

Covers the four legs the lifecycle stands on:

* **drift plans** (`repro.lifecycle.drift`) — seeded, serializable,
  deterministic; ``drift=None`` installs nothing (golden-parity side is
  in ``test_golden_traces.py``);
* **recalibration** (`repro.lifecycle.calibration`) — the suspect-signal
  triggers, the self-supervised ratio re-fit, lineage, and persistence
  into the versioned store;
* **hot model swap** (:meth:`OnlineEngine.swap_model`) — stream state
  carries over, deflation is re-applied, and a swap mid
  :meth:`feed_many` re-batches the tail without double-classifying or
  skipping a delta;
* **the full arc** (:func:`run_lifecycle`) — accuracy degrades under
  drift, the service trips, the engine swaps mid-session, accuracy
  recovers (the ≥ 0.9 floor itself is pinned by
  ``benchmarks/test_lifecycle_recovery.py``).
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.online import OnlineEngine
from repro.core.model_store import VersionedModelStore
from repro.kgsl.device_file import DeviceClock, open_kgsl
from repro.kgsl.sampler import PerfCounterSampler, nonzero_deltas_vectorized
from repro.lifecycle import (
    CALIBRATION_PROFILES,
    DRIFT_PROFILES,
    CalibrationPolicy,
    CalibrationService,
    DriftPlan,
    drift_plan_from_env,
    resolve_calibration,
    resolve_drift_plan,
    run_lifecycle,
)
from repro.lifecycle.calibration import estimate_refit, rescale_model


# ---------------------------------------------------------------------------
# drift plans


class TestDriftPlan:
    def test_default_plan_is_disabled(self):
        assert not DriftPlan().enabled
        assert DriftPlan().injector() is None

    def test_validation(self):
        with pytest.raises(ValueError, match="thermal_scale"):
            DriftPlan(thermal_scale=0.0)
        with pytest.raises(ValueError, match="thermal_scale"):
            DriftPlan(thermal_scale=2.5)
        with pytest.raises(ValueError, match="thermal_mode"):
            DriftPlan(thermal_mode="bogus")
        with pytest.raises(ValueError, match="geometry_shift"):
            DriftPlan(geometry_shift=1.0)
        with pytest.raises(ValueError, match="thermal_ramp_s"):
            DriftPlan(thermal_ramp_s=-1.0)

    def test_profiles_round_trip(self):
        for name, plan in DRIFT_PROFILES.items():
            assert DriftPlan.from_profile(name) == plan
            assert DriftPlan.from_dict(plan.to_dict()) == plan

    def test_unknown_profile_raises(self):
        with pytest.raises(ValueError, match="unknown drift profile"):
            DriftPlan.from_profile("nope")

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown DriftPlan fields"):
            DriftPlan.from_dict({"thermal_scale": 0.5, "bogus": 1})

    def test_resolve_semantics(self, monkeypatch):
        monkeypatch.delenv("REPRO_DRIFT_PROFILE", raising=False)
        assert resolve_drift_plan(None) is None
        assert resolve_drift_plan("auto") is None
        assert resolve_drift_plan("none") is None  # disabled profile
        plan = resolve_drift_plan("thermal-mild")
        assert plan is not None and plan.enabled
        assert resolve_drift_plan(plan) is plan

    def test_env_profile(self, monkeypatch):
        monkeypatch.setenv("REPRO_DRIFT_PROFILE", "thermal-harsh")
        assert drift_plan_from_env() == DRIFT_PROFILES["thermal-harsh"]
        assert resolve_drift_plan("auto") == DRIFT_PROFILES["thermal-harsh"]
        monkeypatch.setenv("REPRO_DRIFT_PROFILE", "bogus")
        with pytest.raises(ValueError, match="unknown drift profile"):
            drift_plan_from_env()


class TestDriftInjector:
    def test_thermal_ramp_shape(self):
        plan = DriftPlan(
            thermal_scale=0.5, thermal_mode="ramp",
            thermal_onset_s=10.0, thermal_ramp_s=10.0,
        )
        injector = plan.injector()
        assert injector.thermal_factor(0.0) == 1.0
        assert injector.thermal_factor(10.0) == 1.0
        assert injector.thermal_factor(15.0) == pytest.approx(0.75)
        assert injector.thermal_factor(20.0) == pytest.approx(0.5)
        assert injector.thermal_factor(100.0) == pytest.approx(0.5)

    def test_thermal_step_shape(self):
        plan = DriftPlan(
            thermal_scale=0.6, thermal_mode="step", thermal_onset_s=5.0
        )
        injector = plan.injector()
        assert injector.thermal_factor(4.99) == 1.0
        assert injector.thermal_factor(5.0) == pytest.approx(0.6)

    def test_time_offset_continues_trajectory(self):
        plan = DriftPlan(
            thermal_scale=0.5, thermal_mode="ramp",
            thermal_onset_s=6.0, thermal_ramp_s=10.0,
        )
        fresh = plan.injector()
        resumed = plan.injector(time_offset=8.0)
        # the resumed injector at local t sees the trajectory at t + 8
        assert resumed.thermal_factor(3.0) == pytest.approx(
            fresh.thermal_factor(11.0)
        )

    def test_geometry_factor_deterministic_per_key(self):
        plan = DriftPlan(geometry_shift=0.3, geometry_onset_s=0.0)
        a = plan.injector()
        b = plan.injector()
        key = (2, 5)
        assert a.geometry_factor(key, 1.0) == b.geometry_factor(key, 1.0)
        # a different counter id draws a different (still seeded) factor
        assert a.geometry_factor((2, 5), 1.0) != a.geometry_factor((2, 6), 1.0) or (
            a.geometry_factor((2, 7), 1.0) != a.geometry_factor((2, 5), 1.0)
        )

    def test_drift_value_scales_increments_cumulatively(self):
        plan = DriftPlan(thermal_scale=0.5, thermal_mode="step", thermal_onset_s=0.0)
        injector = plan.injector()
        key = (0, 1)
        assert injector.drift_value(key, 100, 1.0) == 50
        # next read: +100 raw -> +50 drifted, on top of the drifted base
        assert injector.drift_value(key, 200, 2.0) == 100
        assert injector.stats.reads_scaled == 2
        assert injector.stats.min_thermal_factor == pytest.approx(0.5)

    def test_counter_reset_passes_through(self):
        plan = DriftPlan(thermal_scale=0.5, thermal_mode="step", thermal_onset_s=0.0)
        injector = plan.injector()
        key = (0, 1)
        injector.drift_value(key, 1000, 1.0)
        # a smaller raw value means the counter reset; don't invent a delta
        assert injector.drift_value(key, 10, 2.0) <= 10

    def test_kgsl_boundary_injection(self, config, chase_store):
        """Drift rewrites reads at the device file, not in the engine."""
        from repro.core.pipeline import simulate_credential_entry

        trace = simulate_credential_entry(
            config, _chase(), "pw123456", seed=3
        )
        plan = DriftPlan(thermal_scale=0.5, thermal_mode="step", thermal_onset_s=0.0)
        clean = open_kgsl(
            trace.timeline, clock=DeviceClock(), adreno_model=trace.config.gpu.model
        )
        drifted = open_kgsl(
            trace.timeline,
            clock=DeviceClock(),
            adreno_model=trace.config.gpu.model,
            drift_injector=plan.injector(),
        )
        clean_deltas = nonzero_deltas_vectorized(
            PerfCounterSampler(clean, rng=np.random.default_rng(1)).sample_range(
                0.0, trace.end_time_s
            )
        )
        drift_deltas = nonzero_deltas_vectorized(
            PerfCounterSampler(drifted, rng=np.random.default_rng(1)).sample_range(
                0.0, trace.end_time_s
            )
        )
        clean_total = sum(sum(d.values.values()) for d in clean_deltas)
        drift_total = sum(sum(d.values.values()) for d in drift_deltas)
        assert drift_total < clean_total
        assert drift_total == pytest.approx(clean_total * 0.5, rel=0.05)


def _chase():
    from repro.android.apps import app

    return app("chase")


def _drifted_deltas(config, credential, seed, plan, time_offset=0.0):
    from repro.core.pipeline import simulate_credential_entry

    trace = simulate_credential_entry(config, _chase(), credential, seed=seed)
    kgsl = open_kgsl(
        trace.timeline,
        clock=DeviceClock(),
        adreno_model=trace.config.gpu.model,
        drift_injector=(
            plan.injector(time_offset=time_offset) if plan is not None else None
        ),
    )
    sampler = PerfCounterSampler(kgsl, rng=np.random.default_rng(1000 + seed))
    return (
        nonzero_deltas_vectorized(sampler.sample_range(0.0, trace.end_time_s)),
        trace,
    )


class TestDriftDegradesAccuracy:
    def test_harsh_thermal_breaks_frozen_model(self, config, chase_model):
        credential = "Tr0ub4dor&3"
        plan = DriftPlan(thermal_scale=0.55, thermal_mode="step", thermal_onset_s=0.0)
        clean, _ = _drifted_deltas(config, credential, 24, None)
        drifted, _ = _drifted_deltas(config, credential, 24, plan)

        def infer(deltas):
            engine = OnlineEngine(
                chase_model, track_corrections=False, recover_collisions=False
            )
            engine.begin()
            engine.feed_many(deltas)
            return engine.finish()

        assert infer(clean).text == credential
        assert infer(drifted).text != credential


# ---------------------------------------------------------------------------
# calibration: policy, triggers, re-fit math


class TestCalibrationPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="low_confidence_threshold"):
            CalibrationPolicy(low_confidence_threshold=0)
        with pytest.raises(ValueError, match="suspect_ratio"):
            CalibrationPolicy(suspect_ratio=0.0)
        with pytest.raises(ValueError, match="max_refits"):
            CalibrationPolicy(max_refits=-1)

    def test_profiles_round_trip(self):
        for name, policy in CALIBRATION_PROFILES.items():
            assert CalibrationPolicy.from_profile(name) == policy
            assert CalibrationPolicy.from_dict(policy.to_dict()) == policy

    def test_resolve_semantics(self, monkeypatch):
        monkeypatch.delenv("REPRO_CALIBRATION", raising=False)
        assert resolve_calibration(None) is None
        assert resolve_calibration("auto") is None
        assert resolve_calibration("off") is None  # max_refits=0
        policy = resolve_calibration("eager")
        assert policy is not None and policy.enabled
        assert resolve_calibration(policy) is policy
        monkeypatch.setenv("REPRO_CALIBRATION", "conservative")
        assert resolve_calibration("auto") == CALIBRATION_PROFILES["conservative"]


class TestEstimateRefit:
    def test_uniform_ratio_recovered(self, chase_model):
        ratio_true = 0.55
        evidence = [
            chase_model.centroids[i] * ratio_true
            for i in range(0, len(chase_model.labels), 3)
        ]
        refit = estimate_refit(chase_model, evidence)
        assert refit is not None
        ratio, cth = refit
        np.testing.assert_allclose(ratio, ratio_true, rtol=1e-6)
        assert chase_model.cth <= cth <= 2.0 * chase_model.cth

    def test_rescale_preserves_normalized_geometry(self, chase_model):
        """(v − r·c) / (r·s) == (v/r − c)/s: a perfectly re-fit model
        classifies drifted centroids exactly like the original
        classifies undrifted ones."""
        ratio = np.full(chase_model.centroids.shape[1], 0.55)
        refit = rescale_model(chase_model, ratio)
        for i in (0, 5, 11):
            label = chase_model.labels[i]
            drifted_press = chase_model.centroids[i] * 0.55
            result = refit.classify_vector(drifted_press)
            assert result.label == label
            assert result.distance == pytest.approx(0.0, abs=1e-9)

    def test_refit_records_lineage_generation(self, chase_model):
        ratio = np.full(chase_model.centroids.shape[1], 0.7)
        gen1 = rescale_model(chase_model, ratio, lineage={"device_id": "d0"})
        assert gen1.metadata["recalibration"]["generation"] == 1
        assert gen1.metadata["recalibration"]["device_id"] == "d0"
        gen2 = rescale_model(gen1, ratio)
        assert gen2.metadata["recalibration"]["generation"] == 2

    def test_unmatched_evidence_returns_none(self, chase_model):
        noise = [np.full(chase_model.centroids.shape[1], -1.0)]
        # anti-correlated junk matches no centroid above the cosine gate
        assert estimate_refit(chase_model, noise, match_cosine=0.99) is None
        assert estimate_refit(chase_model, []) is None


class TestCalibrationService:
    class Stats:
        def __init__(self, deltas=0, noise=0, lowconf=0, keys=0):
            self.deltas_seen = deltas
            self.noise_events = noise
            self.low_confidence_keys = lowconf
            self.keys_inferred = keys

    def test_low_confidence_trigger(self, chase_model):
        service = CalibrationService(CalibrationPolicy(min_evidence=1))
        evidence = [chase_model.centroids[0] * 0.6]
        service.observe("d0", self.Stats(deltas=30, lowconf=3), evidence=evidence)
        assert service.should_recalibrate("d0")

    def test_suspect_fraction_trigger_needs_min_observations(self, chase_model):
        policy = CalibrationPolicy(
            min_evidence=1, min_observations=12, suspect_ratio=0.35
        )
        service = CalibrationService(policy)
        evidence = [chase_model.centroids[0] * 0.6] * 6
        service.observe("d0", self.Stats(deltas=8, noise=6), evidence=evidence)
        assert not service.should_recalibrate("d0")  # too few deltas yet
        service.observe("d0", self.Stats(deltas=8, noise=6), evidence=evidence)
        assert service.should_recalibrate("d0")  # 12/16 unexplained

    def test_healthy_reject_noise_does_not_trip(self):
        """Popup dismissals classify as reject-class noise — a big slice
        of a healthy stream.  Only *unexplained* deltas count."""
        service = CalibrationService(CalibrationPolicy(min_evidence=1))
        # lots of explained noise events, no evidence vectors
        service.observe("d0", self.Stats(deltas=40, noise=15, keys=11))
        assert not service.should_recalibrate("d0")

    def test_min_evidence_gates_refit(self, chase_model):
        service = CalibrationService(CalibrationPolicy(min_evidence=6))
        service.observe(
            "d0",
            self.Stats(deltas=30, lowconf=5),
            evidence=[chase_model.centroids[0] * 0.6] * 5,
        )
        assert not service.should_recalibrate("d0")

    def test_max_refits_cap(self, chase_model):
        policy = CalibrationPolicy(min_evidence=1, max_refits=1)
        service = CalibrationService(policy)
        evidence = [chase_model.centroids[i] * 0.6 for i in range(8)]
        service.observe("d0", self.Stats(deltas=30, lowconf=3), evidence=evidence)
        assert service.should_recalibrate("d0")
        assert service.recalibrate("d0", chase_model) is not None
        service.observe("d0", self.Stats(deltas=30, lowconf=3), evidence=evidence)
        assert not service.should_recalibrate("d0")  # cap reached

    def test_rejected_refit_resets_window(self, chase_model):
        service = CalibrationService(CalibrationPolicy(min_evidence=1))
        junk = [np.full(chase_model.centroids.shape[1], -1.0)] * 6
        service.observe("d0", self.Stats(deltas=30, lowconf=3), evidence=junk)
        assert service.should_recalibrate("d0")
        assert service.recalibrate("d0", chase_model) is None
        # the evidence was consumed either way
        assert not service.should_recalibrate("d0")
        assert service.window("d0").refits == 0

    def test_refits_fit_against_base_model(self, chase_model):
        """Generation N is base × fresh ratio — estimation noise never
        compounds through intermediate generations."""
        service = CalibrationService(CalibrationPolicy(min_evidence=1))
        evidence = [chase_model.centroids[i] * 0.5 for i in range(8)]
        first = service.recalibrate("d0", chase_model)
        assert first is None  # no evidence yet: consumed-empty window
        service.observe("d0", self.Stats(deltas=30, lowconf=3), evidence=evidence)
        gen1 = service.recalibrate("d0", chase_model)
        np.testing.assert_allclose(gen1.centroids, chase_model.centroids * 0.5)
        # second round of evidence at a *different* ratio: the re-fit is
        # against the base, so centroids land at base × 0.25, not
        # gen1 × 0.25
        evidence2 = [chase_model.centroids[i] * 0.25 for i in range(8)]
        service.observe("d0", self.Stats(deltas=30, lowconf=3), evidence=evidence2)
        gen2 = service.recalibrate("d0", gen1)
        np.testing.assert_allclose(gen2.centroids, chase_model.centroids * 0.25)
        assert gen2.metadata["recalibration"]["generation"] == 2

    def test_versioned_store_persistence(self, chase_model, tmp_path):
        store = VersionedModelStore(tmp_path / "lineage")
        service = CalibrationService(
            CalibrationPolicy(min_evidence=1), store=store
        )
        evidence = [chase_model.centroids[i] * 0.5 for i in range(8)]
        service.observe("d0", self.Stats(deltas=30, lowconf=3), evidence=evidence)
        refit = service.recalibrate("d0", chase_model)
        assert refit is not None
        assert store.versions() == [1]
        lineage = store.lineage_of(1)
        assert lineage["device_id"] == "d0"
        assert lineage["generation"] == 1
        loaded = store.load_latest().get(chase_model.model_key)
        np.testing.assert_allclose(loaded.centroids, refit.centroids, atol=0.01)


# ---------------------------------------------------------------------------
# hot model swap


class _SwapOnFirstBatch:
    """Model proxy that hot-swaps the engine on its first batch call —
    simulating a recalibration landing while feed_many is mid-batch."""

    def __init__(self, inner, replacement):
        self._inner = inner
        self._replacement = replacement
        self.engine = None
        self.batch_calls = 0

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def classify_batch(self, matrix, masks):
        self.batch_calls += 1
        if self.batch_calls == 1 and self.engine is not None:
            self.engine.swap_model(self._replacement)
        return self._inner.classify_batch(matrix, masks)


class TestSwapModel:
    def test_swap_preserves_stream_state(self, config, chase_model):
        deltas, trace = _drifted_deltas(config, "pw123456", 3, None)
        engine = OnlineEngine(
            chase_model, track_corrections=False, recover_collisions=False
        )
        engine.begin()
        half = len(deltas) // 2
        engine.feed_many(deltas[:half])
        keys_before = engine._result.stats.keys_inferred
        engine.swap_model(chase_model)
        engine.feed_many(deltas[half:])
        result = engine.finish()
        assert engine.model_swaps == 1
        # swapping in the same model must not perturb the inference
        assert result.text == "pw123456"
        assert result.stats.keys_inferred >= keys_before

    def test_swap_emits_trace_event_and_counter(self, chase_model):
        from repro.obs import MetricsRegistry
        from repro.runtime import RuntimeTrace

        trace = RuntimeTrace()
        metrics = MetricsRegistry()
        engine = OnlineEngine(chase_model, trace=trace, session="s0", metrics=metrics)
        engine.begin()
        engine.swap_model(chase_model)
        assert metrics.counter("engine.model_swaps").value == 1
        assert any(e.kind == "model_swap" for e in trace.events)

    def test_swap_mid_feed_many_rebatches_tail(self, config, chase_model):
        """A swap landing inside a feed_many batch re-scores the tail
        against the new model: every delta classified exactly once."""
        deltas, _ = _drifted_deltas(config, "pw123456", 3, None)
        proxy = _SwapOnFirstBatch(chase_model, chase_model)
        engine = OnlineEngine(
            proxy, track_corrections=False, recover_collisions=False
        )
        proxy.engine = engine
        engine.begin()
        engine.feed_many(deltas)
        result = engine.finish()
        assert engine.model_swaps == 1
        # the tail was re-batched against the (identical) replacement,
        # so the inference matches the no-swap run exactly
        assert result.text == "pw123456"
        assert result.stats.deltas_seen == len([d for d in deltas if d])
        # first batch bailed after one consumed delta; the replacement
        # covered the tail — the proxy itself was only asked once
        assert proxy.batch_calls == 1

    def test_swap_reapplies_deflation(self, chase_model):
        engine = OnlineEngine(chase_model, recover_collisions=True)
        engine.begin()
        direction = np.zeros(chase_model.centroids.shape[1])
        direction[0] = 1.0
        engine._deflation_u = direction
        engine.swap_model(chase_model)
        # the active view is the deflated wrapper, not the raw model
        assert engine._active_model is not chase_model
        assert engine.model is chase_model


# ---------------------------------------------------------------------------
# low-confidence flagging (the masked-centroid suspect signal)


class TestLowConfidenceFlagging:
    class _Classification:
        """Duck-typed classification WITHOUT a confidence attribute."""

        def __init__(self, char, distance=0.1):
            self.key_char = char
            self.distance = distance

    def _engine(self, chase_model):
        engine = OnlineEngine(chase_model, detect_switches=False)
        engine.begin()
        return engine

    def test_confidence_below_one_flags_key(self, chase_model):
        from repro.core.classifier import Classification

        engine = self._engine(chase_model)
        result = engine._result
        cls = Classification(label="key:a", distance=0.1, confidence=0.7)
        engine._infer_key(result, 0.1, cls, from_split=False)
        assert result.stats.low_confidence_keys == 1
        assert result.keys[-1].low_confidence

    def test_full_confidence_not_flagged(self, chase_model):
        from repro.core.classifier import Classification

        engine = self._engine(chase_model)
        result = engine._result
        cls = Classification(label="key:a", distance=0.1, confidence=1.0)
        engine._infer_key(result, 0.1, cls, from_split=False)
        assert result.stats.low_confidence_keys == 0
        assert not result.keys[-1].low_confidence

    def test_missing_confidence_attribute_defaults_to_confident(
        self, chase_model
    ):
        """The getattr fallback: a classification object without a
        ``confidence`` attribute counts as fully confident."""
        engine = self._engine(chase_model)
        result = engine._result
        engine._infer_key(
            result, 0.1, self._Classification("b"), from_split=False
        )
        assert result.stats.low_confidence_keys == 0
        assert not result.keys[-1].low_confidence

    def test_low_confidence_keys_survive_worker_merge(self, config, chase_store):
        """The suspect signal feeds recalibration decisions — a sharded
        run must deliver the same per-session counts as the serial run."""
        from repro.api import AttackConfig, run_sessions, simulate
        from repro.faults import FaultPlan
        from repro.parallel.sharded import ShardedRuntime

        target = _chase()
        traces = [
            simulate(config, target, credential, seed=5 + i)
            for i, credential in enumerate(["Tr0ub4dor&3", "hunter2", "pw123456"])
        ]
        cfg = AttackConfig(
            recognize_device=False,
            fault_plan=FaultPlan.from_profile("harsh", seed=3),
            drift=None,
        )
        serial = run_sessions(chase_store, traces, seed=99, config=cfg)
        sharded = ShardedRuntime(
            chase_store, config=cfg, workers=2, mp_context="inline"
        ).run_sessions(traces, seed=99)
        serial_counts = [r.stats.low_confidence_keys for r in serial]
        sharded_counts = [r.stats.low_confidence_keys for r in sharded]
        assert serial_counts == sharded_counts
        assert sum(serial_counts) >= 1  # the harsh profile masks reads


# ---------------------------------------------------------------------------
# the full arc


class TestRunLifecycle:
    def test_validation(self):
        with pytest.raises(ValueError, match="credential"):
            run_lifecycle(credential="")
        with pytest.raises(ValueError, match="segments"):
            run_lifecycle(segments=0)

    def test_driftless_run_is_all_baseline(self, chase_store):
        report = run_lifecycle(
            segments=2, seed=24, store=chase_store, drift=None, calibration=None
        )
        assert all(not s.drift_active for s in report.segments)
        assert report.recalibrations == 0
        assert report.baseline_exact == 1.0
        assert report.recovery_ratio == 1.0
        assert report.drift["reads_scaled"] == 0

    def test_frozen_model_control_arm_stays_broken(self, chase_store):
        report = run_lifecycle(
            segments=4,
            seed=24,
            store=chase_store,
            drift="thermal-harsh",
            calibration=None,
        )
        assert report.recalibrations == 0
        assert report.model_swaps == 0
        drifted = [s for s in report.segments if s.thermal_factor < 0.6]
        assert drifted and all(not s.exact for s in drifted)

    def test_degrade_recalibrate_recover(self, chase_store, tmp_path):
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
        report = run_lifecycle(
            segments=6,
            seed=24,
            store=chase_store,
            drift="thermal-harsh",
            calibration="default",
            metrics=metrics,
            model_dir=tmp_path / "lineage",
        )
        # the arc: clean baseline, collapse under drift, recovery after
        # the last re-fit — all inside ONE engine session
        assert report.baseline_exact == 1.0
        assert report.drifted_exact == 0.0
        assert report.recovered_exact == 1.0
        assert report.recovery_ratio == 1.0
        assert report.recalibrations >= 1
        assert report.model_swaps == report.recalibrations
        # every generation persisted: offline v1 + one per re-fit
        assert report.store_versions == 1 + report.recalibrations
        store = VersionedModelStore(tmp_path / "lineage")
        assert store.lineage_of(1)["reason"] == "offline"
        assert store.lineage_of(2)["device_id"] == "device-0"
        # the counters the manifest rolls up
        assert metrics.counter("calibration.refits").value == report.recalibrations
        assert metrics.counter("engine.model_swaps").value == report.model_swaps
        assert metrics.counter("drift.reads_scaled").value > 0
        assert metrics.counter("lifecycle.segments").value == 6
        assert 0.0 < metrics.gauge("drift.min_thermal_factor").value < 1.0
        # report serializes (the CLI embeds it in the run manifest)
        as_dict = report.as_dict()
        assert as_dict["recovery_ratio"] == 1.0
        assert len(as_dict["segments"]) == 6


class TestAttackLevelCalibration:
    def test_cross_session_recalibration_recovers(self, config, chase_store):
        """The EavesdropAttack path: evidence accumulates across
        *sessions*, the re-fit lands in the attack's live-model map, and
        later sessions classify with the recalibrated generation."""
        from repro.core.pipeline import EavesdropAttack, simulate_credential_entry

        plan = DriftPlan(
            thermal_scale=0.55, thermal_mode="step", thermal_onset_s=0.0
        )
        attack = EavesdropAttack(
            chase_store,
            recognize_device=False,
            track_corrections=False,
            recover_collisions=False,
            fault_plan=None,
            drift=plan,
            calibration=CalibrationPolicy(min_evidence=6, profile=""),
        )
        texts = []
        for i in range(4):
            trace = simulate_credential_entry(
                config, _chase(), "Tr0ub4dor&3", seed=24 + i
            )
            texts.append(attack.run_on_trace(trace, seed=24 + i).text)
        assert attack.calibration is not None
        key = chase_store.keys()[0]
        window = attack.calibration.window(key)
        assert window.refits >= 1
        # drifted sessions before the re-fit fail; once the live model
        # is the recalibrated generation, sessions recover
        assert texts[0] != "Tr0ub4dor&3"
        assert texts[-1] == "Tr0ub4dor&3"
        refit = attack.current_model(key)
        assert refit is not chase_store.get(key)
        assert refit.metadata["recalibration"]["generation"] == window.refits
