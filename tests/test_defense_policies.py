"""Tests for the composable defense layer (paper Section 9).

Covers the :class:`~repro.mitigations.MitigationPolicy` spec and its
registry, the claimed composition laws (order invariance), the
:class:`~repro.mitigations.PolicyEnforcer` value pipeline at the KGSL
boundary, EACCES propagation into the sampler's permanent-masking path
(including interplay with injected faults), and the
``AttackConfig(mitigation=...)`` threading through the facade, worker
sharding, and the fleet.  See ``docs/defenses.md``.
"""

import itertools
import os

import numpy as np
import pytest

from repro.api import (
    AttackConfig,
    FaultPlan,
    IoctlError,
    MITIGATION_ENV,
    MITIGATION_REGISTRY,
    MetricsRegistry,
    MitigationPolicy,
    PolicyEnforcer,
    ProcessContext,
    UnknownNameError,
    attack,
    compose,
    mitigation,
    mitigation_names,
    run_defense_matrix,
    run_sessions,
    simulate,
    train,
)
from repro.kgsl.device_file import DeviceClock, open_kgsl
from repro.kgsl.sampler import PerfCounterSampler
from repro.scenarios import scenario

UNTRUSTED = ProcessContext()  # default context is an untrusted app
PROFILER = ProcessContext(selinux_context="graphics_profiler")


@pytest.fixture(scope="module")
def pinpad_cfg():
    return AttackConfig(scenario="pinpad", recognize_device=False, fault_plan=None)


@pytest.fixture(scope="module")
def pinpad_store(pinpad_cfg):
    return train(config=pinpad_cfg)


def _mitigated(base: AttackConfig, policy) -> AttackConfig:
    return AttackConfig.from_dict({**base.to_dict(), "mitigation": policy})


# ---------------------------------------------------------------------------
# spec + registry


class TestPolicySpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            MitigationPolicy(name="")
        with pytest.raises(ValueError):
            MitigationPolicy(name="x", rate_limit_hz=0)
        with pytest.raises(ValueError):
            MitigationPolicy(name="x", quantize_step=0)
        with pytest.raises(ValueError):
            MitigationPolicy(name="x", noise_strength=-1.0)

    def test_dict_round_trip_every_registered_policy(self):
        for name in mitigation_names():
            policy = mitigation(name)
            assert MitigationPolicy.from_dict(policy.to_dict()) == policy

    def test_from_dict_rejects_unknown_fields(self):
        payload = mitigation("rbac").to_dict()
        payload["typo_field"] = 1
        with pytest.raises(ValueError, match="typo_field"):
            MitigationPolicy.from_dict(payload)

    def test_registry_suggests_on_typo(self):
        with pytest.raises(UnknownNameError, match="rbac"):
            mitigation("rbca")

    def test_required_paper_policies_registered(self):
        names = set(mitigation_names())
        assert {"allow-all", "rbac", "popup-disable"} <= names
        # at least one obfuscation sweep point
        assert any("obfuscate" in n or "rate-limit" in n for n in names)

    def test_no_op_policy_builds_no_enforcer(self):
        assert mitigation("allow-all").enforcer(seed=1) is None
        assert mitigation("popup-disable").enforcer(seed=1) is None
        assert mitigation("rbac").enforcer(seed=1) is not None


class TestComposition:
    def test_order_invariance_all_registered_pairs(self):
        policies = [mitigation(name) for name in mitigation_names()]
        for a, b in itertools.combinations(policies, 2):
            assert a.compose(b) == b.compose(a), f"{a.name} x {b.name}"

    def test_associativity(self):
        a, b, c = (mitigation(n) for n in ("rbac", "quantize-4096", "popup-disable"))
        assert a.compose(b).compose(c) == a.compose(b.compose(c))

    def test_strictest_parameter_wins(self):
        fast = MitigationPolicy(name="fast", rate_limit_hz=100.0, quantize_step=16)
        slow = MitigationPolicy(name="slow", rate_limit_hz=10.0, quantize_step=4096)
        merged = fast.compose(slow)
        assert merged.rate_limit_hz == 10.0
        assert merged.quantize_step == 4096

    def test_privileged_contexts_intersect(self):
        a = MitigationPolicy(name="a", rbac=True, privileged_contexts=("su", "shell"))
        b = MitigationPolicy(name="b", rbac=True, privileged_contexts=("su",))
        assert a.compose(b).privileged_contexts == ("su",)

    def test_compose_varargs_with_name(self):
        merged = compose(
            mitigation("rbac"), mitigation("quantize-4096"), name="stack"
        )
        assert merged.name == "stack"
        assert merged.rbac and merged.quantize_step == 4096
        assert "composed" in merged.tags


# ---------------------------------------------------------------------------
# enforcer value pipeline


class TestPolicyEnforcer:
    def test_rbac_denies_untrusted_allows_privileged(self):
        enforcer = mitigation("rbac").enforcer(seed=0)
        with pytest.raises(IoctlError):
            enforcer.check(UNTRUSTED, "read", 0x19, 14)
        enforcer.check(PROFILER, "read", 0x19, 14)
        assert enforcer.stats.denials == 1

    def test_local_only_zeroes_unprivileged(self):
        enforcer = MitigationPolicy(name="lo", local_only=True).enforcer(seed=0)
        assert enforcer.filter_value(
            context=UNTRUSTED, groupid=1, countable=2, value=9999, now=0.0
        ) == 0
        assert enforcer.filter_value(
            context=PROFILER, groupid=1, countable=2, value=9999, now=0.0
        ) == 9999

    def test_rate_limit_serves_stale_values(self):
        enforcer = MitigationPolicy(name="rl", rate_limit_hz=10.0).enforcer(seed=0)

        def read(value, now):
            return enforcer.filter_value(
                context=UNTRUSTED, groupid=1, countable=2, value=value, now=now
            )

        assert read(100, 0.0) == 100
        # inside the 100 ms window the cached value is served
        assert read(150, 0.05) == 100
        assert enforcer.stats.stale_serves == 1
        # past the window the fresh value flows again
        assert read(200, 0.11) == 200

    def test_quantize_floors_to_step(self):
        enforcer = MitigationPolicy(name="q", quantize_step=4096).enforcer(seed=0)
        value = enforcer.filter_value(
            context=UNTRUSTED, groupid=1, countable=2, value=10_000, now=0.0
        )
        assert value == 8192

    def test_noise_walk_is_monotone_and_seeded(self):
        policy = MitigationPolicy(name="n", noise_strength=2.0)
        enforcer = policy.enforcer(seed=5)
        previous = 0
        for i, true_value in enumerate((1000, 5000, 20_000, 90_000)):
            served = enforcer.filter_value(
                context=UNTRUSTED, groupid=1, countable=2,
                value=true_value, now=0.01 * i,
            )
            assert served >= previous, "counters must never run backwards"
            previous = served
        # same seed reproduces the walk; a different seed diverges
        replay = [
            policy.enforcer(seed=5).filter_value(
                context=UNTRUSTED, groupid=1, countable=2, value=50_000, now=0.0
            )
            for _ in range(2)
        ]
        assert replay[0] == replay[1]

    def test_pipeline_stacks_all_layers(self):
        stack = compose(
            MitigationPolicy(name="q", quantize_step=64),
            MitigationPolicy(name="rl", rate_limit_hz=5.0),
            name="q+rl",
        )
        enforcer = stack.enforcer(seed=0)
        first = enforcer.filter_value(
            context=UNTRUSTED, groupid=1, countable=2, value=1000, now=0.0
        )
        assert first % 64 == 0
        # the stale serve replays the *post-pipeline* value
        second = enforcer.filter_value(
            context=UNTRUSTED, groupid=1, countable=2, value=5000, now=0.01
        )
        assert second == first

    def test_flush_metrics_emits_mitigation_counters(self):
        registry = MetricsRegistry()
        enforcer = mitigation("rbac").enforcer(seed=0)
        with pytest.raises(IoctlError):
            enforcer.check(UNTRUSTED, "get", 0x19, 14)
        enforcer.flush_metrics(registry)
        counters = registry.manifest().counters
        assert counters["mitigation.denials"] == 1
        assert counters["mitigation.checks"] == 1


# ---------------------------------------------------------------------------
# EACCES propagation into the sampler (faults interplay)


def _pinpad_trace(cfg, credential="19283746", seed=3):
    return simulate(credential=credential, seed=seed, config=cfg)


class TestEaccesPropagation:
    def test_attack_survives_rbac_blind(self, pinpad_store, pinpad_cfg):
        cfg = _mitigated(pinpad_cfg, "rbac")
        result = attack(pinpad_store, _pinpad_trace(cfg), seed=41, config=cfg)
        assert result.text == ""
        assert result.degraded

    def test_denial_events_reach_the_manifest(self, pinpad_store, pinpad_cfg):
        cfg = _mitigated(pinpad_cfg, "rbac")
        registry = MetricsRegistry()
        attack(pinpad_store, _pinpad_trace(cfg), seed=42, config=cfg, metrics=registry)
        counters = registry.manifest().counters
        assert counters["sampler.counters_denied"] > 0
        assert counters["mitigation.denials"] > 0
        assert counters["faults.events.counter_denied"] > 0

    def test_rbac_composes_with_injected_faults(self, pinpad_store, pinpad_cfg):
        # permanent policy masking and transient fault recovery coexist:
        # the run completes blind, not crashed, under both
        cfg = AttackConfig.from_dict(
            {
                **pinpad_cfg.to_dict(),
                "mitigation": "rbac",
                "fault_plan": FaultPlan.from_profile("harsh", seed=9).to_dict(),
            }
        )
        result = attack(pinpad_store, _pinpad_trace(cfg), seed=43, config=cfg)
        assert result.text == ""
        assert result.degraded

    def test_mid_session_revocation_masks_for_good(self, pinpad_cfg):
        # counters reserve fine, then the policy lands (an OTA applying
        # the SELinux rule): the next read EACCES-masks every active
        # counter permanently
        trace = _pinpad_trace(pinpad_cfg)
        kgsl = open_kgsl(
            trace.timeline,
            clock=DeviceClock(),
            context=UNTRUSTED,
            adreno_model=trace.config.gpu.model,
        )
        sampler = PerfCounterSampler(kgsl, rng=np.random.default_rng(0))
        assert sampler._active, "counters must reserve before the revocation"
        kgsl.access_policy = mitigation("rbac").enforcer(seed=0)
        assert sampler.read_once() is None
        assert sampler._active == []
        assert sampler.counters_denied > 0
        # denied counters are exempt from revival: still blind later
        assert sampler.read_once() == {}
        assert sampler.counters_denied == len(sampler.counters)


# ---------------------------------------------------------------------------
# AttackConfig threading


class TestConfigThreading:
    def test_default_auto_resolves_to_none(self, monkeypatch):
        monkeypatch.delenv(MITIGATION_ENV, raising=False)
        assert AttackConfig().resolved_mitigation() is None

    def test_auto_honors_environment(self, monkeypatch):
        monkeypatch.setenv(MITIGATION_ENV, "rbac")
        assert AttackConfig().resolved_mitigation().name == "rbac"

    def test_explicit_none_beats_environment(self, monkeypatch):
        monkeypatch.setenv(MITIGATION_ENV, "rbac")
        assert AttackConfig(mitigation=None).resolved_mitigation() is None

    def test_typo_fails_at_construction(self):
        with pytest.raises(UnknownNameError):
            AttackConfig(mitigation="rbca")

    def test_instance_survives_dict_round_trip(self):
        stack = compose(mitigation("rbac"), mitigation("popup-disable"))
        cfg = AttackConfig(mitigation=stack)
        revived = AttackConfig.from_dict(cfg.to_dict())
        assert revived.mitigation == stack

    def test_popup_disable_lands_on_the_simulated_device(self, pinpad_cfg):
        cfg = _mitigated(pinpad_cfg, "popup-disable")
        trace = _pinpad_trace(cfg)
        assert not trace.config.keyboard.supports_popup
        clean = _pinpad_trace(pinpad_cfg)
        assert clean.config.keyboard.supports_popup

    def test_allow_all_matches_undefended_run(self, pinpad_store, pinpad_cfg):
        baseline = attack(
            pinpad_store, _pinpad_trace(pinpad_cfg), seed=44, config=pinpad_cfg
        )
        cfg = _mitigated(pinpad_cfg, "allow-all")
        defended = attack(pinpad_store, _pinpad_trace(cfg), seed=44, config=cfg)
        assert defended.text == baseline.text
        assert [vars(k) for k in defended.keys] == [vars(k) for k in baseline.keys]

    def test_workers_parity_under_obfuscation(self, pinpad_store, pinpad_cfg):
        # the enforcer is seeded per session, so sharding cannot shift
        # the noise walk: workers=2 must reproduce workers=1 exactly
        from repro.parallel.sharded import ShardedRuntime

        cfg = _mitigated(pinpad_cfg, "obfuscate-mild")
        traces = [_pinpad_trace(cfg, seed=3 + i) for i in range(2)]
        serial = run_sessions(pinpad_store, traces, seed=77, config=cfg)
        sharded = ShardedRuntime(
            pinpad_store, config=cfg, workers=2, mp_context="inline"
        ).run_sessions(traces, seed=77)
        assert [r.text for r in sharded] == [r.text for r in serial]


# ---------------------------------------------------------------------------
# the matrix harness


class TestDefenseMatrix:
    def test_matrix_shape_and_baselines(self, pinpad_store):
        registry = MetricsRegistry()
        cells = run_defense_matrix(
            ["pinpad"], ["allow-all", "rbac", None], sessions=2, seed=7,
            metrics=registry,
        )
        by_name = {cell.mitigation: cell for cell in cells}
        assert set(by_name) == {"allow-all", "rbac", "none"}
        # allow-all reproduces the undefended baseline exactly
        assert by_name["allow-all"].exact == by_name["none"].exact
        assert by_name["allow-all"].keys_correct == by_name["none"].keys_correct
        # RBAC drives exact recovery to zero, with denials on the books
        assert by_name["rbac"].exact == 0
        assert by_name["rbac"].denials > 0
        gauges = registry.manifest().gauges
        assert gauges["defense.pinpad.rbac.exact_rate"] == 0.0

    def test_matrix_is_deterministic(self):
        scn = scenario("pinpad")
        assert scn.name == "pinpad"
        cells = run_defense_matrix(["pinpad"], [None], sessions=1, seed=7)
        again = run_defense_matrix(["pinpad"], [None], sessions=1, seed=7)
        first, second = cells[0].as_dict(), again[0].as_dict()
        first.pop("wall_s"), second.pop("wall_s")
        assert first == second
