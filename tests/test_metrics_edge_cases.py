"""Edge-case tests across the analysis and scene layers."""

import numpy as np
import pytest

from repro.analysis.metrics import AccuracyReport, align, edit_distance
from repro.android.apps import CHASE
from repro.android.os_config import default_config
from repro.android.scenes import MASK_CHAR, SceneBuilder, UiState


class TestMetricsEdgeCases:
    def test_unicode_bullet_in_alignment(self):
        a = align("a" + MASK_CHAR + "b", "a" + MASK_CHAR + "b")
        assert a.errors == 0

    def test_empty_truth_all_insertions(self):
        a = align("", "abc")
        assert a.insertions == ["a", "b", "c"]
        assert a.correct == 0

    def test_empty_inferred_all_deletions(self):
        a = align("abc", "")
        assert a.deletions == ["a", "b", "c"]

    def test_both_empty(self):
        a = align("", "")
        assert a.errors == 0
        assert edit_distance("", "") == 0

    def test_report_accumulates_across_adds(self):
        report = AccuracyReport()
        report.add("ab", "ab")
        report.add("cd", "cx")
        assert report.traces == 2
        assert report.true_chars == 4
        assert report.correct_chars == 3
        assert report.errors_per_trace == [0, 1]

    def test_group_accuracy_ignores_unseen_groups(self):
        report = AccuracyReport()
        report.add("abc", "abc")
        groups = report.group_accuracy()
        assert set(groups) == {"lower"}

    def test_char_accuracy_counts_only_truth_side(self):
        report = AccuracyReport()
        report.add("a", "ab")  # 'b' inserted, never true
        assert report.char_accuracy("b") == 0.0
        assert "b" not in report.per_char_total


class TestSceneEdgeCases:
    @pytest.fixture(scope="class")
    def builder(self):
        return SceneBuilder(default_config())

    def test_edge_key_popup_clamped_on_screen(self, builder):
        for char in "qp,.":  # extreme columns
            damage = builder.popup_damage(char)
            assert builder.display.bounds.contains(damage), char

    def test_zero_length_field_has_cursor_only(self, builder):
        layer = builder.app_layer(UiState(app=CHASE, typed_len=0, cursor_on=True))
        echoes = [op for op in layer.ops if op.label.startswith("echo_")]
        assert echoes == []
        assert any(op.label == "cursor" for op in layer.ops)

    def test_max_length_field_fits(self, builder):
        layer = builder.app_layer(UiState(app=CHASE, typed_len=16))
        field_rect = CHASE.field_rect(builder.display)
        echoes = [op for op in layer.ops if op.label.startswith("echo_")]
        assert len(echoes) == 16
        # glyphs stay within the horizontal span of the screen
        for op in echoes:
            assert op.rect.right <= builder.display.resolution.width

    def test_overview_with_one_card(self, builder):
        scene = builder.overview_scene(0.5, cards=1)
        card_ops = [
            op for layer in scene for op in layer.ops if op.label.startswith("card")
        ]
        assert len(card_ops) == 2  # card + content

    def test_ripple_identical_shape_for_all_keys(self, builder):
        from repro.mitigations.popup_disable import config_with_popups_disabled

        ripple_builder = SceneBuilder(config_with_popups_disabled(default_config()))
        shapes = set()
        for char in "qazm,.":
            scene = ripple_builder.ripple_scene(char)
            op = scene.layers[0].ops[0]
            shapes.add((op.rect.width, op.rect.height, op.coverage, op.primitives))
        # identical shape modulo screen-edge clamping of extreme keys
        assert len(shapes) <= 2

    def test_masked_field_renders_bullets(self, builder):
        layer = builder.app_layer(UiState(app=CHASE, typed_len=3, last_char="x"))
        echoes = [op for op in layer.ops if op.label.startswith("echo_")]
        assert len({op.fragment_pixels for op in echoes}) == 1, (
            "masked echoes must be identical regardless of typed characters"
        )
