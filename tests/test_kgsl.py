"""Tests for the KGSL device file and ioctl interface."""

import errno

import pytest

from repro.gpu import counters as pc
from repro.gpu.pipeline import FrameStats
from repro.gpu.timeline import RenderTimeline
from repro.kgsl.device_file import DeviceClock, KgslDeviceFile, ProcessContext, open_kgsl
from repro.kgsl.ioctl import (
    IOCTL_KGSL_PERFCOUNTER_GET,
    IOCTL_KGSL_PERFCOUNTER_PUT,
    IOCTL_KGSL_PERFCOUNTER_READ,
    KGSL_PERFCOUNTER_GROUP_LRZ,
    KGSL_PERFCOUNTER_GROUP_RAS,
    KGSL_PERFCOUNTER_GROUP_VPC,
    IoctlError,
    KgslPerfcounterGet,
    KgslPerfcounterPut,
    KgslPerfcounterRead,
    KgslPerfcounterReadGroup,
)


def timeline_with_increment(amount=1234, t=1.0):
    timeline = RenderTimeline()
    inc = pc.CounterIncrement()
    inc.add(pc.LRZ_FULL_8X8_TILES, amount)
    timeline.add_render(t, FrameStats(increment=inc, pixels_touched=amount, render_time_s=0.001))
    return timeline


def reserve(dev, group=KGSL_PERFCOUNTER_GROUP_LRZ, countable=14):
    get = KgslPerfcounterGet(groupid=group, countable=countable)
    dev.ioctl(IOCTL_KGSL_PERFCOUNTER_GET, get)
    return get


def read_one(dev, group=KGSL_PERFCOUNTER_GROUP_LRZ, countable=14):
    req = KgslPerfcounterRead(reads=[KgslPerfcounterReadGroup(groupid=group, countable=countable)])
    dev.ioctl(IOCTL_KGSL_PERFCOUNTER_READ, req)
    return req.reads[0].value


class TestIoctlCodes:
    def test_group_ids_from_paper_fig9(self):
        assert KGSL_PERFCOUNTER_GROUP_VPC == 0x5
        assert KGSL_PERFCOUNTER_GROUP_RAS == 0x7
        assert KGSL_PERFCOUNTER_GROUP_LRZ == 0x19

    def test_request_codes_distinct(self):
        codes = {
            IOCTL_KGSL_PERFCOUNTER_GET,
            IOCTL_KGSL_PERFCOUNTER_PUT,
            IOCTL_KGSL_PERFCOUNTER_READ,
        }
        assert len(codes) == 3

    def test_request_codes_encode_iowr_nr(self):
        # low byte is the command number from msm_kgsl.h
        assert IOCTL_KGSL_PERFCOUNTER_GET & 0xFF == 0x38
        assert IOCTL_KGSL_PERFCOUNTER_PUT & 0xFF == 0x39
        assert IOCTL_KGSL_PERFCOUNTER_READ & 0xFF == 0x3B


class TestDeviceFileSemantics:
    def test_get_then_read(self):
        dev = open_kgsl(timeline_with_increment(777), clock=DeviceClock())
        reserve(dev)
        dev.clock.set(2.0)
        assert read_one(dev) == 777

    def test_get_assigns_register_offset(self):
        dev = open_kgsl(timeline_with_increment())
        get = reserve(dev)
        assert get.offset > 0

    def test_read_without_get_is_einval(self):
        dev = open_kgsl(timeline_with_increment())
        with pytest.raises(IoctlError) as exc:
            read_one(dev)
        assert exc.value.errno == errno.EINVAL

    def test_put_releases_reservation(self):
        dev = open_kgsl(timeline_with_increment())
        reserve(dev)
        dev.ioctl(
            IOCTL_KGSL_PERFCOUNTER_PUT,
            KgslPerfcounterPut(groupid=KGSL_PERFCOUNTER_GROUP_LRZ, countable=14),
        )
        with pytest.raises(IoctlError):
            read_one(dev)

    def test_unknown_group_rejected(self):
        dev = open_kgsl(timeline_with_increment())
        with pytest.raises(IoctlError) as exc:
            reserve(dev, group=0x42)
        assert exc.value.errno == errno.EINVAL

    def test_unknown_request_is_enotty(self):
        dev = open_kgsl(timeline_with_increment())
        with pytest.raises(IoctlError) as exc:
            dev.ioctl(0xDEAD, None)
        assert exc.value.errno == errno.ENOTTY

    def test_closed_fd_is_ebadf(self):
        dev = open_kgsl(timeline_with_increment())
        dev.close()
        with pytest.raises(IoctlError) as exc:
            reserve(dev)
        assert exc.value.errno == errno.EBADF

    def test_empty_read_buffer_rejected(self):
        dev = open_kgsl(timeline_with_increment())
        with pytest.raises(IoctlError):
            dev.ioctl(IOCTL_KGSL_PERFCOUNTER_READ, KgslPerfcounterRead(reads=[]))

    def test_wrong_struct_is_efault(self):
        dev = open_kgsl(timeline_with_increment())
        with pytest.raises(IoctlError) as exc:
            dev.ioctl(IOCTL_KGSL_PERFCOUNTER_GET, object())
        assert exc.value.errno == errno.EFAULT

    def test_context_manager_closes(self):
        with open_kgsl(timeline_with_increment()) as dev:
            reserve(dev)
        with pytest.raises(IoctlError):
            reserve(dev)

    def test_ioctl_count_tracks_calls(self):
        dev = open_kgsl(timeline_with_increment())
        reserve(dev)
        dev.clock.set(2.0)
        read_one(dev)
        assert dev.ioctl_count == 2

    def test_values_reflect_clock_time(self):
        dev = open_kgsl(timeline_with_increment(100, t=1.0), clock=DeviceClock())
        reserve(dev)
        dev.clock.set(0.5)
        assert read_one(dev) == 0
        dev.clock.set(2.0)
        assert read_one(dev) == 100

    def test_blockread_multiple_counters(self):
        dev = open_kgsl(timeline_with_increment(50), clock=DeviceClock())
        for spec in pc.SELECTED_COUNTERS:
            reserve(dev, group=int(spec.group), countable=spec.countable)
        dev.clock.set(2.0)
        req = KgslPerfcounterRead(
            reads=[
                KgslPerfcounterReadGroup(groupid=int(s.group), countable=s.countable)
                for s in pc.SELECTED_COUNTERS
            ]
        )
        dev.ioctl(IOCTL_KGSL_PERFCOUNTER_READ, req)
        values = {(s.groupid, s.countable): s.value for s in req.reads}
        assert values[(KGSL_PERFCOUNTER_GROUP_LRZ, 14)] == 50
        assert values[(KGSL_PERFCOUNTER_GROUP_RAS, 5)] == 0


class TestDeviceClock:
    def test_cannot_go_backwards(self):
        clock = DeviceClock()
        clock.set(5.0)
        with pytest.raises(ValueError):
            clock.set(4.0)
        with pytest.raises(ValueError):
            clock.advance(-1.0)

    def test_advance(self):
        clock = DeviceClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == pytest.approx(2.0)


class TestProcessContext:
    def test_default_is_unprivileged(self):
        ctx = ProcessContext()
        assert ctx.selinux_context == "untrusted_app"
        assert ctx.uid >= 10000  # an app UID, not a system UID
