"""Tests for keyboard layouts and popup geometry (all six keyboards)."""

import pytest

from repro.android.display import Display, Resolution
from repro.android.glyphs import KEYBOARD_CHARACTERS
from repro.android.keyboard import GBOARD, KEYBOARDS, KeyboardLayout, keyboard


@pytest.fixture(params=sorted(KEYBOARDS))
def layout(request):
    return KeyboardLayout(KEYBOARDS[request.param], Display())


class TestRegistry:
    def test_six_keyboards_from_fig20(self):
        assert sorted(KEYBOARDS) == ["gboard", "go", "grammarly", "pinyin", "sogou", "swift"]

    def test_lookup_by_name(self):
        assert keyboard("gboard") is GBOARD

    def test_unknown_keyboard_rejected(self):
        with pytest.raises(KeyError):
            keyboard("samsung")

    def test_gboard_has_highest_duplication_rate(self):
        """Gboard's rich popup animation is the paper's duplication source."""
        assert GBOARD.duplicate_popup_prob == max(
            spec.duplicate_popup_prob for spec in KEYBOARDS.values()
        )

    def test_all_keyboards_support_popups_by_default(self):
        for spec in KEYBOARDS.values():
            assert spec.supports_popup


class TestLayoutGeometry:
    def test_every_fig18_character_has_a_key(self, layout):
        for char in KEYBOARD_CHARACTERS:
            assert layout.has_key(char), f"{layout.spec.name} missing {char!r}"

    def test_key_rects_are_within_keyboard_bounds(self, layout):
        for char in KEYBOARD_CHARACTERS:
            geo = layout.key(char)
            assert layout.bounds.contains(geo.key_rect), char

    def test_popup_rects_stay_on_screen(self, layout):
        screen = layout.display.bounds
        for char in KEYBOARD_CHARACTERS:
            geo = layout.key(char)
            assert screen.contains(geo.popup_rect), char

    def test_popup_is_above_its_key(self, layout):
        for char in "qwertyuiopasdfghjkl":
            geo = layout.key(char)
            assert geo.popup_rect.bottom <= geo.key_rect.top, char

    def test_popup_larger_than_key(self, layout):
        for char in "asdf":
            geo = layout.key(char)
            assert geo.popup_rect.area > geo.key_rect.area

    def test_distinct_keys_have_distinct_rects(self, layout):
        rects = {}
        for char in "qwertyuiopasdfghjklzxcvbnm":
            geo = layout.key(char)
            key = (geo.key_rect.left, geo.key_rect.top)
            assert key not in rects, f"{char!r} collides with {rects.get(key)!r}"
            rects[key] = char

    def test_case_pairs_share_position(self, layout):
        for char in "qaz":
            assert layout.key(char).key_rect == layout.key(char.upper()).key_rect

    def test_pages(self, layout):
        assert layout.key("a").page == "lower"
        assert layout.key("A").page == "upper"
        assert layout.key("@").page == "symbol"

    def test_unknown_character_raises(self, layout):
        with pytest.raises(KeyError):
            layout.key("§")

    def test_backspace_rect_within_bounds(self, layout):
        assert layout.bounds.contains(layout.backspace_rect())


class TestKeysUnder:
    def test_popup_occludes_nearby_keys(self):
        layout = KeyboardLayout(GBOARD, Display())
        geo = layout.key("g")
        under = layout.keys_under(geo.popup_rect)
        assert under, "popup must overlap at least one primary-page key"
        chars = {k.char for k in under}
        assert all(c.islower() or c.isdigit() or c in ",." for c in chars)

    def test_different_keys_occlude_different_sets(self):
        layout = KeyboardLayout(GBOARD, Display())
        under_g = {k.char for k in layout.keys_under(layout.key("g").popup_rect)}
        under_m = {k.char for k in layout.keys_under(layout.key("m").popup_rect)}
        assert under_g != under_m

    def test_top_row_popups_rise_above_the_keyboard(self):
        """Top-row popups occlude the app area, not other keys — their
        positional signal comes from the app content beneath them."""
        layout = KeyboardLayout(GBOARD, Display())
        geo = layout.key("q")
        assert geo.popup_rect.bottom <= layout.bounds.top + layout.row_height


class TestResolutionDependence:
    def test_layout_scales_with_resolution(self):
        fhd = KeyboardLayout(GBOARD, Display(resolution=Resolution.FHD_PLUS))
        qhd = KeyboardLayout(GBOARD, Display(resolution=Resolution.QHD_PLUS))
        assert qhd.key("a").key_rect.area > fhd.key("a").key_rect.area

    def test_height_fraction_respected(self):
        layout = KeyboardLayout(GBOARD, Display())
        expected = int(2376 * GBOARD.height_fraction)
        assert layout.height_px == expected
