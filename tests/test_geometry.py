"""Unit and property tests for the pixel-space geometry primitives."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.android.geometry import Rect, TileCoverage, covered_area


def rects(max_coord=400, max_size=200):
    return st.builds(
        Rect.from_size,
        st.integers(0, max_coord),
        st.integers(0, max_coord),
        st.integers(0, max_size),
        st.integers(0, max_size),
    )


class TestRectBasics:
    def test_width_height_area(self):
        r = Rect(10, 20, 30, 50)
        assert r.width == 20
        assert r.height == 30
        assert r.area == 600

    def test_empty_rect_has_zero_area(self):
        assert Rect(10, 10, 10, 40).area == 0
        assert Rect(10, 10, 5, 40).is_empty

    def test_negative_extent_clamps_to_zero(self):
        r = Rect(10, 10, 0, 0)
        assert r.width == 0 and r.height == 0

    def test_from_size(self):
        r = Rect.from_size(5, 6, 10, 20)
        assert r == Rect(5, 6, 15, 26)

    def test_contains_point(self):
        r = Rect(0, 0, 10, 10)
        assert r.contains_point(0, 0)
        assert r.contains_point(9, 9)
        assert not r.contains_point(10, 10)

    def test_translate(self):
        assert Rect(0, 0, 5, 5).translate(3, 4) == Rect(3, 4, 8, 9)

    def test_inset_shrinks(self):
        assert Rect(0, 0, 10, 10).inset(2, 3) == Rect(2, 3, 8, 7)

    def test_inset_negative_grows(self):
        assert Rect(5, 5, 10, 10).inset(-5, -5) == Rect(0, 0, 15, 15)


class TestIntersectUnion:
    def test_intersect_overlapping(self):
        a = Rect(0, 0, 10, 10)
        b = Rect(5, 5, 15, 15)
        assert a.intersect(b) == Rect(5, 5, 10, 10)

    def test_intersect_disjoint_is_empty(self):
        a = Rect(0, 0, 5, 5)
        b = Rect(6, 6, 10, 10)
        assert a.intersect(b).is_empty
        assert not a.intersects(b)

    def test_touching_edges_do_not_intersect(self):
        a = Rect(0, 0, 5, 5)
        b = Rect(5, 0, 10, 5)
        assert not a.intersects(b)

    def test_contains(self):
        outer = Rect(0, 0, 100, 100)
        assert outer.contains(Rect(10, 10, 20, 20))
        assert not outer.contains(Rect(90, 90, 110, 110))

    def test_contains_empty_always_true(self):
        assert Rect(5, 5, 6, 6).contains(Rect(0, 0, 0, 0))

    def test_union_bounding_box(self):
        a = Rect(0, 0, 5, 5)
        b = Rect(10, 10, 20, 20)
        assert a.union(b) == Rect(0, 0, 20, 20)

    def test_union_with_empty_is_identity(self):
        a = Rect(3, 4, 9, 10)
        assert a.union(Rect(0, 0, 0, 0)) == a
        assert Rect(0, 0, 0, 0).union(a) == a

    @given(rects(), rects())
    def test_intersection_is_contained_in_both(self, a, b):
        inter = a.intersect(b)
        if not inter.is_empty:
            assert a.contains(inter)
            assert b.contains(inter)

    @given(rects(), rects())
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.contains(a)
        assert u.contains(b)

    @given(rects(), rects())
    def test_intersect_commutes(self, a, b):
        assert a.intersect(b) == b.intersect(a)


class TestTiles:
    def test_aligned_rect_only_full_tiles(self):
        cov = Rect(0, 0, 32, 32).tile_counts(8, 8)
        assert cov == TileCoverage(full=16, partial=0)

    def test_unaligned_rect_has_partial_edges(self):
        cov = Rect(1, 1, 31, 31).tile_counts(8, 8)
        # still spans 4x4 tile grid, but the border ring is partial
        assert cov.total == 16
        assert cov.full == 4  # only the interior 2x2 block is full

    def test_tiles_are_origin_aligned(self):
        tiles = list(Rect(10, 10, 20, 20).tiles(8, 8))
        assert tiles[0] == Rect(8, 8, 16, 16)

    def test_empty_rect_has_no_tiles(self):
        assert list(Rect(5, 5, 5, 5).tiles(8, 8)) == []
        assert Rect(5, 5, 5, 5).tile_counts(8, 8) == TileCoverage(0, 0)

    def test_tile_coverage_addition(self):
        assert TileCoverage(1, 2) + TileCoverage(3, 4) == TileCoverage(4, 6)

    def test_rect_smaller_than_tile(self):
        cov = Rect(2, 2, 5, 5).tile_counts(8, 8)
        assert cov == TileCoverage(full=0, partial=1)

    @given(rects(max_coord=100, max_size=64), st.sampled_from([4, 8, 16, 32]), st.sampled_from([4, 8, 32]))
    @settings(max_examples=60)
    def test_tile_counts_match_explicit_enumeration(self, rect, tw, th):
        full = sum(1 for tile in rect.tiles(tw, th) if rect.contains(tile))
        total = sum(1 for _ in rect.tiles(tw, th))
        cov = rect.tile_counts(tw, th)
        assert cov.full == full
        assert cov.total == total

    @given(rects(max_coord=200, max_size=150))
    @settings(max_examples=60)
    def test_full_tiles_area_bounded_by_rect_area(self, rect):
        cov = rect.tile_counts(8, 8)
        assert cov.full * 64 <= rect.area


class TestCoveredArea:
    def test_single_rect(self):
        assert covered_area([Rect(0, 0, 10, 10)]) == 100

    def test_disjoint_rects_sum(self):
        assert covered_area([Rect(0, 0, 10, 10), Rect(20, 20, 30, 30)]) == 200

    def test_overlapping_rects_counted_once(self):
        a = Rect(0, 0, 10, 10)
        b = Rect(5, 0, 15, 10)
        assert covered_area([a, b]) == 150

    def test_nested_rects(self):
        assert covered_area([Rect(0, 0, 10, 10), Rect(2, 2, 5, 5)]) == 100

    def test_empty_input(self):
        assert covered_area([]) == 0

    def test_empty_rects_ignored(self):
        assert covered_area([Rect(0, 0, 0, 0), Rect(0, 0, 4, 4)]) == 16

    @given(st.lists(rects(max_coord=60, max_size=40), max_size=6))
    @settings(max_examples=50)
    def test_matches_brute_force_pixel_count(self, boxes):
        pixels = set()
        for r in boxes:
            for x in range(r.left, r.right):
                for y in range(r.top, r.bottom):
                    pixels.add((x, y))
        assert covered_area(boxes) == len(pixels)

    @given(st.lists(rects(max_coord=100, max_size=80), max_size=8))
    @settings(max_examples=50)
    def test_bounded_by_sum_of_areas(self, boxes):
        total = covered_area(boxes)
        assert total <= sum(r.area for r in boxes)
        if boxes:
            assert total >= max(r.area for r in boxes)
