"""Tests for the from-scratch classifiers and the Nvidia baseline substrate."""

import numpy as np
import pytest

from repro.baselines.knn import KNearestNeighbors
from repro.baselines.naive_bayes import GaussianNaiveBayes
from repro.baselines.nvidia import (
    DESKTOP_CONTEXTS,
    NVIDIA_METRICS,
    DesktopGpuSampler,
    GEDIT,
)
from repro.baselines.random_forest import DecisionTree, RandomForest


def separable_data(rng, n_per_class=30):
    """Three well-separated Gaussian blobs."""
    X, y = [], []
    for i, label in enumerate(["a", "b", "c"]):
        X.append(rng.normal(loc=i * 10.0, scale=0.5, size=(n_per_class, 4)))
        y.extend([label] * n_per_class)
    return np.vstack(X), y


class TestNaiveBayes:
    def test_high_accuracy_on_separable_data(self, rng):
        X, y = separable_data(rng)
        clf = GaussianNaiveBayes().fit(X, y)
        assert clf.score(X, y) > 0.95

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GaussianNaiveBayes().predict(np.zeros((1, 4)))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            GaussianNaiveBayes().fit(np.zeros(4), ["a"])
        with pytest.raises(ValueError):
            GaussianNaiveBayes().fit(np.zeros((2, 4)), ["a"])

    def test_constant_feature_does_not_crash(self, rng):
        X = np.ones((10, 3))
        X[:5, 0] = 2.0
        y = ["a"] * 5 + ["b"] * 5
        clf = GaussianNaiveBayes().fit(X, y)
        assert clf.predict(np.array([[2.0, 1.0, 1.0]])) == ["a"]

    def test_priors_break_ties(self, rng):
        X = np.vstack([np.zeros((9, 2)), np.zeros((1, 2))])
        y = ["common"] * 9 + ["rare"] * 1
        clf = GaussianNaiveBayes().fit(X, y)
        assert clf.predict(np.zeros((1, 2))) == ["common"]


class TestKnn:
    def test_high_accuracy_on_separable_data(self, rng):
        X, y = separable_data(rng)
        clf = KNearestNeighbors(3).fit(X, y)
        assert clf.score(X, y) > 0.95

    def test_k_validation(self):
        with pytest.raises(ValueError):
            KNearestNeighbors(0)

    def test_needs_k_samples(self):
        with pytest.raises(ValueError):
            KNearestNeighbors(3).fit(np.zeros((2, 2)), ["a", "b"])

    def test_single_neighbour_is_nearest(self, rng):
        X = np.array([[0.0], [10.0], [20.0]])
        y = ["a", "b", "c"]
        clf = KNearestNeighbors(1).fit(X, y)
        assert clf.predict(np.array([[9.0]])) == ["b"]

    def test_majority_vote(self, rng):
        X = np.array([[0.0], [0.1], [5.0]])
        y = ["a", "a", "b"]
        clf = KNearestNeighbors(3).fit(X, y)
        assert clf.predict(np.array([[0.05]])) == ["a"]

    def test_standardization_prevents_scale_domination(self, rng):
        # feature 0 separates classes; feature 1 is huge noise
        X = np.vstack(
            [
                np.column_stack([np.zeros(20), rng.normal(0, 1e6, 20)]),
                np.column_stack([np.ones(20), rng.normal(0, 1e6, 20)]),
            ]
        )
        y = ["a"] * 20 + ["b"] * 20
        clf = KNearestNeighbors(3).fit(X, y)
        test = np.array([[1.0, 0.0], [0.0, 0.0]])
        assert clf.predict(test) == ["b", "a"]


class TestRandomForest:
    def test_high_accuracy_on_separable_data(self, rng):
        X, y = separable_data(rng)
        clf = RandomForest(n_trees=10, seed=1).fit(X, y)
        assert clf.score(X, y) > 0.95

    def test_tree_carves_bimodal_class(self, rng):
        """A bimodal class (the split-read regime of the Nvidia substrate)
        needs two threshold cuts; the tree finds both modes."""
        xs = np.array([0.0, 10.0] * 20 + [5.0] * 20)[:, None]
        y = ["a"] * 40 + ["b"] * 20
        tree = DecisionTree(max_depth=4, max_features=1, rng=np.random.default_rng(0))
        tree.fit(xs, y)
        assert tree.predict(np.array([[5.0]])) == ["b"]
        assert tree.predict(np.array([[0.0]])) == ["a"]
        assert tree.predict(np.array([[10.0]])) == ["a"]

    def test_forest_is_deterministic_given_seed(self, rng):
        X, y = separable_data(rng)
        a = RandomForest(n_trees=5, seed=3).fit(X, y).predict(X[:10])
        b = RandomForest(n_trees=5, seed=3).fit(X, y).predict(X[:10])
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomForest(n_trees=0)
        with pytest.raises(RuntimeError):
            RandomForest().predict(np.zeros((1, 2)))


class TestNvidiaSubstrate:
    def test_three_contexts_from_table2(self):
        assert sorted(DESKTOP_CONTEXTS) == ["dropbox_client", "gedit", "gmail_web"]

    def test_five_metrics(self):
        assert len(NVIDIA_METRICS) == 5

    def test_features_have_metric_dimension(self, rng):
        sampler = DesktopGpuSampler(GEDIT, rng=rng)
        assert sampler.keypress_features("a").shape == (len(NVIDIA_METRICS),)

    def test_collect_shape(self, rng):
        sampler = DesktopGpuSampler(GEDIT, rng=rng)
        X, y = sampler.collect("abc", repeats=4)
        assert X.shape == (12, 5)
        assert y == list("abc") * 4

    def test_table2_regime_all_below_20_percent(self):
        """The headline Table 2 claim: workload-level counters cannot
        resolve key presses — every classifier stays under ~20 %."""
        chars = "abcdefghijklmnopqrstuvwxyz"
        sampler = DesktopGpuSampler(GEDIT, rng=np.random.default_rng(0))
        Xtr, ytr = sampler.collect(chars, repeats=10)
        Xte, yte = sampler.collect(chars, repeats=5)
        for clf in (
            GaussianNaiveBayes(),
            KNearestNeighbors(3),
            RandomForest(n_trees=20, seed=1),
        ):
            assert clf.fit(Xtr, ytr).score(Xte, yte) < 0.20

    def test_signal_is_above_chance_with_no_noise(self):
        """Sanity check on the signal model: with ambient noise silenced,
        characters are separable — the baseline's failure is the noise."""
        from repro.baselines.nvidia import DesktopContext

        quiet = DesktopContext(name="quiet", noise_scale=1e-6, baseline_load=0.1)
        sampler = DesktopGpuSampler(quiet, rng=np.random.default_rng(0))
        Xtr, ytr = sampler.collect("abcdefgh", repeats=8)
        Xte, yte = sampler.collect("abcdefgh", repeats=4)
        clf = RandomForest(n_trees=20, seed=1).fit(Xtr, ytr)
        assert clf.score(Xte, yte) > 0.5
