"""Tests for the correction tracker (Section 5.3, Fig 14)."""

from repro.core.corrections import CorrectionTracker


class TestBasicTracking:
    def test_first_observation_sets_baseline(self):
        tracker = CorrectionTracker()
        assert tracker.observe(1.0, 3) == []
        assert tracker.current_length == 3

    def test_growth_needs_confirmation(self):
        tracker = CorrectionTracker()
        tracker.observe(0.0, 0)
        tracker.observe(1.0, 1)  # pending
        assert tracker.current_length == 0
        tracker.observe(1.5, 1)  # confirmed
        assert tracker.current_length == 1

    def test_blinks_at_same_length_emit_nothing(self):
        tracker = CorrectionTracker()
        for t in range(8):
            assert tracker.observe(float(t) * 0.5, 4) == []
        assert tracker.deletions == []


class TestDeletionDetection:
    def test_confirmed_decrease_emits_deletion(self):
        tracker = CorrectionTracker()
        tracker.observe(0.0, 3)
        tracker.observe(1.0, 2)  # backspace redraw (pending)
        events = tracker.observe(1.5, 2)  # blink confirms
        assert len(events) == 1
        assert tracker.current_length == 2

    def test_deletion_timestamp_is_first_observation(self):
        """The deletion must carry the backspace's time so the engine can
        delete the key that preceded it, not one typed afterwards."""
        tracker = CorrectionTracker()
        tracker.observe(0.0, 3)
        tracker.observe(1.0, 2)
        events = tracker.observe(1.5, 2)
        assert events[0].t == 1.0

    def test_multi_character_decrease(self):
        tracker = CorrectionTracker()
        tracker.observe(0.0, 5)
        tracker.observe(1.0, 2)
        events = tracker.observe(1.5, 2)
        assert len(events) == 3

    def test_single_blip_is_debounced(self):
        """A split read misclassified as a shorter field must not delete
        anything: the next observation restores the true length."""
        tracker = CorrectionTracker()
        tracker.observe(0.0, 5)
        tracker.observe(1.0, 4)  # partial-read misclassification
        events = tracker.observe(1.1, 5)  # real redraw: still 5
        assert events == []
        assert tracker.deletions == []
        assert tracker.current_length == 5

    def test_two_different_blips_do_not_commit(self):
        tracker = CorrectionTracker()
        tracker.observe(0.0, 5)
        tracker.observe(1.0, 4)
        events = tracker.observe(1.1, 3)  # a different wrong value
        assert events == []  # 3 is now pending, nothing committed yet
        events = tracker.observe(1.2, 5)
        assert events == []
        assert tracker.current_length == 5


class TestGrowthAccounting:
    def test_growth_matched_by_inferred_keys(self):
        tracker = CorrectionTracker()
        tracker.observe(0.0, 0, keys_inferred_total=0)
        tracker.observe(1.0, 1, keys_inferred_total=1)
        tracker.observe(1.5, 1, keys_inferred_total=1)
        assert tracker.unattributed_growth == 0

    def test_missed_press_counts_as_unattributed(self):
        tracker = CorrectionTracker()
        tracker.observe(0.0, 0, keys_inferred_total=0)
        tracker.observe(1.0, 1, keys_inferred_total=0)  # grew without a key
        tracker.observe(1.5, 1, keys_inferred_total=0)
        assert tracker.unattributed_growth == 1

    def test_typing_sequence_end_to_end(self):
        """Type 3 chars, delete 2, type 1 — net length 2 (Fig 14)."""
        tracker = CorrectionTracker()
        keys = 0
        stream = [
            (0.0, 0, 0),
            (0.5, 1, 1), (0.7, 1, 1),
            (1.0, 2, 2), (1.2, 2, 2),
            (1.5, 3, 3), (1.7, 3, 3),
            (2.0, 2, 3), (2.2, 2, 3),  # backspace
            (2.5, 1, 3), (2.7, 1, 3),  # backspace
            (3.0, 2, 4), (3.2, 2, 4),  # new char
        ]
        deletions = []
        for t, length, keys in stream:
            deletions.extend(tracker.observe(t, length, keys_inferred_total=keys))
        assert len(deletions) == 2
        assert tracker.current_length == 2
        assert tracker.unattributed_growth == 0
