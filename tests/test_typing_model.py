"""Tests for the human typing model (paper Fig 16, Section 7.2)."""

import numpy as np
import pytest

from repro.workloads.typing_model import (
    FAST_MAX_INTERVAL_S,
    MEDIUM_MAX_INTERVAL_S,
    MIN_HUMAN_INTERVAL_S,
    VOLUNTEERS,
    TypingModel,
    collect_volunteer_samples,
    split_by_speed,
    volunteer,
)


class TestVolunteers:
    def test_five_volunteers_as_in_fig16(self):
        assert len(VOLUNTEERS) == 5

    def test_lookup(self):
        assert volunteer("volunteer3").name == "volunteer3"
        with pytest.raises(KeyError):
            volunteer("volunteer9")

    def test_profiles_are_heterogeneous(self):
        medians = {p.interval_median_s for p in VOLUNTEERS}
        assert len(medians) == 5

    def test_duration_samples_in_plausible_range(self, rng):
        for profile in VOLUNTEERS:
            samples = [profile.sample_duration(rng) for _ in range(200)]
            assert all(0.03 <= s <= 0.35 for s in samples)
            assert 0.05 < np.median(samples) < 0.15

    def test_interval_samples_above_human_floor(self, rng):
        for profile in VOLUNTEERS:
            samples = [profile.sample_interval(rng) for _ in range(200)]
            assert all(s >= MIN_HUMAN_INTERVAL_S for s in samples)


class TestTypingModel:
    def test_timings_count(self, rng):
        model = TypingModel(rng)
        assert len(model.timings(12)) == 12
        assert model.timings(0) == []

    def test_timings_monotone_nonoverlapping(self, rng):
        model = TypingModel(rng)
        timings = model.timings(30)
        for a, b in zip(timings, timings[1:]):
            assert b.start_s > a.start_s
            assert b.start_s >= a.start_s + a.duration_s  # no overlap

    def test_start_time_respected(self, rng):
        model = TypingModel(rng)
        timings = model.timings(5, start_s=3.0)
        assert timings[0].start_s == pytest.approx(3.0)

    def test_speed_tier_ranges(self, rng):
        model = TypingModel(rng)
        assert model.speed_tier_range("fast") == (MIN_HUMAN_INTERVAL_S, FAST_MAX_INTERVAL_S)
        assert model.speed_tier_range("medium") == (FAST_MAX_INTERVAL_S, MEDIUM_MAX_INTERVAL_S)
        lo, hi = model.speed_tier_range("slow")
        assert lo == MEDIUM_MAX_INTERVAL_S

    def test_unknown_tier_rejected(self, rng):
        with pytest.raises(ValueError):
            TypingModel(rng).speed_tier_range("ludicrous")

    def test_fast_tier_produces_fast_intervals(self, rng):
        model = TypingModel(rng)
        timings = model.timings(40, interval_range=model.speed_tier_range("fast"))
        intervals = [
            b.start_s - a.start_s for a, b in zip(timings, timings[1:])
        ]
        # intervals may stretch slightly to avoid key overlap, but the
        # median must be in the fast band
        assert np.median(intervals) <= FAST_MAX_INTERVAL_S + 0.05

    def test_empty_profile_list_rejected(self, rng):
        with pytest.raises(ValueError):
            TypingModel(rng, profiles=[])


class TestFig16Collection:
    def test_collection_shape(self, rng):
        data = collect_volunteer_samples(rng, presses_per_volunteer=100)
        assert set(data) == {p.name for p in VOLUNTEERS}
        for stats in data.values():
            assert len(stats["durations"]) == 100
            assert len(stats["intervals"]) == 100

    def test_speed_split_partitions(self, rng):
        data = collect_volunteer_samples(rng, presses_per_volunteer=200)
        pooled = np.concatenate([d["intervals"] for d in data.values()])
        tiers = split_by_speed(pooled)
        assert len(tiers["fast"]) + len(tiers["medium"]) + len(tiers["slow"]) == len(pooled)
        assert all(v < FAST_MAX_INTERVAL_S for v in tiers["fast"])
        assert all(v > MEDIUM_MAX_INTERVAL_S for v in tiers["slow"])

    def test_all_three_tiers_populated(self, rng):
        """Section 7.2 splits the pooled intervals into three non-trivial
        parts; our distributions must cover all tiers."""
        data = collect_volunteer_samples(rng, presses_per_volunteer=300)
        pooled = np.concatenate([d["intervals"] for d in data.values()])
        tiers = split_by_speed(pooled)
        for name, values in tiers.items():
            assert len(values) > 0.1 * len(pooled), name
