"""Tests for the device's timing machinery: power collapse, submit delay,
ripple press feedback, and the blink-timer reset semantics."""

import numpy as np
import pytest

from repro.android.apps import CHASE
from repro.android.device import (
    GPU_IDLE_COLLAPSE_S,
    WAKEUP_RENDER_S,
    VictimDevice,
)
from repro.android.events import KeyPress
from repro.android.os_config import default_config
from repro.mitigations.popup_disable import config_with_popups_disabled


def device(config, seed=0):
    return VictimDevice(config, CHASE, rng=np.random.default_rng(seed))


class TestPowerCollapse:
    def test_cold_frame_pays_wakeup_latency(self, config):
        # two identical presses: the first after long idle (cold), the
        # second shortly after the first's frames (warm)
        trace = device(config, seed=1).compile(
            [KeyPress(t=2.0, char="a"), KeyPress(t=2.25, char="a")], end_time_s=3.2
        )
        presses = [f for f in trace.timeline.frames if f.label == "press:a"]
        cold, warm = presses[0], presses[1]
        assert cold.stats.render_time_s > warm.stats.render_time_s
        assert cold.stats.render_time_s - warm.stats.render_time_s == pytest.approx(
            WAKEUP_RENDER_S, rel=0.01
        )

    def test_collapse_threshold_behaviour(self, config):
        """Frames spaced below the collapse threshold stay warm."""
        trace = device(config, seed=2).compile(
            [KeyPress(t=1.0, char="a")], end_time_s=2.0
        )
        frames = sorted(trace.timeline.frames, key=lambda f: f.start_s)
        last_end = -1e9
        for frame in frames:
            gap = frame.start_s - last_end
            if 0 < gap <= GPU_IDLE_COLLAPSE_S and frame.label.startswith(("echo", "dismiss")):
                # warm frames: echo follows press within the threshold
                assert frame.stats.render_time_s < WAKEUP_RENDER_S + 0.0012
            last_end = max(last_end, frame.end_s)


class TestSubmitDelay:
    def test_delay_varies_per_frame(self, config):
        trace = device(config, seed=3).compile(
            [KeyPress(t=0.6 + 0.4 * i, char="a") for i in range(8)], end_time_s=4.5
        )
        interval = config.display.frame_interval_s
        phases = {round(f.start_s % interval, 5) for f in trace.timeline.frames}
        assert len(phases) > 5, "submit delays must not quantize to a few phases"

    def test_delay_bounded(self, config):
        trace = device(config, seed=4).compile([KeyPress(t=0.6, char="a")], end_time_s=1.4)
        interval = config.display.frame_interval_s
        for frame in trace.timeline.frames:
            phase = frame.start_s % interval
            assert 0.0004 < phase < 0.0031


class TestRipplePressFeedback:
    def test_ripple_frames_are_key_independent(self):
        config = config_with_popups_disabled(default_config())
        trace = device(config, seed=5).compile(
            [KeyPress(t=0.6, char="q"), KeyPress(t=1.2, char="m")], end_time_s=2.2
        )
        presses = {f.label: f for f in trace.timeline.frames if f.label.startswith("press:")}
        q = presses["press:q"].stats.increment.total
        m = presses["press:m"].stats.increment.total
        assert abs(q - m) / max(q, m) < 0.05, "ripples must look alike across keys"

    def test_popup_frames_are_key_dependent(self, config):
        trace = device(config, seed=5).compile(
            [KeyPress(t=0.6, char="q"), KeyPress(t=1.2, char="m")], end_time_s=2.2
        )
        presses = {f.label: f for f in trace.timeline.frames if f.label.startswith("press:")}
        q = presses["press:q"].stats.increment.total
        m = presses["press:m"].stats.increment.total
        assert abs(q - m) / max(q, m) > 0.05

    def test_ripple_much_cheaper_than_popup(self):
        popup_cfg = default_config()
        ripple_cfg = config_with_popups_disabled(default_config())
        popup_trace = device(popup_cfg, seed=6).compile(
            [KeyPress(t=0.6, char="g")], end_time_s=1.4
        )
        ripple_trace = device(ripple_cfg, seed=6).compile(
            [KeyPress(t=0.6, char="g")], end_time_s=1.4
        )
        popup = next(f for f in popup_trace.timeline.frames if f.label == "press:g")
        ripple = next(f for f in ripple_trace.timeline.frames if f.label == "press:g")
        assert ripple.stats.increment.total < 0.2 * popup.stats.increment.total


class TestBlinkTimerReset:
    def test_no_blinks_during_fast_typing(self, config):
        events = [KeyPress(t=0.6 + 0.2 * i, char="a") for i in range(10)]
        trace = device(config, seed=7).compile(events, end_time_s=3.4)
        typing_window = (0.6, 0.6 + 0.2 * 10)
        blinks_mid_typing = [
            f
            for f in trace.timeline.frames
            if f.label.startswith("cursor_blink")
            and typing_window[0] + 0.1 < f.start_s < typing_window[1] - 0.05
        ]
        assert blinks_mid_typing == []

    def test_blinks_resume_after_idle(self, config):
        trace = device(config, seed=8).compile([KeyPress(t=0.6, char="a")], end_time_s=3.5)
        blinks = [
            f for f in trace.timeline.frames if f.label.startswith("cursor_blink")
        ]
        after_typing = [f for f in blinks if f.start_s > 1.1]
        assert len(after_typing) >= 4

    def test_first_blink_half_second_after_change(self, config):
        trace = device(config, seed=9).compile([KeyPress(t=1.0, char="a")], end_time_s=3.0)
        change_t = 1.0 + 0.08 + 0.03  # release + latency
        blinks = [
            f.start_s
            for f in trace.timeline.frames
            if f.label.startswith("cursor_blink") and f.start_s > change_t
        ]
        assert blinks
        assert 0.45 < blinks[0] - change_t < 0.56
