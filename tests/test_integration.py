"""End-to-end integration tests: offline phase -> victim session -> attack."""

import numpy as np
import pytest

from repro.android.apps import CHASE
from repro.android.device import VictimDevice
from repro.android.os_config import default_config
from repro.core.pipeline import EavesdropAttack, simulate_credential_entry
from repro.kgsl.sampler import SystemLoad
from repro.mitigations.access_control import LocalOnlyPolicy, RbacPolicy
from repro.workloads.behavior import practical_session, typing_with_corrections
from repro.workloads.typing_model import TypingModel


@pytest.fixture(scope="module")
def attack(chase_store):
    return EavesdropAttack(chase_store, recognize_device=False)


class TestCleanCredentialTheft:
    def test_exact_inference_of_typical_credential(self, config, attack):
        exact = 0
        for seed in (20, 22, 23, 24):
            trace = simulate_credential_entry(config, CHASE, "hunter2sec", seed=seed)
            result = attack.run_on_trace(trace, seed=900)
            exact += result.text == "hunter2sec"
        assert exact >= 3, "typical credentials must usually be stolen verbatim"

    def test_mixed_case_symbols_digits(self, config, attack):
        text = "Tr0ub4dor&3x"
        trace = simulate_credential_entry(config, CHASE, text, seed=22)
        result = attack.run_on_trace(trace, seed=901)
        assert result.text == text

    def test_sixteen_character_credential(self, config, attack):
        text = "abcdefgh12345678"
        trace = simulate_credential_entry(config, CHASE, text, seed=23)
        result = attack.run_on_trace(trace, seed=902)
        assert len(result.text) >= 14
        from repro.analysis.metrics import edit_distance

        assert edit_distance(result.text, text) <= 2

    def test_batch_accuracy_in_paper_band(self, config, attack):
        """Fig 17: text accuracy >~75 %, per-key >~95 % on clean entry."""
        from repro.analysis.metrics import AccuracyReport
        from repro.workloads.credentials import credential_batch

        rng = np.random.default_rng(50)
        report = AccuracyReport()
        for i, text in enumerate(credential_batch(rng, 25)):
            trace = simulate_credential_entry(config, CHASE, text, seed=300 + i)
            result = attack.run_on_trace(trace, seed=600 + i)
            report.add(text, result.text)
        assert report.text_accuracy >= 0.6
        assert report.key_accuracy >= 0.95

    def test_inference_latency_under_paper_bound(self, config, attack):
        """Fig 25: the bulk of inferences complete within 0.1 ms.  (The
        paper's C++ service hits 95 % < 0.1 ms; in Python we assert the
        median against the same bound and keep a loose tail bound so the
        test is robust to scheduler noise.)"""
        trace = simulate_credential_entry(config, CHASE, "latencytest1", seed=24)
        result = attack.run_on_trace(trace, seed=903)
        times = np.array(result.latency.samples)
        assert np.median(times) < 1e-4
        assert np.quantile(times, 0.9) < 1e-3


class TestCorrectionsEndToEnd:
    def test_backspace_corrections_tracked(self, config, attack):
        rng = np.random.default_rng(31)
        typing = TypingModel(rng)
        events, final = typing_with_corrections("secretpw", typing, rng, typo_prob=0.5)
        device = VictimDevice(config, CHASE, rng=rng)
        end = max(e.t for e in events) + 2.5
        trace = device.compile(events, end_time_s=end)
        assert trace.final_text == "secretpw"
        result = attack.run_on_trace(trace, seed=904)
        from repro.analysis.metrics import edit_distance

        # deleted characters must not linger in the inferred credential
        assert edit_distance(result.text, "secretpw") <= 2
        assert result.online.stats.deletions_detected >= 1


class TestAppSwitchEndToEnd:
    def test_away_activity_not_mistaken_for_typing(self, config, attack):
        from repro.android.events import AppSwitchAway, AppSwitchBack, KeyPress

        events = [
            KeyPress(t=0.6, char="a"),
            KeyPress(t=1.1, char="b"),
            AppSwitchAway(t=2.0),
            AppSwitchBack(t=9.0),
            KeyPress(t=10.0, char="c"),
        ]
        device = VictimDevice(config, CHASE, rng=np.random.default_rng(32))
        trace = device.compile(events, end_time_s=11.5)
        result = attack.run_on_trace(trace, seed=905)
        assert result.text == "abc"
        assert result.online.stats.suppressed_by_switch > 0


class TestPracticalSession:
    def test_three_minute_session_mostly_recovered(self, config, attack):
        rng = np.random.default_rng(33)
        session = practical_session(rng, TypingModel(rng), volunteer_index=0)
        device = VictimDevice(config, CHASE, rng=rng)
        trace = device.compile(session.events, end_time_s=session.duration_s)
        result = attack.run_on_trace(trace, seed=906)
        from repro.analysis.metrics import align

        alignment = align(trace.final_text, result.text)
        key_accuracy = alignment.correct / max(1, len(trace.final_text))
        assert key_accuracy >= 0.75


class TestLoadEndToEnd:
    def test_moderate_cpu_load_tolerated(self, config, attack):
        trace = simulate_credential_entry(config, CHASE, "loadedpass", seed=25)
        result = attack.run_on_trace(trace, seed=907, load=SystemLoad(cpu_utilization=0.25))
        from repro.analysis.metrics import edit_distance

        assert edit_distance(result.text, "loadedpass") <= 2

    def test_full_cpu_load_degrades(self, config, attack):
        from repro.analysis.metrics import edit_distance
        from repro.workloads.credentials import credential_batch

        rng = np.random.default_rng(2600)
        errors_idle, errors_busy = 0, 0
        for i, text in enumerate(credential_batch(rng, 15)):
            trace = simulate_credential_entry(config, CHASE, text, seed=260 + i)
            idle = attack.run_on_trace(trace, seed=908 + i)
            busy = attack.run_on_trace(
                trace, seed=908 + i, load=SystemLoad(cpu_utilization=1.0)
            )
            errors_idle += edit_distance(idle.text, text)
            errors_busy += edit_distance(busy.text, text)
        assert errors_busy > errors_idle


class TestMitigationsEndToEnd:
    def test_rbac_blocks_attack_entirely(self, config, attack):
        # EACCES permanently masks every counter: the attack completes
        # blind (degraded, nothing recovered) instead of crashing.
        trace = simulate_credential_entry(config, CHASE, "protected1", seed=26)
        policy = RbacPolicy()
        result = attack.run_on_trace(trace, seed=909, access_policy=policy)
        assert result.text == ""
        assert result.degraded
        assert policy.denials >= 1

    def test_local_only_policy_blinds_attack(self, config, attack):
        trace = simulate_credential_entry(config, CHASE, "protected2", seed=27)
        result = attack.run_on_trace(trace, seed=910, access_policy=LocalOnlyPolicy())
        assert result.text == ""
