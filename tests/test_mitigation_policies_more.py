"""Further mitigation-layer tests: policy composition and boundaries."""

import errno

import numpy as np
import pytest

from repro.gpu import counters as pc
from repro.gpu.pipeline import FrameStats
from repro.gpu.timeline import RenderTimeline
from repro.kgsl.device_file import DeviceClock, ProcessContext, open_kgsl
from repro.kgsl.ioctl import (
    IOCTL_KGSL_DEVICE_GETPROPERTY,
    IOCTL_KGSL_PERFCOUNTER_GET,
    KGSL_PROP_DEVICE_INFO,
    IoctlError,
    KgslDeviceGetProperty,
    KgslPerfcounterGet,
)
from repro.mitigations.access_control import (
    DEFAULT_PRIVILEGED_CONTEXTS,
    AccessPolicy,
    LocalOnlyPolicy,
    RbacPolicy,
)


def timeline_with(amount=1000, t=0.5):
    timeline = RenderTimeline()
    inc = pc.CounterIncrement()
    inc.add(pc.LRZ_FULL_8X8_TILES, amount)
    timeline.add_render(
        t, FrameStats(increment=inc, pixels_touched=amount, render_time_s=0.001)
    )
    return timeline


class TestRbacBoundaries:
    def test_every_default_privileged_context_allowed(self):
        policy = RbacPolicy()
        for context_name in DEFAULT_PRIVILEGED_CONTEXTS:
            dev = open_kgsl(
                timeline_with(),
                context=ProcessContext(selinux_context=context_name),
                access_policy=policy,
            )
            dev.ioctl(
                IOCTL_KGSL_PERFCOUNTER_GET,
                KgslPerfcounterGet(groupid=0x19, countable=14),
            )
        assert policy.denials == 0

    def test_custom_whitelist(self):
        policy = RbacPolicy(privileged_contexts=frozenset({"my_profiler"}))
        allowed = open_kgsl(
            timeline_with(),
            context=ProcessContext(selinux_context="my_profiler"),
            access_policy=policy,
        )
        allowed.ioctl(
            IOCTL_KGSL_PERFCOUNTER_GET, KgslPerfcounterGet(groupid=0x19, countable=14)
        )
        denied = open_kgsl(
            timeline_with(),
            context=ProcessContext(selinux_context="system_server"),
            access_policy=policy,
        )
        with pytest.raises(IoctlError):
            denied.ioctl(
                IOCTL_KGSL_PERFCOUNTER_GET,
                KgslPerfcounterGet(groupid=0x19, countable=14),
            )

    def test_rbac_does_not_block_device_info(self):
        """Chip-id queries are part of normal driver startup; RBAC on
        counters must not break ordinary graphics apps."""
        dev = open_kgsl(timeline_with(), access_policy=RbacPolicy())
        prop = KgslDeviceGetProperty(type=KGSL_PROP_DEVICE_INFO)
        dev.ioctl(IOCTL_KGSL_DEVICE_GETPROPERTY, prop)
        assert prop.value.adreno_model == 650

    def test_denial_counter_accumulates(self):
        policy = RbacPolicy()
        dev = open_kgsl(timeline_with(), access_policy=policy)
        for _ in range(3):
            with pytest.raises(IoctlError):
                dev.ioctl(
                    IOCTL_KGSL_PERFCOUNTER_GET,
                    KgslPerfcounterGet(groupid=0x19, countable=14),
                )
        assert policy.denials == 3


class TestLocalOnlyBoundaries:
    def test_filter_applies_per_context(self):
        policy = LocalOnlyPolicy()
        assert (
            policy.filter_value(
                ProcessContext(selinux_context="untrusted_app"),
                0x19,
                14,
                12345,
                now=1.0,
            )
            == 0
        )
        assert (
            policy.filter_value(
                ProcessContext(selinux_context="graphics_profiler"),
                0x19,
                14,
                12345,
                now=1.0,
            )
            == 12345
        )

    def test_base_policy_is_a_noop(self):
        policy = AccessPolicy()
        policy.check(ProcessContext(), "get", 0x19, 14)  # must not raise
        assert policy.filter_value(ProcessContext(), 0x19, 14, 7, now=0.0) == 7
