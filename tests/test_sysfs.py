"""Tests for the KGSL sysfs gpu_busy_percentage node (footnote 10)."""

import pytest

from repro.gpu import counters as pc
from repro.gpu.pipeline import FrameStats
from repro.gpu.timeline import RenderTimeline
from repro.kgsl.device_file import DeviceClock
from repro.kgsl.sysfs import GPU_BUSY_PATH, GpuBusyNode


def busy_timeline(start, duration):
    timeline = RenderTimeline()
    inc = pc.CounterIncrement()
    inc.add(pc.RAS_8X4_TILES, 100)
    timeline.add_render(
        start, FrameStats(increment=inc, pixels_touched=100, render_time_s=duration)
    )
    return timeline


class TestGpuBusyNode:
    def test_idle_reads_zero(self):
        node = GpuBusyNode(RenderTimeline(), DeviceClock())
        node.clock.set(1.0)
        assert node.read() == 0

    def test_fully_busy_window_reads_hundred(self):
        node = GpuBusyNode(busy_timeline(0.95, 0.2), DeviceClock())
        node.clock.set(1.0)
        assert node.read() == 100

    def test_half_busy_window(self):
        node = GpuBusyNode(busy_timeline(0.975, 0.025), DeviceClock())
        node.clock.set(1.0)
        assert 40 <= node.read() <= 60

    def test_read_text_has_trailing_newline(self):
        node = GpuBusyNode(RenderTimeline(), DeviceClock())
        assert node.read_text().endswith("\n")

    def test_path_constant(self):
        assert GPU_BUSY_PATH.endswith("gpu_busy_percentage")

    def test_tracks_background_utilization(self):
        """The node approximates the duty cycle the paper's experiments
        target with their emulated GPU workloads."""
        import numpy as np

        from repro.android.display import Display
        from repro.gpu.adreno import adreno
        from repro.workloads.background import BackgroundRenderer

        renderer = BackgroundRenderer(
            adreno(650), Display(), 0.5, rng=np.random.default_rng(0)
        )
        timeline = renderer.timeline(0.0, 2.0)
        node = GpuBusyNode(timeline, DeviceClock(), window_s=0.5)
        node.clock.set(1.5)
        assert 35 <= node.read() <= 65
