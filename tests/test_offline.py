"""Tests for the offline phase: labeling and model training."""

import numpy as np
import pytest

from repro.android.apps import CHASE
from repro.android.device import VictimDevice
from repro.android.events import KeyPress
from repro.android.os_config import default_config
from repro.core.offline import OfflineTrainer, TrainingData, frame_to_class_label, label_samples
from repro.kgsl.device_file import DeviceClock, open_kgsl
from repro.kgsl.sampler import PerfCounterSampler


class TestFrameLabelMapping:
    def test_press_labels(self):
        assert frame_to_class_label("press:w") == "key:w"
        assert frame_to_class_label("press_dup:w") == "key:w"

    def test_press_of_colon_character(self):
        assert frame_to_class_label("press::") == "key::"

    def test_echo_labels_carry_length(self):
        assert frame_to_class_label("echo:7") == "field:7:on"

    def test_blink_labels(self):
        assert frame_to_class_label("cursor_blink:3:off") == "field:3:off"
        assert frame_to_class_label("cursor_blink:3:on") == "field:3:on"

    def test_backspace_labels(self):
        assert frame_to_class_label("backspace:2") == "field:2:on"

    def test_dismiss_labels(self):
        assert frame_to_class_label("dismiss:w") == "reject:dismiss:w"

    def test_system_labels(self):
        assert frame_to_class_label("notification") == "reject:notification"
        assert frame_to_class_label("switch_away_3") == "reject:transient"
        assert frame_to_class_label("shade_down_1") == "reject:transient"
        assert frame_to_class_label("other_app") == "reject:transient"
        assert frame_to_class_label("initial") == "reject:transient"

    def test_unknown_label_maps_to_none(self):
        assert frame_to_class_label("mystery_frame") is None


class TestLabelSamples:
    def test_clean_windows_labeled(self, config):
        device = VictimDevice(config, CHASE, rng=np.random.default_rng(0))
        events = [KeyPress(t=0.5 + 0.55 * i, char="w") for i in range(6)]
        trace = device.compile(events, end_time_s=4.2)
        kgsl = open_kgsl(trace.timeline, clock=DeviceClock())
        sampler = PerfCounterSampler(kgsl, rng=np.random.default_rng(0))
        samples = sampler.sample_range(0.0, 4.2)
        data = TrainingData()
        label_samples(trace.timeline, samples, data)
        assert "key:w" in data.vectors_by_label
        assert data.clean_windows > 0

    def test_ambiguous_windows_discarded(self, config):
        device = VictimDevice(config, CHASE, rng=np.random.default_rng(0))
        # two presses virtually simultaneous -> merged windows get discarded
        trace = device.compile(
            [KeyPress(t=0.5, char="w"), KeyPress(t=0.502, char="n")], end_time_s=1.5
        )
        kgsl = open_kgsl(trace.timeline, clock=DeviceClock())
        sampler = PerfCounterSampler(kgsl, rng=np.random.default_rng(0))
        samples = sampler.sample_range(0.0, 1.5)
        data = TrainingData()
        label_samples(trace.timeline, samples, data)
        assert data.discarded_windows > 0

    def test_training_data_merge(self):
        a = TrainingData()
        a.add("key:a", np.zeros(11))
        a.clean_windows = 1
        b = TrainingData()
        b.add("key:a", np.ones(11))
        b.add("key:b", np.ones(11))
        b.discarded_windows = 2
        a.merge(b)
        assert a.counts() == {"key:a": 2, "key:b": 1}
        assert a.discarded_windows == 2


class TestTrainer:
    def test_model_key_includes_config_and_app(self, config):
        trainer = OfflineTrainer(config, CHASE)
        assert trainer.model_key.endswith("/chase")
        assert config.config_key() in trainer.model_key

    def test_trainable_characters_cover_fig18(self, config):
        trainer = OfflineTrainer(config, CHASE)
        chars = trainer.trainable_characters()
        assert len(chars) == 80
        assert "," in chars and "Q" in chars and "@" in chars

    def test_trained_model_has_all_key_classes(self, chase_model, config):
        trainer = OfflineTrainer(config, CHASE)
        for char in trainer.trainable_characters():
            assert f"key:{char}" in chase_model.labels, char

    def test_trained_model_has_reject_classes(self, chase_model):
        assert any(label.startswith("reject:dismiss") for label in chase_model.labels)
        assert "reject:notification" in chase_model.labels
        assert "reject:transient" in chase_model.labels

    def test_metadata_records_window_counts(self, chase_model):
        assert chase_model.metadata["clean_windows"] > 500
        assert chase_model.metadata["app"] == "chase"

    def test_distinct_keys_have_distinct_centroids(self, chase_model):
        import itertools

        seen = {}
        for label in chase_model.key_labels:
            key = tuple(np.round(chase_model.centroid(label), 1))
            assert key not in seen, f"{label} collides with {seen.get(key)}"
            seen[key] = label
