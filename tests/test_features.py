"""Tests for feature extraction."""

import numpy as np
import pytest

from repro.core import features
from repro.gpu import counters as pc
from repro.gpu.timeline import COUNTER_ORDER
from repro.kgsl.sampler import PcDelta


class TestVectorize:
    def test_dimensions(self):
        assert features.DIMENSIONS == 11
        assert len(COUNTER_ORDER) == 11

    def test_vectorize_places_values_in_canonical_order(self):
        delta = PcDelta(t=1.0, prev_t=0.9, values={pc.RAS_8X4_TILES.counter_id: 42})
        vec = features.vectorize(delta)
        index = features.counter_index(pc.RAS_8X4_TILES)
        assert vec[index] == 42
        assert vec.sum() == 42

    def test_unknown_counter_ids_ignored(self):
        delta = PcDelta(t=1.0, prev_t=0.9, values={(pc.CounterGroup.RAS, 99): 10})
        assert features.vectorize(delta).sum() == 0

    def test_vectorize_many_shape(self):
        ds = [
            PcDelta(t=float(i), prev_t=float(i) - 0.1, values={pc.RAS_8X4_TILES.counter_id: i})
            for i in range(1, 4)
        ]
        matrix = features.vectorize_many(ds)
        assert matrix.shape == (3, 11)

    def test_vectorize_many_empty(self):
        assert features.vectorize_many([]).shape == (0, 11)

    def test_vectorize_mapping(self):
        vec = features.vectorize_mapping({pc.VPC_PC_PRIMITIVES.counter_id: 7})
        assert vec[features.counter_index(pc.VPC_PC_PRIMITIVES)] == 7


class TestScaleAndDistance:
    def test_robust_scale_floors_constant_dims(self):
        matrix = np.ones((5, features.DIMENSIONS))
        scale = features.robust_scale(matrix)
        assert np.all(scale == 1.0)

    def test_robust_scale_uses_std(self):
        matrix = np.zeros((4, features.DIMENSIONS))
        matrix[:, 0] = [0, 10, 20, 30]
        scale = features.robust_scale(matrix)
        assert scale[0] == pytest.approx(np.std(matrix[:, 0]))

    def test_robust_scale_empty(self):
        scale = features.robust_scale(np.zeros((0, features.DIMENSIONS)))
        assert np.all(scale == 1.0)

    def test_normalized_distance(self):
        a = np.zeros(features.DIMENSIONS)
        b = np.zeros(features.DIMENSIONS)
        b[0] = 10.0
        scale = np.full(features.DIMENSIONS, 2.0)
        assert features.normalized_distance(a, b, scale) == pytest.approx(5.0)

    def test_distance_symmetry(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=11), rng.normal(size=11)
        scale = np.abs(rng.normal(size=11)) + 0.1
        assert features.normalized_distance(a, b, scale) == pytest.approx(
            features.normalized_distance(b, a, scale)
        )
