"""Tests for the display/vsync model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.android.display import Display, Resolution


class TestResolution:
    def test_fhd_plus_dimensions(self):
        assert Resolution.FHD_PLUS.width == 1080
        assert Resolution.FHD_PLUS.height == 2376

    def test_qhd_plus_dimensions(self):
        assert Resolution.QHD_PLUS.width == 1440
        assert Resolution.QHD_PLUS.height == 3168

    def test_pixel_counts(self):
        assert Resolution.FHD_PLUS.pixel_count == 1080 * 2376

    def test_labels_match_paper_fig24b(self):
        assert Resolution.FHD_PLUS.label == "FHD+ (2376x1080)"
        assert Resolution.QHD_PLUS.label == "QHD+ (3168x1440)"


class TestDisplay:
    def test_default_is_60hz_fhd(self):
        d = Display()
        assert d.refresh_rate_hz == 60
        assert d.resolution is Resolution.FHD_PLUS

    def test_frame_interval(self):
        assert Display(refresh_rate_hz=60).frame_interval_s == pytest.approx(1 / 60)
        assert Display(refresh_rate_hz=120).frame_interval_s == pytest.approx(1 / 120)

    def test_invalid_refresh_rate_rejected(self):
        with pytest.raises(ValueError):
            Display(refresh_rate_hz=0)

    def test_bounds(self):
        b = Display().bounds
        assert (b.width, b.height) == (1080, 2376)

    def test_next_vsync_on_boundary_is_identity(self):
        d = Display(refresh_rate_hz=60)
        assert d.next_vsync(0.0) == pytest.approx(0.0)
        assert d.next_vsync(1.0) == pytest.approx(1.0)

    def test_next_vsync_rounds_up(self):
        d = Display(refresh_rate_hz=60)
        assert d.next_vsync(0.001) == pytest.approx(1 / 60)
        assert d.next_vsync(1 / 60 + 1e-4) == pytest.approx(2 / 60)

    @given(st.floats(min_value=0.0, max_value=100.0, allow_nan=False))
    def test_next_vsync_never_before_t(self, t):
        d = Display(refresh_rate_hz=120)
        v = d.next_vsync(t)
        assert v >= t - 1e-9
        assert v - t < d.frame_interval_s + 1e-9

    def test_scale(self):
        r = Display().scale(0.5, 0.25)
        assert r.width == 540
        assert r.height == 594
