"""High-level invariants of the attack pipeline that must never regress."""

import numpy as np
import pytest

from repro.android.apps import CHASE
from repro.android.device import VictimDevice
from repro.android.events import KeyPress
from repro.core.pipeline import EavesdropAttack, simulate_credential_entry
from repro.kgsl.sampler import SystemLoad


@pytest.fixture(scope="module")
def attack(chase_store):
    return EavesdropAttack(chase_store, recognize_device=False)


class TestNoOracleAccess:
    def test_attack_consumes_only_counter_reads(self, config, attack):
        """The attack must work from the ioctl interface alone: running it
        on a timeline stripped of labels (the only ground-truth carrier)
        yields identical output."""
        from repro.gpu.timeline import RenderTimeline

        trace = simulate_credential_entry(config, CHASE, "oracle12", seed=61)
        stripped = RenderTimeline()
        for frame in trace.timeline.frames:
            from repro.gpu.timeline import FrameRender

            stripped.add(
                FrameRender(start_s=frame.start_s, stats=frame.stats, label="?")
            )
        original_text = attack.run_on_trace(trace, seed=62).text
        trace.timeline = stripped
        stripped_text = attack.run_on_trace(trace, seed=62).text
        assert original_text == stripped_text

    def test_result_contains_no_ground_truth_objects(self, config, attack):
        trace = simulate_credential_entry(config, CHASE, "oracle34", seed=63)
        result = attack.run_on_trace(trace, seed=64)
        assert not hasattr(result, "presses")
        assert not hasattr(result.online, "presses")


class TestDeterminism:
    def test_same_seeds_identical_output(self, config, attack):
        trace = simulate_credential_entry(config, CHASE, "determin1", seed=65)
        a = attack.run_on_trace(trace, seed=66)
        b = attack.run_on_trace(trace, seed=66)
        assert a.text == b.text
        assert [k.t for k in a.online.keys] == [k.t for k in b.online.keys]

    def test_different_sampler_seeds_may_differ_but_stay_close(self, config, attack):
        from repro.analysis.metrics import edit_distance

        trace = simulate_credential_entry(config, CHASE, "determin2", seed=67)
        texts = {attack.run_on_trace(trace, seed=s).text for s in range(70, 76)}
        for text in texts:
            assert edit_distance(text, "determin2") <= 2


class TestMonotoneDegradation:
    def test_accuracy_never_improves_with_load(self, config, attack):
        """Averaged over traces, load can only hurt (sanity direction)."""
        from repro.analysis.metrics import edit_distance

        texts = ["loadcheck" + str(i) for i in range(6)]
        idle_errors = busy_errors = 0
        for i, text in enumerate(texts):
            trace = simulate_credential_entry(config, CHASE, text, seed=700 + i)
            idle_errors += edit_distance(
                attack.run_on_trace(trace, seed=800 + i).text, text
            )
            busy_errors += edit_distance(
                attack.run_on_trace(
                    trace, seed=800 + i, load=SystemLoad(cpu_utilization=0.95)
                ).text,
                text,
            )
        assert busy_errors >= idle_errors


class TestTimestampFidelity:
    def test_inferred_times_match_true_press_times(self, config, attack):
        """M (the inferred timestamps) must land within the input latency
        of the true presses — the keystroke-dynamics extension depends on
        this."""
        device = VictimDevice(config, CHASE, rng=np.random.default_rng(71))
        truth_times = [0.7, 1.3, 1.9, 2.6]
        events = [
            KeyPress(t=t, char=c) for t, c in zip(truth_times, "wasd")
        ]
        trace = device.compile(events, end_time_s=3.6)
        result = attack.run_on_trace(trace, seed=72)
        assert result.text == "wasd"
        for inferred_t, true_t in zip(result.online.key_times(), truth_times):
            assert abs(inferred_t - (true_t + 0.03)) < 0.06

    def test_key_order_preserved(self, config, attack):
        trace = simulate_credential_entry(config, CHASE, "abcdefgh", seed=73)
        result = attack.run_on_trace(trace, seed=74)
        times = result.online.key_times()
        assert times == sorted(times)
