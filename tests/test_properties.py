"""Cross-module property-based tests on the core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.android.geometry import Rect
from repro.android.layers import DrawOp, Layer, Scene, solid_quad
from repro.core import features
from repro.core.classifier import build_model
from repro.gpu import counters as pc
from repro.gpu.adreno import adreno
from repro.gpu.pipeline import AdrenoPipeline
from repro.gpu.timeline import FrameRender, RenderTimeline
from repro.kgsl.sampler import PcDelta

PIPE = AdrenoPipeline(adreno(650))


def rects(max_coord=300, max_size=150):
    return st.builds(
        Rect.from_size,
        st.integers(0, max_coord),
        st.integers(0, max_coord),
        st.integers(1, max_size),
        st.integers(1, max_size),
    )


ops = st.builds(
    DrawOp,
    rect=rects(),
    coverage=st.floats(0.05, 1.0),
    primitives=st.integers(1, 30),
    opaque=st.booleans(),
    textured=st.booleans(),
)


class TestPipelineProperties:
    @given(st.lists(ops, min_size=1, max_size=6))
    @settings(max_examples=40)
    def test_counters_are_nonnegative(self, op_list):
        scene = Scene([Layer("l", ops=op_list)])
        stats = PIPE.render(scene)
        assert all(v >= 0 for v in stats.increment.values.values())
        assert stats.render_time_s > 0

    @given(st.lists(ops, min_size=1, max_size=5))
    @settings(max_examples=40)
    def test_opaque_top_layer_never_increases_visible_pixels(self, op_list):
        base = Scene([Layer("l", ops=op_list)])
        covered = Scene(
            [Layer("l", ops=list(op_list)), Layer("top").add(solid_quad(Rect(0, 0, 500, 500)))]
        )
        base_visible = PIPE.render(base).increment.get(pc.LRZ_VISIBLE_PIXEL_AFTER_LRZ)
        top_quad = PIPE.render(
            Scene([Layer("only").add(solid_quad(Rect(0, 0, 500, 500)))])
        ).increment.get(pc.LRZ_VISIBLE_PIXEL_AFTER_LRZ)
        covered_visible = PIPE.render(covered).increment.get(
            pc.LRZ_VISIBLE_PIXEL_AFTER_LRZ
        )
        # occluded scene shows at most the occluder plus what peeks out
        assert covered_visible <= base_visible + top_quad

    @given(st.lists(ops, min_size=1, max_size=5))
    @settings(max_examples=40)
    def test_vpc_counts_all_primitives_regardless_of_occlusion(self, op_list):
        scene = Scene(
            [Layer("l", ops=list(op_list)), Layer("top").add(solid_quad(Rect(0, 0, 500, 500)))]
        )
        total_prims = sum(op.primitives for op in op_list) + 2
        assert PIPE.render(scene).increment.get(pc.VPC_PC_PRIMITIVES) == total_prims

    @given(st.lists(ops, min_size=1, max_size=4), st.lists(ops, min_size=1, max_size=4))
    @settings(max_examples=30)
    def test_rendering_is_superadditive_under_concatenation(self, a, b):
        """Two scenes rendered separately never produce fewer counters than
        their single-layer union rendered once (occlusion only removes)."""
        merged = Scene([Layer("l", ops=a + b)])
        separate = PIPE.render(Scene([Layer("l", ops=a)])).increment.merge(
            PIPE.render(Scene([Layer("l", ops=b)])).increment
        )
        merged_inc = PIPE.render(merged).increment
        for counter_id, value in merged_inc.values.items():
            assert value <= separate.values.get(counter_id, 0) + 1  # rounding slack


class TestTimelineProperties:
    @given(
        st.lists(
            st.tuples(st.floats(0, 5), st.integers(1, 500), st.floats(0.0001, 0.01)),
            min_size=1,
            max_size=15,
        ),
        st.lists(st.floats(0, 6), min_size=2, max_size=10),
    )
    @settings(max_examples=40)
    def test_deltas_between_any_times_are_nonnegative(self, frames, times):
        timeline = RenderTimeline()
        for start, amount, duration in frames:
            inc = pc.CounterIncrement()
            inc.add(pc.RAS_8X4_TILES, amount)
            from repro.gpu.pipeline import FrameStats

            timeline.add_render(
                start,
                FrameStats(increment=inc, pixels_touched=amount, render_time_s=duration),
            )
        ordered = sorted(times)
        values = [timeline.values_at(t)[pc.RAS_8X4_TILES.counter_id] for t in ordered]
        assert all(b >= a for a, b in zip(values, values[1:]))

    @given(st.integers(1, 1000), st.floats(0.001, 0.02))
    @settings(max_examples=40)
    def test_split_parts_always_sum_to_total(self, amount, duration):
        from repro.gpu.pipeline import FrameStats

        timeline = RenderTimeline()
        inc = pc.CounterIncrement()
        inc.add(pc.RAS_8X4_TILES, amount)
        timeline.add_render(
            1.0, FrameStats(increment=inc, pixels_touched=amount, render_time_s=duration)
        )
        mid = 1.0 + duration / 3
        cid = pc.RAS_8X4_TILES.counter_id
        first = timeline.values_at(mid)[cid] - timeline.values_at(0.5)[cid]
        second = timeline.values_at(2.0)[cid] - timeline.values_at(mid)[cid]
        assert first + second == amount


class TestDeltaAlgebra:
    CID = pc.RAS_8X4_TILES.counter_id

    @given(st.integers(0, 10**6), st.integers(0, 10**6))
    def test_merge_is_commutative_in_values(self, a, b):
        da = PcDelta(t=1.0, prev_t=0.9, values={self.CID: a})
        db = PcDelta(t=1.1, prev_t=1.0, values={self.CID: b})
        assert db.merge(da).values == {self.CID: a + b}

    @given(st.integers(0, 10**6))
    def test_scaled_by_one_is_identity(self, a):
        d = PcDelta(t=1.0, prev_t=0.9, values={self.CID: a})
        assert d.scaled(1.0).values == d.values

    @given(st.integers(0, 10**6), st.floats(0.0, 1.0))
    def test_scaling_never_exceeds_original(self, a, factor):
        d = PcDelta(t=1.0, prev_t=0.9, values={self.CID: a})
        assert d.scaled(factor).values[self.CID] <= a + 1


class TestClassifierProperties:
    @given(
        st.lists(
            st.tuples(st.text(alphabet="abcdef", min_size=1, max_size=1), st.integers(0, 10)),
            min_size=2,
            max_size=6,
            unique_by=lambda x: x[0],
        )
    )
    @settings(max_examples=40)
    def test_training_samples_classify_to_their_own_class(self, class_spec):
        samples = {}
        for i, (char, jitter) in enumerate(class_spec):
            base = np.zeros(features.DIMENSIONS)
            base[0] = 1000.0 * (i + 1)
            base[1] = 77.0 * (i + 1)
            jittered = base.copy()
            jittered[0] += jitter  # intra-class spread along one axis
            samples[f"key:{char}"] = [base, jittered]
        model = build_model(samples, model_key="prop")
        for label, vectors in samples.items():
            for vec in vectors:
                assert model.classify_vector(vec).label == label

    @given(st.floats(1.0, 100.0))
    def test_serialization_roundtrip_preserves_decisions(self, spread):
        a = np.zeros(features.DIMENSIONS)
        b = np.zeros(features.DIMENSIONS)
        b[0] = 100.0 * spread
        from repro.core.classifier import ClassificationModel

        model = build_model({"key:a": [a], "key:b": [b]}, model_key="rt")
        clone = ClassificationModel.from_json(model.to_json())
        probe = b * 0.98
        assert model.classify_vector(probe).label == clone.classify_vector(probe).label

    @given(st.floats(0.0, 3.0))
    def test_deflation_keeps_orthogonal_separation(self, direction_weight):
        """Deflating along any direction never makes two centroids that
        differ orthogonally to it indistinguishable."""
        a = np.zeros(features.DIMENSIONS)
        b = np.zeros(features.DIMENSIONS)
        b[1] = 500.0  # separation lives on axis 1
        a[0] = b[0] = 100.0 * direction_weight
        model = build_model({"key:a": [a], "key:b": [b]}, model_key="d")
        direction = np.zeros(features.DIMENSIONS)
        direction[0] = 1.0
        deflated = model.with_deflation(direction)
        assert deflated.classify_vector(b).label == "key:b"
        assert deflated.classify_vector(a).label == "key:a"
