"""Tests for accuracy metrics and alignment."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import AccuracyReport, Alignment, align, edit_distance

texts = st.text(alphabet="abcde", max_size=12)


class TestEditDistance:
    def test_identical(self):
        assert edit_distance("hunter2", "hunter2") == 0

    def test_empty(self):
        assert edit_distance("", "abc") == 3
        assert edit_distance("abc", "") == 3

    def test_substitution(self):
        assert edit_distance("cat", "car") == 1

    def test_insertion_deletion(self):
        assert edit_distance("cat", "cats") == 1
        assert edit_distance("cats", "cat") == 1

    def test_classic_example(self):
        assert edit_distance("kitten", "sitting") == 3

    @given(texts, texts)
    def test_symmetry(self, a, b):
        assert edit_distance(a, b) == edit_distance(b, a)

    @given(texts, texts, texts)
    @settings(max_examples=60)
    def test_triangle_inequality(self, a, b, c):
        assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)

    @given(texts)
    def test_identity(self, a):
        assert edit_distance(a, a) == 0

    @given(texts, texts)
    def test_bounded_by_longer_length(self, a, b):
        assert edit_distance(a, b) <= max(len(a), len(b))


class TestAlign:
    def test_perfect_alignment(self):
        a = align("abc", "abc")
        assert a.correct == 3 and a.errors == 0

    def test_missing_character(self):
        a = align("abcd", "abd")
        assert a.deletions == ["c"]
        assert a.correct == 3

    def test_inserted_character(self):
        a = align("abd", "abxd")
        assert a.insertions == ["x"]

    def test_substituted_character(self):
        a = align("abc", "axc")
        assert a.substitutions == [("b", "x")]

    def test_error_count_equals_edit_distance(self):
        for truth, inferred in [("hello", "helo"), ("abc", "xyz"), ("", "ab"), ("pass", "password")]:
            assert align(truth, inferred).errors == edit_distance(truth, inferred)

    @given(texts, texts)
    @settings(max_examples=80)
    def test_alignment_is_optimal(self, truth, inferred):
        a = align(truth, inferred)
        assert a.errors == edit_distance(truth, inferred)
        assert a.correct + len(a.substitutions) + len(a.deletions) == len(truth)
        assert a.correct + len(a.substitutions) + len(a.insertions) == len(inferred)


class TestAccuracyReport:
    def test_exact_trace_counted(self):
        report = AccuracyReport()
        report.add("secret", "secret")
        report.add("secret", "sekret")
        assert report.text_accuracy == 0.5
        assert report.traces == 2

    def test_key_accuracy(self):
        report = AccuracyReport()
        report.add("abcd", "abxd")  # 3 of 4 correct
        assert report.key_accuracy == 0.75

    def test_mean_errors(self):
        report = AccuracyReport()
        report.add("abc", "abc")
        report.add("abc", "a")
        assert report.mean_errors_per_trace == pytest.approx(1.0)

    def test_per_char_accuracy(self):
        report = AccuracyReport()
        report.add("aab", "axb")
        assert report.char_accuracy("a") == 0.5
        assert report.char_accuracy("b") == 1.0
        assert report.char_accuracy("z") == 0.0

    def test_group_accuracy(self):
        report = AccuracyReport()
        report.add("aB1,", "aB1x")
        groups = report.group_accuracy()
        assert groups["lower"] == 1.0
        assert groups["upper"] == 1.0
        assert groups["number"] == 1.0
        assert groups["symbol"] == 0.0

    def test_empty_report(self):
        report = AccuracyReport()
        assert report.text_accuracy == 0.0
        assert report.key_accuracy == 0.0
        assert report.mean_errors_per_trace == 0.0
