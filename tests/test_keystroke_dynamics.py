"""Tests for the keystroke-dynamics identification extension."""

import numpy as np
import pytest

from repro.analysis.keystroke_dynamics import (
    FEATURE_NAMES,
    TypistIdentifier,
    TypistProfile,
    timing_features,
)
from repro.workloads.typing_model import VOLUNTEERS, TypingModel


def session_times(profile, rng, n=30):
    model = TypingModel(rng, profiles=[profile])
    return [t.start_s for t in model.timings(n, profile=profile)]


class TestFeatures:
    def test_feature_vector_shape(self, rng):
        times = session_times(VOLUNTEERS[0], rng)
        features = timing_features(times)
        assert features is not None
        assert features.shape == (len(FEATURE_NAMES),)

    def test_too_few_presses_returns_none(self):
        assert timing_features([1.0, 1.2]) is None
        assert timing_features([]) is None

    def test_long_pauses_excluded(self):
        # three tight presses, then a 30 s pause, then three more
        times = [0.0, 0.2, 0.4, 30.4, 30.6, 30.8]
        features = timing_features(times)
        assert features is not None
        assert features[0] < 1.0  # median interval ignores the pause

    def test_unsorted_input_accepted(self, rng):
        times = session_times(VOLUNTEERS[0], rng)
        shuffled = list(times)
        rng.shuffle(shuffled)
        a = timing_features(times)
        b = timing_features(shuffled)
        assert np.allclose(a, b)

    def test_speed_shares_sum_sane(self, rng):
        features = timing_features(session_times(VOLUNTEERS[0], rng))
        fast_share, slow_share = features[5], features[6]
        assert 0.0 <= fast_share <= 1.0
        assert 0.0 <= slow_share <= 1.0
        assert fast_share + slow_share <= 1.0


class TestIdentifier:
    def test_identifies_enrolled_volunteers(self):
        identifier = TypistIdentifier()
        # enroll 3 sessions per volunteer
        for v, profile in enumerate(VOLUNTEERS):
            for s in range(3):
                rng = np.random.default_rng(1000 * v + s)
                identifier.enroll(profile.name, session_times(profile, rng))
        # identify fresh sessions
        correct = 0
        trials = 0
        for v, profile in enumerate(VOLUNTEERS):
            for s in range(4):
                rng = np.random.default_rng(5000 + 100 * v + s)
                got = identifier.identify(session_times(profile, rng, n=40))
                correct += got == profile.name
                trials += 1
        assert correct / trials > 0.5, "timing biometrics must beat chance (0.2) clearly"

    def test_enroll_rejects_short_sessions(self):
        identifier = TypistIdentifier()
        assert not identifier.enroll("x", [0.0, 0.1])
        assert identifier.names == []

    def test_identify_without_profiles_raises(self):
        with pytest.raises(ValueError):
            TypistIdentifier().identify([0.0, 0.2, 0.4, 0.6, 0.8])

    def test_identify_short_session_returns_none(self):
        identifier = TypistIdentifier()
        rng = np.random.default_rng(0)
        identifier.enroll("a", session_times(VOLUNTEERS[0], rng))
        assert identifier.identify([0.0, 0.5]) is None

    def test_profile_centroid(self):
        profile = TypistProfile(name="p")
        profile.add(np.ones(7))
        profile.add(np.full(7, 3.0))
        assert np.allclose(profile.centroid, 2.0)
        with pytest.raises(ValueError):
            TypistProfile(name="empty").centroid


class TestEndToEnd:
    def test_attack_timestamps_identify_the_typist(self, config, chase_store):
        """The attack's M timestamps carry biometric signal."""
        from repro.android.apps import CHASE
        from repro.core.pipeline import EavesdropAttack
        from repro.core.pipeline import simulate_credential_entry
        from repro.workloads.behavior import typing_events
        from repro.android.device import VictimDevice
        from repro.workloads.credentials import random_credential

        attack = EavesdropAttack(chase_store, recognize_device=False)
        identifier = TypistIdentifier()
        fast, slow = VOLUNTEERS[0], VOLUNTEERS[3]

        def run_session(profile, seed):
            rng = np.random.default_rng(seed)
            model = TypingModel(rng, profiles=[profile])
            text = random_credential(rng, length=16)
            events = typing_events(text, model)
            device = VictimDevice(config, CHASE, rng=rng)
            trace = device.compile(events, end_time_s=events[-1].t + 1.5)
            result = attack.run_on_trace(trace, seed=seed + 1)
            return result.online.key_times()

        for s in range(3):
            identifier.enroll(fast.name, run_session(fast, 100 + s))
            identifier.enroll(slow.name, run_session(slow, 200 + s))

        hits = 0
        for s in range(3):
            hits += identifier.identify(run_session(fast, 300 + s)) == fast.name
            hits += identifier.identify(run_session(slow, 400 + s)) == slow.name
        assert hits >= 4, "eavesdropped timestamps must distinguish the two typists"
