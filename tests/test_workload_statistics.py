"""Statistical tests on the workload generators: the simulator's stochastic
knobs must actually produce the distributions they claim."""

import numpy as np
import pytest

from repro.android.apps import CHASE
from repro.android.device import AWAY_ACTIVITY_RATE_HZ, VictimDevice
from repro.android.events import AppSwitchAway, AppSwitchBack, KeyPress
from repro.android.keyboard import KEYBOARDS
from repro.android.os_config import default_config
from repro.workloads.typing_model import (
    FAST_MAX_INTERVAL_S,
    MEDIUM_MAX_INTERVAL_S,
    VOLUNTEERS,
    TypingModel,
)


class TestDuplicationRates:
    @pytest.mark.parametrize("keyboard_name", ["gboard", "swift", "go"])
    def test_rate_matches_spec(self, keyboard_name):
        config = default_config(keyboard=KEYBOARDS[keyboard_name])
        device = VictimDevice(config, CHASE, rng=np.random.default_rng(5))
        n = 500
        events = [KeyPress(t=0.6 + 0.5 * i, char="a") for i in range(n)]
        trace = device.compile(events, end_time_s=0.6 + 0.5 * n + 1)
        dups = sum(1 for f in trace.timeline.frames if f.label.startswith("press_dup"))
        expected = KEYBOARDS[keyboard_name].duplicate_popup_prob
        assert abs(dups / n - expected) < 0.05, keyboard_name

    def test_no_duplication_when_probability_zero(self):
        from repro.mitigations.popup_disable import config_with_popups_disabled

        config = config_with_popups_disabled(default_config())
        device = VictimDevice(config, CHASE, rng=np.random.default_rng(6))
        events = [KeyPress(t=0.6 + 0.5 * i, char="a") for i in range(100)]
        trace = device.compile(events, end_time_s=52.0)
        assert not any(
            f.label.startswith("press_dup") for f in trace.timeline.frames
        )


class TestTypingDistributions:
    def test_tier_clamps_are_respected_in_sessions(self, rng):
        model = TypingModel(rng)
        for tier, (lo, hi) in (
            ("fast", (0.0, FAST_MAX_INTERVAL_S)),
            ("medium", (FAST_MAX_INTERVAL_S, MEDIUM_MAX_INTERVAL_S)),
        ):
            timings = model.timings(60, interval_range=model.speed_tier_range(tier))
            intervals = [
                b.start_s - a.start_s for a, b in zip(timings, timings[1:])
            ]
            # intervals can stretch slightly to avoid key overlap
            assert np.quantile(intervals, 0.9) <= hi + 0.06, tier

    def test_volunteers_produce_distinct_interval_medians(self):
        medians = []
        for v, profile in enumerate(VOLUNTEERS):
            rng = np.random.default_rng(100 + v)
            samples = [profile.sample_interval(rng) for _ in range(400)]
            medians.append(np.median(samples))
        assert np.std(medians) > 0.04, "volunteers must be heterogeneous"

    def test_duration_never_exceeds_interval_in_timings(self, rng):
        model = TypingModel(rng)
        timings = model.timings(80)
        for a, b in zip(timings, timings[1:]):
            assert a.start_s + a.duration_s <= b.start_s


class TestAwayActivity:
    def test_rate_approximates_spec(self, config):
        device = VictimDevice(config, CHASE, rng=np.random.default_rng(7))
        away_span = 60.0
        trace = device.compile(
            [AppSwitchAway(t=1.0), AppSwitchBack(t=1.0 + away_span + 0.5)],
            end_time_s=away_span + 3.0,
        )
        activity = [f for f in trace.timeline.frames if f.label == "other_app"]
        observed_rate = len(activity) / away_span
        assert abs(observed_rate - AWAY_ACTIVITY_RATE_HZ) < 1.0

    def test_away_frames_confined_to_away_interval(self, config):
        device = VictimDevice(config, CHASE, rng=np.random.default_rng(8))
        trace = device.compile(
            [AppSwitchAway(t=2.0), AppSwitchBack(t=10.0)], end_time_s=12.0
        )
        for frame in trace.timeline.frames:
            if frame.label == "other_app":
                assert 2.0 < frame.start_s < 10.2


class TestJitterStatistics:
    def test_press_jitter_matches_sigma(self, config):
        """Repeated renders of the same frame must spread according to the
        configured per-counter sigma."""
        from repro.gpu import counters as pc

        device = VictimDevice(config, CHASE, rng=np.random.default_rng(9))
        events = [KeyPress(t=0.6 + 0.5 * i, char="w") for i in range(300)]
        trace = device.compile(events, end_time_s=0.6 + 150.5)
        values = [
            f.stats.increment.get(pc.RAS_8X4_TILES)
            for f in trace.timeline.frames
            if f.label == "press:w"
        ]
        values = np.array(values, dtype=float)
        rel_std = values.std() / values.mean()
        sigma = VictimDevice._JITTER_SIGMA["PERF_RAS_8X4_TILES"]
        assert 0.4 * sigma < rel_std < 2.5 * sigma

    def test_primitive_counts_are_exact(self, config):
        from repro.gpu import counters as pc

        device = VictimDevice(config, CHASE, rng=np.random.default_rng(10))
        events = [KeyPress(t=0.6 + 0.5 * i, char="w") for i in range(50)]
        trace = device.compile(events, end_time_s=27.0)
        prims = {
            f.stats.increment.get(pc.VPC_PC_PRIMITIVES)
            for f in trace.timeline.frames
            if f.label == "press:w"
        }
        assert len(prims) == 1, "primitive counters carry no jitter"
