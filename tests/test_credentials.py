"""Tests for credential generation."""

import numpy as np
import pytest

from repro.android.glyphs import KEYBOARD_CHARACTERS
from repro.workloads.credentials import (
    MAX_CREDENTIAL_LEN,
    MIN_CREDENTIAL_LEN,
    PASSWORD_POOL,
    USERNAME_POOL,
    balanced_character_stream,
    character_group,
    credential_batch,
    random_credential,
    random_text,
)


class TestGeneration:
    def test_length_range_matches_paper(self):
        assert MIN_CREDENTIAL_LEN == 8
        assert MAX_CREDENTIAL_LEN == 16

    def test_random_text_length_and_pool(self, rng):
        text = random_text(rng, 20, pool="ab")
        assert len(text) == 20
        assert set(text) <= {"a", "b"}

    def test_random_text_rejects_nonpositive_length(self, rng):
        with pytest.raises(ValueError):
            random_text(rng, 0)

    def test_random_credential_default_lengths(self, rng):
        lengths = {len(random_credential(rng)) for _ in range(200)}
        assert lengths <= set(range(8, 17))
        assert len(lengths) > 3

    def test_random_credential_fixed_length(self, rng):
        assert len(random_credential(rng, length=12)) == 12

    def test_out_of_range_length_rejected(self, rng):
        with pytest.raises(ValueError):
            random_credential(rng, length=5)
        with pytest.raises(ValueError):
            random_credential(rng, length=20)

    def test_batch(self, rng):
        batch = credential_batch(rng, 10, length=9)
        assert len(batch) == 10
        assert all(len(t) == 9 for t in batch)

    def test_password_pool_is_fig18_set(self):
        assert PASSWORD_POOL == KEYBOARD_CHARACTERS

    def test_username_pool_is_lowercase_digits(self):
        assert set(USERNAME_POOL) <= set("abcdefghijklmnopqrstuvwxyz1234567890.")

    def test_deterministic_given_seed(self):
        a = random_credential(np.random.default_rng(5))
        b = random_credential(np.random.default_rng(5))
        assert a == b


class TestCharacterGroups:
    def test_groups(self):
        assert character_group("a") == "lower"
        assert character_group("Z") == "upper"
        assert character_group("7") == "number"
        assert character_group(",") == "symbol"
        assert character_group("@") == "symbol"


class TestBalancedStream:
    def test_every_character_appears_exactly_n_times(self, rng):
        stream = balanced_character_stream(rng, repeats=3)
        assert len(stream) == 3 * len(KEYBOARD_CHARACTERS)
        for char in KEYBOARD_CHARACTERS:
            assert stream.count(char) == 3

    def test_stream_is_shuffled(self, rng):
        stream = balanced_character_stream(rng, repeats=2)
        assert "".join(stream) != KEYBOARD_CHARACTERS * 2
