"""Failure injection: the attack must degrade gracefully, never crash,
and never hallucinate credentials from garbage."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.online import OnlineEngine
from repro.gpu import counters as pc
from repro.gpu.timeline import COUNTER_ORDER
from repro.kgsl.sampler import PcDelta


def random_delta(t, rng, magnitude):
    values = {
        cid: int(rng.integers(0, max(2, magnitude)))
        for cid in COUNTER_ORDER
        if rng.random() < 0.7
    }
    return PcDelta(t=t, prev_t=t - 0.008, values=values)


class TestGarbageStreams:
    @given(seed=st.integers(0, 2**31 - 1), magnitude_exp=st.integers(1, 8))
    @settings(max_examples=20, deadline=None)
    def test_random_streams_never_crash(self, chase_model, seed, magnitude_exp):
        rng = np.random.default_rng(seed)
        deltas = [
            random_delta(0.1 + i * 0.008, rng, 10**magnitude_exp) for i in range(60)
        ]
        engine = OnlineEngine(chase_model)
        result = engine.process(deltas)
        assert result.stats.deltas_seen <= 60
        assert len(result.text) <= result.stats.keys_inferred

    def test_garbage_rarely_classifies_as_keys(self, chase_model):
        """Random vectors land far from the learned clusters: hallucinated
        keys must stay a small fraction of the stream."""
        rng = np.random.default_rng(99)
        deltas = [random_delta(0.1 + i * 0.05, rng, 10**6) for i in range(300)]
        engine = OnlineEngine(chase_model)
        result = engine.process(deltas)
        assert result.stats.keys_inferred < 0.05 * len(deltas)

    def test_zero_deltas_stream(self, chase_model):
        deltas = [PcDelta(t=0.1 + i * 0.008, prev_t=0.1 + i * 0.008 - 0.008, values={})
                  for i in range(20)]
        engine = OnlineEngine(chase_model)
        result = engine.process(deltas)
        assert result.stats.deltas_seen == 0
        assert result.text == ""

    def test_empty_stream(self, chase_model):
        engine = OnlineEngine(chase_model)
        result = engine.process([])
        assert result.text == ""

    def test_monotone_violating_timestamps_tolerated(self, chase_model):
        """Defensive: even a buggy sampler's out-of-order stream must not
        crash the engine."""
        rng = np.random.default_rng(7)
        deltas = [random_delta(1.0, rng, 1000) for _ in range(5)]
        deltas += [random_delta(0.5, rng, 1000) for _ in range(5)]
        engine = OnlineEngine(chase_model)
        engine.process(deltas)  # must not raise


class TestExtremeValues:
    def test_saturated_counters(self, chase_model):
        huge = {cid: (1 << 47) for cid in COUNTER_ORDER}
        engine = OnlineEngine(chase_model)
        result = engine.process([PcDelta(t=1.0, prev_t=0.99, values=huge)])
        assert result.stats.keys_inferred == 0

    def test_single_unit_deltas(self, chase_model):
        tiny = [
            PcDelta(t=0.1 + i * 0.008, prev_t=0.1 + i * 0.008 - 0.008,
                    values={COUNTER_ORDER[i % 11]: 1})
            for i in range(50)
        ]
        engine = OnlineEngine(chase_model)
        result = engine.process(tiny)
        assert result.stats.keys_inferred == 0


class TestAdversarialVictim:
    def test_replayed_press_deltas_are_deduplicated(self, chase_model):
        """Identical press deltas 16 ms apart (the duplication pattern)
        must collapse to one key."""
        centroid = chase_model.centroid("key:w")
        values = {
            cid: int(centroid[i]) for i, cid in enumerate(COUNTER_ORDER)
        }
        a = PcDelta(t=1.000, prev_t=0.992, values=values)
        b = PcDelta(t=1.016, prev_t=1.008, values=values)
        engine = OnlineEngine(chase_model)
        result = engine.process([a, b])
        assert result.text == "w"
        assert result.stats.duplicates_suppressed == 1
