"""Tests for device/configuration recognition (Section 3.2)."""

import numpy as np
import pytest

from repro.android.apps import AMEX, CHASE
from repro.android.keyboard import SOGOU
from repro.android.os_config import default_config, phone, DeviceConfig
from repro.core.device_recognition import DeviceRecognizer
from repro.core.model_store import ModelStore
from repro.core.pipeline import simulate_credential_entry, train_model
from repro.kgsl.device_file import DeviceClock, open_kgsl
from repro.kgsl.sampler import PerfCounterSampler, nonzero_deltas


@pytest.fixture(scope="module")
def multi_store():
    configs = [
        (default_config(), CHASE),
        (default_config(keyboard=SOGOU), CHASE),
        (DeviceConfig(phone=phone("pixel2")), CHASE),
        (default_config(), AMEX),
    ]
    store = ModelStore()
    for i, (config, app) in enumerate(configs):
        store.add(train_model(config, app, seed=40 + i))
    return store


def observed_deltas(config, app, seed=77):
    trace = simulate_credential_entry(config, app, "hunter2secret", seed=seed)
    kgsl = open_kgsl(trace.timeline, clock=DeviceClock())
    sampler = PerfCounterSampler(kgsl, rng=np.random.default_rng(seed))
    return nonzero_deltas(sampler.sample_range(0.0, trace.end_time_s))


class TestRecognition:
    def test_recognizes_default_config(self, multi_store):
        recognizer = DeviceRecognizer(multi_store)
        deltas = observed_deltas(default_config(), CHASE)
        result = recognizer.recognize(deltas)
        assert result.model_key == f"{default_config().config_key()}/chase"

    def test_recognizes_other_keyboard(self, multi_store):
        recognizer = DeviceRecognizer(multi_store)
        deltas = observed_deltas(default_config(keyboard=SOGOU), CHASE)
        result = recognizer.recognize(deltas)
        assert "sogou" in result.model_key

    def test_recognizes_other_phone(self, multi_store):
        recognizer = DeviceRecognizer(multi_store)
        deltas = observed_deltas(DeviceConfig(phone=phone("pixel2")), CHASE)
        result = recognizer.recognize(deltas)
        assert "pixel2" in result.model_key

    def test_recognizes_app(self, multi_store):
        recognizer = DeviceRecognizer(multi_store)
        deltas = observed_deltas(default_config(), AMEX)
        result = recognizer.recognize(deltas)
        assert result.model_key.endswith("/amex")

    def test_scores_cover_all_models(self, multi_store):
        recognizer = DeviceRecognizer(multi_store)
        deltas = observed_deltas(default_config(), CHASE)
        result = recognizer.recognize(deltas)
        assert set(result.scores) == set(multi_store.keys())
        assert result.margin >= 0

    def test_empty_stream_rejected(self, multi_store):
        with pytest.raises(ValueError):
            DeviceRecognizer(multi_store).recognize([])

    def test_empty_store_rejected(self):
        with pytest.raises(ValueError):
            DeviceRecognizer(ModelStore())
