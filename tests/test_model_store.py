"""Tests for the preloaded model store."""

import numpy as np
import pytest

from repro.core import features
from repro.core.classifier import ClassificationModel
from repro.core.model_store import ModelStore


def model(key, offset=0.0):
    return ClassificationModel(
        labels=["key:a", "key:b"],
        centroids=np.vstack(
            [np.full(features.DIMENSIONS, 1.0 + offset), np.full(features.DIMENSIONS, 2.0 + offset)]
        ),
        scale=np.ones(features.DIMENSIONS),
        cth=1.0,
        model_key=key,
    )


class TestStore:
    def test_add_and_get(self):
        store = ModelStore()
        store.add(model("a/chase"))
        assert store.get("a/chase").model_key == "a/chase"

    def test_unknown_key_raises(self):
        store = ModelStore()
        with pytest.raises(KeyError):
            store.get("nope")

    def test_unkeyed_model_rejected(self):
        store = ModelStore()
        with pytest.raises(ValueError):
            store.add(model(""))

    def test_contains_len_iter(self):
        store = ModelStore()
        store.add(model("x"))
        store.add(model("y"))
        assert "x" in store and "z" not in store
        assert len(store) == 2
        assert {m.model_key for m in store} == {"x", "y"}

    def test_duplicate_key_replaces(self):
        store = ModelStore()
        store.add(model("x"))
        store.add(model("x", offset=5.0))
        assert len(store) == 1
        assert store.get("x").centroids[0, 0] == 6.0

    def test_keys_sorted(self):
        store = ModelStore()
        for key in ("b", "a", "c"):
            store.add(model(key))
        assert store.keys() == ["a", "b", "c"]


class TestSizes:
    def test_total_and_average(self):
        store = ModelStore()
        store.add(model("x"))
        store.add(model("y"))
        assert store.total_size_bytes() > 0
        assert store.average_size_bytes() == pytest.approx(store.total_size_bytes() / 2)

    def test_empty_average_is_zero(self):
        assert ModelStore().average_size_bytes() == 0.0


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        store = ModelStore()
        store.add(model("cfg1/chase"))
        store.add(model("cfg2/amex", offset=3.0))
        path = tmp_path / "models.json"
        store.save(path)
        loaded = ModelStore.load(path)
        assert loaded.keys() == store.keys()
        assert np.allclose(
            loaded.get("cfg2/amex").centroids, store.get("cfg2/amex").centroids
        )

    def test_loaded_model_classifies(self, tmp_path, chase_model):
        store = ModelStore()
        store.add(chase_model)
        path = tmp_path / "m.json"
        store.save(path)
        loaded = ModelStore.load(path).get(chase_model.model_key)
        centroid = chase_model.centroid("key:w")
        assert loaded.classify_vector(centroid).label == "key:w"
