"""Tests for the preloaded model store."""

import numpy as np
import pytest

from repro.core import features
from repro.core.classifier import ClassificationModel
from repro.core.model_store import ModelStore


def model(key, offset=0.0):
    return ClassificationModel(
        labels=["key:a", "key:b"],
        centroids=np.vstack(
            [np.full(features.DIMENSIONS, 1.0 + offset), np.full(features.DIMENSIONS, 2.0 + offset)]
        ),
        scale=np.ones(features.DIMENSIONS),
        cth=1.0,
        model_key=key,
    )


class TestStore:
    def test_add_and_get(self):
        store = ModelStore()
        store.add(model("a/chase"))
        assert store.get("a/chase").model_key == "a/chase"

    def test_unknown_key_raises(self):
        store = ModelStore()
        with pytest.raises(KeyError):
            store.get("nope")

    def test_unkeyed_model_rejected(self):
        store = ModelStore()
        with pytest.raises(ValueError):
            store.add(model(""))

    def test_contains_len_iter(self):
        store = ModelStore()
        store.add(model("x"))
        store.add(model("y"))
        assert "x" in store and "z" not in store
        assert len(store) == 2
        assert {m.model_key for m in store} == {"x", "y"}

    def test_duplicate_key_replaces(self):
        store = ModelStore()
        store.add(model("x"))
        store.add(model("x", offset=5.0))
        assert len(store) == 1
        assert store.get("x").centroids[0, 0] == 6.0

    def test_keys_sorted(self):
        store = ModelStore()
        for key in ("b", "a", "c"):
            store.add(model(key))
        assert store.keys() == ["a", "b", "c"]


class TestSizes:
    def test_total_and_average(self):
        store = ModelStore()
        store.add(model("x"))
        store.add(model("y"))
        assert store.total_size_bytes() > 0
        assert store.average_size_bytes() == pytest.approx(store.total_size_bytes() / 2)

    def test_empty_average_is_zero(self):
        assert ModelStore().average_size_bytes() == 0.0


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        store = ModelStore()
        store.add(model("cfg1/chase"))
        store.add(model("cfg2/amex", offset=3.0))
        path = tmp_path / "models.json"
        store.save(path)
        loaded = ModelStore.load(path)
        assert loaded.keys() == store.keys()
        assert np.allclose(
            loaded.get("cfg2/amex").centroids, store.get("cfg2/amex").centroids
        )

    def test_loaded_model_classifies(self, tmp_path, chase_model):
        store = ModelStore()
        store.add(chase_model)
        path = tmp_path / "m.json"
        store.save(path)
        loaded = ModelStore.load(path).get(chase_model.model_key)
        centroid = chase_model.centroid("key:w")
        assert loaded.classify_vector(centroid).label == "key:w"


class TestIntegrity:
    def _saved(self, tmp_path):
        store = ModelStore()
        store.add(model("cfg1/chase"))
        path = tmp_path / "models.json"
        store.save(path)
        return store, path

    def test_envelope_schema_and_checksum(self, tmp_path):
        import json

        from repro.core.model_store import STORE_SCHEMA

        _, path = self._saved(tmp_path)
        document = json.loads(path.read_text())
        assert document["schema"] == STORE_SCHEMA
        assert "checksum" in document and "payload" in document

    def test_checksum_mismatch_raises(self, tmp_path):
        from repro.core.model_store import ModelIntegrityError

        _, path = self._saved(tmp_path)
        raw = bytearray(path.read_bytes())
        # flip one digit inside a centroid value
        idx = raw.index(b"1.0")
        raw[idx] = ord(b"9")
        path.write_bytes(bytes(raw))
        with pytest.raises(ModelIntegrityError, match="checksum mismatch"):
            ModelStore.load(path)

    def test_truncated_file_raises(self, tmp_path):
        from repro.core.model_store import ModelIntegrityError

        _, path = self._saved(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(ModelIntegrityError, match="truncated|checksum"):
            ModelStore.load(path)

    def test_missing_file_raises_integrity_error(self, tmp_path):
        from repro.core.model_store import ModelIntegrityError

        with pytest.raises(ModelIntegrityError, match="cannot read"):
            ModelStore.load(tmp_path / "nope.json")

    def test_unknown_schema_raises(self, tmp_path):
        import json

        from repro.core.model_store import ModelIntegrityError

        path = tmp_path / "weird.json"
        path.write_text(json.dumps({"schema": "repro.model_store/99"}))
        with pytest.raises(ModelIntegrityError, match="unknown model store schema"):
            ModelStore.load(path)

    def test_legacy_file_loads_with_deprecation_warning(self, tmp_path):
        import json

        store = ModelStore()
        store.add(model("cfg1/chase"))
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps(store.to_dict()))
        with pytest.warns(DeprecationWarning, match="legacy"):
            loaded = ModelStore.load(path)
        assert loaded.keys() == ["cfg1/chase"]
        assert loaded.version == 0

    def test_version_and_lineage_roundtrip(self, tmp_path):
        store = ModelStore()
        store.add(model("cfg1/chase"))
        store.version = 7
        store.lineage = {"reason": "test"}
        path = tmp_path / "v.json"
        store.save(path)
        loaded = ModelStore.load(path)
        assert loaded.version == 7
        assert loaded.lineage == {"reason": "test"}


class TestVersionedStore:
    def _store(self, key="cfg1/chase", offset=0.0):
        s = ModelStore()
        s.add(model(key, offset=offset))
        return s

    def test_versions_are_monotonic(self, tmp_path):
        from repro.core.model_store import VersionedModelStore

        versioned = VersionedModelStore(tmp_path / "store")
        assert versioned.latest_version() is None
        assert versioned.save(self._store()) == 1
        assert versioned.save(self._store(offset=1.0)) == 2
        assert versioned.save(self._store(offset=2.0)) == 3
        assert versioned.versions() == [1, 2, 3]
        assert len(versioned) == 3

    def test_concurrent_save_collision_takes_next_version(self, tmp_path):
        from repro.core.model_store import VersionedModelStore

        versioned = VersionedModelStore(tmp_path / "store")
        versioned.save(self._store())
        # simulate a concurrent writer that already created v2
        (tmp_path / "store" / "v00002.json").write_text("{}")
        assert versioned.save(self._store(offset=1.0)) == 3

    def test_load_by_version_and_latest(self, tmp_path):
        from repro.core.model_store import VersionedModelStore

        versioned = VersionedModelStore(tmp_path / "store")
        versioned.save(self._store(offset=0.0), lineage={"reason": "offline"})
        versioned.save(self._store(offset=5.0), lineage={"reason": "refit"})
        v1 = versioned.load(1)
        v2 = versioned.load_latest()
        assert v1.version == 1 and v1.lineage == {"reason": "offline"}
        assert v2.version == 2 and v2.lineage == {"reason": "refit"}
        assert v2.get("cfg1/chase").centroids[0, 0] == 6.0

    def test_load_missing_version_raises(self, tmp_path):
        from repro.core.model_store import ModelIntegrityError, VersionedModelStore

        versioned = VersionedModelStore(tmp_path / "store")
        with pytest.raises(ModelIntegrityError, match="no versions"):
            versioned.load_latest()
        versioned.save(self._store())
        with pytest.raises(ModelIntegrityError, match="no version 9"):
            versioned.load(9)

    def test_manifest_records_lineage(self, tmp_path):
        from repro.core.model_store import STORE_DIR_SCHEMA, VersionedModelStore

        versioned = VersionedModelStore(tmp_path / "store")
        versioned.save(self._store(), lineage={"device_id": "d0"})
        manifest = versioned.manifest()
        assert manifest["schema"] == STORE_DIR_SCHEMA
        assert manifest["latest"] == 1
        assert versioned.lineage_of(1) == {"device_id": "d0"}
        with pytest.raises(KeyError):
            versioned.lineage_of(2)

    def test_swapped_file_detected_by_manifest(self, tmp_path):
        from repro.core.model_store import ModelIntegrityError, VersionedModelStore

        versioned = VersionedModelStore(tmp_path / "store")
        versioned.save(self._store(offset=0.0))
        versioned.save(self._store(offset=5.0))
        # swap v2's (validly checksummed) file in as v1: the per-file
        # checksum still passes, but the envelope claims version 2
        v2_bytes = (tmp_path / "store" / "v00002.json").read_bytes()
        (tmp_path / "store" / "v00001.json").write_bytes(v2_bytes)
        with pytest.raises(ModelIntegrityError, match="claims version"):
            versioned.load(1)

    def test_tampered_manifest_checksum_detected(self, tmp_path):
        import json

        from repro.core.model_store import ModelIntegrityError, VersionedModelStore

        versioned = VersionedModelStore(tmp_path / "store")
        versioned.save(self._store())
        manifest_path = tmp_path / "store" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["versions"][0]["checksum"] = "0" * 64
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ModelIntegrityError, match="manifest checksum"):
            versioned.load(1)
