"""Golden-trace regression fixtures: byte parity against checked-in runs.

Unit tests assert *properties* of a run; these tests pin the *entire
deterministic output* — inferred keys, engine stats, fault tallies, and
every runtime-trace event — to fixtures under ``tests/golden/``.  Any
change to sampling, scheduling, Algorithm 1, or trace emission that
shifts even one timestamp or counter shows up as a byte-level diff here
before it silently shifts the paper's numbers.

The same serial fixture is asserted three ways, per the parity
guarantees the runtime documents:

* serial (``workers=1``) — the reference run;
* sharded (``workers=2``, inline context) — the merge must reproduce
  the serial bytes exactly;
* ``fault-profile=none`` — an armed-but-silent injector must not
  perturb the run.

Intentional behaviour changes regenerate fixtures with::

    PYTHONPATH=src python -m pytest tests/test_golden_traces.py --update-golden
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.api import AttackConfig, FaultPlan, app, attack, run_sessions, simulate
from repro.parallel.sharded import ShardedRuntime
from repro.runtime.trace import RuntimeTrace

GOLDEN_DIR = Path(__file__).parent / "golden"

CREDENTIALS = ["Tr0ub4dor&3", "hunter2", "pw123456"]
SIM_SEED = 5
RUN_SEED = 99


def _native(value):
    """Recursively coerce numpy scalars so json output is type-stable."""
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, dict):
        return {str(k): _native(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_native(v) for v in value]
    return value


def canonicalize(batch, trace):
    """The deterministic projection of a run: everything seed-derived,
    nothing wall-clock-derived (manifests, latency histograms, spans)."""
    results = []
    for result in batch:
        faults = result.faults
        results.append(
            {
                "text": result.text,
                "model_key": result.model_key,
                "degraded": result.degraded,
                "reads_issued": result.reads_issued,
                "reads_dropped": result.reads_dropped,
                # no plan and an all-zero plan must read identically
                "faults": _native(vars(faults)) if faults is not None else {},
                "stats": _native(vars(result.stats)),
                # distance is rounded: sharded workers rebuild the model
                # from its dict form, which drifts classifier distances
                # by ~1e-8 (the documented parity contract covers keys,
                # text, trace order, counters - not raw distance floats)
                "keys": [
                    dict(_native(vars(key)), distance=round(float(key.distance), 6))
                    for key in result.keys
                ],
            }
        )
    return {
        "schema": "repro.golden/1",
        "results": results,
        "trace": {
            "emitted": trace.emitted,
            "summary": trace.summary(),
            "events": [
                {
                    "t": event.t,
                    "session": event.session,
                    "stage": event.stage,
                    "kind": event.kind,
                    "detail": _native(dict(event.detail)),
                }
                for event in trace.events
            ],
        },
    }


def golden_bytes(payload) -> bytes:
    return (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8")


def check_or_update(name: str, payload, update: bool) -> None:
    path = GOLDEN_DIR / name
    data = golden_bytes(payload)
    if update:
        path.write_bytes(data)
        pytest.skip(f"regenerated {path.name}")
    assert path.exists(), (
        f"{path} missing - run with --update-golden to create it"
    )
    if path.read_bytes() != data:
        # byte compare first (catches whitespace/key-order drift too),
        # then a structural diff for a readable failure message
        assert json.loads(path.read_text()) == payload, (
            f"run output diverged from {path.name}"
        )
        raise AssertionError(
            f"{path.name}: semantically equal but not byte-identical "
            "(serialization drift) - regenerate with --update-golden"
        )


@pytest.fixture(scope="module")
def golden_traces(config):
    return [
        simulate(config, app("chase"), credential, seed=SIM_SEED + i)
        for i, credential in enumerate(CREDENTIALS)
    ]


def _strip(faults_none=False):
    return AttackConfig(
        recognize_device=False,
        fault_plan=FaultPlan.from_profile("none", seed=1) if faults_none else None,
    )


class TestBatchGolden:
    """One 3-session batch, pinned once, reproduced three ways."""

    FIXTURE = "batch_chase_3_sessions.json"

    def test_serial_matches_golden(self, chase_store, golden_traces, update_golden):
        trace = RuntimeTrace()
        batch = run_sessions(
            chase_store, golden_traces, seed=RUN_SEED, config=_strip(),
            runtime_trace=trace,
        )
        check_or_update(self.FIXTURE, canonicalize(batch, trace), update_golden)

    def test_workers2_matches_golden(self, chase_store, golden_traces, update_golden):
        trace = RuntimeTrace()
        batch = ShardedRuntime(
            chase_store, config=_strip(), workers=2, mp_context="inline"
        ).run_sessions(golden_traces, seed=RUN_SEED, runtime_trace=trace)
        check_or_update(self.FIXTURE, canonicalize(batch, trace), update_golden)

    def test_fault_profile_none_matches_golden(
        self, chase_store, golden_traces, update_golden
    ):
        trace = RuntimeTrace()
        batch = run_sessions(
            chase_store, golden_traces, seed=RUN_SEED,
            config=_strip(faults_none=True), runtime_trace=trace,
        )
        check_or_update(self.FIXTURE, canonicalize(batch, trace), update_golden)

    def test_mitigation_none_matches_golden(
        self, chase_store, golden_traces, update_golden
    ):
        # the undefended-pipeline contract: an explicit mitigation=None
        # installs no policy hook anywhere and stays byte-identical
        trace = RuntimeTrace()
        config = AttackConfig(
            recognize_device=False, fault_plan=None, mitigation=None
        )
        batch = run_sessions(
            chase_store, golden_traces, seed=RUN_SEED, config=config,
            runtime_trace=trace,
        )
        check_or_update(self.FIXTURE, canonicalize(batch, trace), update_golden)

    def test_drift_none_matches_golden(
        self, chase_store, golden_traces, update_golden
    ):
        # the driftless contract: an explicit drift=None installs no
        # injector at the KGSL boundary and stays byte-identical
        trace = RuntimeTrace()
        config = AttackConfig(
            recognize_device=False, fault_plan=None, drift=None
        )
        batch = run_sessions(
            chase_store, golden_traces, seed=RUN_SEED, config=config,
            runtime_trace=trace,
        )
        check_or_update(self.FIXTURE, canonicalize(batch, trace), update_golden)

    def test_calibration_none_matches_golden(
        self, chase_store, golden_traces, update_golden
    ):
        # frozen-model contract: calibration=None (the default) keeps
        # the engine out of evidence-collection mode and re-fits nothing
        trace = RuntimeTrace()
        config = AttackConfig(
            recognize_device=False, fault_plan=None, drift=None, calibration=None
        )
        batch = run_sessions(
            chase_store, golden_traces, seed=RUN_SEED, config=config,
            runtime_trace=trace,
        )
        check_or_update(self.FIXTURE, canonicalize(batch, trace), update_golden)

    def test_mitigation_allow_all_matches_golden(
        self, chase_store, golden_traces, update_golden
    ):
        # allow-all enforces nothing at the KGSL boundary, so it must
        # reproduce the undefended bytes exactly (the baseline column
        # of the threat x mitigation matrix)
        trace = RuntimeTrace()
        config = AttackConfig(
            recognize_device=False, fault_plan=None, mitigation="allow-all"
        )
        batch = run_sessions(
            chase_store, golden_traces, seed=RUN_SEED, config=config,
            runtime_trace=trace,
        )
        check_or_update(self.FIXTURE, canonicalize(batch, trace), update_golden)


class TestAttackGolden:
    """Single-session attack under the mild fault profile: the injected
    faults themselves are seed-deterministic, so the degraded run is
    just as pinnable as the clean one."""

    FIXTURE = "attack_chase_mild_faults.json"

    def test_mild_fault_attack_matches_golden(
        self, chase_store, golden_traces, update_golden
    ):
        config = AttackConfig(
            recognize_device=False,
            fault_plan=FaultPlan.from_profile("mild", seed=21),
        )
        trace = RuntimeTrace()
        result = attack(
            chase_store, golden_traces[0], seed=RUN_SEED, config=config,
            runtime_trace=trace,
        )
        check_or_update(self.FIXTURE, canonicalize([result], trace), update_golden)
