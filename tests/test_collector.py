"""Tests for the fleet collector: framing, delivery, backpressure, fleet."""

import socket
import time

import pytest

from repro.api import run_fleet
from repro.collector import (
    CollectorClient,
    CollectorClientError,
    CollectorConfig,
    CollectorHandle,
    CollectorServer,
    FleetDriver,
    NetworkFaultInjector,
    RetryPolicy,
    SessionResultPayload,
    encode_frame,
    read_frame_sock,
)
from repro.collector.framing import (
    MAX_FRAME_BYTES,
    ConnectionClosed,
    FrameError,
    decode_body,
    parse_length,
)
from repro.faults import FaultPlan
from repro.obs import MetricsRegistry

NO_SLEEP = lambda s: None  # noqa: E731 — instant backoff for tests
FAST_RETRY = RetryPolicy(max_attempts=8, base_delay_s=0.001, max_delay_s=0.01)
FAST_CFG = CollectorConfig(retry=FAST_RETRY)


def fast_cfg(**overrides):
    return FAST_CFG.with_overrides(**overrides)


def payloads_for(device_id, n, text="pw", exact=True):
    return [
        SessionResultPayload(device_id, i, text, len(text), exact=exact)
        for i in range(n)
    ]


def raw_connect(endpoint):
    assert endpoint[0] == "tcp"
    sock = socket.create_connection((endpoint[1], endpoint[2]), timeout=5.0)
    sock.settimeout(5.0)
    return sock


# ---------------------------------------------------------------------------
# framing


class TestFraming:
    def test_round_trip(self):
        frame = encode_frame({"type": "ack", "seq": 7})
        assert parse_length(frame[:4]) == len(frame) - 4
        assert decode_body(frame[4:]) == {"type": "ack", "seq": 7}

    def test_oversized_length_prefix_rejected(self):
        with pytest.raises(FrameError, match="exceeds cap"):
            parse_length((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))

    def test_truncated_prefix_rejected(self):
        with pytest.raises(FrameError, match="truncated"):
            parse_length(b"\x00\x00")

    def test_non_object_body_rejected(self):
        with pytest.raises(FrameError, match="JSON object"):
            decode_body(b"[1, 2]")
        with pytest.raises(FrameError, match="not valid JSON"):
            decode_body(b"{nope")

    def test_payload_dict_round_trip(self):
        payload = SessionResultPayload(
            "device-0001", 3, "hunter2", 7, degraded=True, exact=False, seed=42
        )
        assert SessionResultPayload.from_dict(payload.to_dict()) == payload

    def test_payload_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown"):
            SessionResultPayload.from_dict({"device_id": "d", "bogus": 1})

    def test_payload_from_result_scores_expected(self):
        class FakeResult:
            text = "secret"
            keys = [1, 2, 3]
            degraded = False

        payload = SessionResultPayload.from_result(
            FakeResult(), device_id="d", session_index=0, expected="secret"
        )
        assert payload.exact is True
        assert payload.n_keys == 3
        missed = SessionResultPayload.from_result(
            FakeResult(), device_id="d", session_index=1, expected="other"
        )
        assert missed.exact is False


# ---------------------------------------------------------------------------
# server + client delivery


class TestDelivery:
    def test_tcp_round_trip_all_ingested(self):
        with CollectorHandle(fast_cfg()) as handle:
            with CollectorClient(
                handle.endpoint, "device-0000", config=FAST_CFG, sleep=NO_SLEEP
            ) as client:
                client.send_results(payloads_for("device-0000", 10))
        server = handle.server
        assert len(server.results) == 10
        assert server.registry.counter("collector.sessions_ingested").value == 10
        assert server.registry.counter("collector.sessions_exact").value == 10
        assert server.registry.counter("collector.dupes_dropped").value == 0
        # results arrive in seq order on one connection
        assert [p.session_index for p in server.results] == list(range(10))

    def test_unix_socket_transport(self, tmp_path):
        path = str(tmp_path / "collector.sock")
        with CollectorHandle(fast_cfg(transport="unix", unix_path=path)) as handle:
            assert handle.endpoint == ("unix", path)
            with CollectorClient(
                handle.endpoint, "device-0000", config=FAST_CFG, sleep=NO_SLEEP
            ) as client:
                client.send_results(payloads_for("device-0000", 5))
        assert len(handle.server.results) == 5

    def test_resend_is_deduplicated(self):
        with CollectorHandle(fast_cfg()) as handle:
            sock = raw_connect(handle.endpoint)
            frame = {
                "type": "result",
                "device_id": "device-0000",
                "seq": 0,
                "payload": SessionResultPayload("device-0000", 0, "pw", 2).to_dict(),
            }
            for _ in range(3):
                sock.sendall(encode_frame(frame))
                assert read_frame_sock(sock) == {"type": "ack", "seq": 0}
            sock.close()
        server = handle.server
        assert len(server.results) == 1
        assert server.registry.counter("collector.frames_ingested").value == 3
        assert server.registry.counter("collector.dupes_dropped").value == 2

    def test_devices_do_not_share_dedup_space(self):
        with CollectorHandle(fast_cfg()) as handle:
            for device in ("device-0000", "device-0001"):
                with CollectorClient(
                    handle.endpoint, device, config=FAST_CFG, sleep=NO_SLEEP
                ) as client:
                    client.send_results(payloads_for(device, 3))
        assert len(handle.server.results) == 6

    def test_injected_drops_are_absorbed_with_zero_loss(self):
        plan = FaultPlan(seed=5, read_error_prob=0.3, jitter_prob=0.2, jitter_s=1e-4)
        with CollectorHandle(fast_cfg()) as handle:
            client = CollectorClient(
                handle.endpoint,
                "device-0000",
                fault_plan=plan,
                config=FAST_CFG,
                seed_offset=9,
                sleep=NO_SLEEP,
            )
            with client:
                client.send_results(payloads_for("device-0000", 40))
        server = handle.server
        assert len(server.results) == 40
        assert client.stats.retries > 0
        assert client.stats.injected_drops > 0
        # drop-after-send resends surface as deduplicated frames
        assert (
            server.registry.counter("collector.dupes_dropped").value
            + server.registry.counter("collector.sessions_ingested").value
            == server.registry.counter("collector.frames_ingested").value
        )
        # the client's bye tally landed in the collector registry
        assert (
            server.registry.counter("collector.client_retries").value
            == client.stats.retries
        )

    def test_client_gives_up_when_collector_is_gone(self):
        handle = CollectorHandle(fast_cfg())
        endpoint = handle.start()
        handle.stop()
        client = CollectorClient(
            endpoint,
            "device-0000",
            config=fast_cfg(retry=RetryPolicy(max_attempts=3, base_delay_s=0.001)),
            sleep=NO_SLEEP,
        )
        with pytest.raises(CollectorClientError, match="undelivered after 3 attempts"):
            client.send_result(SessionResultPayload("device-0000", 0, "pw", 2))

    def test_client_survives_server_side_idle_timeout(self):
        with CollectorHandle(fast_cfg(read_timeout_s=0.05)) as handle:
            with CollectorClient(
                handle.endpoint, "device-0000", config=FAST_CFG, sleep=NO_SLEEP
            ) as client:
                client.send_result(SessionResultPayload("device-0000", 0, "pw", 2))
                deadline = time.monotonic() + 2.0
                while (
                    handle.server.registry.counter(
                        "collector.connection_timeouts"
                    ).value
                    == 0
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.01)
                # the server timed the idle connection out; the next send
                # must transparently reconnect and deliver
                client.send_result(SessionResultPayload("device-0000", 1, "pw", 2))
        server = handle.server
        assert server.registry.counter("collector.connection_timeouts").value >= 1
        assert len(server.results) == 2
        assert client.stats.reconnects >= 1

    def test_oversized_prefix_is_rejected_cleanly(self):
        with CollectorHandle(fast_cfg()) as handle:
            sock = raw_connect(handle.endpoint)
            sock.sendall((MAX_FRAME_BYTES + 1).to_bytes(4, "big") + b"xxxx")
            # the server answers with a typed protocol error, then hangs up
            assert read_frame_sock(sock)["type"] == "error"
            assert sock.recv(1) == b""
            sock.close()
        registry = handle.server.registry
        assert registry.counter("collector.frames.rejected").value == 1
        assert registry.counter("collector.malformed_frames").value == 0

    def test_truncated_frame_is_rejected_cleanly(self):
        with CollectorHandle(fast_cfg()) as handle:
            sock = raw_connect(handle.endpoint)
            # claim a 64-byte body, deliver 3 bytes, vanish mid-frame
            sock.sendall((64).to_bytes(4, "big") + b"abc")
            sock.close()
            deadline = time.monotonic() + 2.0
            registry = handle.server.registry
            while (
                registry.counter("collector.frames.rejected").value == 0
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
        assert registry.counter("collector.frames.rejected").value == 1

    def test_malformed_frame_closes_connection(self):
        with CollectorHandle(fast_cfg()) as handle:
            sock = raw_connect(handle.endpoint)
            sock.sendall(encode_frame({"type": "mystery"}))
            assert read_frame_sock(sock)["type"] == "error"
            assert sock.recv(1) == b""
            sock.close()
        assert handle.server.registry.counter("collector.malformed_frames").value == 1

    def test_hello_proto_mismatch_rejected(self):
        with CollectorHandle(fast_cfg()) as handle:
            sock = raw_connect(handle.endpoint)
            sock.sendall(encode_frame({"type": "hello", "device_id": "d", "proto": 99}))
            assert read_frame_sock(sock)["type"] == "error"
            with pytest.raises((ConnectionClosed, OSError)):
                read_frame_sock(sock)
            sock.close()
        assert handle.server.registry.counter("collector.proto_rejected").value == 1

    def test_metrics_frame_merges_into_registry(self):
        device = MetricsRegistry()
        device.counter("engine.keys").inc(12)
        with CollectorHandle(fast_cfg()) as handle:
            with CollectorClient(
                handle.endpoint, "device-0000", config=FAST_CFG, sleep=NO_SLEEP
            ) as client:
                client.send_metrics(device.snapshot())
                client.send_metrics(device.snapshot())
        registry = handle.server.registry
        assert registry.counter("engine.keys").value == 24
        assert registry.counter("collector.metrics_frames").value == 2

    def test_config_validates_fields(self):
        with pytest.raises(ValueError, match="transport"):
            CollectorConfig(transport="carrier-pigeon")
        with pytest.raises(ValueError, match="unix_path"):
            CollectorConfig(transport="unix")
        with pytest.raises(ValueError, match="codec"):
            CollectorConfig(codec="morse")
        with pytest.raises(ValueError, match="queue_size"):
            CollectorConfig(queue_size=0)
        with pytest.raises(ValueError, match="timeouts"):
            CollectorConfig(read_timeout_s=0)
        with pytest.raises(TypeError, match="RetryPolicy"):
            CollectorConfig(retry={"max_attempts": 3})

    def test_config_round_trips_through_dict(self):
        cfg = CollectorConfig(
            codec="binary",
            queue_size=32,
            retry=RetryPolicy(max_attempts=4, base_delay_s=0.01),
        )
        assert CollectorConfig.from_dict(cfg.to_dict()) == cfg
        with pytest.raises(ValueError, match="unknown"):
            CollectorConfig.from_dict({"bogus": 1})

    def test_legacy_kwargs_warn_and_apply(self):
        with pytest.deprecated_call(match="CollectorServer"):
            server = CollectorServer(transport="tcp", queue_size=7)
        assert server.config.queue_size == 7
        with pytest.raises(ValueError, match="transport"):
            with pytest.deprecated_call():
                CollectorServer(transport="carrier-pigeon")
        with pytest.raises(TypeError, match="unexpected keyword"):
            CollectorServer(bogus_knob=1)
        endpoint = ("tcp", "127.0.0.1", 1)
        with pytest.deprecated_call(match="CollectorClient"):
            client = CollectorClient(endpoint, "d", retry=FAST_RETRY)
        assert client.retry == FAST_RETRY


class TestBackpressure:
    def test_bounded_queue_blocks_producers_not_memory(self):
        import asyncio

        delay_s = 0.01
        n = 12

        async def slow_consumer(payload):
            await asyncio.sleep(delay_s)

        with CollectorHandle(
            fast_cfg(queue_size=1), on_result=slow_consumer
        ) as handle:
            started = time.perf_counter()
            with CollectorClient(
                handle.endpoint, "device-0000", config=FAST_CFG, sleep=NO_SLEEP
            ) as client:
                client.send_results(payloads_for("device-0000", n))
            elapsed = time.perf_counter() - started
        server = handle.server
        assert len(server.results) == n
        # the queue bound held: admission never ran ahead of aggregation
        assert server.registry.gauge("collector.queue_depth_peak").value <= 1
        # and the producer was actually slowed to the consumer's pace
        assert elapsed >= (n - 2) * delay_s

    def test_graceful_drain_aggregates_everything_admitted(self):
        import asyncio

        async def slow_consumer(payload):
            await asyncio.sleep(0.02)

        with CollectorHandle(
            fast_cfg(queue_size=64), on_result=slow_consumer
        ) as handle:
            with CollectorClient(
                handle.endpoint, "device-0000", config=FAST_CFG, sleep=NO_SLEEP
            ) as client:
                client.send_results(payloads_for("device-0000", 8))
            # context exit stops the server; drain must finish the queue
        assert len(handle.server.results) == 8

    def test_aggregation_error_does_not_wedge_the_queue(self):
        def explode(payload):
            raise RuntimeError("aggregation bug")

        with CollectorHandle(fast_cfg(), on_result=explode) as handle:
            with CollectorClient(
                handle.endpoint, "device-0000", config=FAST_CFG, sleep=NO_SLEEP
            ) as client:
                client.send_results(payloads_for("device-0000", 4))
        registry = handle.server.registry
        assert registry.counter("collector.aggregation_errors").value == 4
        assert registry.counter("collector.sessions_ingested").value == 4


class TestNetworkFaultInjector:
    def test_deterministic_under_seed(self):
        plan = FaultPlan(seed=7, read_error_prob=0.4, jitter_prob=0.3, jitter_s=0.01)
        a = NetworkFaultInjector(plan, seed_offset=3)
        b = NetworkFaultInjector(plan, seed_offset=3)
        seq_a = [(a.connection_fault(), a.slow_read_delay_s()) for _ in range(50)]
        seq_b = [(b.connection_fault(), b.slow_read_delay_s()) for _ in range(50)]
        assert seq_a == seq_b
        assert any(fault for fault, _ in seq_a)

    def test_offset_decorrelates_devices(self):
        plan = FaultPlan(seed=7, read_error_prob=0.4)
        a = NetworkFaultInjector(plan, seed_offset=1)
        b = NetworkFaultInjector(plan, seed_offset=2)
        assert [a.connection_fault() for _ in range(60)] != [
            b.connection_fault() for _ in range(60)
        ]

    def test_retry_policy_delay_bounds_and_validation(self):
        import numpy as np

        policy = RetryPolicy(base_delay_s=0.1, max_delay_s=0.5, jitter_frac=0.5)
        rng = np.random.default_rng(0)
        for attempt in range(10):
            delay = policy.delay_s(attempt, rng)
            assert 0 < delay <= 0.5 * 1.5
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-1)


# ---------------------------------------------------------------------------
# typed frames and the two wire codecs


from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.collector import (  # noqa: E402
    BINARY_CODEC,
    JSON_CODEC,
    N_COUNTERS,
    Ack,
    Bye,
    Hello,
    HelloOk,
    Metrics,
    Result,
    decode_any,
    negotiate_codec,
)

u64 = st.integers(min_value=0, max_value=2 ** 64 - 1)

payload_strategy = st.builds(
    SessionResultPayload,
    device_id=st.text(min_size=1, max_size=24),
    session_index=st.integers(min_value=0, max_value=2 ** 32 - 1),
    text=st.text(max_size=48),
    n_keys=st.integers(min_value=0, max_value=2 ** 32 - 1),
    degraded=st.booleans(),
    exact=st.one_of(st.none(), st.booleans()),
    seed=st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1),
    deltas=st.one_of(
        st.none(),
        st.tuples(*[u64] * N_COUNTERS),
    ),
    mask=st.integers(min_value=0, max_value=(1 << N_COUNTERS) - 1),
    metrics=st.one_of(st.none(), st.dictionaries(st.text(max_size=8), st.integers())),
    meta=st.dictionaries(st.text(max_size=8), st.text(max_size=8), max_size=3),
)


class TestWireCodecs:
    @given(payload=payload_strategy, seq=st.integers(min_value=0, max_value=2 ** 32 - 1))
    @settings(max_examples=120)
    def test_binary_result_round_trip(self, payload, seq):
        frame = Result(seq=seq, payload=payload)
        decoded = decode_any(BINARY_CODEC.encode(frame)[4:])
        assert decoded == frame

    @given(payload=payload_strategy, seq=st.integers(min_value=0, max_value=2 ** 32 - 1))
    @settings(max_examples=120)
    def test_cross_codec_equivalence(self, payload, seq):
        # the same result decodes identically off either wire format
        frame = Result(seq=seq, payload=payload)
        via_binary = decode_any(BINARY_CODEC.encode(frame)[4:])
        via_json = decode_any(JSON_CODEC.encode(frame)[4:])
        assert via_binary == via_json == frame

    def test_binary_result_is_smaller_than_json(self):
        frame = Result(
            seq=7,
            payload=SessionResultPayload(
                "device-0001", 3, "hunter2", 7, exact=True,
                deltas=tuple(range(1000, 1011)),
            ),
        )
        assert len(BINARY_CODEC.encode(frame)) < len(JSON_CODEC.encode(frame))

    def test_control_frames_round_trip_on_both_codecs(self):
        frames = [
            Ack(seq=123),
            Metrics(snapshot={"counters": {"x": 1}}),
            Bye(device_id="device-π", sent=9, retries=2, reconnects=1),
        ]
        for frame in frames:
            for codec in (JSON_CODEC, BINARY_CODEC):
                assert decode_any(codec.encode(frame)[4:]) == frame

    def test_hello_stays_json_on_the_binary_codec(self):
        # negotiation frames must be readable before negotiation happens
        body = BINARY_CODEC.encode(Hello("d", codecs=("binary",)))[4:]
        assert body[0:1] == b"{"
        assert decode_any(body) == Hello("d", codecs=("binary",))

    def test_truncated_binary_result_rejected(self):
        frame = Result(
            seq=0, payload=SessionResultPayload("d", 0, "pw", 2)
        )
        body = BINARY_CODEC.encode(frame)[4:]
        with pytest.raises(FrameError, match="truncated|mismatch"):
            decode_any(body[: len(body) - 1])
        with pytest.raises(FrameError, match="truncated|mismatch"):
            decode_any(body[:10])

    def test_unknown_leading_byte_rejected(self):
        with pytest.raises(FrameError, match="leading byte"):
            decode_any(b"\xff\x00\x00")
        with pytest.raises(FrameError, match="empty"):
            decode_any(b"")

    def test_payload_validates_deltas_and_mask(self):
        with pytest.raises(ValueError, match="deltas"):
            SessionResultPayload("d", 0, "pw", 2, deltas=(1, 2, 3))
        with pytest.raises(ValueError, match="non-negative"):
            SessionResultPayload("d", 0, "pw", 2, deltas=(-1,) * N_COUNTERS)
        with pytest.raises(ValueError, match="mask"):
            SessionResultPayload("d", 0, "pw", 2, mask=1 << N_COUNTERS)

    def test_negotiation_matrix(self):
        # old client (no offer) always gets JSON, whatever the policy
        assert negotiate_codec((), "auto") == "json"
        assert negotiate_codec((), "binary") == "json"
        assert negotiate_codec((), "json") == "json"
        # a binary-capable client gets binary unless the server pins json
        assert negotiate_codec(("binary", "json"), "auto") == "binary"
        assert negotiate_codec(("binary",), "binary") == "binary"
        assert negotiate_codec(("binary", "json"), "json") == "json"
        assert negotiate_codec(("json",), "auto") == "json"


class TestCodecNegotiationE2E:
    def test_binary_client_negotiates_and_delivers(self):
        with CollectorHandle(fast_cfg(codec="binary")) as handle:
            with CollectorClient(
                handle.endpoint, "device-0000",
                config=fast_cfg(codec="binary"), sleep=NO_SLEEP,
            ) as client:
                client.send_results(payloads_for("device-0000", 6))
                assert client.wire_codec == "binary"
        registry = handle.server.registry
        assert len(handle.server.results) == 6
        assert registry.counter("collector.codec.binary").value == 1
        assert registry.counter("collector.codec.json").value == 0

    def test_json_only_client_completes_against_binary_server(self):
        # the compatibility guarantee: a revision-1 client (no codec
        # offer at all) still completes its run on a binary-default server
        with CollectorHandle(fast_cfg(codec="binary")) as handle:
            with CollectorClient(
                handle.endpoint, "device-0000",
                config=fast_cfg(codec="json"), sleep=NO_SLEEP,
            ) as client:
                client.send_results(payloads_for("device-0000", 5))
                assert client.wire_codec == "json"
        assert len(handle.server.results) == 5
        assert (
            handle.server.registry.counter("collector.codec.json").value == 1
        )

    def test_json_client_hello_is_revision1_shape(self):
        # codec="json" must offer nothing: byte-identical hello to old clients
        from repro.collector.frames import frame_to_dict

        client = CollectorClient(
            ("tcp", "127.0.0.1", 1), "d", config=fast_cfg(codec="json")
        )
        hello = Hello(device_id="d", codecs=client._offered_codecs())
        assert frame_to_dict(hello) == {
            "type": "hello",
            "device_id": "d",
            "proto": 1,
        }

    def test_mixed_fleet_binary_and_json_zero_loss(self):
        # binary and JSON clients interleave on one server: nothing lost,
        # nothing double-counted
        per_device = 15
        with CollectorHandle(fast_cfg(codec="auto")) as handle:
            clients = [
                ("device-bin0", "binary"), ("device-json", "json"),
                ("device-bin1", "auto"),
            ]
            for device, codec in clients:
                with CollectorClient(
                    handle.endpoint, device,
                    config=fast_cfg(codec=codec), sleep=NO_SLEEP,
                ) as client:
                    client.send_results(payloads_for(device, per_device))
        server = handle.server
        registry = server.registry
        assert len(server.results) == per_device * 3
        assert registry.counter("collector.sessions_ingested").value == per_device * 3
        assert registry.counter("collector.dupes_dropped").value == 0
        assert registry.counter("collector.codec.binary").value == 2
        assert registry.counter("collector.codec.json").value == 1

    def test_mixed_fleet_with_faults_zero_loss(self):
        plan = FaultPlan(seed=11, read_error_prob=0.25, jitter_prob=0.1, jitter_s=1e-4)
        per_device = 25
        with CollectorHandle(fast_cfg(codec="auto")) as handle:
            for offset, codec in ((1, "binary"), (2, "json")):
                with CollectorClient(
                    handle.endpoint, f"device-{codec}", fault_plan=plan,
                    config=fast_cfg(codec=codec), seed_offset=offset,
                    sleep=NO_SLEEP,
                ) as client:
                    client.send_results(payloads_for(f"device-{codec}", per_device))
        server = handle.server
        assert len(server.results) == per_device * 2
        assert server.registry.counter("collector.sessions_ingested").value == per_device * 2


# ---------------------------------------------------------------------------
# fleet


class TestFleet:
    def test_fleet_end_to_end(self, config, chase_store):
        from repro.android.apps import CHASE
        from repro.api import AttackConfig

        report = run_fleet(
            chase_store,
            config,
            CHASE,
            "flpwd123",
            devices=2,
            sessions_per_device=1,
            seed=21,
            config=AttackConfig(recognize_device=False, fault_plan=None),
        )
        assert report.sessions_total == 2
        assert report.ingested == 2
        assert report.lost == 0
        assert report.exact == 2
        assert [p.device_id for p in report.results] == ["device-0000", "device-0001"]
        assert report.manifest is not None
        assert report.manifest.counters["collector.sessions_ingested"] == 2
        assert report.manifest.meta["command"] == "fleet"
        # devices negotiate binary by default and ship ground-truth deltas
        assert report.codec_counts["binary"] == 2
        for payload in report.results:
            assert payload.deltas is not None
            assert len(payload.deltas) == 11
            assert any(v > 0 for v in payload.deltas)
            assert payload.mask == 0

    def test_fleet_with_metrics_merges_device_runs(self, config, chase_store):
        from repro.android.apps import CHASE
        from repro.api import AttackConfig

        registry = MetricsRegistry()
        report = run_fleet(
            chase_store,
            config,
            CHASE,
            "flpwd123",
            devices=2,
            sessions_per_device=1,
            seed=33,
            config=AttackConfig(recognize_device=False, fault_plan=None),
            collector=CollectorConfig(retry=FAST_RETRY),
            metrics=registry,
        )
        assert report.lost == 0
        # device-side attack metrics crossed the wire and merged
        assert registry.counter("collector.metrics_frames").value == 2
        assert registry.counter("sampler.reads_issued").value > 0
        assert report.manifest.config["recognize_device"] is False

    def test_fleet_unix_transport_with_faults(self, config, chase_store, tmp_path):
        from repro.android.apps import CHASE
        from repro.api import AttackConfig

        plan = FaultPlan(seed=4, read_error_prob=0.25, jitter_prob=0.1, jitter_s=1e-4)
        report = run_fleet(
            chase_store,
            config,
            CHASE,
            "flpwd123",
            devices=2,
            sessions_per_device=2,
            seed=5,
            config=AttackConfig(recognize_device=False, fault_plan=plan),
            collector=CollectorConfig(
                transport="unix",
                unix_path=str(tmp_path / "fleet.sock"),
                retry=RetryPolicy(max_attempts=10, base_delay_s=0.001, max_delay_s=0.01),
            ),
        )
        # the delivery contract: injected drops never lose results
        assert report.lost == 0
        assert report.ingested == 4

    def test_fleet_driver_validation(self, config, chase_store):
        from repro.android.apps import CHASE

        with pytest.raises(ValueError, match="devices"):
            FleetDriver(chase_store, config, CHASE, "pw", devices=0)
        with pytest.raises(ValueError, match="sessions_per_device"):
            FleetDriver(chase_store, config, CHASE, "pw", sessions_per_device=0)


# ---------------------------------------------------------------------------
# exactly-once contract gaps (regression suite for the PR-8 bugfixes)


class TestExactlyOnceGaps:
    def test_cancelled_put_does_not_poison_dedup(self):
        """A handler cancelled mid-``queue.put`` admitted nothing, so the
        client's resend of that seq must aggregate — not dupe-ack."""
        import asyncio

        async def scenario():
            server = CollectorServer(fast_cfg(queue_size=1))
            server._queue = asyncio.Queue(maxsize=1)
            blocker = SessionResultPayload("device-0000", 0, "x", 1)
            victim = SessionResultPayload("device-0000", 1, "pw", 2, exact=True)
            from repro.collector.frames import Result

            # fill the queue so the next admission blocks in put()
            await server._queue.put(blocker)
            task = asyncio.create_task(server._admit_result(Result(1, victim)))
            await asyncio.sleep(0)  # let it reach the blocked put
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            # the drain-timeout path emptied the queue; the resend arrives
            server._queue.get_nowait()
            server._queue.task_done()
            assert await server._admit_result(Result(1, victim))
            return server

        server = asyncio.run(scenario())
        assert server.registry.counter("collector.dupes_dropped").value == 0
        assert server._queue.qsize() == 1
        assert server._queue.get_nowait() is not None

    def test_concurrent_resend_waits_for_original_admission(self):
        """A resend racing the original (still blocked in put) must not
        double-admit; once the original lands the resend dupe-acks."""
        import asyncio

        async def scenario():
            server = CollectorServer(fast_cfg(queue_size=1))
            server._queue = asyncio.Queue(maxsize=1)
            payload = SessionResultPayload("device-0000", 1, "pw", 2)
            from repro.collector.frames import Result

            await server._queue.put(SessionResultPayload("device-0000", 0, "x", 1))
            original = asyncio.create_task(server._admit_result(Result(1, payload)))
            await asyncio.sleep(0)
            resend = asyncio.create_task(server._admit_result(Result(1, payload)))
            await asyncio.sleep(0)
            assert not original.done() and not resend.done()
            server._queue.get_nowait()  # unblock the original
            server._queue.task_done()
            assert await original and await resend
            return server

        server = asyncio.run(scenario())
        # exactly one admission, one dupe-ack
        assert server._queue.qsize() == 1
        assert server.registry.counter("collector.dupes_dropped").value == 1

    def test_restart_resets_volatile_state(self):
        """A second life of the same server is a fresh run: last run's
        dedup set must not swallow the new run's seq-0 frames."""
        handle = CollectorHandle(fast_cfg())
        endpoint = handle.start()
        with CollectorClient(
            endpoint, "device-0000", config=FAST_CFG, sleep=NO_SLEEP
        ) as client:
            client.send_results(payloads_for("device-0000", 3))
        handle.stop()
        assert len(handle.server.results) == 3

        endpoint = handle.start()
        with CollectorClient(
            endpoint, "device-0000", config=FAST_CFG, sleep=NO_SLEEP
        ) as client:
            client.send_results(payloads_for("device-0000", 3))
        handle.stop()
        server = handle.server
        # pre-fix: 0 results, 3 dupes — the stale _seen ate the run
        assert len(server.results) == 3
        assert server.registry.counter("collector.dupes_dropped").value == 0
        # the registry is cumulative across lives; each life counts its
        # unique devices once
        assert server.registry.counter("collector.devices_seen").value == 2

    def test_devices_seen_counts_unique_devices_not_connections(self):
        with CollectorHandle(fast_cfg()) as handle:
            for _ in range(3):  # same device, three connections
                with CollectorClient(
                    handle.endpoint, "device-0000", config=FAST_CFG, sleep=NO_SLEEP
                ) as client:
                    client.send_results(payloads_for("device-0000", 1))
            with CollectorClient(
                handle.endpoint, "device-0001", config=FAST_CFG, sleep=NO_SLEEP
            ) as client:
                client.send_results(payloads_for("device-0001", 1))
        registry = handle.server.registry
        assert registry.counter("collector.devices_seen").value == 2
        assert registry.counter("collector.connections_opened").value == 4

    # tearing the loop down around a failed drain abandons the
    # aggregator task by design; the "Task was destroyed" noise is the
    # price of not wedging
    @pytest.mark.filterwarnings("ignore::pytest.PytestUnraisableExceptionWarning")
    def test_handle_stop_is_exception_safe(self, monkeypatch):
        """A failing server.stop() must still tear the loop thread down
        so a second stop() (or interpreter exit) cannot wedge."""
        handle = CollectorHandle(fast_cfg())
        handle.start()
        thread = handle._thread

        async def boom(drain=True):
            raise RuntimeError("drain exploded")

        monkeypatch.setattr(handle.server, "stop", boom)
        with pytest.raises(RuntimeError, match="drain exploded"):
            handle.stop()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert handle._thread is None and handle._loop is None
        handle.stop()  # second stop is a clean no-op, not a hang

    def test_error_reply_is_drained_before_close(self):
        """An oversized frame gets its typed ProtocolError reply even
        though the server closes the connection right after."""
        with CollectorHandle(fast_cfg()) as handle:
            sock = raw_connect(handle.endpoint)
            try:
                sock.sendall((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
                reply = read_frame_sock(sock)
            finally:
                sock.close()
        assert reply["type"] == "error"
        assert "cap" in reply["error"]


# ---------------------------------------------------------------------------
# batched pipelined delivery


class TestBatchedPipeline:
    """The batch wire frame and the pipelined client that rides it."""

    def test_batch_frame_round_trips_both_codecs(self):
        from repro.collector.frames import (
            BINARY_CODEC,
            JSON_CODEC,
            Batch,
            Result,
            decode_any,
        )

        batch = Batch(
            frames=tuple(
                Result(seq=i, payload=p)
                for i, p in enumerate(payloads_for("device-0000", 3))
            )
        )
        for codec in (BINARY_CODEC, JSON_CODEC):
            wire = codec.encode(batch)  # 4-byte length prefix + body
            assert decode_any(wire[4:]) == batch

    def test_empty_batch_is_rejected(self):
        from repro.collector.frames import BINARY_CODEC, JSON_CODEC, Batch

        with pytest.raises(FrameError, match="at least one"):
            BINARY_CODEC.encode(Batch(frames=()))
        with pytest.raises(FrameError, match="batch"):
            JSON_CODEC.decode(b'{"type":"batch","frames":[]}')

    def test_pipelined_send_delivers_everything_once(self):
        cfg = fast_cfg(pipeline_depth=8)
        with CollectorHandle(cfg) as handle:
            with CollectorClient(
                handle.endpoint, "device-0000", config=cfg, sleep=NO_SLEEP
            ) as client:
                acked = client.send_results(payloads_for("device-0000", 50))
        server = handle.server
        assert acked == 50
        assert len(server.results) == 50
        assert [p.session_index for p in server.results] == list(range(50))
        assert server.registry.counter("collector.sessions_ingested").value == 50
        assert server.registry.counter("collector.dupes_dropped").value == 0
        # bursts actually rode batch frames, not 50 lock-step results
        assert server.registry.counter("collector.batch_frames").value >= 1

    def test_window_one_stays_lock_step(self):
        cfg = fast_cfg(pipeline_depth=1)
        with CollectorHandle(cfg) as handle:
            with CollectorClient(
                handle.endpoint, "device-0000", config=cfg, sleep=NO_SLEEP
            ) as client:
                client.send_results(payloads_for("device-0000", 5))
        server = handle.server
        assert len(server.results) == 5
        assert server.registry.counter("collector.batch_frames").value == 0

    def test_pipelined_resend_after_drop_is_deduplicated(self):
        """A burst severed after the send (ack lost) is resent whole; the
        server must admit each member exactly once."""
        plan = FaultPlan(seed=5, read_error_prob=0.3)
        cfg = fast_cfg(pipeline_depth=8, retry=RetryPolicy(
            max_attempts=12, base_delay_s=0.001, max_delay_s=0.01
        ))
        with CollectorHandle(cfg) as handle:
            with CollectorClient(
                handle.endpoint,
                "device-0000",
                fault_plan=plan,
                config=cfg,
                sleep=NO_SLEEP,
            ) as client:
                acked = client.send_results(payloads_for("device-0000", 120))
                stats = client.stats
        server = handle.server
        assert acked == 120
        assert stats.injected_drops > 0, "plan should have dropped connections"
        assert len(server.results) == 120
        assert {p.session_index for p in server.results} == set(range(120))
        assert server.registry.counter("collector.sessions_ingested").value == 120

    def test_pipelined_exhausts_budget_against_dead_collector(self):
        cfg = fast_cfg(pipeline_depth=4)
        handle = CollectorHandle(cfg)
        endpoint = handle.start()
        handle.stop()
        with pytest.raises(CollectorClientError, match="undelivered"):
            CollectorClient(
                endpoint, "device-0000", config=cfg, sleep=NO_SLEEP
            ).send_results(payloads_for("device-0000", 3))

    def test_admit_batch_overlap_admits_only_unseen_members(self):
        """A resent batch overlapping an admitted one contributes only its
        unseen members — per-member dedup, one queue item, one record."""
        import asyncio

        from repro.collector.frames import Batch, Result

        async def scenario():
            server = CollectorServer(fast_cfg(queue_size=8))
            server._queue = asyncio.Queue(maxsize=8)
            frames = [
                Result(seq=i, payload=p)
                for i, p in enumerate(payloads_for("device-0000", 6))
            ]
            await server._admit_batch(Batch(frames=tuple(frames[0:4])))
            await server._admit_batch(Batch(frames=tuple(frames[2:6])))
            return server

        server = asyncio.run(scenario())
        first = server._queue.get_nowait()
        second = server._queue.get_nowait()
        assert [p.session_index for p in first] == [0, 1, 2, 3]
        assert [p.session_index for p in second] == [4, 5]
        assert server.registry.counter("collector.dupes_dropped").value == 2
        assert server.registry.counter("collector.frames_ingested").value == 8
        assert server.registry.counter("collector.batch_frames").value == 2

    def test_fully_duplicate_batch_enqueues_nothing(self):
        import asyncio

        from repro.collector.frames import Batch, Result

        async def scenario():
            server = CollectorServer(fast_cfg(queue_size=8))
            server._queue = asyncio.Queue(maxsize=8)
            batch = Batch(
                frames=tuple(
                    Result(seq=i, payload=p)
                    for i, p in enumerate(payloads_for("device-0000", 3))
                )
            )
            await server._admit_batch(batch)
            await server._admit_batch(batch)
            return server

        server = asyncio.run(scenario())
        assert server._queue.qsize() == 1  # one list for the first batch
        assert server.registry.counter("collector.dupes_dropped").value == 3
