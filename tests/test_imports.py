"""Every module imports cleanly and the public API is consistent."""

import importlib
import pkgutil

import pytest

import repro

MODULES = sorted(
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.endswith("__main__")  # running it would invoke the CLI
)


@pytest.mark.parametrize("module_name", MODULES)
def test_module_imports(module_name):
    importlib.import_module(module_name)


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_all_is_sorted_unique():
    assert len(repro.__all__) == len(set(repro.__all__))


def test_version_present():
    assert repro.__version__


def test_public_docstrings():
    """Every public module carries a real docstring (the documentation
    deliverable lives in the code)."""
    for module_name in MODULES:
        module = importlib.import_module(module_name)
        if module_name.endswith("__main__"):
            continue
        assert module.__doc__ and len(module.__doc__) > 40, module_name
