"""Parametrized cross-configuration grid tests.

The per-configuration model premise (Section 3.2) only holds if the
substrate behaves sanely on *every* configuration: every keyboard on
every resolution lays out correctly, every GPU model renders every scene
with consistent invariants, and signatures genuinely differ across
configurations (or per-config models would be pointless).
"""

import numpy as np
import pytest

from repro.android.apps import CHASE
from repro.android.device import VictimDevice
from repro.android.display import Display, Resolution
from repro.android.events import KeyPress
from repro.android.keyboard import KEYBOARDS, KeyboardLayout
from repro.android.os_config import PHONE_MODELS, DeviceConfig, default_config
from repro.android.scenes import SceneBuilder, UiState
from repro.gpu import counters as pc
from repro.gpu.adreno import ADRENO_MODELS, adreno
from repro.gpu.pipeline import AdrenoPipeline


@pytest.mark.parametrize("keyboard_name", sorted(KEYBOARDS))
@pytest.mark.parametrize("resolution", list(Resolution))
class TestKeyboardResolutionGrid:
    def test_layout_fits_display(self, keyboard_name, resolution):
        display = Display(resolution=resolution)
        layout = KeyboardLayout(KEYBOARDS[keyboard_name], display)
        for char in "qwertyuiopasdfghjklzxcvbnm1234567890,.":
            geo = layout.key(char)
            assert display.bounds.contains(geo.key_rect)
            assert display.bounds.contains(geo.popup_rect)

    def test_popup_scene_renders_nonzero(self, keyboard_name, resolution):
        config = default_config(
            keyboard=KEYBOARDS[keyboard_name], resolution=resolution
        )
        builder = SceneBuilder(config)
        pipeline = AdrenoPipeline(config.gpu)
        state = UiState(app=CHASE).with_popup("g")
        scene = builder.damage_scene(state, builder.popup_damage("g"))
        stats = pipeline.render(scene)
        assert stats.increment.get(pc.VPC_PC_PRIMITIVES) > 0
        assert stats.increment.get(pc.LRZ_VISIBLE_PIXEL_AFTER_LRZ) > 0


@pytest.mark.parametrize("model", sorted(ADRENO_MODELS))
class TestGpuGrid:
    def test_press_renders_consistently(self, model, config):
        pipeline = AdrenoPipeline(adreno(model))
        builder = SceneBuilder(config)
        state = UiState(app=CHASE).with_popup("w")
        scene = builder.damage_scene(state, builder.popup_damage("w"))
        stats = pipeline.render(scene)
        # primitives are GPU-independent; tile counts are not
        base = AdrenoPipeline(adreno(650)).render(scene)
        assert stats.increment.get(pc.VPC_PC_PRIMITIVES) == base.increment.get(
            pc.VPC_PC_PRIMITIVES
        )
        assert stats.increment.get(pc.LRZ_VISIBLE_PIXEL_AFTER_LRZ) == base.increment.get(
            pc.LRZ_VISIBLE_PIXEL_AFTER_LRZ
        )

    def test_supertile_counts_scale_with_bin_size(self, model, config):
        pipeline = AdrenoPipeline(adreno(model))
        builder = SceneBuilder(config)
        state = UiState(app=CHASE).with_popup("w")
        scene = builder.damage_scene(state, builder.popup_damage("w"))
        supertiles = pipeline.render(scene).increment.get(pc.RAS_SUPER_TILES)
        assert supertiles > 0


@pytest.mark.parametrize("phone_name", sorted(PHONE_MODELS))
class TestPhoneGrid:
    def test_device_compiles_a_session(self, phone_name):
        config = DeviceConfig(phone=PHONE_MODELS[phone_name])
        device = VictimDevice(config, CHASE, rng=np.random.default_rng(0))
        trace = device.compile([KeyPress(t=0.6, char="a")], end_time_s=1.5)
        labels = [f.label for f in trace.timeline.frames]
        assert "press:a" in labels
        assert any(l.startswith("echo:") for l in labels)

    def test_config_key_is_unique(self, phone_name):
        keys = {
            DeviceConfig(phone=spec).config_key() for spec in PHONE_MODELS.values()
        }
        assert len(keys) == len(PHONE_MODELS)


class TestSignaturesDifferAcrossConfigs:
    """Per-config models exist because absolute values shift with the
    configuration; verify the shift is real."""

    def _press_total(self, config, char="w"):
        builder = SceneBuilder(config)
        pipeline = AdrenoPipeline(config.gpu)
        state = UiState(app=CHASE).with_popup(char)
        scene = builder.damage_scene(state, builder.popup_damage(char))
        return pipeline.render(scene).increment.total

    def test_resolution_changes_signatures(self):
        fhd = self._press_total(default_config(resolution=Resolution.FHD_PLUS))
        qhd = self._press_total(default_config(resolution=Resolution.QHD_PLUS))
        assert abs(fhd - qhd) / max(fhd, qhd) > 0.1

    def test_keyboard_changes_signatures(self):
        a = self._press_total(default_config(keyboard=KEYBOARDS["gboard"]))
        b = self._press_total(default_config(keyboard=KEYBOARDS["sogou"]))
        assert a != b

    def test_android_version_changes_signatures(self):
        a = self._press_total(default_config().with_android("8.1"))
        b = self._press_total(default_config().with_android("11"))
        assert a != b

    def test_same_config_same_signature(self):
        a = self._press_total(default_config())
        b = self._press_total(default_config())
        assert a == b
