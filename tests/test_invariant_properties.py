"""Property-based tests for the invariants the runtime leans on.

Two algebras carry correctness arguments elsewhere in the codebase and
were only example-tested until now:

* :class:`~repro.kgsl.sampler.PcDelta` — Algorithm 1's split recovery
  assumes ``merge``/``scaled``/``split`` behave like exact interval
  arithmetic (no events lost or invented), and masked-counter reads
  must *fail loudly* rather than read as zero;
* :class:`~repro.parallel.plan.ShardPlan` — the sharded runtime's
  byte-parity merge assumes the partition is a permutation of the
  session indices, deterministic under its seed, and balanced within
  one session.

A third property guards the scenario registry: every registered
scenario — builtin or plugin — must compile a scene and round-trip
through its dict form.

Hypothesis generates the cases; the assertions are the invariants, not
specific values.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
import pytest

from repro.android.display import Display
from repro.android.keyboard import KeyboardLayout
from repro.gpu import counters as pc
from repro.kgsl.sampler import PcDelta
from repro.parallel.plan import ShardPlan
from repro.scenarios import Scenario, scenario, scenario_names

SPECS = list(pc.SELECTED_COUNTERS)


@st.composite
def pc_deltas(draw, min_values=0):
    """A well-formed PcDelta: disjoint value/missing sets, ordered times."""
    n_values = draw(st.integers(min_values, len(SPECS)))
    shuffled = draw(st.permutations(SPECS))
    value_specs = shuffled[:n_values]
    n_missing = draw(st.integers(0, len(SPECS) - n_values))
    missing_specs = shuffled[n_values : n_values + n_missing]
    prev_t = draw(st.floats(0.0, 50.0, allow_nan=False, allow_infinity=False))
    dt = draw(st.floats(0.001, 2.0, allow_nan=False, allow_infinity=False))
    return PcDelta(
        t=prev_t + dt,
        prev_t=prev_t,
        values={
            s.counter_id: draw(st.integers(0, 10**6)) for s in value_specs
        },
        missing=tuple(sorted(s.counter_id for s in missing_specs)),
        gap=draw(st.booleans()),
    )


factors = st.floats(0.0, 1.0, allow_nan=False, allow_infinity=False)


class TestPcDeltaAlgebra:
    @given(pc_deltas(), factors)
    @settings(max_examples=80)
    def test_split_round_trips_exactly(self, delta, factor):
        part, remainder = delta.split(factor)
        rebuilt = remainder.merge(part)
        assert rebuilt.values == delta.values
        assert rebuilt.t == delta.t
        assert rebuilt.prev_t == delta.prev_t
        assert set(rebuilt.missing) == set(delta.missing)
        assert rebuilt.gap == delta.gap
        # no events invented on either side of the split
        assert part.total + remainder.total == delta.total

    @given(pc_deltas(), factors)
    @settings(max_examples=80)
    def test_scaled_floors_and_never_goes_negative(self, delta, factor):
        scaled = delta.scaled(factor)
        for cid, value in delta.values.items():
            assert scaled.values[cid] == int(value * factor)
            assert 0 <= scaled.values[cid] <= value
        assert scaled.missing == delta.missing
        assert scaled.gap == delta.gap

    @given(pc_deltas())
    @settings(max_examples=40)
    def test_scale_by_one_is_identity_and_negative_rejected(self, delta):
        assert delta.scaled(1.0).values == delta.values
        with pytest.raises(ValueError, match="non-negative"):
            delta.scaled(-0.1)

    @given(pc_deltas(), pc_deltas())
    @settings(max_examples=80)
    def test_merge_sums_values_and_unions_masks(self, earlier, later):
        # place `earlier` strictly before `later` in both endpoints
        shift = max(0.0, earlier.t - later.prev_t) + 1.0
        later = PcDelta(
            t=later.t + shift + earlier.t,
            prev_t=later.prev_t + shift + earlier.t,
            values=later.values,
            missing=later.missing,
            gap=later.gap,
        )
        merged = later.merge(earlier)
        all_cids = set(earlier.values) | set(later.values)
        for cid in all_cids:
            assert merged.values[cid] == earlier.values.get(cid, 0) + later.values.get(cid, 0)
        assert set(merged.missing) == set(earlier.missing) | set(later.missing)
        assert merged.gap == (earlier.gap or later.gap)
        assert merged.prev_t == earlier.prev_t
        assert merged.t == later.t
        # and the swapped call is rejected rather than fabricating time
        with pytest.raises(ValueError, match="earlier delta"):
            earlier.merge(later)

    @given(pc_deltas())
    @settings(max_examples=80)
    def test_masked_counters_raise_instead_of_reading_zero(self, delta):
        masked = set(delta.missing)
        for spec in SPECS:
            cid = spec.counter_id
            if cid in delta.values:
                assert delta.get(spec) == delta.values[cid]
                # an explicit default never shadows a real value
                assert delta.get(spec, default=-1) == delta.values[cid]
            elif cid in masked:
                with pytest.raises(KeyError, match="masked"):
                    delta.get(spec)
                assert delta.get(spec, default=17) == 17
            else:
                # never selected: zero change is a fact, not a guess
                assert delta.get(spec) == 0
                assert delta.get(spec, default=17) == 17

    @given(pc_deltas())
    @settings(max_examples=40)
    def test_truthiness_and_degraded_flags(self, delta):
        assert bool(delta) == any(delta.values.values())
        assert delta.degraded == (bool(delta.missing) or delta.gap)
        assert delta.total == sum(delta.values.values())


class TestShardPlanProperties:
    plan_args = (
        st.integers(0, 200),  # n_sessions
        st.integers(1, 17),  # workers
        st.integers(0, 10_000),  # seed
    )

    @given(*plan_args)
    @settings(max_examples=100)
    def test_partition_is_a_permutation(self, n, workers, seed):
        plan = ShardPlan(n, workers, seed=seed)
        shards = plan.shards()
        assert len(shards) == workers
        flattened = [i for shard in shards for i in shard]
        assert sorted(flattened) == list(range(n))
        # ascending within each shard (merge relies on it)
        for shard in shards:
            assert shard == sorted(shard)

    @given(*plan_args)
    @settings(max_examples=100)
    def test_deterministic_under_seed(self, n, workers, seed):
        assert (
            ShardPlan(n, workers, seed=seed).shards()
            == ShardPlan(n, workers, seed=seed).shards()
        )

    @given(*plan_args)
    @settings(max_examples=100)
    def test_balanced_within_one(self, n, workers, seed):
        sizes = [len(s) for s in ShardPlan(n, workers, seed=seed).shards()]
        assert max(sizes) - min(sizes) <= 1
        assert max(sizes) == ShardPlan(n, workers, seed=seed).max_shard_size

    @given(*plan_args)
    @settings(max_examples=100)
    def test_shard_of_agrees_with_shards(self, n, workers, seed):
        plan = ShardPlan(n, workers, seed=seed)
        shards = plan.shards()
        for index in range(n):
            assert index in shards[plan.shard_of(index)]

    @given(st.integers(1, 200), st.integers(1, 17), st.integers(0, 10_000))
    @settings(max_examples=60)
    def test_seed_rotates_assignment_not_shape(self, n, workers, seed):
        base = [len(s) for s in ShardPlan(n, workers, seed=seed).shards()]
        rotated = ShardPlan(n, workers, seed=seed + 1)
        assert sorted(base) == sorted(len(s) for s in rotated.shards())
        # the rotation law itself
        for index in range(n):
            assert rotated.shard_of(index) == (seed + 1 + index) % workers

    def test_validation(self):
        with pytest.raises(ValueError, match="workers"):
            ShardPlan(4, 0)
        with pytest.raises(ValueError, match="n_sessions"):
            ShardPlan(-1, 2)
        with pytest.raises(IndexError):
            ShardPlan(3, 2).shard_of(3)
        with pytest.raises(IndexError):
            ShardPlan(3, 2).shard_of(-1)


class TestScenarioRegistryProperties:
    """Every registered scenario is a *runnable* cell: its axes resolve,
    its pool is typeable, and it compiles a popup scene.  Sampling from
    the live registry means plugin-registered scenarios (the PIN pad
    today, anything from ``REPRO_SCENARIO_MODULES`` tomorrow) are held
    to the same bar as the paper matrix."""

    @given(name=st.sampled_from(scenario_names()))
    @settings(max_examples=60, deadline=None)
    def test_every_scenario_compiles_a_scene(self, name):
        scn = scenario(name)
        scene = scn.compile_scene()
        assert len(scene) > 0
        pool = scn.credential_pool()
        assert pool
        # every pool character must be typeable on the scenario's layout
        layout = KeyboardLayout(
            scn.keyboard_spec(),
            Display(resolution=scn.phone_spec().resolution),
        )
        assert all(layout.has_key(c) for c in pool)

    @given(name=st.sampled_from(scenario_names()))
    @settings(max_examples=60, deadline=None)
    def test_scenario_dict_round_trip_identity(self, name):
        scn = scenario(name)
        assert Scenario.from_dict(scn.to_dict()) == scn


class TestDeviceRouterProperties:
    """The collector tier's device→shard mapping must be a total,
    deterministic partition — a device that hashed to a different shard
    across processes (or across a config round-trip) would split its
    ``(device_id, seq)`` dedup state and break exactly-once."""

    router_args = (
        st.integers(1, 17),  # shards
        st.integers(0, 10_000),  # seed
        st.lists(st.text(min_size=1, max_size=32), min_size=1, max_size=50),
    )

    @given(*router_args)
    @settings(max_examples=100)
    def test_partition_is_total_and_in_range(self, shards, seed, device_ids):
        from repro.collector import DeviceRouter

        router = DeviceRouter(shards=shards, seed=seed)
        groups = router.partition(device_ids)
        assert set(groups) == set(range(shards))
        flattened = [d for group in groups.values() for d in group]
        assert sorted(flattened) == sorted(device_ids)
        for device_id in device_ids:
            assert 0 <= router.shard_of(device_id) < shards

    @given(*router_args)
    @settings(max_examples=100)
    def test_deterministic_across_instances(self, shards, seed, device_ids):
        from repro.collector import DeviceRouter

        a = DeviceRouter(shards=shards, seed=seed)
        b = DeviceRouter(shards=shards, seed=seed)
        assert [a.shard_of(d) for d in device_ids] == [
            b.shard_of(d) for d in device_ids
        ]

    @given(*router_args)
    @settings(max_examples=100)
    def test_stable_under_config_round_trip(self, shards, seed, device_ids):
        from repro.collector import CollectorConfig, DeviceRouter

        config = CollectorConfig(shards=shards)
        restored = CollectorConfig.from_dict(config.to_dict())
        assert restored.shards == shards
        before = DeviceRouter.from_config(config, seed=seed)
        after = DeviceRouter.from_config(restored, seed=seed)
        assert [before.shard_of(d) for d in device_ids] == [
            after.shard_of(d) for d in device_ids
        ]

    def test_rejects_zero_shards(self):
        from repro.collector import DeviceRouter

        with pytest.raises(ValueError, match="shards"):
            DeviceRouter(shards=0)


class TestDriftPlanProperties:
    """DriftPlan serialization: the dict form is the plan, exactly."""

    plan_args = st.builds(
        dict,
        seed=st.integers(0, 2**31 - 1),
        thermal_scale=st.floats(0.05, 2.0, allow_nan=False),
        thermal_mode=st.sampled_from(["ramp", "step"]),
        thermal_onset_s=st.floats(0.0, 60.0, allow_nan=False),
        thermal_ramp_s=st.floats(0.1, 60.0, allow_nan=False),
        geometry_shift=st.floats(0.0, 0.99, allow_nan=False),
        geometry_onset_s=st.floats(0.0, 60.0, allow_nan=False),
    )

    @given(plan_args)
    @settings(max_examples=100)
    def test_dict_round_trip_is_identity(self, kwargs):
        from repro.lifecycle.drift import DriftPlan

        plan = DriftPlan(**kwargs)
        restored = DriftPlan.from_dict(plan.to_dict())
        assert restored == plan
        # and the round trip is a fixed point at the dict level too
        assert restored.to_dict() == plan.to_dict()

    @given(plan_args, st.integers(0, 1000), st.floats(0.0, 100.0, allow_nan=False))
    @settings(max_examples=50)
    def test_injector_determinism(self, kwargs, seed_offset, t):
        from repro.lifecycle.drift import DriftPlan

        plan = DriftPlan(**kwargs)
        a = plan.injector(seed_offset=seed_offset)
        b = plan.injector(seed_offset=seed_offset)
        if a is None:
            assert b is None
            return
        key = (3, 7)
        assert a.thermal_factor(t) == b.thermal_factor(t)
        assert a.geometry_factor(key, t) == b.geometry_factor(key, t)


class TestModelStoreProperties:
    """The checksummed envelope: round-trip exact, corruption loud."""

    @staticmethod
    def _store(values, cth, version, lineage_tag):
        import numpy as np

        from repro.core import features
        from repro.core.classifier import ClassificationModel
        from repro.core.model_store import ModelStore

        centroids = np.array(values, dtype=float).reshape(
            2, features.DIMENSIONS
        )
        store = ModelStore()
        store.add(
            ClassificationModel(
                labels=["key:a", "key:b"],
                centroids=centroids,
                scale=np.ones(features.DIMENSIONS),
                cth=cth,
                model_key="prop/chase",
            )
        )
        store.version = version
        store.lineage = {"tag": lineage_tag}
        return store

    store_args = dict(
        # the model wire form rounds centroids to 2 decimals (the paper's
        # ~3.59 KB size claim), so generate at that precision: the
        # envelope itself must add no loss on top
        values=st.lists(
            st.floats(-1e6, 1e6, allow_nan=False).map(lambda x: round(x, 2)),
            min_size=22,
            max_size=22,
        ),
        cth=st.floats(0.01, 100.0, allow_nan=False),
        version=st.integers(0, 10_000),
        lineage_tag=st.text(
            alphabet=st.characters(min_codepoint=32, max_codepoint=126),
            max_size=12,
        ),
    )
    # tmp_path is function-scoped but each example fully overwrites the
    # one store file, so reuse across examples is safe
    fixture_ok = settings(
        max_examples=50,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )

    @given(**store_args)
    @fixture_ok
    def test_save_load_round_trip(self, values, cth, version, lineage_tag, tmp_path):
        import numpy as np

        from repro.core.model_store import ModelStore

        store = self._store(values, cth, version, lineage_tag)
        path = tmp_path / "store.json"
        store.save(path)
        loaded = ModelStore.load(path)
        assert loaded.keys() == store.keys()
        assert loaded.version == version
        assert loaded.lineage == {"tag": lineage_tag}
        np.testing.assert_array_equal(
            loaded.get("prop/chase").centroids, store.get("prop/chase").centroids
        )
        assert loaded.get("prop/chase").cth == store.get("prop/chase").cth

    @given(data=st.data(), **store_args)
    @fixture_ok
    def test_any_single_byte_corruption_detected(
        self, values, cth, version, lineage_tag, data, tmp_path
    ):
        from repro.core.model_store import ModelIntegrityError, ModelStore

        store = self._store(values, cth, version, lineage_tag)
        path = tmp_path / "store.json"
        store.save(path)
        raw = bytearray(path.read_bytes())
        index = data.draw(st.integers(0, len(raw) - 1))
        flip = data.draw(st.integers(1, 255))
        raw[index] ^= flip
        path.write_bytes(bytes(raw))
        # a corrupted store must raise — never load with silently wrong
        # centroids and misclassify from then on
        with pytest.raises(ModelIntegrityError):
            ModelStore.load(path)

    @given(data=st.data(), **store_args)
    @fixture_ok
    def test_any_truncation_detected(
        self, values, cth, version, lineage_tag, data, tmp_path
    ):
        from repro.core.model_store import ModelIntegrityError, ModelStore

        store = self._store(values, cth, version, lineage_tag)
        path = tmp_path / "store.json"
        store.save(path)
        raw = path.read_bytes()
        keep = data.draw(st.integers(0, len(raw) - 1))
        path.write_bytes(raw[:keep])
        with pytest.raises(ModelIntegrityError):
            ModelStore.load(path)
