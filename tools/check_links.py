#!/usr/bin/env python
"""Check relative markdown links in the repo's documentation.

Scans README.md, the top-level guides and everything under docs/ for
``[text](target)`` links and verifies that every *relative* target
resolves to an existing file (anchors are split off; external
``http(s):``/``mailto:`` targets and bare anchors are skipped).
Stdlib-only so the docs CI job needs no extra dependencies.

Usage::

    python tools/check_links.py            # check the default doc set
    python tools/check_links.py FILE...    # check specific files

Exits 0 when every link resolves, 1 otherwise (broken links listed on
stderr).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline markdown links; deliberately simple — image links (``![]``)
#: match too, which is what we want.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Fenced code blocks, where link-looking text is code, not a link.
FENCE_RE = re.compile(r"^(```|~~~)")

SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def default_files() -> List[Path]:
    files = [REPO_ROOT / "README.md"]
    for name in ("DESIGN.md", "EXPERIMENTS.md", "CHANGES.md", "ROADMAP.md"):
        path = REPO_ROOT / name
        if path.exists():
            files.append(path)
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return files


def iter_links(path: Path) -> Iterable[Tuple[int, str]]:
    in_fence = False
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            yield lineno, match.group(1)


def check_file(path: Path) -> List[str]:
    broken: List[str] = []
    for lineno, target in iter_links(path):
        if target.startswith(SKIP_PREFIXES) or target.startswith("#"):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (path.parent / relative).resolve()
        if not resolved.exists():
            broken.append(f"{path.relative_to(REPO_ROOT)}:{lineno}: broken link -> {target}")
    return broken


def main(argv: List[str]) -> int:
    files = [Path(a).resolve() for a in argv] if argv else default_files()
    broken: List[str] = []
    checked = 0
    for path in files:
        if not path.exists():
            broken.append(f"{path}: file not found")
            continue
        checked += 1
        broken.extend(check_file(path))
    if broken:
        print("\n".join(broken), file=sys.stderr)
        print(f"\n{len(broken)} broken link(s) across {checked} file(s)", file=sys.stderr)
        return 1
    print(f"all relative links resolve across {checked} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
