#!/usr/bin/env python3
"""Survey: how every keyboard and every key leaks (Figs 18 and 20).

For each of the six modeled keyboards, trains a model and reports the
attack's per-key weak spots and the counter signatures behind them —
useful for understanding *why* the side channel separates keys.

Usage:
    python examples/keyboard_survey.py [keyboard ...]
"""

import sys

import numpy as np

from repro.api import (
    CHASE,
    KEYBOARDS,
    cached_model,
    character_group,
    counters as pc,
    default_config,
    run_per_key_sweep,
)


def survey_keyboard(name: str) -> None:
    config = default_config(keyboard=KEYBOARDS[name])
    print(f"\n=== {KEYBOARDS[name].display_name} ({name}) ===")

    model = cached_model(config, CHASE)
    print(
        f"model: {len(model.key_labels)} key classes, cth={model.cth:.3f}, "
        f"{model.size_bytes() / 1024:.1f} KB"
    )

    # signature geometry: the most confusable key pairs
    labels = model.key_labels
    scaled = np.vstack([model.centroid(label) for label in labels]) / model.scale
    dists = np.sqrt(((scaled[:, None, :] - scaled[None, :, :]) ** 2).sum(-1))
    iu = np.triu_indices(len(labels), 1)
    order = np.argsort(dists[iu])
    print("closest signature pairs (hardest to separate):")
    for idx in order[:5]:
        i, j = iu[0][idx], iu[1][idx]
        a, b = labels[i][4:], labels[j][4:]
        print(f"  {a!r} vs {b!r}: d={dists[i, j]:.3f}")

    # measured per-key accuracy
    stats = run_per_key_sweep(config, CHASE, repeats=6, seed=4242)
    accuracy = {c: correct / total for c, (correct, total) in stats.items() if total}
    overall = sum(c for c, _ in stats.values()) / max(1, sum(t for _, t in stats.values()))
    worst = sorted(accuracy, key=accuracy.get)[:6]
    print(f"measured per-key accuracy: {overall:.3f} overall")
    print(
        "weakest keys: "
        + ", ".join(f"{c!r}({accuracy[c]:.2f},{character_group(c)})" for c in worst)
    )

    # which counters carry the signal for this keyboard
    spread = np.std(scaled, axis=0)
    ranked = np.argsort(spread)[::-1]
    names = [spec.name for spec in pc.SELECTED_COUNTERS]
    print("most discriminative counters: " + ", ".join(names[i] for i in ranked[:3]))


def main() -> None:
    requested = sys.argv[1:] or ["gboard", "swift", "sogou"]
    for name in requested:
        if name not in KEYBOARDS:
            print(f"unknown keyboard {name!r}; available: {sorted(KEYBOARDS)}")
            continue
        survey_keyboard(name)


if __name__ == "__main__":
    main()
