#!/usr/bin/env python3
"""Multi-session streaming runtime: one process, a fleet of victims.

The session runtime (``repro.runtime``) multiplexes many eavesdropping
sessions on a single virtual timeline: each session owns its KGSL device
file, sampler RNG and online engine, while one scheduler interleaves
their counter reads in global time order.  A shared ``RuntimeTrace``
records every engine decision — key inferences, duplication suppression,
split merges, app-switch suppression, corrections — across the fleet.

Usage:
    python examples/multi_session_runtime.py [n_sessions] [credential]
"""

import sys
import time

from repro.api import (
    CHASE,
    AttackConfig,
    RuntimeTrace,
    default_config,
    run_sessions,
    simulate,
    train,
)


def main() -> None:
    n_sessions = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    credential = sys.argv[2] if len(sys.argv) > 2 else "secretpw1"

    config = default_config()
    print(f"victim device : {config.phone.display_name} ({config.gpu.name})")
    print(f"credential    : {credential!r}")
    print(f"sessions      : {n_sessions} concurrent, one runtime\n")

    print("offline phase: training the classification model ...")
    cfg = AttackConfig(recognize_device=False)
    store = train([(config, CHASE)], config=cfg)

    print("victim phase: compiling one GPU trace per session ...")
    traces = [
        simulate(config, CHASE, credential, seed=100 + i)
        for i in range(n_sessions)
    ]

    print("online phase: streaming all sessions through the runtime ...\n")
    runtime_trace = RuntimeTrace(capacity=256)
    started = time.perf_counter()
    results = run_sessions(store, traces, seed=500, config=cfg, runtime_trace=runtime_trace)
    elapsed = time.perf_counter() - started

    exact = 0
    for i, result in enumerate(results):
        marker = "EXACT" if result.text == credential else "partial"
        exact += result.text == credential
        print(f"  session {i:2d}: {result.text!r:20s} {marker}")

    print(f"\nexact matches : {exact}/{n_sessions} ({exact / n_sessions:.0%})")
    print(f"throughput    : {n_sessions / elapsed:.1f} sessions/s")
    print("\nengine decisions across the fleet (RuntimeTrace):")
    for (stage, kind), count in sorted(runtime_trace.counters.items()):
        print(f"  {stage:>10s}.{kind:<22s}: {count}")


if __name__ == "__main__":
    main()
