#!/usr/bin/env python3
"""Mitigation shoot-out (paper Section 9).

Evaluates every defence the paper discusses against the same credential:

* baseline (no defence)
* key-press popups disabled (Section 9.1)
* SELinux/RBAC ioctl whitelisting (Section 9.2)
* local-only counter visibility (finer-grained RBAC, Section 9.2)
* login-screen animation à la PNC Mobile (Section 9.3)
* driver-level counter value obfuscation (Section 9.3)

Usage:
    python examples/mitigation_evaluation.py
"""

from repro.api import (
    CHASE,
    PNC,
    CounterObfuscationPolicy,
    LocalOnlyPolicy,
    RbacPolicy,
    align,
    config_with_popups_disabled,
    default_config,
    simulate_credential_entry,
    single_model_attack,
)

CREDENTIAL = "S3cur3&Sound"


def score(truth: str, inferred: str) -> str:
    alignment = align(truth, inferred)
    return f"{alignment.correct}/{len(truth)} chars ({inferred!r})"


def main() -> None:
    config = default_config()

    print(f"credential under attack: {CREDENTIAL!r}\n")

    # --- baseline -------------------------------------------------------
    attack = single_model_attack(config, CHASE)
    trace = simulate_credential_entry(config, CHASE, CREDENTIAL, seed=9)
    baseline = attack.run_on_trace(trace, seed=90)
    print(f"no defence            : {score(CREDENTIAL, baseline.text)}")

    # --- popups disabled --------------------------------------------------
    nopopup_config = config_with_popups_disabled(config)
    nopopup_attack = single_model_attack(nopopup_config, CHASE)
    nopopup_trace = simulate_credential_entry(nopopup_config, CHASE, CREDENTIAL, seed=9)
    nopopup = nopopup_attack.run_on_trace(nopopup_trace, seed=90)
    leak = len(nopopup.text) + nopopup.online.stats.unattributed_growth
    print(
        f"popups disabled       : {score(CREDENTIAL, nopopup.text)} "
        f"— but length {leak} still leaks (Section 9.1)"
    )

    # --- RBAC / SELinux whitelist ---------------------------------------
    # EACCES permanently masks every counter: the attacking app survives
    # but samples nothing (see docs/defenses.md)
    rbac_policy = RbacPolicy()
    rbac = attack.run_on_trace(trace, seed=90, access_policy=rbac_policy)
    print(
        f"RBAC whitelist        : {score(CREDENTIAL, rbac.text)} "
        f"— blinded at ioctl ({rbac_policy.denials} EACCES denials)"
    )

    # --- local-only counters ---------------------------------------------
    local = attack.run_on_trace(trace, seed=90, access_policy=LocalOnlyPolicy())
    print(f"local-only counters   : {score(CREDENTIAL, local.text)} — attacker sees no activity")

    # --- login animation (PNC) -------------------------------------------
    pnc_attack = single_model_attack(config, PNC)
    pnc_trace = simulate_credential_entry(config, PNC, CREDENTIAL, seed=9)
    pnc = pnc_attack.run_on_trace(pnc_trace, seed=90)
    print(f"login animation (PNC) : {score(CREDENTIAL, pnc.text)} — paper measured ~30%")

    # --- driver value obfuscation ----------------------------------------
    fuzzed = attack.run_on_trace(
        trace, seed=90, access_policy=CounterObfuscationPolicy(strength=3.0)
    )
    print(f"value obfuscation     : {score(CREDENTIAL, fuzzed.text)}")

    print(
        "\nConclusion (Section 9.2): access control at the counter interface"
        " is the only defence that stops the attack without breaking the"
        " popups users rely on."
    )


if __name__ == "__main__":
    main()
