#!/usr/bin/env python3
"""Quickstart: steal one credential end to end.

Runs the full chain of the paper's Fig 4 on the simulated substrate:

1. Offline phase — the attacker's bot sweeps every key on their own
   device and trains a classification model for (Oneplus 8 Pro, Gboard,
   Chase Mobile).
2. Victim session — a user types their password into the Chase login
   screen; the simulator compiles every GPU frame Android would render.
3. Online phase — the attack service reads the GPU performance counters
   through the KGSL ioctl interface every 8 ms and runs Algorithm 1.

Usage:
    python examples/quickstart.py [credential]
"""

import sys
import time

from repro.api import (
    CHASE,
    AttackConfig,
    attack,
    default_config,
    simulate,
    train,
)


def main() -> None:
    credential = sys.argv[1] if len(sys.argv) > 1 else "Tr0ub4dor&3"
    config = default_config()

    print(f"victim device : {config.phone.display_name} ({config.gpu.name})")
    print(f"configuration : {config.config_key()}")
    print(f"target app    : {CHASE.display_name}")
    print(f"credential    : {credential!r}")
    print()

    print("[offline] training the classification model on the attacker's device ...")
    t0 = time.perf_counter()
    cfg = AttackConfig(recognize_device=False)
    store = train([(config, CHASE)], config=cfg)
    model = store.get(store.keys()[0])
    print(
        f"[offline] {len(model.key_labels)} key classes, "
        f"{len(model.labels) - len(model.key_labels)} reject classes, "
        f"cth={model.cth:.3f}, size={model.size_bytes() / 1024:.1f} KB, "
        f"trained in {time.perf_counter() - t0:.1f}s"
    )

    print("[victim ] compiling the credential-entry session ...")
    trace = simulate(config, CHASE, credential, seed=42)
    print(
        f"[victim ] {len(trace.timeline.frames)} GPU frames over "
        f"{trace.end_time_s:.1f}s of screen time"
    )

    print("[online ] sampling GPU performance counters every 8 ms ...")
    result = attack(store, trace, seed=99, config=cfg)

    print()
    print(f"inferred credential : {result.text!r}")
    print(f"ground truth        : {credential!r}")
    verdict = "EXACT MATCH" if result.text == credential else "partial"
    print(f"outcome             : {verdict}")
    stats = result.stats
    print(
        f"stats               : {stats.keys_inferred} keys inferred, "
        f"{stats.duplicates_suppressed} duplicates suppressed, "
        f"{stats.splits_recovered} splits recovered, "
        f"{stats.noise_events} noise events"
    )
    if result.latency.count:
        import numpy as np

        median_us = float(np.median(result.latency.samples)) * 1e6
        under_bound = result.latency.fraction_below(1e-4)
        print(
            f"inference latency   : median {median_us:.0f} us per PC change, "
            f"{under_bound:.0%} under 0.1 ms (Fig 25)"
        )


if __name__ == "__main__":
    main()
