#!/usr/bin/env python3
"""Fleet demo: one attack APK, many victim devices and apps.

Reproduces the paper's deployment story (Section 3.2): the attacker
preloads a classification model per (device model, configuration, target
app) into one application; at run time the service recognizes which
configuration it is running on from the first PC changes it observes, and
then eavesdrops with the matching model.

Usage:
    python examples/credential_theft_demo.py
"""

import numpy as np

from repro.api import (
    AMEX,
    CHASE,
    AttackConfig,
    DeviceConfig,
    attack,
    credential_batch,
    edit_distance,
    keyboard,
    phone,
    simulate,
    train,
)


VICTIMS = [
    # (phone, keyboard, app) — three distinct configurations
    ("oneplus8pro", "gboard", CHASE),
    ("pixel2", "gboard", CHASE),
    ("oneplus8pro", "sogou", AMEX),
]


def config_for(phone_name: str, keyboard_name: str) -> DeviceConfig:
    return DeviceConfig(phone=phone(phone_name), keyboard=keyboard(keyboard_name))


def main() -> None:
    print("[offline] training one model per (configuration, app) ...")
    pairs = [(config_for(p, k), app) for p, k, app in VICTIMS]
    cfg = AttackConfig(train_seed=11, recognize_device=True)
    store = train(pairs, config=cfg)
    print(
        f"[offline] preloaded store: {len(store)} models, "
        f"{store.total_size_bytes() / 1024:.1f} KB total "
        f"(avg {store.average_size_bytes() / 1024:.2f} KB per model)"
    )

    rng = np.random.default_rng(5)

    stolen = 0
    for i, ((config, app), credential) in enumerate(
        zip(pairs, credential_batch(rng, len(pairs)))
    ):
        print(f"\n--- victim {i + 1}: {config.phone.display_name} / "
              f"{config.keyboard.display_name} / {app.display_name} ---")
        trace = simulate(config, app, credential, seed=500 + i)
        result = attack(store, trace, seed=800 + i, config=cfg)

        expected_key = f"{config.config_key()}/{app.name}"
        recognized = "correct" if result.model_key == expected_key else "WRONG"
        print(f"device recognition : {result.model_key} ({recognized})")
        if result.recognition is not None:
            print(f"recognition margin : {result.recognition.margin:.2f}")
        print(f"typed              : {credential!r}")
        print(f"inferred           : {result.text!r}")
        if result.text == credential:
            stolen += 1
            print("outcome            : credential stolen verbatim")
        else:
            print(
                f"outcome            : {edit_distance(result.text, credential)} "
                "error(s) — recoverable with a few guesses"
            )

    print(f"\n{stolen}/{len(VICTIMS)} credentials stolen exactly.")


if __name__ == "__main__":
    main()
