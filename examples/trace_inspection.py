#!/usr/bin/env python3
"""Trace inspection: watch the side channel leak, delta by delta.

Compiles a short victim session, samples the counters like the attack
does, and prints every nonzero PC change aligned with the ground-truth
frames that produced it and the classifier's verdict — the Fig 5/11-style
view used to develop the attack.

Usage:
    python examples/trace_inspection.py [text]
"""

import sys

import numpy as np

from repro.api import (
    CHASE,
    BackspacePress,
    DeviceClock,
    KeyPress,
    PerfCounterSampler,
    TraceSummary,
    VictimDevice,
    annotate,
    default_config,
    open_kgsl,
    render_trace,
    train_model,
)


def main() -> None:
    text = sys.argv[1] if len(sys.argv) > 1 else "wn,"
    config = default_config()

    print(f"training model for {config.config_key()} ...")
    model = train_model(config, CHASE, seed=7)

    events = [KeyPress(t=0.6 + 0.55 * i, char=c) for i, c in enumerate(text)]
    backspace_t = 0.6 + 0.55 * len(text) + 0.4
    events.append(BackspacePress(t=backspace_t))
    end = backspace_t + 1.6

    device = VictimDevice(config, CHASE, rng=np.random.default_rng(1))
    trace = device.compile(events, end_time_s=end)

    kgsl = open_kgsl(trace.timeline, clock=DeviceClock())
    sampler = PerfCounterSampler(kgsl, rng=np.random.default_rng(2))
    samples = sampler.sample_range(0.0, end)

    annotated = annotate(trace, samples, model=model)
    print(
        f"\nsession: typed {text!r} then backspace — "
        f"{len(trace.timeline.frames)} frames, {len(samples)} counter reads, "
        f"{len(annotated)} nonzero changes\n"
    )
    print(render_trace(annotated, limit=60))

    summary = TraceSummary.from_annotated(annotated)
    print(
        f"\nsummary: {summary.deltas} changes, {summary.splits} split reads, "
        f"{summary.classified} classified / {summary.rejected} rejected"
    )
    print("by ground-truth kind:", dict(sorted(summary.by_truth_kind.items())))


if __name__ == "__main__":
    main()
