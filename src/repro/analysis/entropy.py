"""Information-theoretic strength of the side channel.

Accuracy alone understates an attack: even a *wrong* inference can gut a
credential's security if it narrows the search space.  This module
quantifies the leak in bits:

* the prior entropy of a credential (length x log2 |alphabet|);
* the posterior entropy given the attack's output, estimated from the
  empirical confusion matrix (per-position conditional entropy of the
  true key given the inferred key);
* the guessing advantage: how many orders of magnitude fewer candidates
  an attacker must try after observing the counters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.analysis.confusion import ConfusionMatrix
from repro.workloads.credentials import PASSWORD_POOL


def prior_entropy_bits(length: int, alphabet_size: int = len(PASSWORD_POOL)) -> float:
    """Entropy of a uniform random credential of the given length."""
    if length < 0:
        raise ValueError("length must be non-negative")
    if alphabet_size < 2:
        raise ValueError("alphabet must have at least two symbols")
    return length * math.log2(alphabet_size)


def conditional_entropy_bits(matrix: ConfusionMatrix) -> float:
    """H(true key | inferred key) from an empirical confusion matrix.

    The per-position uncertainty an attacker still faces after seeing the
    classifier's output.  0 bits means the channel identifies every key;
    log2 |alphabet| means it reveals nothing.
    """
    # group counts by inferred symbol
    by_inferred: Dict[str, Dict[str, int]] = {}
    total = 0
    for (truth, inferred), count in matrix.counts.items():
        if truth == ConfusionMatrix.SPURIOUS:
            continue
        by_inferred.setdefault(inferred, {})[truth] = (
            by_inferred.setdefault(inferred, {}).get(truth, 0) + count
        )
        total += count
    if total == 0:
        return 0.0
    entropy = 0.0
    for inferred, truth_counts in by_inferred.items():
        column_total = sum(truth_counts.values())
        p_column = column_total / total
        column_entropy = 0.0
        for count in truth_counts.values():
            p = count / column_total
            column_entropy -= p * math.log2(p)
        entropy += p_column * column_entropy
    return entropy


@dataclass(frozen=True)
class LeakReport:
    """The side channel's strength for credentials of one length."""

    length: int
    prior_bits: float
    posterior_bits: float

    @property
    def leaked_bits(self) -> float:
        return max(0.0, self.prior_bits - self.posterior_bits)

    @property
    def leak_fraction(self) -> float:
        if self.prior_bits <= 0:
            return 0.0
        return self.leaked_bits / self.prior_bits

    @property
    def search_space_reduction(self) -> float:
        """Multiplicative shrink of the credential search space (2^leak)."""
        return 2.0 ** self.leaked_bits


def leak_report(
    matrix: ConfusionMatrix,
    length: int,
    alphabet_size: int = len(PASSWORD_POOL),
) -> LeakReport:
    """Combine the confusion structure into a per-credential leak figure.

    Positions are treated as independent (the channel is memoryless per
    key press), so posterior bits = length x H(true | inferred).
    """
    prior = prior_entropy_bits(length, alphabet_size)
    per_key = conditional_entropy_bits(matrix)
    return LeakReport(
        length=length, prior_bits=prior, posterior_bits=length * per_key
    )
