"""Keystroke-dynamics analysis of the eavesdropped timestamps.

Algorithm 1's output M is the timestamp of every inferred key press.
Beyond the credential text itself, those timestamps carry biometric
signal: inter-key intervals are known to identify typists (the paper's
reference [43], Roh et al., uses exactly this for authentication).  This
module turns the attack's timing side-product into a user-identification
capability — one of the "useful information about the user" angles the
paper alludes to when discussing incomplete mitigations.

Features per session: quantiles and moments of the inter-key interval
distribution.  Identification is nearest-profile over feature space,
trained on labeled sessions (e.g. the five volunteers of Fig 16).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

#: Feature vector layout (for debugging and tests).
FEATURE_NAMES = (
    "interval_median",
    "interval_q25",
    "interval_q75",
    "interval_mean",
    "interval_std",
    "fast_share",
    "slow_share",
)


def timing_features(key_times: Sequence[float]) -> Optional[np.ndarray]:
    """Session feature vector from inferred key-press timestamps.

    Returns None when fewer than 4 presses are available (too little
    signal for a stable interval distribution).
    """
    times = np.asarray(sorted(key_times), dtype=float)
    if len(times) < 4:
        return None
    intervals = np.diff(times)
    # pauses (app switches, thinking) are not typing rhythm
    intervals = intervals[intervals < 2.0]
    if len(intervals) < 3:
        return None
    return np.array(
        [
            float(np.median(intervals)),
            float(np.quantile(intervals, 0.25)),
            float(np.quantile(intervals, 0.75)),
            float(np.mean(intervals)),
            float(np.std(intervals)),
            float(np.mean(intervals < 0.24)),
            float(np.mean(intervals > 0.4)),
        ]
    )


@dataclass
class TypistProfile:
    """Accumulated timing features for one (suspected) user."""

    name: str
    sessions: List[np.ndarray] = field(default_factory=list)

    def add(self, features: np.ndarray) -> None:
        self.sessions.append(np.asarray(features, dtype=float))

    @property
    def centroid(self) -> np.ndarray:
        if not self.sessions:
            raise ValueError(f"profile {self.name!r} has no sessions")
        return np.mean(np.vstack(self.sessions), axis=0)


class TypistIdentifier:
    """Nearest-profile identification over timing features."""

    def __init__(self) -> None:
        self._profiles: Dict[str, TypistProfile] = {}
        self._scale: Optional[np.ndarray] = None

    def enroll(self, name: str, key_times: Sequence[float]) -> bool:
        """Add one labeled session; returns False if it was too short."""
        features = timing_features(key_times)
        if features is None:
            return False
        self._profiles.setdefault(name, TypistProfile(name=name)).add(features)
        self._scale = None
        return True

    @property
    def names(self) -> List[str]:
        return sorted(self._profiles)

    def _ensure_scale(self) -> np.ndarray:
        if self._scale is None:
            rows = [s for p in self._profiles.values() for s in p.sessions]
            matrix = np.vstack(rows)
            self._scale = np.maximum(np.std(matrix, axis=0), 1e-6)
        return self._scale

    def identify(self, key_times: Sequence[float]) -> Optional[str]:
        """Most likely enrolled typist for an observed session."""
        if not self._profiles:
            raise ValueError("no profiles enrolled")
        features = timing_features(key_times)
        if features is None:
            return None
        scale = self._ensure_scale()
        best_name, best_dist = None, float("inf")
        for name, profile in self._profiles.items():
            dist = float(np.linalg.norm((features - profile.centroid) / scale))
            if dist < best_dist:
                best_name, best_dist = name, dist
        return best_name
