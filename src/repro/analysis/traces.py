"""Annotated trace inspection: what the attacker saw, against the truth.

During development of a side channel (the paper's Offline Phase) the
central debugging artifact is the aligned view of (a) counter deltas as
the attacker observes them and (b) the ground-truth frames that produced
them.  This module builds that view from a compiled session — the same
tooling that produced the paper's Figs 5, 11 and 13.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.android.device import SessionTrace
from repro.core.classifier import ClassificationModel
from repro.gpu import counters as pc
from repro.kgsl.sampler import PcSample, deltas


@dataclass(frozen=True)
class AnnotatedDelta:
    """One nonzero PC change with everything known about it."""

    t: float
    prev_t: float
    total: int
    lrz13: int
    truth_labels: tuple
    classified: Optional[str]
    distance: float
    is_split: bool

    @property
    def truth_kinds(self) -> tuple:
        return tuple(sorted({label.split(":")[0] for label in self.truth_labels}))


def annotate(
    trace: SessionTrace,
    samples: Sequence[PcSample],
    model: Optional[ClassificationModel] = None,
) -> List[AnnotatedDelta]:
    """Align every nonzero inter-sample delta with its ground truth."""
    frames = trace.timeline.frames
    starts = np.array([f.start_s for f in frames])
    ends = np.array([f.end_s for f in frames])
    read_times = np.array([s.t for s in samples])

    out: List[AnnotatedDelta] = []
    for prev, cur, delta in zip(samples, samples[1:], deltas(samples)):
        if not delta:
            continue
        mask = (starts < cur.t) & (ends > prev.t)
        involved = [frames[i] for i in np.flatnonzero(mask)]
        # a frame is split if a read boundary lands inside its render
        split = any(
            read_times[
                (read_times > frame.start_s) & (read_times < frame.end_s)
            ].size
            > 0
            for frame in involved
        )
        label, distance = None, float("nan")
        if model is not None:
            classification = model.classify(delta)
            label, distance = classification.label, classification.distance
        out.append(
            AnnotatedDelta(
                t=delta.t,
                prev_t=delta.prev_t,
                total=delta.total,
                # display-only: a masked counter renders as 0 here, but the
                # mask still travels in the delta for real consumers
                lrz13=delta.get(pc.LRZ_VISIBLE_PRIM_AFTER_LRZ, default=0),
                truth_labels=tuple(f.label for f in involved),
                classified=label,
                distance=distance,
                is_split=split,
            )
        )
    return out


def render_trace(annotated: Sequence[AnnotatedDelta], limit: int = 40) -> str:
    """A readable, aligned dump of an annotated delta stream."""
    lines = [
        f"{'t':>8s} {'ΔLRZ13':>7s} {'Δtotal':>9s} {'classified':22s} {'d':>6s}  truth"
    ]
    for entry in list(annotated)[:limit]:
        mark = "⚡" if entry.is_split else " "
        dist = f"{entry.distance:6.2f}" if entry.distance == entry.distance else "   n/a"
        lines.append(
            f"{entry.t:8.3f} {entry.lrz13:7d} {entry.total:9d} "
            f"{str(entry.classified):22s} {dist} {mark} {', '.join(entry.truth_labels)}"
        )
    if len(annotated) > limit:
        lines.append(f"... {len(annotated) - limit} more")
    return "\n".join(lines)


@dataclass
class TraceSummary:
    """Aggregate statistics of one annotated session."""

    deltas: int = 0
    splits: int = 0
    by_truth_kind: Dict[str, int] = field(default_factory=dict)
    classified: int = 0
    rejected: int = 0

    @classmethod
    def from_annotated(cls, annotated: Sequence[AnnotatedDelta]) -> "TraceSummary":
        summary = cls()
        for entry in annotated:
            summary.deltas += 1
            summary.splits += entry.is_split
            for kind in entry.truth_kinds:
                summary.by_truth_kind[kind] = summary.by_truth_kind.get(kind, 0) + 1
            if entry.classified is not None:
                summary.classified += 1
            else:
                summary.rejected += 1
        return summary
