"""Reusable experiment harness: the evaluation loops behind every figure.

Benchmarks (one per paper table/figure) and the example scripts all go
through these helpers, so experiment definitions live in exactly one
place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.metrics import AccuracyReport
from repro.android.apps import AppSpec
from repro.android.device import VictimDevice
from repro.android.os_config import DeviceConfig
from repro.core.model_store import ModelStore
from repro.core.pipeline import EavesdropAttack, simulate_credential_entry, train_model
from repro.kgsl.sampler import DEFAULT_INTERVAL_S, IDLE, SystemLoad
from repro.workloads.behavior import practical_session
from repro.workloads.credentials import credential_batch
from repro.workloads.typing_model import TypingModel

#: Shared cache of trained models across an experiment run, keyed like the
#: attack APK's preloaded store.
_MODEL_CACHE: Dict[str, object] = {}


def cached_model(
    config: DeviceConfig,
    app: AppSpec,
    seed: int = 7,
    interval_s: float = DEFAULT_INTERVAL_S,
):
    """Train (or fetch) the model for one (config, app, interval)."""
    key = f"{config.config_key()}/{app.name}@{interval_s}"
    model = _MODEL_CACHE.get(key)
    if model is None:
        model = train_model(config, app, seed=seed, interval_s=interval_s)
        _MODEL_CACHE[key] = model
    return model


def single_model_attack(
    config: DeviceConfig,
    app: AppSpec,
    interval_s: float = DEFAULT_INTERVAL_S,
    **attack_kw,
) -> EavesdropAttack:
    store = ModelStore()
    store.add(cached_model(config, app, interval_s=interval_s))
    return EavesdropAttack(
        store, interval_s=interval_s, recognize_device=False, **attack_kw
    )


@dataclass
class BatchResult:
    """Accuracy over a batch of credential-entry sessions."""

    report: AccuracyReport
    inference_times_s: List[float] = field(default_factory=list)

    @property
    def text_accuracy(self) -> float:
        return self.report.text_accuracy

    @property
    def key_accuracy(self) -> float:
        return self.report.key_accuracy


def run_credential_batch(
    config: DeviceConfig,
    app: AppSpec,
    n_texts: int = 30,
    length: Optional[int] = None,
    speed_tier: Optional[str] = None,
    load: SystemLoad = IDLE,
    gpu_utilization: float = 0.0,
    interval_s: float = DEFAULT_INTERVAL_S,
    seed: int = 1000,
    texts: Optional[Sequence[str]] = None,
    **attack_kw,
) -> BatchResult:
    """The Section 7.1 experiment loop: emulate ``n_texts`` random
    credentials on the victim and score the attack's inference."""
    attack = single_model_attack(config, app, interval_s=interval_s, **attack_kw)
    rng = np.random.default_rng(seed)
    if texts is None:
        texts = credential_batch(rng, n_texts, length=length)
    result = BatchResult(report=AccuracyReport())
    for i, text in enumerate(texts):
        trace = simulate_credential_entry(
            config,
            app,
            text,
            seed=seed + 17 * i + 1,
            speed_tier=speed_tier,
            gpu_utilization=gpu_utilization,
        )
        attack_result = attack.run_on_trace(trace, seed=seed + 31 * i + 2, load=load)
        result.report.add(text, attack_result.text)
        result.inference_times_s.extend(attack_result.latency.samples or ())
    return result


def run_per_key_sweep(
    config: DeviceConfig,
    app: AppSpec,
    repeats: int = 12,
    interval_s: float = DEFAULT_INTERVAL_S,
    seed: int = 2000,
) -> Dict[str, Tuple[int, int]]:
    """The Fig 18 experiment: every keyboard character pressed ``repeats``
    times; returns per-character (correct, total)."""
    from repro.android.events import KeyPress
    from repro.workloads.credentials import balanced_character_stream

    attack = single_model_attack(config, app, interval_s=interval_s)
    rng = np.random.default_rng(seed)
    chars = balanced_character_stream(rng, repeats)
    correct: Dict[str, int] = {}
    total: Dict[str, int] = {}
    # several medium sessions rather than one huge one
    chunk = 120
    for start in range(0, len(chars), chunk):
        part = chars[start : start + chunk]
        events = [
            KeyPress(t=0.6 + i * 0.45, char=c, duration=0.08) for i, c in enumerate(part)
        ]
        device = VictimDevice(config, app, rng=np.random.default_rng(seed + start))
        trace = device.compile(events, end_time_s=0.6 + len(part) * 0.45 + 1.0)
        result = attack.run_on_trace(trace, seed=seed + start + 5)
        from repro.analysis.metrics import align

        alignment = align("".join(part), result.text)
        for truth_char, inferred_char in alignment.matches:
            correct[truth_char] = correct.get(truth_char, 0) + 1
            total[truth_char] = total.get(truth_char, 0) + 1
        for truth_char, _ in alignment.substitutions:
            total[truth_char] = total.get(truth_char, 0) + 1
        for truth_char in alignment.deletions:
            total[truth_char] = total.get(truth_char, 0) + 1
    return {c: (correct.get(c, 0), total.get(c, 0)) for c in total}


def run_practical_sessions(
    config: DeviceConfig,
    app: AppSpec,
    volunteers: int = 5,
    repeats: int = 3,
    duration_s: float = 180.0,
    seed: int = 3000,
) -> Dict[str, AccuracyReport]:
    """The Section 8 experiment: per-volunteer practical usage sessions."""
    attack = single_model_attack(config, app)
    reports: Dict[str, AccuracyReport] = {}
    for v in range(volunteers):
        report = AccuracyReport()
        for r in range(repeats):
            rng = np.random.default_rng(seed + 100 * v + r)
            session = practical_session(
                rng, TypingModel(rng), volunteer_index=v, duration_s=duration_s
            )
            device = VictimDevice(config, app, rng=rng)
            trace = device.compile(session.events, end_time_s=duration_s)
            result = attack.run_on_trace(trace, seed=seed + 100 * v + r + 7)
            report.add(trace.final_text, result.text)
        reports[f"volunteer{v + 1}"] = report
    return reports


def format_accuracy_table(rows: Dict[str, Tuple[float, float]], title: str) -> str:
    """Render {label: (text_acc, key_acc)} the way the paper's bar charts
    pair 'text input accuracy' and 'individual key press accuracy'."""
    lines = [title, f"{'case':28s} {'text acc':>9s} {'key acc':>9s}"]
    for label, (text_acc, key_acc) in rows.items():
        lines.append(f"{label:28s} {text_acc:9.3f} {key_acc:9.3f}")
    return "\n".join(lines)
