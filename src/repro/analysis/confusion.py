"""Key-press confusion matrices for the per-key evaluation (Fig 18).

Beyond per-key accuracy, the *structure* of confusions matters: the paper
attributes errors to visually faint glyphs, and the matrix makes that
attribution testable (who gets confused with whom, and is the relation
symmetric).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.analysis.metrics import align


@dataclass
class ConfusionMatrix:
    """Counts of (true key -> inferred key) outcomes.

    Deletions are recorded against the sentinel ``MISSED``; insertions
    against ``SPURIOUS``.
    """

    MISSED = "<missed>"
    SPURIOUS = "<spurious>"

    counts: Dict[Tuple[str, str], int] = field(default_factory=dict)

    def record(self, truth: str, inferred: str) -> None:
        """Accumulate one (true text, inferred text) pair via alignment."""
        alignment = align(truth, inferred)
        for true_char, _ in alignment.matches:
            self._bump(true_char, true_char)
        for true_char, got in alignment.substitutions:
            self._bump(true_char, got)
        for true_char in alignment.deletions:
            self._bump(true_char, self.MISSED)
        for got in alignment.insertions:
            self._bump(self.SPURIOUS, got)

    def _bump(self, truth: str, inferred: str) -> None:
        key = (truth, inferred)
        self.counts[key] = self.counts.get(key, 0) + 1

    # ------------------------------------------------------------------

    def total(self, truth: str) -> int:
        return sum(v for (t, _), v in self.counts.items() if t == truth)

    def accuracy(self, truth: str) -> float:
        total = self.total(truth)
        if not total:
            return 0.0
        return self.counts.get((truth, truth), 0) / total

    def confusions(self, min_count: int = 1) -> List[Tuple[str, str, int]]:
        """Off-diagonal entries, most frequent first."""
        out = [
            (t, i, count)
            for (t, i), count in self.counts.items()
            if t != i and count >= min_count
        ]
        return sorted(out, key=lambda x: -x[2])

    def most_confused_pairs(self, top: int = 5) -> List[Tuple[str, str, int]]:
        """Symmetrized confusion pairs (a<->b combined), strongest first."""
        pair_counts: Dict[Tuple[str, str], int] = {}
        for truth, inferred, count in self.confusions():
            if truth in (self.MISSED, self.SPURIOUS) or inferred in (
                self.MISSED,
                self.SPURIOUS,
            ):
                continue
            key = tuple(sorted((truth, inferred)))
            pair_counts[key] = pair_counts.get(key, 0) + count
        ranked = sorted(pair_counts.items(), key=lambda kv: -kv[1])
        return [(a, b, count) for (a, b), count in ranked[:top]]

    def miss_rate(self, truth: str) -> float:
        total = self.total(truth)
        if not total:
            return 0.0
        return self.counts.get((truth, self.MISSED), 0) / total

    @property
    def overall_accuracy(self) -> float:
        correct = sum(v for (t, i), v in self.counts.items() if t == i)
        total = sum(
            v for (t, _), v in self.counts.items() if t != self.SPURIOUS
        )
        return correct / total if total else 0.0
