"""Accuracy metrics for the evaluation (paper Section 7).

The paper reports two granularities:

* **text-input accuracy** (Fig 17a): fraction of credentials inferred
  exactly right, end to end;
* **individual key-press accuracy** (Fig 17b/18): fraction of key presses
  inferred correctly, which we compute from a minimum-edit-distance
  alignment between the true and inferred strings so that one missing
  character does not cascade into a whole-suffix mismatch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.workloads.credentials import character_group


def edit_distance(a: str, b: str) -> int:
    """Levenshtein distance (unit costs)."""
    if not a:
        return len(b)
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            current.append(
                min(
                    previous[j] + 1,  # deletion
                    current[j - 1] + 1,  # insertion
                    previous[j - 1] + (ca != cb),  # substitution / match
                )
            )
        previous = current
    return previous[-1]


@dataclass(frozen=True)
class Alignment:
    """Character-level alignment between truth and inference."""

    matches: List[Tuple[str, str]]  # (true char, inferred char) matched pairs
    substitutions: List[Tuple[str, str]]
    deletions: List[str]  # true chars the attack missed
    insertions: List[str]  # inferred chars with no true counterpart

    @property
    def errors(self) -> int:
        return len(self.substitutions) + len(self.deletions) + len(self.insertions)

    @property
    def correct(self) -> int:
        return len(self.matches)


def align(truth: str, inferred: str) -> Alignment:
    """Optimal alignment via the edit-distance DP with backtracking."""
    n, m = len(truth), len(inferred)
    dp = [[0] * (m + 1) for _ in range(n + 1)]
    for i in range(n + 1):
        dp[i][0] = i
    for j in range(m + 1):
        dp[0][j] = j
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            dp[i][j] = min(
                dp[i - 1][j] + 1,
                dp[i][j - 1] + 1,
                dp[i - 1][j - 1] + (truth[i - 1] != inferred[j - 1]),
            )
    matches: List[Tuple[str, str]] = []
    substitutions: List[Tuple[str, str]] = []
    deletions: List[str] = []
    insertions: List[str] = []
    i, j = n, m
    while i > 0 or j > 0:
        if (
            i > 0
            and j > 0
            and dp[i][j] == dp[i - 1][j - 1] + (truth[i - 1] != inferred[j - 1])
        ):
            if truth[i - 1] == inferred[j - 1]:
                matches.append((truth[i - 1], inferred[j - 1]))
            else:
                substitutions.append((truth[i - 1], inferred[j - 1]))
            i -= 1
            j -= 1
        elif i > 0 and dp[i][j] == dp[i - 1][j] + 1:
            deletions.append(truth[i - 1])
            i -= 1
        else:
            insertions.append(inferred[j - 1])
            j -= 1
    matches.reverse()
    substitutions.reverse()
    deletions.reverse()
    insertions.reverse()
    return Alignment(
        matches=matches,
        substitutions=substitutions,
        deletions=deletions,
        insertions=insertions,
    )


@dataclass
class AccuracyReport:
    """Aggregated accuracy over a batch of (truth, inferred) pairs."""

    traces: int = 0
    exact_traces: int = 0
    true_chars: int = 0
    correct_chars: int = 0
    errors_per_trace: List[int] = field(default_factory=list)
    per_char_correct: Dict[str, int] = field(default_factory=dict)
    per_char_total: Dict[str, int] = field(default_factory=dict)

    def add(self, truth: str, inferred: str) -> Alignment:
        alignment = align(truth, inferred)
        self.traces += 1
        if truth == inferred:
            self.exact_traces += 1
        self.true_chars += len(truth)
        self.correct_chars += alignment.correct
        self.errors_per_trace.append(alignment.errors)
        for char, _ in alignment.matches:
            self.per_char_correct[char] = self.per_char_correct.get(char, 0) + 1
            self.per_char_total[char] = self.per_char_total.get(char, 0) + 1
        for char, _ in alignment.substitutions:
            self.per_char_total[char] = self.per_char_total.get(char, 0) + 1
        for char in alignment.deletions:
            self.per_char_total[char] = self.per_char_total.get(char, 0) + 1
        return alignment

    # ------------------------------------------------------------------

    @property
    def text_accuracy(self) -> float:
        """Fig 17a: fraction of credentials inferred exactly."""
        return self.exact_traces / self.traces if self.traces else 0.0

    @property
    def key_accuracy(self) -> float:
        """Fig 17b/18: fraction of true key presses inferred correctly."""
        return self.correct_chars / self.true_chars if self.true_chars else 0.0

    @property
    def mean_errors_per_trace(self) -> float:
        if not self.errors_per_trace:
            return 0.0
        return sum(self.errors_per_trace) / len(self.errors_per_trace)

    def char_accuracy(self, char: str) -> float:
        total = self.per_char_total.get(char, 0)
        if not total:
            return 0.0
        return self.per_char_correct.get(char, 0) / total

    def group_accuracy(self) -> Dict[str, float]:
        """Fig 17c / 21c: accuracy per character group."""
        correct: Dict[str, int] = {}
        total: Dict[str, int] = {}
        for char, count in self.per_char_total.items():
            group = character_group(char)
            total[group] = total.get(group, 0) + count
            correct[group] = correct.get(group, 0) + self.per_char_correct.get(char, 0)
        return {
            group: (correct.get(group, 0) / count if count else 0.0)
            for group, count in total.items()
        }
