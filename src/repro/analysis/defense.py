"""Defense evaluation: the threat × mitigation matrix (paper Section 9).

The paper's defense argument is an arms race tally — each mitigation is
scored by how far it degrades the attack (text- and key-level accuracy)
against what it costs the platform (denied ioctls, stale reads served,
wall-clock overhead).  :func:`run_defense_matrix` drives the existing
attack pipeline over ``scenarios × mitigations`` cells and returns one
:class:`DefenseCell` per combination; ``repro defenses sweep`` and
``benchmarks/test_defense_matrix.py`` (→ ``BENCH_defense.json``) are
thin wrappers over it.  See ``docs/defenses.md`` for the handbook.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.analysis.experiments import cached_model
from repro.analysis.metrics import align
from repro.core.model_store import ModelStore
from repro.mitigations.policy import MitigationPolicy
from repro.mitigations.policy import mitigation as _mitigation_lookup
from repro.obs import MetricsRegistry
from repro.scenarios import Scenario
from repro.scenarios import scenario as _scenario_lookup
from repro.workloads.credentials import scenario_credential

#: Manifest counters folded into each cell (zero when absent).
_MITIGATION_COUNTERS = (
    "denials",
    "stale_serves",
    "quantized",
    "noised",
    "local_zeroed",
)


@dataclass(frozen=True)
class DefenseCell:
    """One (scenario, mitigation) cell of the threat × mitigation matrix."""

    scenario: str
    mitigation: str
    sessions: int
    #: Sessions whose credential was recovered exactly (Fig 17a metric).
    exact: int
    #: Key presses aligned correct / total (Fig 17b metric).
    keys_correct: int
    keys_total: int
    #: Enforcement tallies from the policy enforcer + sampler.
    denials: int
    stale_serves: int
    quantized: int
    noised: int
    local_zeroed: int
    #: Overhead proxies: reads the sampler issued, and wall time.
    reads_issued: int
    wall_s: float
    degraded_sessions: int = 0

    @property
    def exact_rate(self) -> float:
        return self.exact / self.sessions if self.sessions else 0.0

    @property
    def key_accuracy(self) -> float:
        return self.keys_correct / self.keys_total if self.keys_total else 0.0

    @property
    def sessions_per_s(self) -> float:
        return self.sessions / self.wall_s if self.wall_s > 0 else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "mitigation": self.mitigation,
            "sessions": self.sessions,
            "exact": self.exact,
            "exact_rate": self.exact_rate,
            "keys_correct": self.keys_correct,
            "keys_total": self.keys_total,
            "key_accuracy": self.key_accuracy,
            "denials": self.denials,
            "stale_serves": self.stale_serves,
            "quantized": self.quantized,
            "noised": self.noised,
            "local_zeroed": self.local_zeroed,
            "reads_issued": self.reads_issued,
            "wall_s": self.wall_s,
            "degraded_sessions": self.degraded_sessions,
        }


def _policy_label(policy: Union[MitigationPolicy, str, None]) -> str:
    if policy is None:
        return "none"
    if isinstance(policy, MitigationPolicy):
        return policy.name
    return policy


def run_defense_matrix(
    scenarios: Sequence[Union[Scenario, str]],
    mitigations: Sequence[Union[MitigationPolicy, str, None]],
    sessions: int = 3,
    length: int = 8,
    seed: int = 7,
    fault_plan: Union[object, None, str] = None,
    workers: int = 1,
    metrics: Optional[MetricsRegistry] = None,
) -> List[DefenseCell]:
    """Run the attack fleet across ``scenarios × mitigations``.

    Per cell: the attacker trains on the *clean* device config (the
    paper's attacker profiles their own phone, which the victim's
    mitigations do not touch), the victim types ``sessions`` random
    credentials under the mitigation — popup changes land on the
    simulated device, KGSL-boundary layers land on the attacker's
    reads — and the cell scores exact/key accuracy plus enforcement
    and overhead tallies.  Credentials are seeded per scenario, so
    every mitigation of one scenario attacks the same texts.

    When ``metrics`` is an enabled registry, each cell additionally
    lands as ``defense.<scenario>.<mitigation>.*`` gauges — the shape
    ``BENCH_defense.json`` is built from.
    """
    from repro import api  # local import: repro.api re-exports this module

    if sessions < 1:
        raise ValueError("sessions must be >= 1")
    cells: List[DefenseCell] = []
    for s_index, scn_ref in enumerate(scenarios):
        scn = (
            scn_ref
            if isinstance(scn_ref, Scenario)
            else _scenario_lookup(scn_ref)
        )
        store = ModelStore()
        store.add(cached_model(scn.device_config(), scn.app_spec(), seed=seed))
        rng = np.random.default_rng((seed, s_index))
        creds = [scenario_credential(rng, scn, length=length) for _ in range(sessions)]
        for policy_ref in mitigations:
            policy = (
                _mitigation_lookup(policy_ref)
                if isinstance(policy_ref, str)
                else policy_ref
            )
            label = _policy_label(policy)
            config = api.AttackConfig(
                scenario=scn.name,
                mitigation=policy,
                fault_plan=fault_plan,
                recognize_device=False,
            )
            cell_metrics = MetricsRegistry()
            started = time.perf_counter()
            traces = [
                api.simulate(credential=cred, seed=seed + 17 * i + 1, config=config)
                for i, cred in enumerate(creds)
            ]
            batch = api.run_sessions(
                store,
                traces,
                seed=seed + 100 * s_index,
                config=config,
                metrics=cell_metrics,
                workers=workers,
            )
            wall_s = time.perf_counter() - started
            counters = batch.manifest.counters if batch.manifest else {}
            exact = sum(
                1 for cred, result in zip(creds, batch) if result.text == cred
            )
            keys_correct = sum(
                align(cred, result.text).correct
                for cred, result in zip(creds, batch)
            )
            cell = DefenseCell(
                scenario=scn.name,
                mitigation=label,
                sessions=sessions,
                exact=exact,
                keys_correct=keys_correct,
                keys_total=sum(len(c) for c in creds),
                denials=int(counters.get("mitigation.denials", 0)),
                stale_serves=int(counters.get("mitigation.stale_serves", 0)),
                quantized=int(counters.get("mitigation.quantized", 0)),
                noised=int(counters.get("mitigation.noised", 0)),
                local_zeroed=int(counters.get("mitigation.local_zeroed", 0)),
                reads_issued=int(counters.get("sampler.reads_issued", 0)),
                wall_s=wall_s,
                degraded_sessions=sum(1 for r in batch if r.degraded),
            )
            cells.append(cell)
            if metrics is not None and metrics.enabled:
                prefix = f"defense.{cell.scenario}.{cell.mitigation}"
                metrics.gauge(f"{prefix}.exact_rate").set(cell.exact_rate)
                metrics.gauge(f"{prefix}.key_accuracy").set(cell.key_accuracy)
                metrics.gauge(f"{prefix}.denials").set(cell.denials)
                metrics.gauge(f"{prefix}.stale_serves").set(cell.stale_serves)
                metrics.gauge(f"{prefix}.reads_issued").set(cell.reads_issued)
                metrics.gauge(f"{prefix}.wall_s").set(cell.wall_s)
    return cells


def format_defense_matrix(cells: Sequence[DefenseCell]) -> str:
    """Render cells as the aligned text matrix the CLI prints."""
    header = (
        "scenario", "mitigation", "exact", "key-acc",
        "denials", "stale", "reads", "wall-s",
    )
    rows = [header]
    for cell in cells:
        rows.append(
            (
                cell.scenario,
                cell.mitigation,
                f"{cell.exact}/{cell.sessions}",
                f"{cell.key_accuracy:.2f}",
                str(cell.denials),
                str(cell.stale_serves),
                str(cell.reads_issued),
                f"{cell.wall_s:.2f}",
            )
        )
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    lines = [
        "  ".join(value.ljust(width) for value, width in zip(row, widths)).rstrip()
        for row in rows
    ]
    lines.insert(1, "  ".join("-" * width for width in widths))
    return "\n".join(lines)
