"""Terminal figure rendering for the evaluation harness.

The benches and examples report the paper's tables and bar charts; this
module renders them as aligned ASCII so a harness run reads like the
paper's evaluation section.  No plotting dependencies.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence, Tuple

_BLOCKS = " ▏▎▍▌▋▊▉█"


def _bar(value: float, vmax: float, width: int) -> str:
    """A unicode bar of ``width`` cells for value in [0, vmax]."""
    if vmax <= 0:
        return ""
    cells = max(0.0, min(1.0, value / vmax)) * width
    full = int(cells)
    frac = int((cells - full) * (len(_BLOCKS) - 1))
    bar = "█" * full
    if frac and full < width:
        bar += _BLOCKS[frac]
    return bar


def bar_chart(
    rows: Mapping[str, float],
    title: str = "",
    width: int = 40,
    vmax: Optional[float] = None,
    fmt: str = "{:.3f}",
) -> str:
    """A horizontal bar chart, one row per label."""
    if not rows:
        return title
    limit = vmax if vmax is not None else max(rows.values()) or 1.0
    label_w = max(len(str(label)) for label in rows)
    lines = [title] if title else []
    for label, value in rows.items():
        lines.append(
            f"{str(label):>{label_w}s} │{_bar(value, limit, width):<{width}s}│ "
            + fmt.format(value)
        )
    return "\n".join(lines)


def grouped_bar_chart(
    rows: Mapping[str, Tuple[float, float]],
    series: Tuple[str, str],
    title: str = "",
    width: int = 30,
) -> str:
    """Two-series bars per label, like the paper's paired accuracy plots."""
    if not rows:
        return title
    label_w = max(len(str(label)) for label in rows)
    lines = [title] if title else []
    lines.append(f"{'':{label_w}s}  {series[0]} ░ / {series[1]} █")
    for label, (a, b) in rows.items():
        bar_a = _bar(a, 1.0, width).replace("█", "░")
        bar_b = _bar(b, 1.0, width)
        lines.append(f"{str(label):>{label_w}s} │{bar_a:<{width}}│ {a:.3f}")
        lines.append(f"{'':{label_w}s} │{bar_b:<{width}}│ {b:.3f}")
    return "\n".join(lines)


def histogram(
    values: Sequence[float],
    edges: Sequence[float],
    title: str = "",
    width: int = 40,
    unit: str = "",
) -> str:
    """A binned histogram with counts and percentages (Fig 25 style)."""
    counts = [0] * (len(edges) - 1)
    for value in values:
        for i in range(len(edges) - 1):
            if edges[i] <= value < edges[i + 1]:
                counts[i] += 1
                break
    total = max(1, len(values))
    vmax = max(counts) or 1
    lines = [title] if title else []
    for i, count in enumerate(counts):
        label = f"{edges[i]:g}-{edges[i + 1]:g}{unit}"
        lines.append(
            f"{label:>16s} │{_bar(count, vmax, width):<{width}}│ "
            f"{count} ({100 * count / total:.1f}%)"
        )
    return "\n".join(lines)


def table(
    header: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """A fixed-width table (Table 2 style)."""
    str_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in header]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title] if title else []
    lines.append("  ".join(f"{h:>{w}s}" for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(f"{cell:>{w}s}" for cell, w in zip(row, widths)))
    return "\n".join(lines)


def sparkline(values: Sequence[float], vmax: Optional[float] = None) -> str:
    """A one-line trend (for time series like Fig 26's battery curves)."""
    if not values:
        return ""
    limit = vmax if vmax is not None else max(values) or 1.0
    out = []
    for value in values:
        idx = int(max(0.0, min(1.0, value / limit)) * (len(_BLOCKS) - 1))
        out.append(_BLOCKS[idx] if idx else _BLOCKS[1])
    return "".join(out)
