"""Bootstrap confidence intervals for the evaluation harness.

The benches run at a fraction of the paper's batch sizes, so point
estimates wobble; reporting a bootstrap interval makes the comparison to
the paper honest about that uncertainty.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np


@dataclass(frozen=True)
class Interval:
    """A point estimate with a bootstrap confidence interval."""

    estimate: float
    low: float
    high: float
    confidence: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.estimate:.3f} [{self.low:.3f}, {self.high:.3f}]"

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    @property
    def width(self) -> float:
        return self.high - self.low


def bootstrap_interval(
    values: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.mean,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> Interval:
    """Percentile bootstrap over per-trace outcomes.

    Args:
        values: one outcome per trace (e.g. 1.0 for an exact inference).
        statistic: aggregated quantity; the default mean gives accuracy.
        confidence: two-sided confidence level.
        resamples: bootstrap resample count.
        seed: RNG seed (the harness is fully deterministic).
    """
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    rng = np.random.default_rng(seed)
    estimates = np.empty(resamples)
    n = data.size
    for i in range(resamples):
        sample = data[rng.integers(0, n, size=n)]
        estimates[i] = statistic(sample)
    alpha = (1.0 - confidence) / 2.0
    return Interval(
        estimate=float(statistic(data)),
        low=float(np.quantile(estimates, alpha)),
        high=float(np.quantile(estimates, 1.0 - alpha)),
        confidence=confidence,
    )


def accuracy_interval(
    successes: int, trials: int, confidence: float = 0.95, seed: int = 0
) -> Interval:
    """Bootstrap interval for a success rate given aggregate counts."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must be within [0, trials]")
    values = [1.0] * successes + [0.0] * (trials - successes)
    return bootstrap_interval(values, confidence=confidence, seed=seed)


def difference_significant(
    a: Sequence[float], b: Sequence[float], confidence: float = 0.95, seed: int = 0
) -> bool:
    """Whether mean(a) - mean(b) excludes zero under the bootstrap."""
    a_arr = np.asarray(list(a), dtype=float)
    b_arr = np.asarray(list(b), dtype=float)
    if a_arr.size == 0 or b_arr.size == 0:
        raise ValueError("cannot compare empty samples")
    rng = np.random.default_rng(seed)
    diffs = np.empty(2000)
    for i in range(2000):
        sa = a_arr[rng.integers(0, a_arr.size, size=a_arr.size)]
        sb = b_arr[rng.integers(0, b_arr.size, size=b_arr.size)]
        diffs[i] = sa.mean() - sb.mean()
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(diffs, [alpha, 1.0 - alpha])
    return low > 0.0 or high < 0.0
