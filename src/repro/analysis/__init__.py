"""Metrics and report formatting for the evaluation harness."""
