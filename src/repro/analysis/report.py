"""One-command evaluation report: the artifact's "reproduce everything".

``generate_report`` runs a configurable-scale subset of the paper's
evaluation and writes each figure as rendered text into a directory,
plus a ``summary.md`` comparing against the paper's headline numbers.
The full assertion-checked versions of these experiments live in
``benchmarks/``; this module is the human-facing rendering of the same
harness (``repro.analysis.experiments``).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.analysis import reporting
from repro.analysis.experiments import (
    cached_model,
    run_credential_batch,
    run_per_key_sweep,
)
from repro.analysis.stats import accuracy_interval
from repro.android.apps import app
from repro.android.os_config import DeviceConfig, default_config
from repro.baselines.knn import KNearestNeighbors
from repro.baselines.naive_bayes import GaussianNaiveBayes
from repro.baselines.nvidia import DESKTOP_CONTEXTS, DesktopGpuSampler
from repro.baselines.random_forest import RandomForest
from repro.kgsl.sampler import PowerModel
from repro.android.os_config import phone


def _fig17(config: DeviceConfig, scale: int) -> str:
    rows: Dict[str, float] = {}
    key_rows: Dict[str, float] = {}
    all_exact = all_total = 0
    for length in range(8, 17):
        batch = run_credential_batch(
            config, app("chase"), n_texts=4 * scale, length=length, seed=1700 + length
        )
        rows[str(length)] = batch.text_accuracy
        key_rows[str(length)] = batch.key_accuracy
        all_exact += batch.report.exact_traces
        all_total += batch.report.traces
    interval = accuracy_interval(all_exact, all_total)
    chart = reporting.grouped_bar_chart(
        {k: (rows[k], key_rows[k]) for k in rows},
        series=("text", "per-key"),
        title="Fig 17 — accuracy vs credential length (paper: 81.3% / 98.3%)",
    )
    return f"{chart}\n\noverall text accuracy: {interval}\n"


def _fig18(config: DeviceConfig, scale: int) -> str:
    stats = run_per_key_sweep(config, app("chase"), repeats=3 * scale)
    accuracy = {c: correct / total for c, (correct, total) in stats.items() if total}
    worst = dict(sorted(accuracy.items(), key=lambda kv: kv[1])[:15])
    overall = sum(c for c, _ in stats.values()) / max(1, sum(t for _, t in stats.values()))
    chart = reporting.bar_chart(
        worst, title="Fig 18 — weakest keys (paper: symbols weakest)", vmax=1.0
    )
    return f"{chart}\n\noverall per-key accuracy: {overall:.3f} (paper: 0.983)\n"


def _table2(scale: int) -> str:
    chars = "abcdefghijklmnopqrstuvwxyz"
    rows = []
    for name, context in DESKTOP_CONTEXTS.items():
        sampler = DesktopGpuSampler(context, rng=np.random.default_rng(2))
        Xtr, ytr = sampler.collect(chars, repeats=5 * scale)
        Xte, yte = sampler.collect(chars, repeats=4 * scale)
        rows.append(
            [
                name,
                f"{GaussianNaiveBayes().fit(Xtr, ytr).score(Xte, yte):.3f}",
                f"{KNearestNeighbors(3).fit(Xtr, ytr).score(Xte, yte):.3f}",
                f"{RandomForest(n_trees=30, max_depth=10, seed=3).fit(Xtr, ytr).score(Xte, yte):.3f}",
            ]
        )
    return (
        reporting.table(
            ["target", "NaiveBayes", "KNN3", "RandomForest"],
            rows,
            title="Table 2 — desktop Nvidia baseline (paper: 8.7-14.2%)",
        )
        + "\n"
    )


def _fig26() -> str:
    lines = ["Fig 26 — extra battery %, 30/60/90/120 min (paper: <=4%)"]
    for name in ("lg_v30", "oneplus8pro", "pixel2", "oneplus7pro"):
        spec = phone(name)
        model = PowerModel(battery_mwh=spec.battery_mwh)
        series = [
            model.extra_consumption_percent(
                m * 60.0, gpu_sample_power_mw=spec.gpu.sample_power_mw
            )
            for m in (30, 60, 90, 120)
        ]
        lines.append(
            f"  {name:12s} {reporting.sparkline(series, vmax=4.0)}  "
            + " ".join(f"{v:4.2f}" for v in series)
        )
    return "\n".join(lines) + "\n"


def generate_report(output_dir: Union[str, Path], scale: int = 1) -> Dict[str, Path]:
    """Write the report figures; returns {figure name: file path}.

    ``scale=1`` takes roughly a minute; ``scale=3`` gives tighter
    intervals at a few minutes.
    """
    if scale < 1:
        raise ValueError("scale must be >= 1")
    out = Path(output_dir)
    out.mkdir(parents=True, exist_ok=True)
    config = default_config()
    model = cached_model(config, app("chase"))

    figures = {
        "fig17_accuracy.txt": _fig17(config, scale),
        "fig18_per_key.txt": _fig18(config, scale),
        "table2_baseline.txt": _table2(scale),
        "fig26_power.txt": _fig26(),
    }
    written: Dict[str, Path] = {}
    for name, content in figures.items():
        path = out / name
        path.write_text(content)
        written[name] = path

    summary = (
        "# Evaluation report\n\n"
        f"configuration: {config.config_key()} / {app('chase').name}\n\n"
        f"model: {len(model.key_labels)} key classes, cth={model.cth:.3f}, "
        f"{model.size_bytes() / 1024:.1f} KB\n\n"
        "Figures:\n"
        + "\n".join(f"- {name}" for name in figures)
        + "\n\nFull assertion-checked experiments: `pytest benchmarks/ "
        "--benchmark-only`; paper-vs-measured comparison in EXPERIMENTS.md.\n"
    )
    summary_path = out / "summary.md"
    summary_path.write_text(summary)
    written["summary.md"] = summary_path
    return written
