"""Generic named-spec registries: the one lookup path for every axis.

Keyboards, target apps, phone models and attack scenarios all used to be
module-level dicts with hand-rolled ``KeyError`` strings.  This module
gives them one shared mechanism:

* :class:`Registry` — an insertion-ordered, name-keyed table of frozen
  spec objects with idempotent registration, tag queries, and
  deterministic listing (``names()`` is always sorted, so registration
  order never changes lookup results);
* :class:`UnknownNameError` — the single error type every lookup helper
  raises, with a consistent message and a closest-match ("did you
  mean") suggestion.

Producers (``repro.android.keyboard``, ``repro.android.apps``,
``repro.android.os_config``, ``repro.scenarios``) instantiate one
registry each and register their specs at import time; consumers resolve
names through the producer's lookup function (``keyboard()``, ``app()``,
``phone()``, ``scenario()``) and never index the legacy dicts directly.
"""

from __future__ import annotations

import difflib
from typing import Callable, Dict, Generic, Iterator, List, Optional, Tuple, TypeVar

T = TypeVar("T")


class UnknownNameError(KeyError):
    """An unknown name was looked up in a :class:`Registry`.

    Subclasses :class:`KeyError` so pre-registry callers that caught
    ``KeyError`` keep working, but carries a consistent message and an
    optional closest-match suggestion.
    """

    def __init__(
        self,
        kind: str,
        name: str,
        known: List[str],
        suggestion: Optional[str] = None,
    ) -> None:
        message = f"unknown {kind} {name!r}; known: {sorted(known)}"
        if suggestion is not None:
            message += f" — did you mean {suggestion!r}?"
        super().__init__(message)
        self.kind = kind
        self.name = name
        self.suggestion = suggestion

    def __str__(self) -> str:  # KeyError.__str__ would repr() the message
        return self.args[0]


class Registry(Generic[T]):
    """A name-keyed table of spec objects.

    Specs are expected to be frozen (hashable, equality-comparable)
    dataclasses with a ``name`` attribute; an alternative key function
    can be supplied.  Registration is strict: a second spec under an
    existing name raises unless it is *equal* to the first (idempotent
    re-import) or ``replace=True`` is passed.
    """

    def __init__(self, kind: str, key: Callable[[T], str] = lambda s: s.name) -> None:
        self.kind = kind
        self._key = key
        self._specs: Dict[str, T] = {}
        self._tags: Dict[str, Tuple[str, ...]] = {}

    # -- registration ---------------------------------------------------

    def register(
        self, spec: T, tags: Tuple[str, ...] = (), replace: bool = False
    ) -> T:
        """Add ``spec`` under its name; returns the registered spec."""
        name = self._key(spec)
        if not isinstance(name, str) or not name:
            raise ValueError(f"{self.kind} spec has no usable name: {spec!r}")
        existing = self._specs.get(name)
        if existing is not None and not replace:
            if existing == spec:
                return existing  # idempotent re-registration
            raise ValueError(
                f"{self.kind} {name!r} is already registered with a "
                f"different spec; pass replace=True to override"
            )
        self._specs[name] = spec
        self._tags[name] = tuple(tags)
        return spec

    # -- lookup ---------------------------------------------------------

    def get(self, name: str) -> T:
        """The spec registered under ``name``.

        Raises:
            UnknownNameError: with the known names and a closest-match
                suggestion when one is plausible.
        """
        try:
            return self._specs[name]
        except KeyError:
            raise UnknownNameError(
                self.kind, name, list(self._specs), self.suggest(name)
            ) from None

    def suggest(self, name: str) -> Optional[str]:
        """The closest registered name, if any is plausibly intended."""
        if not isinstance(name, str):
            return None
        matches = difflib.get_close_matches(name, list(self._specs), n=1, cutoff=0.6)
        return matches[0] if matches else None

    def names(self) -> List[str]:
        """All registered names, sorted — independent of registration order."""
        return sorted(self._specs)

    def tagged(self, tag: str) -> Tuple[T, ...]:
        """Specs carrying ``tag``, in registration order."""
        return tuple(
            self._specs[name] for name, tags in self._tags.items() if tag in tags
        )

    def tags_of(self, name: str) -> Tuple[str, ...]:
        self.get(name)  # raise the consistent error for unknown names
        return self._tags[name]

    # -- container protocol --------------------------------------------

    def __contains__(self, name: object) -> bool:
        return name in self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def items(self) -> List[Tuple[str, T]]:
        return [(name, self._specs[name]) for name in self.names()]

    def values(self) -> List[T]:
        return [self._specs[name] for name in self.names()]

    def as_dict(self) -> Dict[str, T]:
        """A plain-dict snapshot (sorted by name)."""
        return dict(self.items())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Registry({self.kind!r}, {len(self)} entries)"
