"""Reproduction of "Eavesdropping User Credentials via GPU Side Channels
on Smartphones" (ASPLOS 2022).

The package simulates the full hardware/software stack the paper attacks —
Qualcomm Adreno tiled rendering with performance counters, the KGSL
device-file interface, Android UI scenes and keyboards — and implements
the attack itself: offline model training, online Algorithm 1 inference,
app-switch detection and correction tracking.

The stable, supported surface is :mod:`repro.api` — facade functions
plus a typed :class:`~repro.api.AttackConfig`.  Quickstart::

    from repro.api import AttackConfig, app, attack, default_config, simulate, train

    config = default_config()
    chase = app("chase")
    cfg = AttackConfig(recognize_device=False)
    store = train([(config, chase)], config=cfg)
    trace = simulate(config, chase, "hunter2secret", seed=1)
    result = attack(store, trace, config=cfg)
    print(result.text)

Keyboards, apps, phones and full attack scenarios are addressed by name
through registries (see :mod:`repro.scenarios` and docs/scenarios.md)::

    from repro.api import AttackConfig, scenario, scenario_names

    print(scenario_names())  # 'gboard-chase', 'pinpad', ...
    cfg = AttackConfig(scenario="pinpad")

The legacy spec constants (``CHASE``, ``SWIFTKEY``, …) remain importable
from here as deprecated aliases of the registry entries.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured comparison of every table and figure.
"""

from repro.android.apps import (
    TARGET_APPS,
    AppSpec,
    app,
)
from repro.android.device import SessionTrace, VictimDevice
from repro.android.session_io import load_session, save_session
from repro.android.display import Display, Resolution
from repro.android.keyboard import KEYBOARDS, KeyboardSpec, keyboard
from repro.android.os_config import (
    ANDROID_VERSIONS,
    PHONE_MODELS,
    DeviceConfig,
    PhoneModel,
    default_config,
    phone,
)
from repro.analysis.keystroke_dynamics import TypistIdentifier, timing_features
from repro.analysis.metrics import AccuracyReport, align, edit_distance
from repro.core.results import SessionResult
from repro.faults import FAULT_PROFILE_ENV, FaultInjector, FaultPlan, FaultStats
from repro.core.classifier import ClassificationModel, build_model
from repro.core.guessing import CandidateGenerator
from repro.core.launch import LaunchDetector
from repro.core.service import MonitoringService, ServiceReport
from repro.core.model_store import ModelStore
from repro.core.offline import OfflineTrainer
from repro.core.online import OnlineEngine, OnlineResult
from repro.core.pipeline import (
    AttackResult,
    EavesdropAttack,
    run_sessions,
    simulate_credential_entry,
    train_model,
    train_store,
)
from repro.runtime import (
    RuntimeEvent,
    RuntimeTrace,
    SamplerDeltaSource,
    Session,
    SessionRuntime,
    VirtualClock,
)
from repro.gpu.adreno import ADRENO_MODELS, AdrenoSpec, adreno
from repro.gpu.counters import SELECTED_COUNTERS, CounterGroup, CounterSpec
from repro.kgsl.device_file import KGSL_DEVICE_PATH, KgslDeviceFile, open_kgsl
from repro.kgsl.sampler import PerfCounterSampler, SystemLoad
from repro.registry import Registry, UnknownNameError
from repro.scenarios import (
    SCENARIO_REGISTRY,
    Scenario,
    register_scenario,
    scenario,
    scenario_names,
)
from repro.workloads.typing_model import TypingModel, VOLUNTEERS

__version__ = "1.0.0"

#: Deprecated top-level spec constants → the android module that still
#: serves them (lazily, through its own ``__getattr__`` choke point).
_DEPRECATED_FORWARDS = {
    name: "repro.android.apps"
    for name in (
        "AMEX",
        "CHASE",
        "CHASE_WEB",
        "EXPERIAN",
        "EXPERIAN_WEB",
        "FIDELITY",
        "MYFICO",
        "NATIVE_APPS",
        "PNC",
        "SCHWAB",
        "SCHWAB_WEB",
    )
}
_DEPRECATED_FORWARDS.update(
    {
        name: "repro.android.keyboard"
        for name in (
            "GBOARD",
            "SWIFTKEY",
            "SOGOU",
            "GOOGLE_PINYIN",
            "GO_KEYBOARD",
            "GRAMMARLY",
        )
    }
)


def __getattr__(name: str):
    if name in _DEPRECATED_FORWARDS:
        import importlib

        module = importlib.import_module(_DEPRECATED_FORWARDS[name])
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "AMEX",
    "ADRENO_MODELS",
    "ANDROID_VERSIONS",
    "AccuracyReport",
    "AdrenoSpec",
    "AppSpec",
    "AttackResult",
    "CandidateGenerator",
    "LaunchDetector",
    "MonitoringService",
    "CHASE",
    "CHASE_WEB",
    "ClassificationModel",
    "CounterGroup",
    "CounterSpec",
    "DeviceConfig",
    "Display",
    "EXPERIAN",
    "EXPERIAN_WEB",
    "EavesdropAttack",
    "FAULT_PROFILE_ENV",
    "FIDELITY",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "KEYBOARDS",
    "KGSL_DEVICE_PATH",
    "KeyboardSpec",
    "KgslDeviceFile",
    "MYFICO",
    "ModelStore",
    "NATIVE_APPS",
    "OfflineTrainer",
    "OnlineEngine",
    "OnlineResult",
    "PHONE_MODELS",
    "PNC",
    "PerfCounterSampler",
    "PhoneModel",
    "Registry",
    "Resolution",
    "RuntimeEvent",
    "RuntimeTrace",
    "SCENARIO_REGISTRY",
    "SCHWAB",
    "SCHWAB_WEB",
    "SELECTED_COUNTERS",
    "SamplerDeltaSource",
    "Session",
    "SessionResult",
    "SessionRuntime",
    "SessionTrace",
    "Scenario",
    "SystemLoad",
    "TARGET_APPS",
    "TypingModel",
    "TypistIdentifier",
    "UnknownNameError",
    "VOLUNTEERS",
    "VictimDevice",
    "VirtualClock",
    "adreno",
    "align",
    "app",
    "build_model",
    "default_config",
    "edit_distance",
    "keyboard",
    "load_session",
    "open_kgsl",
    "phone",
    "register_scenario",
    "run_sessions",
    "save_session",
    "scenario",
    "scenario_names",
    "ServiceReport",
    "simulate_credential_entry",
    "timing_features",
    "train_model",
    "train_store",
]
