"""Reproduction of "Eavesdropping User Credentials via GPU Side Channels
on Smartphones" (ASPLOS 2022).

The package simulates the full hardware/software stack the paper attacks —
Qualcomm Adreno tiled rendering with performance counters, the KGSL
device-file interface, Android UI scenes and keyboards — and implements
the attack itself: offline model training, online Algorithm 1 inference,
app-switch detection and correction tracking.

The stable, supported surface is :mod:`repro.api` — facade functions
plus a typed :class:`~repro.api.AttackConfig`.  Quickstart::

    from repro.api import CHASE, AttackConfig, attack, default_config, simulate, train

    config = default_config()
    cfg = AttackConfig(recognize_device=False)
    store = train([(config, CHASE)], config=cfg)
    trace = simulate(config, CHASE, "hunter2secret", seed=1)
    result = attack(store, trace, config=cfg)
    print(result.text)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured comparison of every table and figure.
"""

from repro.android.apps import (
    AMEX,
    CHASE,
    CHASE_WEB,
    EXPERIAN,
    EXPERIAN_WEB,
    FIDELITY,
    MYFICO,
    NATIVE_APPS,
    PNC,
    SCHWAB,
    SCHWAB_WEB,
    TARGET_APPS,
    AppSpec,
    app,
)
from repro.android.device import SessionTrace, VictimDevice
from repro.android.session_io import load_session, save_session
from repro.android.display import Display, Resolution
from repro.android.keyboard import KEYBOARDS, KeyboardSpec, keyboard
from repro.android.os_config import (
    ANDROID_VERSIONS,
    PHONE_MODELS,
    DeviceConfig,
    PhoneModel,
    default_config,
    phone,
)
from repro.analysis.keystroke_dynamics import TypistIdentifier, timing_features
from repro.analysis.metrics import AccuracyReport, align, edit_distance
from repro.core.results import SessionResult
from repro.faults import FAULT_PROFILE_ENV, FaultInjector, FaultPlan, FaultStats
from repro.core.classifier import ClassificationModel, build_model
from repro.core.guessing import CandidateGenerator
from repro.core.launch import LaunchDetector
from repro.core.service import MonitoringService, ServiceReport
from repro.core.model_store import ModelStore
from repro.core.offline import OfflineTrainer
from repro.core.online import OnlineEngine, OnlineResult
from repro.core.pipeline import (
    AttackResult,
    EavesdropAttack,
    run_sessions,
    simulate_credential_entry,
    train_model,
    train_store,
)
from repro.runtime import (
    RuntimeEvent,
    RuntimeTrace,
    SamplerDeltaSource,
    Session,
    SessionRuntime,
    VirtualClock,
)
from repro.gpu.adreno import ADRENO_MODELS, AdrenoSpec, adreno
from repro.gpu.counters import SELECTED_COUNTERS, CounterGroup, CounterSpec
from repro.kgsl.device_file import KGSL_DEVICE_PATH, KgslDeviceFile, open_kgsl
from repro.kgsl.sampler import PerfCounterSampler, SystemLoad
from repro.workloads.typing_model import TypingModel, VOLUNTEERS

__version__ = "1.0.0"

__all__ = [
    "AMEX",
    "ADRENO_MODELS",
    "ANDROID_VERSIONS",
    "AccuracyReport",
    "AdrenoSpec",
    "AppSpec",
    "AttackResult",
    "CandidateGenerator",
    "LaunchDetector",
    "MonitoringService",
    "CHASE",
    "CHASE_WEB",
    "ClassificationModel",
    "CounterGroup",
    "CounterSpec",
    "DeviceConfig",
    "Display",
    "EXPERIAN",
    "EXPERIAN_WEB",
    "EavesdropAttack",
    "FAULT_PROFILE_ENV",
    "FIDELITY",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "KEYBOARDS",
    "KGSL_DEVICE_PATH",
    "KeyboardSpec",
    "KgslDeviceFile",
    "MYFICO",
    "ModelStore",
    "NATIVE_APPS",
    "OfflineTrainer",
    "OnlineEngine",
    "OnlineResult",
    "PHONE_MODELS",
    "PNC",
    "PerfCounterSampler",
    "PhoneModel",
    "Resolution",
    "RuntimeEvent",
    "RuntimeTrace",
    "SCHWAB",
    "SCHWAB_WEB",
    "SELECTED_COUNTERS",
    "SamplerDeltaSource",
    "Session",
    "SessionResult",
    "SessionRuntime",
    "SessionTrace",
    "SystemLoad",
    "TARGET_APPS",
    "TypingModel",
    "TypistIdentifier",
    "VOLUNTEERS",
    "VictimDevice",
    "VirtualClock",
    "adreno",
    "align",
    "app",
    "build_model",
    "default_config",
    "edit_distance",
    "keyboard",
    "load_session",
    "open_kgsl",
    "phone",
    "run_sessions",
    "save_session",
    "ServiceReport",
    "simulate_credential_entry",
    "timing_features",
    "train_model",
    "train_store",
]
