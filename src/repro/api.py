"""The stable public API of the reproduction.

Everything an application, example, or the CLI needs lives here — one
flat namespace with the facade functions, one unified configuration
object, and re-exports of the supporting types:

* :func:`train` — offline phase over (device config, app) pairs;
* :func:`attack` — online phase against one victim session trace;
* :func:`run_sessions` — the batched online phase (N victims, one
  session runtime; ``workers=N`` shards the batch across processes);
* :func:`monitor` — the full background-service pipeline (idle watch,
  launch detection, attack escalation; ``workers=N`` runs it in a
  worker process);
* :func:`simulate` — compile a victim credential-entry session;
* :func:`run_fleet` — N simulated devices streaming results into one
  backpressured collector service (see ``docs/collector.md``);
* :class:`AttackConfig` — every tunable of the pipeline in one
  serializable dataclass (sampler cadence, engine toggles, service
  windows, system load, fault plan).

Import stability contract: ``examples/`` and ``repro.cli`` import only
from this module (enforced by a test), so internal reorganizations of
``repro.core`` / ``repro.runtime`` never break downstream code.  All
run-level results satisfy :class:`~repro.core.results.SessionResult` —
the shared ``keys`` / ``text`` / ``stats`` / ``trace`` accessors.

The full reference — facade signatures, every :class:`AttackConfig`
field, the result protocol, and the ``workers=`` semantics — lives in
``docs/api.md``; the layer-by-layer architecture narrative is
``docs/architecture.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro import faults
from repro.faults import FAULT_PROFILE_ENV, FaultInjector, FaultPlan, FaultStats
from repro.android.apps import (
    APP_REGISTRY,
    TARGET_APPS,
    AppSpec,
    app,
    register_app,
)
from repro.android.device import SessionTrace, VictimDevice
from repro.android.events import BackspacePress, KeyPress
from repro.android.keyboard import (
    KEYBOARD_REGISTRY,
    KEYBOARDS,
    KeyboardSpec,
    keyboard,
    register_keyboard,
)
from repro.android.os_config import (
    ANDROID_VERSIONS,
    PHONE_MODELS,
    PHONE_REGISTRY,
    DeviceConfig,
    PhoneModel,
    default_config,
    phone,
    register_phone,
)
from repro.analysis.experiments import (
    cached_model,
    run_per_key_sweep,
    single_model_attack,
)
from repro.analysis.metrics import AccuracyReport, align, edit_distance
from repro.analysis.report import generate_report
from repro.analysis.reporting import bar_chart
from repro.analysis.traces import TraceSummary, annotate, render_trace
from repro.collector import (
    CollectorClient,
    CollectorConfig,
    CollectorHandle,
    CollectorServer,
    CollectorTier,
    DeviceRouter,
    FleetDriver,
    FleetReport,
    KillDrill,
    RetryPolicy,
    SessionResultPayload,
)
from repro.core import features
from repro.core.classifier import Classification, ClassificationModel, build_model
from repro.core.guessing import CandidateGenerator
from repro.core.launch import IDLE_POLL_INTERVAL_S, LaunchDetector
from repro.core.model_store import (
    ModelIntegrityError,
    ModelStore,
    VersionedModelStore,
)
from repro.core.online import EngineStats, InferredKey, OnlineEngine, OnlineResult
from repro.core.pipeline import (
    ATTACK_SOURCE_CHUNK,
    AttackResult,
    EavesdropAttack,
    SessionBatch,
    simulate_credential_entry,
)
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    RunManifest,
    Span,
    SpanStats,
    new_latency_histogram,
)
from repro.core.pipeline import run_sessions as _pipeline_run_sessions
from repro.core.pipeline import train_model, train_store
from repro.parallel import ShardPlan, ShardedRuntime
from repro.core.results import SessionResult
from repro.core.service import MonitoringService, ServiceReport
from repro.gpu import counters
from repro.kgsl.device_file import DeviceClock, ProcessContext, open_kgsl
from repro.kgsl.ioctl import IoctlError
from repro.kgsl.sampler import DEFAULT_INTERVAL_S, PerfCounterSampler, SystemLoad
from repro.lifecycle import (
    CALIBRATION_ENV,
    CALIBRATION_PROFILES,
    DRIFT_PROFILE_ENV,
    DRIFT_PROFILES,
    CalibrationPolicy,
    CalibrationService,
    DriftInjector,
    DriftPlan,
    DriftStats,
    LifecycleReport,
    SegmentReport,
    drift_plan_from_env,
    resolve_calibration,
    resolve_drift_plan,
    run_lifecycle,
)
from repro.mitigations.access_control import LocalOnlyPolicy, RbacPolicy
from repro.mitigations.obfuscation import CounterObfuscationPolicy
from repro.mitigations.policy import (
    MITIGATION_ENV,
    MITIGATION_REGISTRY,
    MitigationPolicy,
    PolicyEnforcer,
    compose,
    mitigation,
    mitigation_names,
    register_mitigation,
)
from repro.mitigations.popup_disable import config_with_popups_disabled
from repro.analysis.defense import DefenseCell, format_defense_matrix, run_defense_matrix
from repro.registry import Registry, UnknownNameError
from repro.runtime import RuntimeEvent, RuntimeTrace
from repro.scenarios import (
    SCENARIO_REGISTRY,
    Scenario,
    register_scenario,
    scenario,
    scenario_names,
)
from repro.workloads.credentials import (
    character_group,
    credential_batch,
    pool_for_scenario,
    scenario_credential,
)

#: Collision-safe alias: facade internals use this so a ``scenario=``
#: keyword or field never shadows the lookup function.
scenario_lookup = scenario

#: Same trick for the ``mitigation=`` config field vs. the lookup.
mitigation_lookup = mitigation

#: Deprecated spec-constant re-exports → the module that still serves
#: them (lazily, through its own ``__getattr__`` choke point).
_DEPRECATED_FORWARDS = {
    name: "repro.android.apps"
    for name in (
        "AMEX",
        "CHASE",
        "CHASE_WEB",
        "EXPERIAN",
        "EXPERIAN_WEB",
        "FIDELITY",
        "MYFICO",
        "NATIVE_APPS",
        "PNC",
        "SCHWAB",
        "SCHWAB_WEB",
    )
}
_DEPRECATED_FORWARDS.update(
    {
        name: "repro.android.keyboard"
        for name in (
            "GBOARD",
            "SWIFTKEY",
            "SOGOU",
            "GOOGLE_PINYIN",
            "GO_KEYBOARD",
            "GRAMMARLY",
        )
    }
)


def __getattr__(name: str):
    if name in _DEPRECATED_FORWARDS:
        import importlib

        module = importlib.import_module(_DEPRECATED_FORWARDS[name])
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    # facade
    "AttackConfig",
    "train",
    "attack",
    "run_sessions",
    "monitor",
    "simulate",
    "run_fleet",
    # results protocol
    "SessionResult",
    "AttackResult",
    "OnlineResult",
    "ServiceReport",
    "InferredKey",
    "EngineStats",
    # faults
    "FaultPlan",
    "FaultStats",
    "FaultInjector",
    "FAULT_PROFILE_ENV",
    "faults",
    # engine / model
    "EavesdropAttack",
    "MonitoringService",
    "OnlineEngine",
    "Classification",
    "ClassificationModel",
    "build_model",
    "ModelStore",
    "VersionedModelStore",
    "ModelIntegrityError",
    "CandidateGenerator",
    "LaunchDetector",
    "train_model",
    "train_store",
    "simulate_credential_entry",
    # device registry
    "AppSpec",
    "app",
    "register_app",
    "APP_REGISTRY",
    "TARGET_APPS",
    "NATIVE_APPS",
    "AMEX",
    "CHASE",
    "CHASE_WEB",
    "EXPERIAN",
    "EXPERIAN_WEB",
    "FIDELITY",
    "MYFICO",
    "PNC",
    "SCHWAB",
    "SCHWAB_WEB",
    "DeviceConfig",
    "PhoneModel",
    "phone",
    "register_phone",
    "PHONE_REGISTRY",
    "PHONE_MODELS",
    "ANDROID_VERSIONS",
    "KeyboardSpec",
    "keyboard",
    "register_keyboard",
    "KEYBOARD_REGISTRY",
    "KEYBOARDS",
    "default_config",
    # scenarios
    "Scenario",
    "scenario",
    "scenario_names",
    "register_scenario",
    "SCENARIO_REGISTRY",
    "Registry",
    "UnknownNameError",
    # victim-side simulation
    "SessionTrace",
    "VictimDevice",
    "KeyPress",
    "BackspacePress",
    # low-level KGSL access
    "DeviceClock",
    "ProcessContext",
    "open_kgsl",
    "PerfCounterSampler",
    "SystemLoad",
    "IoctlError",
    "DEFAULT_INTERVAL_S",
    "IDLE_POLL_INTERVAL_S",
    "ATTACK_SOURCE_CHUNK",
    # analysis helpers
    "AccuracyReport",
    "align",
    "edit_distance",
    "bar_chart",
    "generate_report",
    "cached_model",
    "run_per_key_sweep",
    "single_model_attack",
    "TraceSummary",
    "annotate",
    "render_trace",
    # parallel execution
    "ShardPlan",
    "ShardedRuntime",
    # fleet collection
    "FleetDriver",
    "FleetReport",
    "KillDrill",
    "CollectorTier",
    "DeviceRouter",
    "CollectorServer",
    "CollectorHandle",
    "CollectorClient",
    "CollectorConfig",
    "RetryPolicy",
    "SessionResultPayload",
    # runtime observability
    "RuntimeTrace",
    "RuntimeEvent",
    # metrics / manifests
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "RunManifest",
    "SessionBatch",
    "Counter",
    "Gauge",
    "Histogram",
    "Span",
    "SpanStats",
    "new_latency_histogram",
    # workloads / mitigations
    "credential_batch",
    "character_group",
    "pool_for_scenario",
    "scenario_credential",
    "RbacPolicy",
    "LocalOnlyPolicy",
    "CounterObfuscationPolicy",
    "config_with_popups_disabled",
    "MitigationPolicy",
    "PolicyEnforcer",
    "MITIGATION_REGISTRY",
    "MITIGATION_ENV",
    "compose",
    "mitigation",
    "mitigation_names",
    "register_mitigation",
    "DefenseCell",
    "run_defense_matrix",
    "format_defense_matrix",
    # signature lifecycle (drift / recalibration / versioned models)
    "DriftPlan",
    "DriftStats",
    "DriftInjector",
    "DRIFT_PROFILE_ENV",
    "DRIFT_PROFILES",
    "drift_plan_from_env",
    "resolve_drift_plan",
    "CalibrationPolicy",
    "CalibrationService",
    "CALIBRATION_ENV",
    "CALIBRATION_PROFILES",
    "resolve_calibration",
    "run_lifecycle",
    "LifecycleReport",
    "SegmentReport",
    # modules
    "features",
    "counters",
]


@dataclass(frozen=True)
class AttackConfig:
    """Every tunable of the attack pipeline in one place.

    Consumed by the facade functions and the CLI; serializes round-trip
    through :meth:`to_dict` / :meth:`from_dict` (the nested fault plan
    serializes as its profile name, its full dict, or ``None``).
    """

    #: Attack-mode sampling interval (the paper's 8 ms).
    interval_s: float = DEFAULT_INTERVAL_S
    #: Idle-watch polling interval of the monitoring service.
    idle_interval_s: float = IDLE_POLL_INTERVAL_S
    #: How long the service stays in attack mode after a launch.
    attack_window_s: float = 60.0
    #: Reads pulled per scheduling step by the attack-phase source.
    chunk: int = ATTACK_SOURCE_CHUNK
    #: Run device recognition before picking a model (multi-model stores).
    recognize_device: bool = True
    #: Engine toggles (Sections 5.2 / 5.3 / collision recovery).
    detect_switches: bool = True
    track_corrections: bool = True
    recover_collisions: bool = True
    #: Concurrent system load on the victim device (Section 7.3).
    cpu_utilization: float = 0.0
    gpu_utilization: float = 0.0
    #: Offline-phase sweep repeats and RNG seed.
    sweep_repeats: int = 4
    train_seed: int = 7
    #: Fault plan: "auto" (environment), a profile name, a plan, or None.
    fault_plan: Union[FaultPlan, None, str] = "auto"
    #: Attack scenario by registry name (or a :class:`Scenario`, stored
    #: as its name).  Fills device config, target app, typing tier and
    #: default fault profile wherever the facade accepts them.
    scenario: Optional[Union[Scenario, str]] = None
    #: Victim-side defense: "auto" (environment), a registered policy
    #: name, a :class:`MitigationPolicy`, or None (byte-identical to
    #: the undefended pipeline — the golden-parity contract).
    mitigation: Union[MitigationPolicy, None, str] = "auto"
    #: Environmental signature drift: "auto" (the ``REPRO_DRIFT_PROFILE``
    #: environment variable), a drift profile name, a :class:`DriftPlan`,
    #: or None (byte-identical to the driftless pipeline — the
    #: golden-parity contract, same as ``mitigation=None``).
    drift: Union[DriftPlan, None, str] = "auto"
    #: Online per-device recalibration: a :class:`CalibrationPolicy`, a
    #: calibration profile name, "auto" (the ``REPRO_CALIBRATION``
    #: environment variable), or None (frozen models, the default).
    calibration: Union[CalibrationPolicy, None, str] = None

    def __post_init__(self) -> None:
        if self.interval_s <= 0 or self.idle_interval_s <= 0:
            raise ValueError("sampling intervals must be positive")
        if self.attack_window_s <= 0:
            raise ValueError("attack_window_s must be positive")
        if self.chunk < 1:
            raise ValueError("chunk must be >= 1")
        for name in ("cpu_utilization", "gpu_utilization"):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if self.sweep_repeats < 1:
            raise ValueError("sweep_repeats must be >= 1")
        if self.scenario is not None:
            # normalize to the registry name; resolve now so a typo'd
            # scenario fails at construction, not mid-attack
            name = (
                self.scenario.name
                if isinstance(self.scenario, Scenario)
                else self.scenario
            )
            scenario_lookup(name)
            object.__setattr__(self, "scenario", name)
        if isinstance(self.mitigation, str) and self.mitigation != "auto":
            # resolve now so a typo'd policy name fails at construction
            mitigation_lookup(self.mitigation)
        if isinstance(self.drift, str) and self.drift != "auto":
            DriftPlan.from_profile(self.drift)
        if isinstance(self.calibration, str) and self.calibration != "auto":
            CalibrationPolicy.from_profile(self.calibration)

    @property
    def load(self) -> SystemLoad:
        return SystemLoad(
            cpu_utilization=self.cpu_utilization,
            gpu_utilization=self.gpu_utilization,
        )

    def resolved_scenario(self) -> Optional[Scenario]:
        """The configured :class:`Scenario`, or ``None``."""
        return scenario_lookup(self.scenario) if self.scenario else None

    def resolved_fault_plan(self) -> Optional[FaultPlan]:
        """The fault plan the run executes under.

        Precedence for ``fault_plan="auto"``: the environment profile
        (``REPRO_FAULT_PROFILE``) if set, else the scenario's default
        profile, else no faults.  Explicit plans/profiles/None win over
        both, so golden parity runs pin ``fault_plan=None``.
        """
        import os

        if (
            self.fault_plan == "auto"
            and self.scenario
            and not os.environ.get(FAULT_PROFILE_ENV)
        ):
            plan = self.resolved_scenario().fault_plan()
            return plan if plan.enabled else None
        return faults.resolve_plan(self.fault_plan)

    def resolved_mitigation(self) -> Optional[MitigationPolicy]:
        """The mitigation policy the run enforces.

        Mirrors :meth:`resolved_fault_plan`: ``"auto"`` reads the
        ``REPRO_MITIGATION`` environment variable (a registered policy
        name) and otherwise resolves to ``None``; an explicit name or
        :class:`MitigationPolicy` wins over the environment, and an
        explicit ``None`` pins the undefended (golden-parity) pipeline.
        """
        import os

        if isinstance(self.mitigation, MitigationPolicy):
            return self.mitigation
        if self.mitigation == "auto":
            name = os.environ.get(MITIGATION_ENV, "").strip()
            return mitigation_lookup(name) if name else None
        if self.mitigation is None:
            return None
        return mitigation_lookup(self.mitigation)

    def resolved_drift_plan(self) -> Optional[DriftPlan]:
        """The signature drift the run executes under.

        ``"auto"`` reads the ``REPRO_DRIFT_PROFILE`` environment variable
        (a drift profile name) and otherwise resolves to ``None``; an
        explicit plan/profile wins over the environment, and an explicit
        ``None`` pins the driftless (golden-parity) pipeline.
        """
        return resolve_drift_plan(self.drift)

    def resolved_calibration(self) -> Optional[CalibrationPolicy]:
        """The recalibration policy, or ``None`` for frozen models."""
        return resolve_calibration(self.calibration)

    # -- serialization --------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "fault_plan" and isinstance(value, FaultPlan):
                value = value.to_dict()
            elif f.name == "mitigation" and isinstance(value, MitigationPolicy):
                value = value.to_dict()
            elif f.name == "drift" and isinstance(value, DriftPlan):
                value = value.to_dict()
            elif f.name == "calibration" and isinstance(value, CalibrationPolicy):
                value = value.to_dict()
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "AttackConfig":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown AttackConfig fields: {sorted(unknown)}")
        kwargs = dict(data)
        plan = kwargs.get("fault_plan")
        if isinstance(plan, Mapping):
            kwargs["fault_plan"] = FaultPlan.from_dict(plan)
        mit = kwargs.get("mitigation")
        if isinstance(mit, Mapping):
            kwargs["mitigation"] = MitigationPolicy.from_dict(mit)
        drift = kwargs.get("drift")
        if isinstance(drift, Mapping):
            kwargs["drift"] = DriftPlan.from_dict(drift)
        calibration = kwargs.get("calibration")
        if isinstance(calibration, Mapping):
            kwargs["calibration"] = CalibrationPolicy.from_dict(calibration)
        return cls(**kwargs)  # type: ignore[arg-type]


_DEFAULT_CONFIG = AttackConfig()


def _attacker(
    store: ModelStore,
    config: AttackConfig,
    metrics: Optional[MetricsRegistry] = None,
) -> EavesdropAttack:
    return EavesdropAttack(
        store,
        interval_s=config.interval_s,
        recognize_device=config.recognize_device,
        detect_switches=config.detect_switches,
        track_corrections=config.track_corrections,
        recover_collisions=config.recover_collisions,
        fault_plan=config.resolved_fault_plan(),
        metrics=metrics,
        mitigation=config.resolved_mitigation(),
        drift=config.resolved_drift_plan(),
        calibration=config.resolved_calibration(),
    )


def _attach_manifest(result, metrics, config: AttackConfig, **meta) -> None:
    """Rebuild the run manifest with the resolved config embedded (the
    lower layers attach a config-less one)."""
    if metrics is not None and metrics.enabled:
        result.manifest = metrics.manifest(config=config.to_dict(), **meta)


def _scenario_of(config: AttackConfig) -> Optional[Scenario]:
    return config.resolved_scenario()


def train(
    pairs: Optional[Iterable[Tuple[DeviceConfig, AppSpec]]] = None,
    config: Optional[AttackConfig] = None,
) -> ModelStore:
    """Offline phase: train one model per (device config, app) pair.

    With ``pairs=None`` the single pair comes from the config's
    scenario: ``train(config=AttackConfig(scenario="pinpad"))``.
    """
    config = config if config is not None else _DEFAULT_CONFIG
    if pairs is None:
        scn = _scenario_of(config)
        if scn is None:
            raise ValueError(
                "train() needs explicit (device config, app) pairs or an "
                "AttackConfig with a scenario set"
            )
        pairs = [(scn.device_config(), scn.app_spec())]
    return train_store(
        pairs,
        seed=config.train_seed,
        interval_s=config.interval_s,
        sweep_repeats=config.sweep_repeats,
    )


def simulate(
    device_config: Optional[DeviceConfig] = None,
    target: Optional[AppSpec] = None,
    credential: str = "",
    seed: int = 1,
    config: Optional[AttackConfig] = None,
    speed_tier: Optional[str] = None,
) -> SessionTrace:
    """Compile a victim session where ``credential`` is typed into
    ``target`` (GPU background load comes from the config).

    ``device_config``, ``target`` and ``speed_tier`` each fall back to
    the config's scenario when omitted, so a full victim session needs
    only ``simulate(credential="1932", config=AttackConfig(scenario="pinpad"))``.
    """
    config = config if config is not None else _DEFAULT_CONFIG
    scn = _scenario_of(config)
    if device_config is None:
        if scn is None:
            raise ValueError(
                "simulate() needs a device_config or an AttackConfig with "
                "a scenario set"
            )
        device_config = scn.device_config()
    if target is None:
        if scn is None:
            raise ValueError(
                "simulate() needs a target app or an AttackConfig with a "
                "scenario set"
            )
        target = scn.app_spec()
    if not credential:
        raise ValueError("simulate() needs a non-empty credential")
    if speed_tier is None and scn is not None:
        speed_tier = scn.speed_tier
    mit = config.resolved_mitigation()
    if mit is not None:
        # victim-side rendering changes (e.g. popup disable) land on the
        # simulated device, not the attacker's training config
        device_config = mit.apply_to_device_config(device_config)
    return simulate_credential_entry(
        device_config,
        target,
        credential,
        seed=seed,
        speed_tier=speed_tier,
        gpu_utilization=config.gpu_utilization,
    )


def attack(
    store: ModelStore,
    trace: SessionTrace,
    seed: int = 99,
    config: Optional[AttackConfig] = None,
    model_key: Optional[str] = None,
    access_policy=None,
    runtime_trace: Optional[RuntimeTrace] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> AttackResult:
    """Online phase: sample one victim session and infer the credential.

    Pass a :class:`MetricsRegistry` as ``metrics`` to collect sampler,
    engine, and scheduler instrumentation for the run; the resulting
    :class:`RunManifest` is attached as ``result.manifest``.
    """
    config = config if config is not None else _DEFAULT_CONFIG
    result = _attacker(store, config, metrics=metrics).run_on_trace(
        trace,
        load=config.load,
        seed=seed,
        model_key=model_key,
        access_policy=access_policy,
        runtime_trace=runtime_trace,
    )
    _attach_manifest(result, metrics, config, command="attack", sessions=1)
    return result


def run_sessions(
    store: ModelStore,
    traces: Sequence[SessionTrace],
    seed: int = 99,
    config: Optional[AttackConfig] = None,
    runtime_trace: Optional[RuntimeTrace] = None,
    metrics: Optional[MetricsRegistry] = None,
    workers: int = 1,
) -> SessionBatch:
    """Batched online phase: N victim sessions on one session runtime.

    Returns a :class:`SessionBatch` — a list of :class:`AttackResult`
    whose ``manifest`` attribute carries the batch-level
    :class:`RunManifest` when ``metrics`` is an enabled registry.

    ``workers=N`` (N > 1) shards the batch across N worker processes
    via :class:`~repro.parallel.ShardedRuntime`.  Session ``i`` is
    seeded ``seed + i`` either way, so the sharded output — keys, text,
    merged trace event order, manifest counters — is byte-identical to
    ``workers=1`` (parity-tested); a crashed worker surfaces its
    sessions as ``degraded`` placeholder results rather than dropping
    them.
    """
    config = config if config is not None else _DEFAULT_CONFIG
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if workers > 1:
        batch = ShardedRuntime(
            store, config=config, workers=workers, metrics=metrics
        ).run_sessions(traces, seed=seed, runtime_trace=runtime_trace)
    else:
        batch = _pipeline_run_sessions(
            _attacker(store, config, metrics=metrics),
            traces,
            load=config.load,
            seed=seed,
            runtime_trace=runtime_trace,
        )
    extra = {"workers": workers} if workers > 1 else {}
    _attach_manifest(
        batch, metrics, config, command="run_sessions", sessions=len(traces),
        **extra,
    )
    return batch


def monitor(
    store: ModelStore,
    trace: SessionTrace,
    seed: int = 1234,
    config: Optional[AttackConfig] = None,
    watch_model_key: Optional[str] = None,
    runtime_trace: Optional[RuntimeTrace] = None,
    metrics: Optional[MetricsRegistry] = None,
    workers: int = 1,
) -> ServiceReport:
    """Run the full background monitoring service over a victim session.

    With an enabled ``metrics`` registry, the report's ``manifest``
    carries the full run rollup (idle + attack sampler tallies, fault
    events, inference-latency histogram, scheduler throughput).

    ``workers=N`` (N > 1) runs the service pass in a worker process via
    :class:`~repro.parallel.ShardedRuntime.run_services`; the report —
    including its trace event order and manifest counters — is
    byte-identical to the in-process run.
    """
    config = config if config is not None else _DEFAULT_CONFIG
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if workers > 1:
        report = ShardedRuntime(
            store, config=config, workers=workers, metrics=metrics
        ).run_services(
            [trace],
            seed=seed,
            watch_model_key=watch_model_key,
            runtime_trace=runtime_trace,
        )[0]
        _attach_manifest(
            report, metrics, config, command="monitor", sessions=1, workers=workers
        )
        return report
    service = MonitoringService(
        store,
        idle_interval_s=config.idle_interval_s,
        attack_interval_s=config.interval_s,
        attack_window_s=config.attack_window_s,
        fault_plan=config.resolved_fault_plan(),
        metrics=metrics,
        mitigation=config.resolved_mitigation(),
        drift=config.resolved_drift_plan(),
        calibration=config.resolved_calibration(),
    )
    report = service.run(
        trace,
        load=config.load,
        seed=seed,
        watch_model_key=watch_model_key,
        runtime_trace=runtime_trace,
    )
    _attach_manifest(report, metrics, config, command="monitor", sessions=1)
    return report


def run_fleet(
    store: ModelStore,
    device_config: Optional[DeviceConfig] = None,
    target: Optional[AppSpec] = None,
    credential: str = "",
    devices: int = 3,
    sessions_per_device: int = 2,
    seed: int = 7,
    config: Optional[AttackConfig] = None,
    workers: int = 1,
    collector: Optional[CollectorConfig] = None,
    metrics: Optional[MetricsRegistry] = None,
    device_threads: Optional[int] = None,
    drill: Optional[KillDrill] = None,
    transport: Optional[str] = None,
    unix_path: Optional[str] = None,
    queue_size: Optional[int] = None,
    retry: Optional[RetryPolicy] = None,
) -> FleetReport:
    """Run ``devices`` simulated victims streaming into one collector.

    Each device runs a full attack pass (``sessions_per_device``
    sessions, seeded from its device index; ``workers=N`` shards the
    per-device batch across processes) and reports every result to an
    in-process :class:`CollectorServer` over TCP or a unix socket, with
    retry-until-acked delivery and seq-number deduplication.  The
    config's fault plan injects both KGSL-layer faults inside each
    device and connection drops / slow reads on the uplink.

    ``collector`` is the tier's :class:`CollectorConfig` — transport,
    wire codec (``auto``/``binary``/``json``), backpressure bound,
    retry schedule.  The old ``transport=``/``unix_path=``/
    ``queue_size=``/``retry=`` keywords still work through a
    deprecation shim.  ``collector.shards > 1`` scales the tier to N
    collector *processes* behind the deterministic
    :class:`~repro.collector.router.DeviceRouter`, each with a
    write-ahead journal (``collector.journal_dir``; a scratch
    directory when unset); ``drill`` scripts a SIGKILL/restart of one
    shard mid-run to exercise journal replay
    (:class:`~repro.collector.fleet.KillDrill`).

    Returns a :class:`FleetReport` — ingested payloads in (device,
    session) order, loss/duplicate/retry accounting, and the merged run
    manifest (folded into ``metrics`` when an enabled registry is
    passed).  ``report.lost == 0`` is the delivery contract: retries
    absorb injected drops.

    ``device_config`` and ``target`` fall back to the config's scenario
    when omitted, mirroring :func:`simulate`.
    """
    config = config if config is not None else _DEFAULT_CONFIG
    scn = _scenario_of(config)
    if device_config is None:
        if scn is None:
            raise ValueError(
                "run_fleet() needs a device_config or an AttackConfig "
                "with a scenario set"
            )
        device_config = scn.device_config()
    if target is None:
        if scn is None:
            raise ValueError(
                "run_fleet() needs a target app or an AttackConfig with "
                "a scenario set"
            )
        target = scn.app_spec()
    if not credential:
        raise ValueError("run_fleet() needs a non-empty credential")
    legacy = {
        key: value
        for key, value in (
            ("transport", transport),
            ("unix_path", unix_path),
            ("queue_size", queue_size),
            ("retry", retry),
        )
        if value is not None
    }
    if legacy:
        from repro.collector.config import shim_legacy_kwargs
        from repro.collector.fleet import _LEGACY_FLEET_KWARGS, FLEET_RETRY

        base = collector if collector is not None else CollectorConfig(retry=FLEET_RETRY)
        collector = shim_legacy_kwargs(base, legacy, "run_fleet", _LEGACY_FLEET_KWARGS)
    driver = FleetDriver(
        store,
        device_config,
        target,
        credential,
        devices=devices,
        sessions_per_device=sessions_per_device,
        config=config,
        seed=seed,
        workers=workers,
        collector=collector,
        metrics=metrics,
        device_threads=device_threads,
        drill=drill,
    )
    return driver.run()
