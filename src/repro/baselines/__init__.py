"""Desktop-GPU baseline (paper Table 2) and from-scratch classifiers."""
