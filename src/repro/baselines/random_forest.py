"""Random forest classifier (from scratch, numpy only).

The strongest of the paper's Table 2 baselines (~14 %).  CART-style trees
with Gini impurity, bootstrap sampling and random feature subsets at each
split; prediction by majority vote.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np


@dataclass
class _Leaf:
    label: str


@dataclass
class _Split:
    feature: int
    threshold: float
    left: Union["_Split", _Leaf]
    right: Union["_Split", _Leaf]


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return float(1.0 - (p * p).sum())


class DecisionTree:
    """A single CART tree on encoded integer labels."""

    def __init__(
        self,
        max_depth: int = 12,
        min_samples_split: int = 2,
        max_features: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.max_features = max_features
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.classes_: List[str] = []
        self._root: Union[_Split, _Leaf, None] = None

    def fit(self, X: np.ndarray, y: Sequence[str]) -> "DecisionTree":
        X = np.asarray(X, dtype=float)
        self.classes_ = sorted(set(y))
        index = {label: i for i, label in enumerate(self.classes_)}
        codes = np.asarray([index[label] for label in y])
        self._root = self._build(X, codes, depth=0)
        return self

    def _majority(self, codes: np.ndarray) -> _Leaf:
        counts = np.bincount(codes, minlength=len(self.classes_))
        return _Leaf(label=self.classes_[int(np.argmax(counts))])

    def _build(self, X: np.ndarray, codes: np.ndarray, depth: int) -> Union[_Split, _Leaf]:
        if (
            depth >= self.max_depth
            or len(codes) < self.min_samples_split
            or len(np.unique(codes)) == 1
        ):
            return self._majority(codes)

        n_features = X.shape[1]
        k = self.max_features or max(1, int(np.sqrt(n_features)))
        candidates = self.rng.choice(n_features, size=min(k, n_features), replace=False)

        best_gain, best_feature, best_threshold = 0.0, None, 0.0
        parent_counts = np.bincount(codes, minlength=len(self.classes_))
        parent_gini = _gini(parent_counts)
        for feature in candidates:
            values = X[:, feature]
            order = np.argsort(values, kind="stable")
            sorted_vals = values[order]
            sorted_codes = codes[order]
            left_counts = np.zeros(len(self.classes_))
            right_counts = parent_counts.astype(float).copy()
            n = len(codes)
            for i in range(n - 1):
                c = sorted_codes[i]
                left_counts[c] += 1
                right_counts[c] -= 1
                if sorted_vals[i] == sorted_vals[i + 1]:
                    continue
                weight_l = (i + 1) / n
                gain = parent_gini - (
                    weight_l * _gini(left_counts) + (1 - weight_l) * _gini(right_counts)
                )
                if gain > best_gain:
                    best_gain = gain
                    best_feature = int(feature)
                    best_threshold = 0.5 * (sorted_vals[i] + sorted_vals[i + 1])

        if best_feature is None:
            return self._majority(codes)
        mask = X[:, best_feature] <= best_threshold
        left = self._build(X[mask], codes[mask], depth + 1)
        right = self._build(X[~mask], codes[~mask], depth + 1)
        return _Split(feature=best_feature, threshold=best_threshold, left=left, right=right)

    def predict_one(self, row: np.ndarray) -> str:
        node = self._root
        if node is None:
            raise RuntimeError("tree is not fitted")
        while isinstance(node, _Split):
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node.label

    def predict(self, X: np.ndarray) -> List[str]:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        return [self.predict_one(row) for row in X]


class RandomForest:
    """Bagged decision trees with majority voting."""

    def __init__(
        self,
        n_trees: int = 30,
        max_depth: int = 12,
        max_features: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        if n_trees <= 0:
            raise ValueError("n_trees must be positive")
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.max_features = max_features
        self.seed = seed
        self.trees: List[DecisionTree] = []
        self.classes_: List[str] = []

    def fit(self, X: np.ndarray, y: Sequence[str]) -> "RandomForest":
        X = np.asarray(X, dtype=float)
        y = list(y)
        self.classes_ = sorted(set(y))
        rng = np.random.default_rng(self.seed)
        self.trees = []
        n = X.shape[0]
        for _ in range(self.n_trees):
            rows = rng.integers(0, n, size=n)
            tree = DecisionTree(
                max_depth=self.max_depth,
                max_features=self.max_features,
                rng=np.random.default_rng(int(rng.integers(1 << 31))),
            )
            tree.fit(X[rows], [y[i] for i in rows])
            self.trees.append(tree)
        return self

    def predict(self, X: np.ndarray) -> List[str]:
        if not self.trees:
            raise RuntimeError("forest is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        out: List[str] = []
        for row in X:
            votes: Dict[str, int] = {}
            for tree in self.trees:
                label = tree.predict_one(row)
                votes[label] = votes.get(label, 0) + 1
            out.append(max(sorted(votes), key=lambda k: votes[k]))
        return out

    def score(self, X: np.ndarray, y: Sequence[str]) -> float:
        predictions = self.predict(X)
        return sum(p == t for p, t in zip(predictions, y)) / len(y)
