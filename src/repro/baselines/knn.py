"""k-nearest-neighbours classifier (from scratch, numpy only).

The paper's Table 2 uses kNN with k=3 ("KNN3").  Features are
standardized internally so the distance metric is not dominated by the
large-magnitude counters.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Sequence

import numpy as np


class KNearestNeighbors:
    """Brute-force kNN with per-feature standardization."""

    def __init__(self, k: int = 3) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = k
        self._X: np.ndarray = np.empty((0, 0))
        self._y: List[str] = []
        self._mean: np.ndarray = np.empty(0)
        self._std: np.ndarray = np.empty(0)

    def fit(self, X: np.ndarray, y: Sequence[str]) -> "KNearestNeighbors":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-dimensional")
        if len(y) != X.shape[0]:
            raise ValueError("X and y length mismatch")
        if X.shape[0] < self.k:
            raise ValueError(f"need at least k={self.k} training samples")
        self._mean = X.mean(axis=0)
        self._std = np.maximum(X.std(axis=0), 1e-12)
        self._X = (X - self._mean) / self._std
        self._y = list(y)
        return self

    def predict(self, X: np.ndarray) -> List[str]:
        if not self._y:
            raise RuntimeError("classifier is not fitted")
        X = (np.atleast_2d(np.asarray(X, dtype=float)) - self._mean) / self._std
        out: List[str] = []
        for row in X:
            dists = np.sqrt(((self._X - row) ** 2).sum(axis=1))
            nearest = np.argsort(dists, kind="stable")[: self.k]
            votes = Counter(self._y[i] for i in nearest)
            top = max(votes.values())
            # deterministic tie break: closest neighbour among tied classes
            tied = {label for label, count in votes.items() if count == top}
            for i in nearest:
                if self._y[i] in tied:
                    out.append(self._y[i])
                    break
        return out

    def score(self, X: np.ndarray, y: Sequence[str]) -> float:
        predictions = self.predict(X)
        return sum(p == t for p, t in zip(predictions, y)) / len(y)
