"""Desktop Nvidia GPU counter substrate for the Table 2 baseline.

Section 7.1 of the paper re-evaluates the prior attack of Naghibijouybari
et al. [37], which reads desktop GPU performance counters through CUPTI
every 10 ms, against keyboard input: a bot types characters into gedit,
the Gmail login page in Chrome, and the Dropbox client, and the collected
traces are fed to Naive Bayes / kNN / Random Forest classifiers.  The
result — at most ~14 % accuracy — demonstrates that *workload-level*
counters cannot resolve single key presses.

The substrate here models why: CUPTI-style counters (SM occupancy, memory
utilization, frame time, fill rate) aggregate whole-GPU activity, so the
per-character differences (a few hundred shaded pixels) are buried under
desktop compositing noise — WMs redraw large regions, browsers run
animations, vsync jitter moves work between windows.  The per-character
signal-to-noise ratio is far below one, which pins any classifier near
(but above) chance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.android.glyphs import glyph, has_glyph

#: CUPTI-style metrics sampled by the baseline attack (10 ms cadence).
NVIDIA_METRICS: Tuple[str, ...] = (
    "sm_occupancy",
    "mem_utilization",
    "frame_time_us",
    "pixel_fill_kpix",
    "tex_cache_hits",
)


@dataclass(frozen=True)
class DesktopContext:
    """One typing target from Table 2 and its ambient GPU activity.

    ``noise_scale`` is the standard deviation of ambient per-sample
    counter variation relative to the per-character signal spread;
    browser pages animate more than gedit, so their noise is higher.
    """

    name: str
    noise_scale: float
    baseline_load: float


GEDIT = DesktopContext(name="gedit", noise_scale=0.080, baseline_load=0.08)
GMAIL_WEB = DesktopContext(name="gmail_web", noise_scale=0.078, baseline_load=0.22)
DROPBOX_CLIENT = DesktopContext(name="dropbox_client", noise_scale=0.079, baseline_load=0.15)

DESKTOP_CONTEXTS: Dict[str, DesktopContext] = {
    ctx.name: ctx for ctx in (GEDIT, GMAIL_WEB, DROPBOX_CLIENT)
}


class DesktopGpuSampler:
    """Generates per-keypress CUPTI counter feature vectors.

    Each key press contributes a weak deterministic signal (proportional
    to the glyph's redraw cost) on top of strong ambient noise, matching
    the regime the paper measured.
    """

    def __init__(self, context: DesktopContext, rng: Optional[np.random.Generator] = None) -> None:
        self.context = context
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def _signal(self, char: str) -> np.ndarray:
        """The per-character deterministic component (weak by design)."""
        metrics = glyph(char) if has_glyph(char) else glyph("a")
        ink = metrics.ink_fraction
        width = metrics.width_fraction
        strokes = float(metrics.strokes)
        return np.array(
            [
                0.002 + 0.004 * ink,  # sm_occupancy bump
                0.001 + 0.003 * width,  # mem utilization bump
                12.0 + 30.0 * ink * width,  # frame time in us
                1.5 + 4.0 * ink * width,  # kilopixels filled
                40.0 + 120.0 * strokes / 8.0,  # texture cache hits
            ]
        )

    def _ambient(self) -> np.ndarray:
        """Ambient desktop activity: heavy-tailed, not Gaussian.

        Compositors and browsers redraw in occasional large bursts, so the
        noise is a mixture of a moderate Gaussian component and sparse
        spikes — which is why the Random Forest (robust to outliers) beats
        Naive Bayes and kNN in the paper's Table 2.
        """
        load = self.context.baseline_load
        noise = self.context.noise_scale
        sigmas = np.array([0.004, 0.003, 30.0, 4.0, 120.0]) * noise
        base = np.array([load, load * 0.6, 1500.0 * load, 60.0 * load, 800.0 * load])
        draws = self.rng.normal(0.0, sigmas)
        spikes = self.rng.random(5) < 0.12
        draws = np.where(spikes, self.rng.normal(0.0, sigmas * 5.0), draws)
        return base + draws

    def keypress_features(self, char: str) -> np.ndarray:
        """The counter delta observed around one key press.

        The 10 ms CUPTI sampling window does not align with the redraw, so
        a press's workload often straddles two samples and the attacker's
        per-press feature captures only part of it — the class-conditional
        distribution is bimodal, not Gaussian.  Tree ensembles can carve
        both modes; Naive Bayes (single Gaussian per class) cannot, which
        reproduces Table 2's ordering (RF > NB/kNN).
        """
        fraction = 1.0 if self.rng.random() < 0.55 else 0.5
        return self._signal(char) * fraction + self._ambient()

    def collect(
        self, chars: Sequence[str], repeats: int
    ) -> Tuple[np.ndarray, List[str]]:
        """A labeled dataset: ``repeats`` presses of each character,
        mirroring the paper's bot typing each key 10 times at 0.5 s."""
        rows: List[np.ndarray] = []
        labels: List[str] = []
        for _ in range(repeats):
            for char in chars:
                rows.append(self.keypress_features(char))
                labels.append(char)
        return np.vstack(rows), labels
