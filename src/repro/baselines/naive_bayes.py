"""Gaussian Naive Bayes classifier (from scratch, numpy only).

Used for the paper's Table 2 baseline ("Naive Bayers" row).  Features are
assumed conditionally independent Gaussians per class; priors are the
empirical class frequencies.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

#: Variance floor to keep the likelihood finite for constant features.
VAR_FLOOR = 1e-9


class GaussianNaiveBayes:
    """Per-class Gaussian likelihoods with empirical priors."""

    def __init__(self) -> None:
        self.classes_: List[str] = []
        self._means: np.ndarray = np.empty((0, 0))
        self._vars: np.ndarray = np.empty((0, 0))
        self._log_priors: np.ndarray = np.empty(0)

    def fit(self, X: np.ndarray, y: Sequence[str]) -> "GaussianNaiveBayes":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-dimensional")
        if len(y) != X.shape[0]:
            raise ValueError("X and y length mismatch")
        labels = sorted(set(y))
        if not labels:
            raise ValueError("no training data")
        y_arr = np.asarray(list(y))
        means, variances, priors = [], [], []
        for label in labels:
            rows = X[y_arr == label]
            means.append(rows.mean(axis=0))
            variances.append(np.maximum(rows.var(axis=0), VAR_FLOOR))
            priors.append(len(rows) / len(y_arr))
        self.classes_ = labels
        self._means = np.vstack(means)
        self._vars = np.vstack(variances)
        self._log_priors = np.log(np.asarray(priors))
        return self

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        # (n, 1, d) - (1, c, d) -> (n, c, d)
        diff = X[:, None, :] - self._means[None, :, :]
        log_pdf = -0.5 * (
            np.log(2.0 * np.pi * self._vars)[None, :, :] + diff**2 / self._vars[None, :, :]
        )
        return log_pdf.sum(axis=2) + self._log_priors[None, :]

    def predict(self, X: np.ndarray) -> List[str]:
        if not self.classes_:
            raise RuntimeError("classifier is not fitted")
        jll = self._joint_log_likelihood(np.atleast_2d(X))
        return [self.classes_[i] for i in np.argmax(jll, axis=1)]

    def score(self, X: np.ndarray, y: Sequence[str]) -> float:
        predictions = self.predict(X)
        return sum(p == t for p, t in zip(predictions, y)) / len(y)
