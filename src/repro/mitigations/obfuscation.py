"""Obfuscation mitigations (paper Section 9.3).

Two flavours:

* **Application-level**: decorative login-screen animation, as on the PNC
  Mobile Bank app — already modeled by :data:`repro.android.apps.PNC`.
  The animation frames constantly perturb the counter stream, and any
  animation frame sharing a read window with a key press corrupts its
  delta; the paper measures accuracy dropping to 30.2 %.

* **OS-level**: the OS randomly executes small GPU workloads in the
  background.  :class:`OsNoiseInjector` adds such frames to a victim
  timeline with a configurable duty cycle; the open question the paper
  raises — how much noise is enough, given that excessive workloads cost
  performance and battery — is explored by the Section 9.3 bench's sweep.

* **Value obfuscation at the driver**: :class:`CounterObfuscationPolicy`
  perturbs returned counter values inside the KGSL read path, an
  alternative the paper suggests ("applying obfuscations on the values of
  GPU performance counters").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.android.display import Display
from repro.android.geometry import Rect
from repro.android.layers import DrawOp, Layer, Scene
from repro.gpu.adreno import AdrenoSpec
from repro.gpu.pipeline import AdrenoPipeline
from repro.gpu.timeline import RenderTimeline, merge_timelines
from repro.kgsl.device_file import ProcessContext
from repro.mitigations.access_control import AccessPolicy


class OsNoiseInjector:
    """OS-injected random GPU workloads (Section 9.3's OS-level defence).

    Frames of random geometry are rendered at random times with mean rate
    ``rate_hz`` and sizes scaled by ``intensity`` (0..1: fraction of the
    screen a noise frame may touch).
    """

    def __init__(
        self,
        gpu: AdrenoSpec,
        display: Display,
        rate_hz: float = 20.0,
        intensity: float = 0.1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if rate_hz <= 0:
            raise ValueError("rate_hz must be positive")
        if not 0.0 < intensity <= 1.0:
            raise ValueError("intensity must be in (0, 1]")
        self.gpu = gpu
        self.display = display
        self.rate_hz = rate_hz
        self.intensity = intensity
        self.rng = rng if rng is not None else np.random.default_rng(11)
        self.pipeline = AdrenoPipeline(gpu)

    def _noise_scene(self) -> Scene:
        screen = self.display.resolution
        w = int(screen.width * self.rng.uniform(0.05, self.intensity))
        h = int(screen.height * self.rng.uniform(0.05, self.intensity))
        w, h = max(16, w), max(16, h)
        left = int(self.rng.uniform(0, max(1, screen.width - w)))
        top = int(self.rng.uniform(0, max(1, screen.height - h)))
        layer = Layer("os_noise")
        layer.add(
            DrawOp(
                rect=Rect.from_size(left, top, w, h),
                coverage=float(self.rng.uniform(0.2, 1.0)),
                primitives=int(self.rng.integers(2, 64)),
                textured=True,
                label="os_noise_quad",
            )
        )
        return Scene([layer])

    def timeline(self, t0: float, t1: float) -> RenderTimeline:
        timeline = RenderTimeline()
        t = t0 + float(self.rng.exponential(1.0 / self.rate_hz))
        while t < t1:
            timeline.add_render(t, self.pipeline.render(self._noise_scene()), label="os_noise")
            t += float(self.rng.exponential(1.0 / self.rate_hz))
        return timeline

    def gpu_time_fraction(self, t0: float, t1: float) -> float:
        """GPU time the injected noise consumes — the defence's cost."""
        return self.timeline(t0, t1).busy_fraction(t0, t1)


def with_os_noise(
    victim_timeline: RenderTimeline,
    injector: OsNoiseInjector,
    t_end: float,
) -> RenderTimeline:
    """Victim timeline with OS noise frames merged in."""
    return merge_timelines([victim_timeline, injector.timeline(0.0, t_end)])


@dataclass
class CounterObfuscationPolicy(AccessPolicy):
    """Driver-level value obfuscation for unprivileged readers.

    Adds a random non-negative offset drawn per read to every counter
    value returned to an unprivileged context.  Offsets are monotone in
    expectation (counters must never appear to run backwards), scaled by
    ``strength`` relative to a typical key-press increment.
    """

    strength: float = 1.0
    seed: int = 13
    _rng: np.random.Generator = field(init=False, repr=False, default=None)  # type: ignore[assignment]
    _accumulated: dict = field(init=False, repr=False, default_factory=dict)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def filter_value(
        self, context: ProcessContext, groupid: int, countable: int, value: int, now: float
    ) -> int:
        if context.selinux_context in ("system_server", "graphics_profiler"):
            return value
        key = (groupid, countable)
        # accumulate a random walk so deltas are perturbed but values
        # remain monotone
        step = int(self._rng.exponential(2000.0 * self.strength))
        self._accumulated[key] = self._accumulated.get(key, 0) + step
        return value + self._accumulated[key]
