"""Composable mitigation policies: the defense arm's one spec object.

The paper's Section 9 surveys individual countermeasures — RBAC on the
counter ioctls (9.2), value obfuscation (9.3), popup-rendering changes
(9.1) — and a real deployment would layer several at once.  This module
makes that composition first-class:

* :class:`MitigationPolicy` — a frozen, serializable spec naming which
  defense layers are on (access control, rate limiting, quantization,
  noise injection, popup changes) and with what parameters.  Policies
  compose commutatively via :func:`compose`, so an operator can stack
  "RBAC plus quantization plus popups off" as a single named object.
* :class:`PolicyEnforcer` — the runtime form: one
  :class:`~repro.mitigations.access_control.AccessPolicy` enforcing the
  whole stack at the KGSL device file (``check`` for access control,
  ``filter_value`` for the value pipeline), with per-layer counters that
  flush into the run manifest as ``mitigation.*``.
* :data:`MITIGATION_REGISTRY` — named lookup with the same
  :class:`~repro.registry.UnknownNameError` suggestions as keyboards and
  scenarios; :func:`register_mitigation` validates before registering.

Enforcement has exactly two surfaces, and a policy declares both:

1. **KGSL boundary** (:meth:`MitigationPolicy.enforcer`): consulted by
   :class:`~repro.kgsl.device_file.KgslDeviceFile` on every counter
   ioctl.  ``mitigation=None`` installs *no* hook — the fast path stays
   byte-identical to the undefended device (golden-parity tested).
2. **Victim rendering** (:meth:`MitigationPolicy.apply_to_device_config`):
   popup-rendering changes alter what the victim draws, so they apply
   when the session is *compiled* (``repro.api.simulate``), not when it
   is read.

The value pipeline runs in one fixed canonical order — local-only
masking, rate-limit staleness, quantization, then noise — regardless of
how the spec was composed, which is what makes composition order
invariant (tested in ``tests/test_defense_policies.py``).
"""

from __future__ import annotations

import errno
from dataclasses import dataclass, field, fields
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.kgsl.device_file import ProcessContext
from repro.kgsl.ioctl import IoctlError
from repro.mitigations.access_control import (
    DEFAULT_PRIVILEGED_CONTEXTS,
    AccessPolicy,
)
from repro.registry import Registry

#: Environment variable naming the fleet-wide default policy, honored by
#: ``AttackConfig(mitigation="auto")`` — the same precedence shape as
#: ``REPRO_FAULT_PROFILE`` for fault plans.
MITIGATION_ENV = "REPRO_MITIGATION"

#: Mean obfuscation step per read at ``noise_strength=1.0``, scaled to a
#: typical key-press counter increment (cf. Section 9.3's requirement
#: that noise be comparable to the signal to matter).
_NOISE_STEP_SCALE = 2000.0


@dataclass(frozen=True)
class MitigationPolicy:
    """One named defense stack, as a frozen serializable spec.

    Every field is a *layer toggle or parameter*; the runtime form is
    built on demand by :meth:`enforcer` / :meth:`apply_to_device_config`
    so the spec itself stays hashable, picklable and registry-friendly
    (the same design as :class:`~repro.scenarios.Scenario` and
    :class:`~repro.faults.FaultPlan`).

    Attributes:
        name: registry name of the policy.
        rbac: deny ``PERFCOUNTER_GET``/``READ`` with ``EACCES`` to any
            context not in ``privileged_contexts`` (Section 9.2's
            SELinux ioctl whitelisting).
        local_only: unprivileged reads succeed but observe only the
            caller's own GPU activity — a flat zero for the attack
            service (the paper's preferred finer-grained RBAC).
        privileged_contexts: SELinux contexts exempt from every layer.
        rate_limit_hz: serve unprivileged readers a cached counter
            snapshot refreshed at most this often; reads above the rate
            see stale values, collapsing consecutive deltas.
        quantize_step: floor returned values to multiples of this step,
            erasing sub-step deltas.
        noise_strength: add a monotone random-walk offset per counter,
            with mean step ``2000 * strength`` per read (0 = off).
        noise_seed: base seed of the noise walk (combined with the
            per-session seed so parallel sessions stay deterministic).
        disable_popups: victim-side popup-rendering change
            (Section 9.1): key-press popups are not drawn at all.
        description: one-line human description.
        tags: registry tags (``baseline``, ``paper``, ``sweep``, …).
    """

    name: str
    rbac: bool = False
    local_only: bool = False
    privileged_contexts: Tuple[str, ...] = tuple(sorted(DEFAULT_PRIVILEGED_CONTEXTS))
    rate_limit_hz: Optional[float] = None
    quantize_step: Optional[int] = None
    noise_strength: float = 0.0
    noise_seed: int = 13
    disable_popups: bool = False
    description: str = ""
    tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError("mitigation policy name must be a non-empty string")
        if self.rate_limit_hz is not None and self.rate_limit_hz <= 0:
            raise ValueError("rate_limit_hz must be positive (or None)")
        if self.quantize_step is not None and self.quantize_step < 1:
            raise ValueError("quantize_step must be >= 1 (or None)")
        if self.noise_strength < 0:
            raise ValueError("noise_strength must be non-negative")
        object.__setattr__(
            self, "privileged_contexts", tuple(sorted(set(self.privileged_contexts)))
        )
        object.__setattr__(self, "tags", tuple(self.tags))

    # -- layer predicates -------------------------------------------------

    @property
    def enforces_kgsl(self) -> bool:
        """Whether any layer acts at the device-file boundary."""
        return bool(
            self.rbac
            or self.local_only
            or self.rate_limit_hz is not None
            or self.quantize_step is not None
            or self.noise_strength > 0
        )

    @property
    def enabled(self) -> bool:
        """Whether the policy does anything at all."""
        return self.enforces_kgsl or self.disable_popups

    # -- runtime forms ----------------------------------------------------

    def enforcer(self, seed: int = 0) -> Optional["PolicyEnforcer"]:
        """The KGSL-boundary enforcement stack, or ``None`` when no
        layer acts there (popup-only / allow-all policies install no
        hook, keeping the undefended read path byte-identical)."""
        if not self.enforces_kgsl:
            return None
        return PolicyEnforcer(self, seed=seed)

    def apply_to_device_config(self, config):
        """Victim-side rendering changes (popups off), or ``config``
        unchanged.  Applied where sessions are *compiled*."""
        if not self.disable_popups or not config.keyboard.supports_popup:
            return config
        from repro.mitigations.popup_disable import config_with_popups_disabled

        return config_with_popups_disabled(config)

    # -- composition ------------------------------------------------------

    def compose(self, other: "MitigationPolicy", name: Optional[str] = None) -> "MitigationPolicy":
        """Merge two policies into one stack.

        The merge is commutative and associative — every field combines
        through an order-free operation (boolean OR, min/max of the
        strictest parameter, set intersection of the privilege lists) —
        so ``a.compose(b) == b.compose(a)`` holds for all policies and
        stacking order never matters.
        """
        rate_limits = [
            hz for hz in (self.rate_limit_hz, other.rate_limit_hz) if hz is not None
        ]
        steps = [
            s for s in (self.quantize_step, other.quantize_step) if s is not None
        ]
        seeds = [
            p.noise_seed for p in (self, other) if p.noise_strength > 0
        ]
        merged_name = "+".join(sorted({self.name, other.name}))
        return MitigationPolicy(
            name=name or merged_name,
            rbac=self.rbac or other.rbac,
            local_only=self.local_only or other.local_only,
            privileged_contexts=tuple(
                sorted(set(self.privileged_contexts) & set(other.privileged_contexts))
            ),
            rate_limit_hz=min(rate_limits) if rate_limits else None,
            quantize_step=max(steps) if steps else None,
            noise_strength=max(self.noise_strength, other.noise_strength),
            noise_seed=min(seeds) if seeds else min(self.noise_seed, other.noise_seed),
            disable_popups=self.disable_popups or other.disable_popups,
            description="composition of " + " + ".join(sorted(set(merged_name.split("+")))),
            tags=tuple(sorted(set(self.tags) | set(other.tags) | {"composed"})),
        )

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {f.name: getattr(self, f.name) for f in fields(self)}
        out["privileged_contexts"] = list(self.privileged_contexts)
        out["tags"] = list(self.tags)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "MitigationPolicy":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown MitigationPolicy fields: {sorted(unknown)}")
        return cls(**dict(data))  # type: ignore[arg-type]


def compose(*policies: MitigationPolicy, name: Optional[str] = None) -> MitigationPolicy:
    """Fold any number of policies into one stack (order-invariant)."""
    if not policies:
        raise ValueError("compose() needs at least one policy")
    merged = policies[0]
    for policy in policies[1:]:
        merged = merged.compose(policy)
    if name is not None:
        from dataclasses import replace

        merged = replace(merged, name=name)
    return merged


@dataclass
class MitigationStats:
    """Per-layer enforcement tallies, flushed as ``mitigation.*``."""

    checks: int = 0
    denials: int = 0
    local_zeroed: int = 0
    stale_serves: int = 0
    quantized: int = 0
    noised: int = 0
    filtered_values: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class PolicyEnforcer(AccessPolicy):
    """The runtime stack of one :class:`MitigationPolicy` at the KGSL fd.

    Stateful — the rate limiter's cached snapshots and the noise walk
    live here — so each attack session builds a fresh enforcer (seeded
    from the session seed, which keeps sharded ``workers=N`` runs
    byte-identical to serial).

    The value pipeline order is canonical and fixed: local-only masking
    short-circuits first (there is nothing left to protect in a zero),
    then rate-limit staleness, quantization, and the noise walk.  Every
    stage is monotone, so counters never appear to run backwards no
    matter which layers are stacked.
    """

    def __init__(self, policy: MitigationPolicy, seed: int = 0) -> None:
        self.policy = policy
        self.seed = seed
        self.stats = MitigationStats()
        self._rng = (
            np.random.default_rng((policy.noise_seed, seed))
            if policy.noise_strength > 0
            else None
        )
        #: (groupid, countable) -> accumulated noise-walk offset
        self._walk: Dict[Tuple[int, int], int] = {}
        #: (groupid, countable) -> (last fresh-serve time, value served)
        self._snapshot: Dict[Tuple[int, int], Tuple[float, int]] = {}

    # -- AccessPolicy interface ------------------------------------------

    def _privileged(self, context: ProcessContext) -> bool:
        return context.selinux_context in self.policy.privileged_contexts

    def check(
        self, context: ProcessContext, operation: str, groupid: int, countable: int
    ) -> None:
        self.stats.checks += 1
        if not self.policy.rbac or self._privileged(context):
            return
        self.stats.denials += 1
        raise IoctlError(
            errno.EACCES,
            f"mitigation {self.policy.name!r}: denied "
            f"context={context.selinux_context} op=perfcounter_{operation} "
            f"group={groupid:#x}",
        )

    def filter_value(
        self, context: ProcessContext, groupid: int, countable: int, value: int, now: float
    ) -> int:
        if self._privileged(context) or not self.policy.enforces_kgsl:
            return value
        policy = self.policy
        self.stats.filtered_values += 1
        if policy.local_only:
            # nothing further to protect: the caller rendered nothing
            self.stats.local_zeroed += 1
            return 0
        key = (groupid, countable)
        if policy.rate_limit_hz is not None:
            cached = self._snapshot.get(key)
            if cached is not None and now - cached[0] < 1.0 / policy.rate_limit_hz:
                self.stats.stale_serves += 1
                return cached[1]
        served = value
        if policy.quantize_step is not None:
            served -= served % policy.quantize_step
            self.stats.quantized += 1
        if self._rng is not None:
            step = int(self._rng.exponential(_NOISE_STEP_SCALE * policy.noise_strength))
            self._walk[key] = self._walk.get(key, 0) + step
            served += self._walk[key]
            self.stats.noised += 1
        if policy.rate_limit_hz is not None:
            self._snapshot[key] = (now, served)
        return served

    # -- observability ----------------------------------------------------

    def flush_metrics(self, metrics) -> None:
        """Publish enforcement tallies into a metrics registry (called
        once per session by the attack stage, like the sampler's)."""
        if not metrics.enabled:
            return
        for stat, count in self.stats.as_dict().items():
            if count:
                metrics.counter(f"mitigation.{stat}").inc(count)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PolicyEnforcer({self.policy.name!r}, seed={self.seed})"


#: The mitigation registry: name → policy, with did-you-mean errors.
MITIGATION_REGISTRY: Registry[MitigationPolicy] = Registry("mitigation")


def register_mitigation(spec: MitigationPolicy, replace: bool = False) -> MitigationPolicy:
    """Validate and register a mitigation policy.

    Validation exercises both runtime forms — the enforcer builds and
    the spec survives a dict round-trip — so a broken policy fails at
    registration, not mid-fleet.
    """
    if not isinstance(spec, MitigationPolicy):
        raise TypeError(f"expected a MitigationPolicy, got {type(spec).__name__}")
    if MitigationPolicy.from_dict(spec.to_dict()) != spec:
        raise ValueError(f"mitigation {spec.name!r} does not round-trip to_dict/from_dict")
    spec.enforcer(seed=0)  # must build (or legitimately be None)
    return MITIGATION_REGISTRY.register(spec, tags=spec.tags, replace=replace)


def mitigation(name: str) -> MitigationPolicy:
    """Resolve a mitigation policy by registry name.

    Raises:
        repro.registry.UnknownNameError: (a ``KeyError``) for unknown
            names, with the known set and a closest-match suggestion.
    """
    return MITIGATION_REGISTRY.get(name)


def mitigation_names() -> List[str]:
    """All registered policy names, sorted."""
    return MITIGATION_REGISTRY.names()


# -- builtin policies -----------------------------------------------------

#: The undefended baseline: today's Android behaviour, as a named cell so
#: the threat × mitigation matrix has an explicit control column.
ALLOW_ALL = register_mitigation(
    MitigationPolicy(
        name="allow-all",
        description="no defense: stock Android counter access (the vulnerability)",
        tags=("baseline",),
    )
)

register_mitigation(
    MitigationPolicy(
        name="rbac",
        rbac=True,
        description="Section 9.2 SELinux ioctl whitelisting: unprivileged "
        "contexts get EACCES on counter get/read",
        tags=("paper", "access-control"),
    )
)

register_mitigation(
    MitigationPolicy(
        name="local-only",
        local_only=True,
        description="finer-grained RBAC: unprivileged reads see only their "
        "own GPU activity (flat zero for the attack service)",
        tags=("paper", "access-control"),
    )
)

register_mitigation(
    MitigationPolicy(
        name="rate-limit-30hz",
        rate_limit_hz=30.0,
        description="counter reads above 30 Hz are served a cached snapshot, "
        "collapsing the 125 Hz attack cadence ~4x",
        tags=("obfuscation", "sweep"),
    )
)

register_mitigation(
    MitigationPolicy(
        name="quantize-4096",
        quantize_step=4096,
        description="returned values floored to 4096-unit steps, erasing "
        "sub-step deltas",
        tags=("obfuscation", "sweep"),
    )
)

register_mitigation(
    MitigationPolicy(
        name="obfuscate-mild",
        noise_strength=0.5,
        description="Section 9.3 driver value obfuscation, low duty cycle "
        "(mean step 1000/read)",
        tags=("paper", "obfuscation", "sweep"),
    )
)

register_mitigation(
    MitigationPolicy(
        name="obfuscate-strong",
        noise_strength=3.0,
        description="Section 9.3 driver value obfuscation, high duty cycle "
        "(mean step 6000/read)",
        tags=("paper", "obfuscation", "sweep"),
    )
)

register_mitigation(
    MitigationPolicy(
        name="popup-disable",
        disable_popups=True,
        description="Section 9.1 keyboard setting: key-press popups are not "
        "rendered (length still leaks via the field signal)",
        tags=("paper", "ux"),
    )
)

register_mitigation(
    compose(
        mitigation("popup-disable"),
        mitigation("quantize-4096"),
        mitigation("rate-limit-30hz"),
        name="defense-in-depth",
    )
)
