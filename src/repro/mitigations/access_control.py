"""GPU PC access control (paper Section 9.2).

The paper argues the viable mitigation is role-based access control on the
performance-counter interface, enforced where the attack happens: the
KGSL device file's ioctl path.  This module provides that enforcement
point as :class:`AccessPolicy` implementations plugged into
:class:`~repro.kgsl.device_file.KgslDeviceFile`:

* :class:`AllowAllPolicy` — today's Android behaviour (the vulnerability);
* :class:`RbacPolicy` — SELinux-style role-based ioctl command filtering:
  processes whose SELinux context is not on the allow list are denied
  ``PERFCOUNTER_GET``/``READ`` with ``EACCES``, exactly what the paper's
  proposed ``ioctl()`` command whitelisting would do;
* :class:`LocalOnlyPolicy` — the finer-grained RBAC the paper prefers:
  unprivileged apps may still read *their own* GPU activity (so profilers
  and games keep working) but the global values are masked.
"""

from __future__ import annotations

import errno
from dataclasses import dataclass
from typing import FrozenSet

from repro.kgsl.device_file import ProcessContext
from repro.kgsl.ioctl import IoctlError

#: SELinux contexts normally allowed to touch global GPU counters.
DEFAULT_PRIVILEGED_CONTEXTS: FrozenSet[str] = frozenset(
    {"system_server", "platform_app", "shell", "su", "graphics_profiler"}
)


class AccessPolicy:
    """Interface consulted by the KGSL device file on every counter ioctl."""

    def check(self, context: ProcessContext, operation: str, groupid: int, countable: int) -> None:
        """Raise :class:`IoctlError` to deny the request."""

    def filter_value(
        self, context: ProcessContext, groupid: int, countable: int, value: int, now: float
    ) -> int:
        """Transform a counter value before it is returned to user space."""
        return value


class AllowAllPolicy(AccessPolicy):
    """The stock Android behaviour: any process may read global PCs."""


@dataclass
class RbacPolicy(AccessPolicy):
    """SELinux-style ioctl command whitelisting.

    Only processes whose SELinux context is in ``privileged_contexts`` may
    reserve or read performance counters; everyone else gets ``EACCES``.
    Denials are counted so an auditd-style log can be asserted on.
    """

    privileged_contexts: FrozenSet[str] = DEFAULT_PRIVILEGED_CONTEXTS
    denials: int = 0

    def check(self, context: ProcessContext, operation: str, groupid: int, countable: int) -> None:
        if context.selinux_context in self.privileged_contexts:
            return
        self.denials += 1
        raise IoctlError(
            errno.EACCES,
            f"SELinux: denied {{ ioctl }} for context={context.selinux_context} "
            f"op=perfcounter_{operation} group={groupid:#x}",
        )


@dataclass
class LocalOnlyPolicy(AccessPolicy):
    """Finer-grained RBAC: unprivileged apps see only local counter values.

    The paper's preferred design: "only listed applications are allowed to
    access the global values of GPU PCs and all other applications can
    only access their local values".  An unprivileged caller's reads
    succeed, but return only the activity attributable to its own PID —
    for the attacking service, which renders nothing, that is a flat
    counter, destroying the side channel without breaking the API.
    """

    privileged_contexts: FrozenSet[str] = DEFAULT_PRIVILEGED_CONTEXTS
    local_reads: int = 0

    def filter_value(
        self, context: ProcessContext, groupid: int, countable: int, value: int, now: float
    ) -> int:
        if context.selinux_context in self.privileged_contexts:
            return value
        self.local_reads += 1
        # the caller's own rendering workload; the attack service draws
        # nothing, so its local view of every counter stays at zero
        return 0
