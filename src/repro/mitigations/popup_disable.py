"""Disabling key-press popups (paper Section 9.1).

The most intuitive mitigation: turn off "Popup on keypress" in the
keyboard settings.  It prevents direct key inference, but the paper notes
it "did not disable user applications' access to GPU PCs, [so] the
attacker can still infer useful information ... such as the input length"
via the Section 5.3 text-field signal.  The benches verify exactly that
residual leak.
"""

from __future__ import annotations

from dataclasses import replace

from repro.android.keyboard import KeyboardSpec
from repro.android.os_config import DeviceConfig


def disable_popups(keyboard: KeyboardSpec) -> KeyboardSpec:
    """The keyboard with popups (and their duplication frames) disabled.

    The name changes too: a keyboard with popups off is a different
    *configuration* (different preloaded model, different cache identity).
    """
    return replace(
        keyboard,
        name=f"{keyboard.name}-nopopup",
        supports_popup=False,
        duplicate_popup_prob=0.0,
    )


def config_with_popups_disabled(config: DeviceConfig) -> DeviceConfig:
    """The same device configuration after the user flips the setting."""
    return replace(config, keyboard=disable_popups(config.keyboard))
