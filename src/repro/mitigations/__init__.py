"""Mitigations: the paper's Section 9 defense arm, as composable policies.

Three enforcement families, one spec object:

* **Access control** (:mod:`~repro.mitigations.access_control`, paper
  Section 9.2) — :class:`AccessPolicy` implementations consulted by the
  KGSL device file on every counter ioctl;
* **Obfuscation** (:mod:`~repro.mitigations.obfuscation`, Section 9.3) —
  driver-level value perturbation and OS-injected noise workloads;
* **Popup rendering changes** (:mod:`~repro.mitigations.popup_disable`,
  Section 9.1) — victim-side keyboard configuration changes.

:mod:`~repro.mitigations.policy` composes all of them into the frozen,
name-registered :class:`MitigationPolicy` spec that
``AttackConfig(mitigation=...)`` threads through the whole pipeline; see
``docs/defenses.md`` for the handbook and the threat × mitigation matrix.
"""

from repro.mitigations.access_control import (
    DEFAULT_PRIVILEGED_CONTEXTS,
    AccessPolicy,
    AllowAllPolicy,
    LocalOnlyPolicy,
    RbacPolicy,
)
from repro.mitigations.obfuscation import (
    CounterObfuscationPolicy,
    OsNoiseInjector,
    with_os_noise,
)
from repro.mitigations.policy import (
    MITIGATION_ENV,
    MITIGATION_REGISTRY,
    MitigationPolicy,
    MitigationStats,
    PolicyEnforcer,
    compose,
    mitigation,
    mitigation_names,
    register_mitigation,
)
from repro.mitigations.popup_disable import (
    config_with_popups_disabled,
    disable_popups,
)

__all__ = [
    # composable policy spec (docs/defenses.md)
    "MitigationPolicy",
    "MitigationStats",
    "PolicyEnforcer",
    "MITIGATION_ENV",
    "MITIGATION_REGISTRY",
    "compose",
    "mitigation",
    "mitigation_names",
    "register_mitigation",
    # access control (Section 9.2)
    "AccessPolicy",
    "AllowAllPolicy",
    "RbacPolicy",
    "LocalOnlyPolicy",
    "DEFAULT_PRIVILEGED_CONTEXTS",
    # obfuscation (Section 9.3)
    "CounterObfuscationPolicy",
    "OsNoiseInjector",
    "with_os_noise",
    # popup rendering changes (Section 9.1)
    "disable_popups",
    "config_with_popups_disabled",
]
