"""Mitigations: popup disabling, RBAC access control, obfuscation."""
