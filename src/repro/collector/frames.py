"""Typed collector frames and the two wire codecs (JSON and binary).

Every message on a collector connection is one of ten frame kinds,
modeled here as frozen dataclasses — :class:`Hello`, :class:`HelloOk`,
:class:`Result`, :class:`Batch`, :class:`Ack`, :class:`Metrics`,
:class:`MetricsOk`, :class:`Bye`, :class:`ByeOk`,
:class:`ProtocolError` — instead of the
ad-hoc ``{"type": ...}`` dicts that previously leaked through
``framing.py``/``server.py``/``client.py``.  Each codec exposes one
``encode`` / ``decode`` entry point; :func:`decode_any` dispatches on
the first body byte, so a server never needs per-connection decode
state to support mixed fleets.

Wire formats
------------

**JSON** (protocol revision 1, the compatibility fallback): the body is
a UTF-8 JSON object whose ``type`` field names the kind.  A JSON body
always starts with ``{`` (0x7B).

**Binary** (negotiated): the body's first byte is a kind tag in
0x81–0x87 — bytes no JSON object can start with.  The hot frame is
``Result``: one :class:`struct.Struct` pack of a fixed header

====== ======== ===========================================
offset format   field
====== ======== ===========================================
0      ``B``    tag ``0x81``
1      ``B``    flags (bit 0 degraded, bit 1 exact present,
                bit 2 exact true, bit 3 deltas present,
                bit 4 extra JSON present)
2      ``>H``   counter mask (11 bits)
4      ``>I``   seq
8      ``>I``   session_index
12     ``>q``   seed
20     ``>I``   n_keys
24     ``>I``   device_id byte length
28     ``>I``   text byte length
32     ``>I``   extra byte length
36     ``>11Q`` the 11 counter deltas (Table-1 order)
====== ======== ===========================================

followed by the UTF-8 ``device_id`` and ``text`` bytes and an optional
JSON tail (``metrics`` / ``meta`` — cold fields that stay out of the
hot pack).  The counter deltas ship as 11 fixed u64s plus the mask —
no per-field JSON encode on the fleet's hot path.

``hello`` / ``hello_ok`` are **always JSON**, whatever was negotiated:
they *are* the negotiation.  A client offers ``codecs`` in its hello
(preference order); the server answers ``hello_ok`` with the chosen
``codec``; either side omitting the field means revision-1 JSON, which
keeps old clients and old servers mutually intelligible.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

from repro.collector.framing import (
    N_COUNTERS,
    PROTO_VERSION,
    FrameError,
    SessionResultPayload,
    prefix_body,
)

#: Binary body kind tags (first body byte; JSON bodies start with 0x7B).
TAG_RESULT = 0x81
TAG_ACK = 0x82
TAG_METRICS = 0x83
TAG_BYE = 0x84
TAG_METRICS_OK = 0x85
TAG_BYE_OK = 0x86
TAG_ERROR = 0x87
TAG_BATCH = 0x88

_FLAG_DEGRADED = 1
_FLAG_EXACT_PRESENT = 2
_FLAG_EXACT_TRUE = 4
_FLAG_HAS_DELTAS = 8
_FLAG_HAS_EXTRA = 16

#: The one pack of a binary result: tag, flags, mask, seq, session_index,
#: seed, n_keys, three tail lengths, 11 counter deltas.
_RESULT = struct.Struct(">BBHIIqIIII11Q")
_ACK = struct.Struct(">BI")
_BATCH_HEAD = struct.Struct(">BI")
_BATCH_ITEM_LEN = struct.Struct(">I")

_U32_MAX = 2 ** 32 - 1
_U64_MAX = 2 ** 64 - 1


# -- the frame kinds ----------------------------------------------------


@dataclass(frozen=True)
class Hello:
    """Connection opener; carries the protocol revision and codec offer."""

    device_id: str
    proto: int = PROTO_VERSION
    codecs: Tuple[str, ...] = ()


@dataclass(frozen=True)
class HelloOk:
    """Server's hello reply; ``codec`` is the negotiated wire codec."""

    codec: str = "json"


@dataclass(frozen=True)
class Result:
    """One session's outcome, sequenced for exactly-once delivery."""

    seq: int
    payload: SessionResultPayload

    @property
    def device_id(self) -> str:
        return self.payload.device_id


@dataclass(frozen=True)
class Batch:
    """Many results on one wire frame, acked together.

    The pipelined client (``CollectorConfig.pipeline_depth > 1``) packs
    a burst of :class:`Result` frames — each with its own ``seq`` and
    dedup identity — into one batch, and the server answers with a
    single :class:`Ack` carrying the *last* member's ``seq``.  Acks are
    cumulative: an ack for seq *n* acknowledges every in-flight frame
    with seq ≤ *n* on that connection.  This collapses the per-result
    read/decode/journal-flush/ack round trip that dominates bulk
    uploads into one round trip per burst, without changing the
    delivery contract (members are deduplicated individually).
    """

    frames: Tuple[Result, ...]


@dataclass(frozen=True)
class Ack:
    seq: int


@dataclass(frozen=True)
class Metrics:
    """A device-side ``MetricsRegistry.snapshot()`` for merging."""

    snapshot: Dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class MetricsOk:
    pass


@dataclass(frozen=True)
class Bye:
    """End-of-stream tally a device reports before disconnecting."""

    device_id: str
    sent: int = 0
    retries: int = 0
    reconnects: int = 0


@dataclass(frozen=True)
class ByeOk:
    pass


@dataclass(frozen=True)
class ProtocolError:
    """Server-to-client rejection (proto mismatch, oversized frame, ...)."""

    error: str


Frame = Union[
    Hello, HelloOk, Result, Batch, Ack, Metrics, MetricsOk, Bye, ByeOk, ProtocolError
]


# -- JSON codec ---------------------------------------------------------


def frame_to_dict(frame: Frame) -> Dict[str, object]:
    """The revision-1 JSON object form of any frame."""
    if isinstance(frame, Hello):
        obj: Dict[str, object] = {
            "type": "hello",
            "device_id": frame.device_id,
            "proto": frame.proto,
        }
        if frame.codecs:
            obj["codecs"] = list(frame.codecs)
        return obj
    if isinstance(frame, HelloOk):
        obj = {"type": "hello_ok"}
        if frame.codec != "json":
            obj["codec"] = frame.codec
        return obj
    if isinstance(frame, Result):
        return {
            "type": "result",
            "device_id": frame.payload.device_id,
            "seq": frame.seq,
            "payload": frame.payload.to_dict(),
        }
    if isinstance(frame, Batch):
        return {
            "type": "batch",
            "frames": [frame_to_dict(item) for item in frame.frames],
        }
    if isinstance(frame, Ack):
        return {"type": "ack", "seq": frame.seq}
    if isinstance(frame, Metrics):
        return {"type": "metrics", "snapshot": frame.snapshot}
    if isinstance(frame, MetricsOk):
        return {"type": "metrics_ok"}
    if isinstance(frame, Bye):
        return {
            "type": "bye",
            "device_id": frame.device_id,
            "sent": frame.sent,
            "retries": frame.retries,
            "reconnects": frame.reconnects,
        }
    if isinstance(frame, ByeOk):
        return {"type": "bye_ok"}
    if isinstance(frame, ProtocolError):
        return {"type": "error", "error": frame.error}
    raise TypeError(f"not a frame: {frame!r}")


def frame_from_dict(obj: Dict[str, object]) -> Frame:
    """Parse the revision-1 JSON object form into a typed frame."""
    kind = obj.get("type")
    try:
        if kind == "hello":
            return Hello(
                device_id=str(obj.get("device_id", "?")),
                proto=int(obj.get("proto", -1)),
                codecs=tuple(str(c) for c in obj.get("codecs", ())),
            )
        if kind == "hello_ok":
            return HelloOk(codec=str(obj.get("codec", "json")))
        if kind == "result":
            seq = obj.get("seq")
            payload = obj.get("payload")
            if not isinstance(seq, int) or not isinstance(payload, dict):
                raise FrameError(f"malformed result frame: {obj!r}")
            return Result(seq=seq, payload=SessionResultPayload.from_dict(payload))
        if kind == "batch":
            items = obj.get("frames")
            if not isinstance(items, list) or not items:
                raise FrameError(f"malformed batch frame: {obj!r}")
            members = []
            for item in items:
                if not isinstance(item, dict):
                    raise FrameError(f"malformed batch member: {item!r}")
                member = frame_from_dict(item)
                if not isinstance(member, Result):
                    raise FrameError(f"batch member is not a result: {item!r}")
                members.append(member)
            return Batch(frames=tuple(members))
        if kind == "ack":
            seq = obj.get("seq")
            if not isinstance(seq, int):
                raise FrameError(f"malformed ack frame: {obj!r}")
            return Ack(seq=seq)
        if kind == "metrics":
            snapshot = obj.get("snapshot")
            if not isinstance(snapshot, dict):
                raise FrameError(f"malformed metrics frame: {obj!r}")
            return Metrics(snapshot=snapshot)
        if kind == "metrics_ok":
            return MetricsOk()
        if kind == "bye":
            return Bye(
                device_id=str(obj.get("device_id", "?")),
                sent=int(obj.get("sent", 0)),
                retries=int(obj.get("retries", 0)),
                reconnects=int(obj.get("reconnects", 0)),
            )
        if kind == "bye_ok":
            return ByeOk()
        if kind == "error":
            return ProtocolError(error=str(obj.get("error", "")))
    except FrameError:
        raise
    except (TypeError, ValueError) as exc:
        raise FrameError(f"malformed {kind} frame: {exc}") from exc
    raise FrameError(f"unknown frame type {kind!r}")


class JsonCodec:
    """Protocol revision 1: every body is one UTF-8 JSON object."""

    name = "json"

    def encode(self, frame: Frame, max_bytes: Optional[int] = None) -> bytes:
        body = json.dumps(
            frame_to_dict(frame), separators=(",", ":"), sort_keys=True
        ).encode("utf-8")
        return prefix_body(body) if max_bytes is None else prefix_body(body, max_bytes)

    def decode(self, body: bytes) -> Frame:
        try:
            obj = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise FrameError(f"frame body is not valid JSON: {exc}") from exc
        if not isinstance(obj, dict):
            raise FrameError("frame body must be a JSON object")
        return frame_from_dict(obj)


# -- binary codec -------------------------------------------------------


def _encode_result_binary(frame: Result) -> bytes:
    p = frame.payload
    device_b = p.device_id.encode("utf-8")
    text_b = p.text.encode("utf-8")
    extra: Dict[str, object] = {}
    if p.metrics is not None:
        extra["metrics"] = p.metrics
    if p.meta:
        extra["meta"] = p.meta
    extra_b = (
        json.dumps(extra, separators=(",", ":"), sort_keys=True).encode("utf-8")
        if extra
        else b""
    )
    flags = 0
    if p.degraded:
        flags |= _FLAG_DEGRADED
    if p.exact is not None:
        flags |= _FLAG_EXACT_PRESENT
        if p.exact:
            flags |= _FLAG_EXACT_TRUE
    deltas = p.deltas
    if deltas is not None:
        flags |= _FLAG_HAS_DELTAS
    else:
        deltas = (0,) * N_COUNTERS
    if extra_b:
        flags |= _FLAG_HAS_EXTRA
    if not 0 <= frame.seq <= _U32_MAX:
        raise FrameError(f"seq {frame.seq} does not fit u32")
    if not 0 <= p.session_index <= _U32_MAX:
        raise FrameError(f"session_index {p.session_index} does not fit u32")
    if not 0 <= p.n_keys <= _U32_MAX:
        raise FrameError(f"n_keys {p.n_keys} does not fit u32")
    if any(v > _U64_MAX for v in deltas):
        raise FrameError("counter delta does not fit u64")
    header = _RESULT.pack(
        TAG_RESULT,
        flags,
        p.mask,
        frame.seq,
        p.session_index,
        p.seed,
        p.n_keys,
        len(device_b),
        len(text_b),
        len(extra_b),
        *deltas,
    )
    return header + device_b + text_b + extra_b


def _decode_result_binary(body: bytes) -> Result:
    if len(body) < _RESULT.size:
        raise FrameError(f"binary result header truncated ({len(body)} bytes)")
    fields = _RESULT.unpack_from(body)
    (_tag, flags, mask, seq, session_index, seed, n_keys,
     device_len, text_len, extra_len) = fields[:10]
    deltas = fields[10:]
    expected = _RESULT.size + device_len + text_len + extra_len
    if len(body) != expected:
        raise FrameError(
            f"binary result length mismatch: {len(body)} bytes, expected {expected}"
        )
    offset = _RESULT.size
    try:
        device_id = body[offset:offset + device_len].decode("utf-8")
        offset += device_len
        text = body[offset:offset + text_len].decode("utf-8")
        offset += text_len
    except UnicodeDecodeError as exc:
        raise FrameError(f"binary result strings are not UTF-8: {exc}") from exc
    metrics = None
    meta: Dict[str, object] = {}
    if flags & _FLAG_HAS_EXTRA:
        try:
            extra = json.loads(body[offset:offset + extra_len].decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise FrameError(f"binary result extra tail is not JSON: {exc}") from exc
        if not isinstance(extra, dict):
            raise FrameError("binary result extra tail must be a JSON object")
        metrics = extra.get("metrics")
        meta = extra.get("meta", {})
    exact = bool(flags & _FLAG_EXACT_TRUE) if flags & _FLAG_EXACT_PRESENT else None
    try:
        payload = SessionResultPayload(
            device_id=device_id,
            session_index=session_index,
            text=text,
            n_keys=n_keys,
            degraded=bool(flags & _FLAG_DEGRADED),
            exact=exact,
            seed=seed,
            deltas=tuple(deltas) if flags & _FLAG_HAS_DELTAS else None,
            mask=mask,
            metrics=metrics,
            meta=meta,
        )
    except (ValueError, TypeError) as exc:
        raise FrameError(f"binary result payload invalid: {exc}") from exc
    return Result(seq=seq, payload=payload)


def _encode_batch_binary(frame: Batch) -> bytes:
    if not frame.frames:
        raise FrameError("batch frame must carry at least one result")
    parts = [_BATCH_HEAD.pack(TAG_BATCH, len(frame.frames))]
    for item in frame.frames:
        body = _encode_result_binary(item)
        parts.append(_BATCH_ITEM_LEN.pack(len(body)))
        parts.append(body)
    return b"".join(parts)


def _decode_batch_binary(body: bytes) -> Batch:
    if len(body) < _BATCH_HEAD.size:
        raise FrameError(f"binary batch header truncated ({len(body)} bytes)")
    _tag, count = _BATCH_HEAD.unpack_from(body)
    if count < 1:
        raise FrameError("binary batch must carry at least one result")
    members = []
    offset = _BATCH_HEAD.size
    for _ in range(count):
        if len(body) - offset < _BATCH_ITEM_LEN.size:
            raise FrameError("binary batch member length truncated")
        (item_len,) = _BATCH_ITEM_LEN.unpack_from(body, offset)
        offset += _BATCH_ITEM_LEN.size
        end = offset + item_len
        if end > len(body):
            raise FrameError("binary batch member body truncated")
        members.append(_decode_result_binary(body[offset:end]))
        offset = end
    if offset != len(body):
        raise FrameError(
            f"binary batch length mismatch: {len(body) - offset} trailing bytes"
        )
    return Batch(frames=tuple(members))


def _json_tail_frame(tag: int, obj: Dict[str, object]) -> bytes:
    return bytes([tag]) + json.dumps(
        obj, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")


def _decode_json_tail(body: bytes, what: str) -> Dict[str, object]:
    try:
        obj = json.loads(body[1:].decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise FrameError(f"binary {what} tail is not JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise FrameError(f"binary {what} tail must be a JSON object")
    return obj


class BinaryCodec:
    """The struct-packed wire codec (hello frames stay JSON by design)."""

    name = "binary"

    def encode(self, frame: Frame, max_bytes: Optional[int] = None) -> bytes:
        if isinstance(frame, (Hello, HelloOk)):
            # the negotiation itself must be readable pre-negotiation
            return JSON_CODEC.encode(frame, max_bytes)
        if isinstance(frame, Result):
            body = _encode_result_binary(frame)
        elif isinstance(frame, Batch):
            body = _encode_batch_binary(frame)
        elif isinstance(frame, Ack):
            if not 0 <= frame.seq <= _U32_MAX:
                raise FrameError(f"seq {frame.seq} does not fit u32")
            body = _ACK.pack(TAG_ACK, frame.seq)
        elif isinstance(frame, Metrics):
            body = _json_tail_frame(TAG_METRICS, frame.snapshot)
        elif isinstance(frame, MetricsOk):
            body = bytes([TAG_METRICS_OK])
        elif isinstance(frame, Bye):
            body = _json_tail_frame(
                TAG_BYE,
                {
                    "device_id": frame.device_id,
                    "sent": frame.sent,
                    "retries": frame.retries,
                    "reconnects": frame.reconnects,
                },
            )
        elif isinstance(frame, ByeOk):
            body = bytes([TAG_BYE_OK])
        elif isinstance(frame, ProtocolError):
            body = bytes([TAG_ERROR]) + frame.error.encode("utf-8")
        else:
            raise TypeError(f"not a frame: {frame!r}")
        return prefix_body(body) if max_bytes is None else prefix_body(body, max_bytes)

    def decode(self, body: bytes) -> Frame:
        return decode_any(body)


JSON_CODEC = JsonCodec()
BINARY_CODEC = BinaryCodec()

#: Codec objects by negotiated name.
WIRE_CODECS = {"json": JSON_CODEC, "binary": BINARY_CODEC}


def codec_for(name: str):
    """The codec object for a negotiated codec name."""
    try:
        return WIRE_CODECS[name]
    except KeyError:
        raise FrameError(f"unknown wire codec {name!r}") from None


def decode_any(body: bytes) -> Frame:
    """Decode one frame body of either codec, dispatching on byte 0.

    JSON objects start with ``{`` (0x7B); binary bodies start with a
    kind tag in 0x81–0x87.  This is what lets one server read binary
    and JSON clients on adjacent connections with no decode state.
    """
    if not body:
        raise FrameError("empty frame body")
    first = body[0]
    if first == 0x7B:  # '{'
        return JSON_CODEC.decode(body)
    if first == TAG_RESULT:
        return _decode_result_binary(body)
    if first == TAG_BATCH:
        return _decode_batch_binary(body)
    if first == TAG_ACK:
        if len(body) != _ACK.size:
            raise FrameError(f"binary ack must be {_ACK.size} bytes, got {len(body)}")
        _tag, seq = _ACK.unpack(body)
        return Ack(seq=seq)
    if first == TAG_METRICS:
        return Metrics(snapshot=_decode_json_tail(body, "metrics"))
    if first == TAG_BYE:
        obj = _decode_json_tail(body, "bye")
        try:
            return Bye(
                device_id=str(obj.get("device_id", "?")),
                sent=int(obj.get("sent", 0)),
                retries=int(obj.get("retries", 0)),
                reconnects=int(obj.get("reconnects", 0)),
            )
        except (TypeError, ValueError) as exc:
            raise FrameError(f"binary bye tail invalid: {exc}") from exc
    if first == TAG_METRICS_OK:
        return MetricsOk()
    if first == TAG_BYE_OK:
        return ByeOk()
    if first == TAG_ERROR:
        try:
            return ProtocolError(error=body[1:].decode("utf-8"))
        except UnicodeDecodeError as exc:
            raise FrameError(f"binary error tail is not UTF-8: {exc}") from exc
    raise FrameError(f"unknown frame leading byte 0x{first:02x}")


def negotiate_codec(offered: Tuple[str, ...], policy: str) -> str:
    """The server side of codec negotiation.

    ``offered`` is the client hello's ``codecs`` tuple (empty for
    revision-1 clients); ``policy`` is the server's configured codec.
    Servers never *require* binary — a JSON-only client must always
    complete its run — so ``"binary"`` and ``"auto"`` differ only in
    preference order against a multi-codec client.
    """
    if policy == "json" or not offered:
        return "json"
    if "binary" in offered:
        return "binary"
    return "json"
