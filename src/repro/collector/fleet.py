"""The fleet driver: N simulated devices streaming into one collector.

This is the bridge from "fast on one host" (:mod:`repro.parallel`) to
"serves a fleet": a :class:`FleetDriver` stands up a
:class:`~repro.collector.server.CollectorServer`, runs ``devices``
independent victims — each one a full :class:`~repro.api.AttackConfig`
attack run over its own simulated sessions, optionally sharded across
worker processes — and has every device report its results through a
:class:`~repro.collector.client.CollectorClient` with the full
retry/dedup discipline.  The product is a :class:`FleetReport`: the
ingested payloads, the loss/duplicate/retry accounting, and the merged
run manifest.

Every payload carries the session's ground-truth **counter deltas** —
the cumulative values of the 11 selected performance counters at the
end of the victim trace, in Table-1 order — which is exactly the
fixed-width block the binary wire codec ships as one struct pack (see
:mod:`repro.collector.frames`).  The collector tier's transport,
codec, and backpressure knobs all come from one
:class:`~repro.collector.config.CollectorConfig`.

Device identity and seeding: device ``d`` is ``device-{d:04d}`` and
seeds everything (victim traces, attack RNG, network fault stream,
backoff jitter) from ``seed + 1000*d``, so a fleet run is deterministic
end to end *except* for wall-clock rates — and any device's run can be
reproduced alone from its id.

Devices run on a thread pool.  The attack compute holds the GIL, but
the delivery path (socket round trips, injected backoff) overlaps, and
``workers=N`` moves the compute into processes per device when real
parallelism is wanted; the driver exists to exercise the *network*
layer, not to replace :mod:`repro.parallel`.
"""

from __future__ import annotations

import shutil
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.collector.client import (
    ClientStats,
    CollectorClient,
    CollectorClientError,
)
from repro.collector.config import CollectorConfig, RetryPolicy, shim_legacy_kwargs
from repro.collector.framing import SessionResultPayload
from repro.collector.journal import count_journal_records
from repro.collector.router import CollectorTier
from repro.collector.server import CollectorHandle
from repro.obs import MetricsRegistry, RunManifest

#: Seed stride between devices — wide enough that per-session offsets
#: within a device can never collide with the next device's block.
DEVICE_SEED_STRIDE = 1000

#: Fleet runs default to a fast backoff: simulated devices should not
#: serialize a test run on wall-clock sleeps.
FLEET_RETRY = RetryPolicy(base_delay_s=0.01, max_delay_s=0.25)

#: A drill-friendly backoff: enough budget to ride out a SIGKILL'd
#: shard's restart (~1s of process spawn) without hours of max_delay.
DRILL_RETRY = RetryPolicy(max_attempts=16, base_delay_s=0.02, max_delay_s=0.5)

#: How long the driver waits for the drill thread after devices finish.
SHARD_JOIN_TIMEOUT_S = 60.0

#: Legacy per-call keywords → the CollectorConfig field each one sets.
_LEGACY_FLEET_KWARGS = {
    "transport": "transport",
    "unix_path": "unix_path",
    "queue_size": "queue_size",
    "read_timeout_s": "read_timeout_s",
    "retry": "retry",
}


def trace_counter_deltas(trace) -> Tuple[int, ...]:
    """The session's cumulative counter values in Table-1 order.

    This is the ground-truth 11-slot block a device reports with each
    result — the same fixed-width layout the binary codec packs as
    ``11×u64``.
    """
    from repro.gpu.timeline import COUNTER_ORDER

    values = trace.timeline.values_at(trace.timeline.end_time_s)
    return tuple(int(values.get(cid, 0)) for cid in COUNTER_ORDER)


@dataclass
class DeviceOutcome:
    """One device's view of its own run and delivery."""

    device_id: str
    sessions: int
    delivered: int
    undelivered: int
    exact: int
    stats: ClientStats
    error: Optional[str] = None


@dataclass(frozen=True)
class KillDrill:
    """A scripted SIGKILL/restart of one collector shard mid-fleet.

    The fault drill the durable tier exists to pass: once shard
    ``shard``'s journal holds at least ``after_results`` records (i.e.
    it has acked real work), the driver SIGKILLs that shard's process,
    waits ``restart_delay_s``, and restarts it on the same endpoint.
    Devices routed to the dead shard retry through the outage — size
    the collector's :class:`RetryPolicy` budget to cover the restart
    (spawning a fresh process takes on the order of a second).  If the
    fleet finishes before the trigger threshold is reached, the kill
    fires anyway at the end, so the drill never silently degrades into
    a no-op.
    """

    shard: int = 0
    after_results: int = 1
    restart_delay_s: float = 0.1

    def __post_init__(self) -> None:
        if self.shard < 0:
            raise ValueError("shard must be >= 0")
        if self.after_results < 1:
            raise ValueError("after_results must be >= 1")
        if self.restart_delay_s < 0:
            raise ValueError("restart_delay_s must be >= 0")


@dataclass
class FleetReport:
    """Everything one fleet run produced, from both ends of the wire."""

    devices: int
    sessions_total: int
    ingested: int
    lost: int
    duplicates_dropped: int
    exact: int
    degraded: int
    retries: int
    reconnects: int
    wall_s: float
    ingest_rate: float
    codec_counts: Dict[str, int] = field(default_factory=dict)
    results: List[SessionResultPayload] = field(default_factory=list)
    outcomes: List[DeviceOutcome] = field(default_factory=list)
    manifest: Optional[RunManifest] = None
    shards: int = 1
    replayed: int = 0

    @property
    def exact_rate(self) -> float:
        return self.exact / self.sessions_total if self.sessions_total else 0.0


class FleetDriver:
    """Run a simulated device fleet against one collector.

    Args:
        store: the preloaded :class:`~repro.core.model_store.ModelStore`
            every device attacks with.
        device_config / target / credential: the victim scenario each
            device runs (same scenario, device-unique seeds).
        devices / sessions_per_device: fleet shape.
        config: the :class:`~repro.api.AttackConfig`; its fault plan
            drives *both* the KGSL-layer faults inside each device run
            and the network-layer drops/slow-reads on the uplink.
        workers: per-device ``run_sessions`` workers (processes).
        collector: the :class:`~repro.collector.config.CollectorConfig`
            for the whole tier — transport, wire codec, backpressure
            bound, retry schedule.  The old per-call keywords
            (``transport=``, ``queue_size=``, ``retry=``, ...) keep
            working through a deprecation shim.
        metrics: optional caller registry; when enabled, each device
            also records a device-side registry, ships its snapshot, and
            the merged collector registry is folded back into ``metrics``.
        device_threads: thread-pool width for concurrent devices.
        drill: optional :class:`KillDrill` — SIGKILL + restart one
            collector shard mid-run (requires ``collector.shards > 1``).
    """

    def __init__(
        self,
        store,
        device_config,
        target,
        credential: str,
        devices: int = 3,
        sessions_per_device: int = 2,
        config=None,
        seed: int = 7,
        workers: int = 1,
        collector: Optional[CollectorConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        device_threads: Optional[int] = None,
        drill: Optional[KillDrill] = None,
        **legacy,
    ) -> None:
        if devices < 1:
            raise ValueError("devices must be >= 1")
        if sessions_per_device < 1:
            raise ValueError("sessions_per_device must be >= 1")
        if config is None:
            from repro.api import AttackConfig

            config = AttackConfig()
        if collector is None:
            collector = CollectorConfig(retry=FLEET_RETRY)
        collector = shim_legacy_kwargs(
            collector, legacy, "FleetDriver", _LEGACY_FLEET_KWARGS
        )
        if drill is not None:
            if collector.shards < 2:
                raise ValueError("a kill drill requires collector.shards >= 2")
            if drill.shard >= collector.shards:
                raise ValueError(
                    f"drill.shard {drill.shard} out of range for "
                    f"{collector.shards} shards"
                )
        self.store = store
        self.device_config = device_config
        self.target = target
        self.credential = credential
        self.devices = devices
        self.sessions_per_device = sessions_per_device
        self.config = config
        self.seed = seed
        self.workers = workers
        self.collector = collector
        self.metrics = metrics
        self.device_threads = device_threads
        self.drill = drill

    # ------------------------------------------------------------------

    def _run_device(self, d: int, endpoint) -> DeviceOutcome:
        """One device: simulate → attack → stream results to the collector."""
        from repro.api import run_sessions, simulate

        device_id = f"device-{d:04d}"
        dev_seed = self.seed + DEVICE_SEED_STRIDE * d
        metrics_on = self.metrics is not None and self.metrics.enabled
        registry = MetricsRegistry() if metrics_on else None
        traces = [
            simulate(
                self.device_config,
                self.target,
                self.credential,
                seed=dev_seed + i,
                config=self.config,
            )
            for i in range(self.sessions_per_device)
        ]
        batch = run_sessions(
            self.store,
            traces,
            seed=dev_seed + 500,
            config=self.config,
            metrics=registry,
            workers=self.workers,
        )
        delivered = 0
        undelivered = 0
        exact = 0
        client = CollectorClient(
            endpoint,
            device_id,
            fault_plan=self.config.resolved_fault_plan(),
            config=self.collector,
            seed_offset=dev_seed,
        )
        with client:
            for i, result in enumerate(batch):
                payload = SessionResultPayload.from_result(
                    result,
                    device_id=device_id,
                    session_index=i,
                    seed=dev_seed + i,
                    expected=self.credential,
                    deltas=trace_counter_deltas(traces[i]),
                )
                if payload.exact:
                    exact += 1
                try:
                    client.send_result(payload)
                    delivered += 1
                except CollectorClientError:
                    undelivered += 1
            if registry is not None:
                client.send_metrics(registry.snapshot())
        return DeviceOutcome(
            device_id=device_id,
            sessions=len(batch),
            delivered=delivered,
            undelivered=undelivered,
            exact=exact,
            stats=client.stats,
        )

    def _run_pool(self, endpoint_of) -> List[DeviceOutcome]:
        """Run every device on the thread pool; ``endpoint_of(d)`` routes."""
        outcomes: List[DeviceOutcome] = []
        width = self.device_threads or min(self.devices, 8)
        with ThreadPoolExecutor(max_workers=width) as pool:
            futures = [
                pool.submit(self._run_device, d, endpoint_of(d))
                for d in range(self.devices)
            ]
            for d, future in enumerate(futures):
                try:
                    outcomes.append(future.result())
                except Exception as exc:  # a device died outright
                    outcomes.append(
                        DeviceOutcome(
                            device_id=f"device-{d:04d}",
                            sessions=self.sessions_per_device,
                            delivered=0,
                            undelivered=self.sessions_per_device,
                            exact=0,
                            stats=ClientStats(),
                            error=f"{type(exc).__name__}: {exc}",
                        )
                    )
        return outcomes

    def run(self) -> FleetReport:
        """Stand up the collector, run every device, drain, and report."""
        if self.collector.shards > 1:
            return self._run_sharded()
        handle = CollectorHandle(self.collector)
        endpoint = handle.start()
        started = time.perf_counter()
        try:
            outcomes = self._run_pool(lambda d: endpoint)
        finally:
            handle.stop(drain=True)
        wall = time.perf_counter() - started
        server = handle.server
        counters: Dict[str, int] = {
            name: server.registry.counter(name).value
            for name in (
                "collector.sessions_ingested",
                "collector.dupes_dropped",
                "collector.sessions_exact",
                "collector.sessions_degraded",
            )
        }
        codec_counts = {
            name: server.registry.counter(f"collector.codec.{name}").value
            for name in ("binary", "json")
        }
        sessions_total = self.devices * self.sessions_per_device
        ingested = counters["collector.sessions_ingested"]
        results = sorted(
            server.results, key=lambda p: (p.device_id, p.session_index)
        )
        report = FleetReport(
            devices=self.devices,
            sessions_total=sessions_total,
            ingested=ingested,
            lost=sessions_total - ingested,
            duplicates_dropped=counters["collector.dupes_dropped"],
            exact=counters["collector.sessions_exact"],
            degraded=counters["collector.sessions_degraded"],
            retries=sum(o.stats.retries for o in outcomes),
            reconnects=sum(o.stats.reconnects for o in outcomes),
            wall_s=wall,
            ingest_rate=ingested / wall if wall > 0 else 0.0,
            codec_counts=codec_counts,
            results=results,
            outcomes=outcomes,
        )
        meta = {
            "command": "fleet",
            "devices": self.devices,
            "sessions": sessions_total,
            "workers": self.workers,
            "codec": self.collector.codec,
        }
        if self.metrics is not None and self.metrics.enabled:
            # fold the collector's registry (which already absorbed the
            # per-device snapshots) into the caller's run registry, so
            # one manifest covers attack + network + ingestion
            self.metrics.merge_snapshot(server.registry.snapshot())
            report.manifest = self.metrics.manifest(
                config=self.config.to_dict(), **meta
            )
        else:
            report.manifest = server.report(**meta)
        return report

    # -- sharded tier ---------------------------------------------------

    def _run_drill(self, tier: CollectorTier, devices_done: threading.Event,
                   errors: List[BaseException]) -> None:
        """The kill/restart drill: trigger, SIGKILL, wait, respawn."""
        drill = self.drill
        wal = tier.journal_file(drill.shard)
        try:
            while not devices_done.is_set():
                admitted = count_journal_records(
                    wal, self.collector.max_frame_bytes
                )
                if admitted >= drill.after_results:
                    break
                time.sleep(0.02)
            # fire even if the fleet beat us to the finish line: the
            # restarted shard must still replay to a correct manifest
            tier.kill(drill.shard)
            time.sleep(drill.restart_delay_s)
            tier.restart(drill.shard)
        except BaseException as exc:
            errors.append(exc)

    def _run_sharded(self) -> FleetReport:
        """The multi-process path: router + journaled shards + merge."""
        collector = self.collector
        tmp_dir: Optional[str] = None
        if collector.journal_dir is None:
            # the tier requires journals (they carry the results back);
            # an unset journal_dir means "ephemeral run", so host the
            # journals in a scratch dir that dies with the report
            tmp_dir = tempfile.mkdtemp(prefix="repro-collector-")
            collector = collector.with_overrides(journal_dir=tmp_dir)
        tier = CollectorTier(collector, seed=self.seed)
        tier.start()
        started = time.perf_counter()
        devices_done = threading.Event()
        drill_errors: List[BaseException] = []
        drill_thread: Optional[threading.Thread] = None
        try:
            if self.drill is not None:
                drill_thread = threading.Thread(
                    target=self._run_drill,
                    args=(tier, devices_done, drill_errors),
                    name="repro-kill-drill",
                    daemon=True,
                )
                drill_thread.start()
            outcomes = self._run_pool(
                lambda d: tier.endpoint_for(f"device-{d:04d}")
            )
            devices_done.set()
            if drill_thread is not None:
                drill_thread.join(timeout=SHARD_JOIN_TIMEOUT_S)
        finally:
            devices_done.set()
            tier.stop()
        wall = time.perf_counter() - started
        if drill_errors:
            raise RuntimeError(
                f"kill drill failed: {drill_errors[0]!r}"
            ) from drill_errors[0]
        sessions_total = self.devices * self.sessions_per_device
        meta = {
            "command": "fleet",
            "devices": self.devices,
            "sessions": sessions_total,
            "workers": self.workers,
            "codec": collector.codec,
            "shards": collector.shards,
        }
        manifest = tier.merged_manifest(**meta)
        counters = manifest.counters
        ingested = int(counters.get("collector.sessions_ingested", 0))
        payloads, _journal_dupes = tier.journal_results()
        results = sorted(payloads, key=lambda p: (p.device_id, p.session_index))
        if self.metrics is not None and self.metrics.enabled:
            self.metrics.merge_snapshot(
                {
                    "counters": manifest.counters,
                    "gauges": manifest.gauges,
                    "histograms": manifest.histograms,
                    "spans": manifest.spans,
                }
            )
            manifest = self.metrics.manifest(config=self.config.to_dict(), **meta)
        report = FleetReport(
            devices=self.devices,
            sessions_total=sessions_total,
            ingested=ingested,
            lost=sessions_total - ingested,
            duplicates_dropped=int(counters.get("collector.dupes_dropped", 0)),
            exact=int(counters.get("collector.sessions_exact", 0)),
            degraded=int(counters.get("collector.sessions_degraded", 0)),
            retries=sum(o.stats.retries for o in outcomes),
            reconnects=sum(o.stats.reconnects for o in outcomes),
            wall_s=wall,
            ingest_rate=ingested / wall if wall > 0 else 0.0,
            codec_counts={
                name: int(counters.get(f"collector.codec.{name}", 0))
                for name in ("binary", "json")
            },
            results=results,
            outcomes=outcomes,
            manifest=manifest,
            shards=collector.shards,
            replayed=int(counters.get("collector.journal.replayed", 0)),
        )
        if tmp_dir is not None:
            shutil.rmtree(tmp_dir, ignore_errors=True)
        return report
