"""The write-ahead journal: durable exactly-once across collector kills.

A :class:`CollectorJournal` is an append-only file of **admitted**
result frames.  The server appends a record the moment a result clears
the bounded queue — *before* the ack goes back to the client — so the
sequence "ack received" implies "record durable".  A collector that is
SIGKILL'd mid-run replays its journal on restart: the ``(device_id,
seq)`` dedup set is rebuilt from the records instead of living only in
process memory, every journaled payload is re-aggregated exactly once,
and the resends arriving from clients that never saw their acks are
re-acked as duplicates.  That upgrade — from "exactly-once while the
process lives" to "exactly-once across process death" — is what lets
the fleet tier (:mod:`repro.collector.router`) kill and restart
collectors without losing or double-counting a session.

Record format: each record is one binary ``result`` or ``batch`` frame
exactly as the wire codec packs it (:mod:`repro.collector.frames`) — a
4-byte big-endian length prefix followed by the struct-packed body.  No
separate journal schema to version: the journal *is* the wire format,
so a record round-trips through :func:`~repro.collector.frames.decode_any`
like any received frame, and torn tails are detected the same way
truncated connections are.  Readers flatten batch records into their
member results, so replay and :func:`count_journal_records` always
operate per session regardless of how the sessions arrived.

Torn tails: a process killed mid-``write`` leaves a partial record at
the end of the file.  On open the journal scans forward record by
record, keeps the longest valid prefix, truncates the torn bytes, and
appends new records after the last intact one.  A SIGKILL can therefore
cost at most the one record whose ack never went out — which the client
resends anyway.

Sync policy (``CollectorConfig.journal_sync``):

* ``"flush"`` (default) — ``flush()`` per append.  The bytes reach the
  kernel page cache, which survives **process** death (SIGKILL, the
  fault this tier drills); only an OS crash or power loss can lose
  them.
* ``"fsync"`` — ``flush()`` + ``os.fsync`` per append: survives OS
  crash at a per-record fsync cost.
* ``"none"`` — library buffering only; flushed on close.  For
  throughput experiments where durability is not under test.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple

from repro.collector.frames import BINARY_CODEC, Batch, Result, decode_any
from repro.collector.framing import MAX_FRAME_BYTES, FrameError, parse_length

#: Accepted values of ``CollectorConfig.journal_sync``.
JOURNAL_SYNC_MODES = ("none", "flush", "fsync")

#: Bytes of the record length prefix (shared with the wire framing).
_PREFIX_LEN = 4


class JournalError(Exception):
    """The journal could not be opened or appended to."""


def journal_path(journal_dir, shard_index: int) -> Path:
    """Where shard ``shard_index`` of a collector tier keeps its journal."""
    return Path(journal_dir) / f"shard-{shard_index:04d}.wal"


@dataclass
class JournalRecovery:
    """What one journal scan found: the intact records and the damage."""

    records: List[Result] = field(default_factory=list)
    valid_bytes: int = 0
    truncated_bytes: int = 0

    @property
    def torn(self) -> bool:
        return self.truncated_bytes > 0


def read_journal(path, max_frame_bytes: int = MAX_FRAME_BYTES) -> JournalRecovery:
    """Scan a journal file into its longest valid prefix of records.

    Returns every intact record in append order and the byte counts
    needed to truncate a torn tail.  A missing file is an empty journal.
    Records are returned raw — duplicates included — because dedup
    policy belongs to the replayer (the server's ``(device, seq)`` set,
    or :func:`dedupe_records` for offline readers).
    """
    path = Path(path)
    if not path.exists():
        return JournalRecovery()
    data = path.read_bytes()
    records: List[Result] = []
    offset = 0
    total = len(data)
    while total - offset >= _PREFIX_LEN:
        try:
            length = parse_length(
                data[offset:offset + _PREFIX_LEN], max_frame_bytes
            )
        except FrameError:
            break
        end = offset + _PREFIX_LEN + length
        if end > total:
            break
        try:
            frame = decode_any(data[offset + _PREFIX_LEN:end])
        except FrameError:
            break
        if isinstance(frame, Batch):
            # batch records flatten to their member results, so every
            # reader (replay, count, dedup) sees one record per session
            records.extend(frame.frames)
        elif isinstance(frame, Result):
            records.append(frame)
        else:
            break
        offset = end
    return JournalRecovery(
        records=records, valid_bytes=offset, truncated_bytes=total - offset
    )


def count_journal_records(path, max_frame_bytes: int = MAX_FRAME_BYTES) -> int:
    """How many intact records a journal currently holds (cheap poll)."""
    return len(read_journal(path, max_frame_bytes).records)


def dedupe_records(records: List[Result]) -> Tuple[List[Result], int]:
    """First-seen-wins dedup by ``(device_id, seq)``; returns (unique, dupes)."""
    seen = set()
    unique: List[Result] = []
    dupes = 0
    for frame in records:
        key = (frame.payload.device_id, frame.seq)
        if key in seen:
            dupes += 1
            continue
        seen.add(key)
        unique.append(frame)
    return unique, dupes


class CollectorJournal:
    """Append-only journal of admitted results for one collector shard.

    Usage is ``open()`` (scan + truncate torn tail + position for
    append), then ``append(frame)`` per admitted result, then
    ``close()``.  ``open()`` returns the :class:`JournalRecovery` so the
    server can rebuild its dedup set and re-aggregate in one pass.
    """

    def __init__(
        self,
        path,
        sync: str = "flush",
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ) -> None:
        if sync not in JOURNAL_SYNC_MODES:
            raise ValueError(
                f"journal sync must be one of {JOURNAL_SYNC_MODES}, got {sync!r}"
            )
        self.path = Path(path)
        self.sync = sync
        self.max_frame_bytes = max_frame_bytes
        self.appended = 0
        self._fh: Optional[object] = None

    @property
    def is_open(self) -> bool:
        return self._fh is not None

    def open(self) -> JournalRecovery:
        """Recover the valid prefix, drop any torn tail, open for append."""
        if self._fh is not None:
            raise JournalError(f"journal {self.path} is already open")
        recovery = read_journal(self.path, self.max_frame_bytes)
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            if recovery.torn:
                # a kill mid-write left partial bytes: cut back to the
                # last intact record so new appends stay parseable
                with open(self.path, "r+b") as fh:
                    fh.truncate(recovery.valid_bytes)
            self._fh = open(self.path, "ab")
        except OSError as exc:
            raise JournalError(f"cannot open journal {self.path}: {exc}") from exc
        return recovery

    def append(self, frame) -> None:
        """Durably record one admitted result or batch (before its ack)."""
        if self._fh is None:
            raise JournalError(f"journal {self.path} is not open")
        data = BINARY_CODEC.encode(frame, self.max_frame_bytes)
        self._fh.write(data)
        if self.sync != "none":
            self._fh.flush()
            if self.sync == "fsync":
                os.fsync(self._fh.fileno())
        self.appended += 1

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.flush()
            finally:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "CollectorJournal":
        if self._fh is None:
            self.open()
        return self

    def __exit__(self, *exc) -> None:
        self.close()
