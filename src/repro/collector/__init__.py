"""Fleet ingestion: the collector service, client, and fleet driver.

The first cross-process networking layer of the reproduction — many
simulated devices stream their :class:`SessionResultPayload` frames into
one asyncio :class:`CollectorServer` with bounded-queue backpressure,
retry-until-acked delivery, and ``(device_id, seq)`` deduplication.
``docs/collector.md`` is the full guide.
"""

from repro.collector.client import (
    ClientStats,
    CollectorClient,
    CollectorClientError,
    NetworkFaultInjector,
    RetryPolicy,
)
from repro.collector.fleet import (
    DEVICE_SEED_STRIDE,
    DeviceOutcome,
    FleetDriver,
    FleetReport,
)
from repro.collector.framing import (
    MAX_FRAME_BYTES,
    PROTO_VERSION,
    ConnectionClosed,
    FrameError,
    SessionResultPayload,
    decode_body,
    encode_frame,
    read_frame_sock,
)
from repro.collector.server import CollectorHandle, CollectorServer

__all__ = [
    "CollectorServer",
    "CollectorHandle",
    "CollectorClient",
    "CollectorClientError",
    "ClientStats",
    "NetworkFaultInjector",
    "RetryPolicy",
    "FleetDriver",
    "FleetReport",
    "DeviceOutcome",
    "DEVICE_SEED_STRIDE",
    "SessionResultPayload",
    "FrameError",
    "ConnectionClosed",
    "encode_frame",
    "decode_body",
    "read_frame_sock",
    "MAX_FRAME_BYTES",
    "PROTO_VERSION",
]
