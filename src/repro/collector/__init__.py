"""Fleet ingestion: the collector service, client, and fleet driver.

The first cross-process networking layer of the reproduction — many
simulated devices stream their :class:`SessionResultPayload` frames into
one asyncio :class:`CollectorServer` with bounded-queue backpressure,
retry-until-acked delivery, and ``(device_id, seq)`` deduplication.
The wire speaks two negotiated codecs — a struct-packed binary frame
format (the 11 counter deltas as fixed u64s) and length-prefixed JSON
as the compatibility fallback — configured through one
:class:`CollectorConfig`.  ``docs/collector.md`` is the full guide.
"""

from repro.collector.client import (
    ClientStats,
    CollectorClient,
    CollectorClientError,
    NetworkFaultInjector,
)
from repro.collector.config import (
    CODECS,
    CollectorConfig,
    RetryPolicy,
)
from repro.collector.fleet import (
    DEVICE_SEED_STRIDE,
    DRILL_RETRY,
    DeviceOutcome,
    FleetDriver,
    FleetReport,
    KillDrill,
    trace_counter_deltas,
)
from repro.collector.frames import (
    BINARY_CODEC,
    JSON_CODEC,
    Ack,
    Batch,
    Bye,
    ByeOk,
    Frame,
    Hello,
    HelloOk,
    Metrics,
    MetricsOk,
    ProtocolError,
    Result,
    codec_for,
    decode_any,
    negotiate_codec,
)
from repro.collector.framing import (
    MAX_FRAME_BYTES,
    N_COUNTERS,
    PROTO_VERSION,
    ConnectionClosed,
    FrameError,
    FrameTooLarge,
    FrameTruncated,
    SessionResultPayload,
    decode_body,
    encode_frame,
    read_frame_sock,
)
from repro.collector.journal import (
    JOURNAL_SYNC_MODES,
    CollectorJournal,
    JournalError,
    JournalRecovery,
    count_journal_records,
    dedupe_records,
    journal_path,
    read_journal,
)
from repro.collector.router import CollectorTier, DeviceRouter
from repro.collector.server import CollectorHandle, CollectorServer

__all__ = [
    "CollectorServer",
    "CollectorHandle",
    "CollectorTier",
    "DeviceRouter",
    "CollectorJournal",
    "JournalError",
    "JournalRecovery",
    "JOURNAL_SYNC_MODES",
    "journal_path",
    "read_journal",
    "count_journal_records",
    "dedupe_records",
    "KillDrill",
    "DRILL_RETRY",
    "CollectorClient",
    "CollectorClientError",
    "CollectorConfig",
    "CODECS",
    "ClientStats",
    "NetworkFaultInjector",
    "RetryPolicy",
    "FleetDriver",
    "FleetReport",
    "DeviceOutcome",
    "DEVICE_SEED_STRIDE",
    "trace_counter_deltas",
    "SessionResultPayload",
    "FrameError",
    "FrameTooLarge",
    "FrameTruncated",
    "ConnectionClosed",
    "Frame",
    "Hello",
    "HelloOk",
    "Result",
    "Ack",
    "Batch",
    "Metrics",
    "MetricsOk",
    "Bye",
    "ByeOk",
    "ProtocolError",
    "JSON_CODEC",
    "BINARY_CODEC",
    "codec_for",
    "decode_any",
    "negotiate_codec",
    "encode_frame",
    "decode_body",
    "read_frame_sock",
    "MAX_FRAME_BYTES",
    "N_COUNTERS",
    "PROTO_VERSION",
]
