"""The asyncio ingestion service the fleet reports into.

A :class:`CollectorServer` accepts length-prefixed frames (see
:mod:`repro.collector.framing`) over TCP or a unix socket, pushes every
accepted result through a **bounded in-flight queue**, and aggregates on
the far side of it into the run's :class:`~repro.obs.MetricsRegistry`
and result list.

Frames arrive as typed objects (:mod:`repro.collector.frames`):
:func:`~repro.collector.frames.decode_any` dispatches on the body's
first byte, so binary and JSON clients coexist on adjacent connections
— the codec chosen in the ``hello`` exchange only governs what the
*server* writes back.  A JSON-only (protocol revision 1) client that
offers no codecs gets JSON replies and completes its run unchanged.

Why a queue at all?  Backpressure.  The connection handlers are I/O
bound and cheap; aggregation (metrics merging, result retention, user
callbacks) is the part that can fall behind under fleet load.  With a
bounded queue, a slow aggregator makes ``queue.put`` await, which stops
that connection's read loop, which fills the kernel socket buffer,
which blocks the client's ``send`` — backpressure propagates to the
device instead of growing server memory without limit.  The ``ack`` for
a result frame is written only *after* the enqueue succeeds, so a
client's retry discipline composes with the server's admission control.

Delivery contract: resends are deduplicated by ``(device_id, seq)``
(counted as ``collector.dupes_dropped`` and re-acked), so a client that
resends until acked gets **exactly-once aggregation** over an
at-least-once transport.  A seq is marked seen only *after* its enqueue
succeeds (a handler cancelled mid-``put`` has admitted nothing, so the
client's resend must aggregate, not dupe-ack); concurrent resends of a
frame whose original admission is still blocked in ``put`` wait on that
admission's outcome instead of double-admitting.  With
``config.journal_dir`` set the contract is *durable*: every admitted
result is appended to a write-ahead journal
(:mod:`repro.collector.journal`) before its ack, and ``start()``
replays the journal — rebuilding the dedup set and re-aggregating every
journaled payload — so a SIGKILL'd collector resumes exactly-once
aggregation where it died.

Protocol errors are clean: an oversized length prefix or a peer closing
mid-frame counts ``collector.frames.rejected`` and closes the
connection with a typed error reply where possible — never a raw
``asyncio.IncompleteReadError`` escaping a handler.

Shutdown is a graceful drain: stop accepting, close idle connections,
wait for in-flight handlers, then run the queue dry before the
aggregator exits — nothing admitted is ever dropped.

The server exports ``collector.*`` metrics (ingest counters, codec
negotiation tallies, queue depth gauges, retry tallies reported by
clients at ``bye``); the full table is in ``docs/collector.md``.

Threading: :class:`CollectorServer` is pure asyncio.  Synchronous
callers (the CLI, tests, :class:`~repro.collector.fleet.FleetDriver`)
use :class:`CollectorHandle`, which hosts the server's event loop on a
daemon thread and exposes plain ``start()`` / ``stop()``.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
from typing import Dict, List, Optional, Set, Tuple

from repro.collector.config import CollectorConfig, shim_legacy_kwargs
from repro.collector.frames import (
    Ack,
    Batch,
    Bye,
    ByeOk,
    Hello,
    HelloOk,
    Metrics,
    MetricsOk,
    ProtocolError,
    Result,
    codec_for,
    decode_any,
    negotiate_codec,
)
from repro.collector.framing import (
    PROTO_VERSION,
    ConnectionClosed,
    FrameError,
    FrameTooLarge,
    FrameTruncated,
    SessionResultPayload,
    read_body_async,
)
from repro.collector.journal import (
    CollectorJournal,
    JournalError,
    JournalRecovery,
    journal_path,
)
from repro.obs import MetricsRegistry, RunManifest

#: Endpoint tuples: ``("tcp", host, port)`` or ``("unix", path)``.
Endpoint = Tuple

#: Legacy per-call keywords → the CollectorConfig field each one sets.
_LEGACY_SERVER_KWARGS = {
    "transport": "transport",
    "host": "host",
    "port": "port",
    "unix_path": "unix_path",
    "queue_size": "queue_size",
    "read_timeout_s": "read_timeout_s",
    "drain_timeout_s": "drain_timeout_s",
    "max_frame_bytes": "max_frame_bytes",
}


class CollectorServer:
    """Bounded-queue frame ingestion over TCP or a unix socket.

    Args:
        config: the :class:`~repro.collector.config.CollectorConfig`
            holding every transport/codec/backpressure knob.  The old
            per-call keywords (``transport=``, ``queue_size=``, ...)
            still work through a deprecation shim.
        metrics: the registry aggregation lands in; defaults to a fresh
            enabled :class:`MetricsRegistry` (the collector always
            counts — its report *is* the product).
        keep_results: retain ingested payloads on :attr:`results`
            (aggregation-only deployments can turn this off).
        on_result: optional callback invoked by the aggregator for every
            accepted payload (runs on the event loop — keep it short, or
            rely on the queue bound to absorb it).  Journal replay does
            *not* re-invoke it: replayed payloads land in counters and
            ``results`` only.
        shard_index: which shard of a collector tier this server is
            (names its journal file; ``0`` for a standalone collector).
    """

    def __init__(
        self,
        config: Optional[CollectorConfig] = None,
        *,
        metrics: Optional[MetricsRegistry] = None,
        keep_results: bool = True,
        on_result=None,
        shard_index: int = 0,
        **legacy,
    ) -> None:
        config = shim_legacy_kwargs(
            config, legacy, "CollectorServer", _LEGACY_SERVER_KWARGS
        )
        self.config = config
        self.transport = config.transport
        self.host = config.host
        self.port = config.port
        self.unix_path = config.unix_path
        self.queue_size = config.queue_size
        self.read_timeout_s = config.read_timeout_s
        self.drain_timeout_s = config.drain_timeout_s
        self.max_frame_bytes = config.max_frame_bytes
        self.codec = config.codec
        self.registry = metrics if metrics is not None else MetricsRegistry()
        self.keep_results = keep_results
        self.on_result = on_result
        self.shard_index = shard_index

        self.results: List[SessionResultPayload] = []
        self._queue: Optional[asyncio.Queue] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._aggregator: Optional[asyncio.Task] = None
        self._handlers: Set[asyncio.Task] = set()
        self._seen: Dict[str, Set[int]] = {}
        self._pending: Dict[Tuple[str, int], asyncio.Future] = {}
        self._devices: Set[str] = set()
        self._journal: Optional[CollectorJournal] = None
        self._queue_peak = 0
        self._started_at: Optional[float] = None

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> Endpoint:
        """Bind, start serving, and return the connectable endpoint.

        A restart after :meth:`stop` begins a fresh run: the volatile
        aggregation state of the previous life (``results``, the
        ``_seen`` dedup set, queue stats, device tally) is reset so a
        new fleet's seqs — which restart at 0 per client — are not
        swallowed as duplicates.  Durable dedup is the journal's job:
        when ``config.journal_dir`` is set, the journal is replayed
        here and rebuilds exactly the state that must survive.
        """
        if self._server is not None:
            raise RuntimeError("collector already started")
        self.results = []
        self._seen = {}
        self._pending = {}
        self._devices = set()
        self._queue_peak = 0
        self._queue = asyncio.Queue(maxsize=self.queue_size)
        if self.config.journal_dir is not None:
            self._journal = CollectorJournal(
                journal_path(self.config.journal_dir, self.shard_index),
                sync=self.config.journal_sync,
                max_frame_bytes=self.max_frame_bytes,
            )
            self._replay(self._journal.open())
        if self.transport == "unix":
            try:
                # a previous life's socket file blocks the rebind
                os.unlink(self.unix_path)
            except (FileNotFoundError, OSError):
                pass
            self._server = await asyncio.start_unix_server(
                self._on_connection, path=self.unix_path
            )
        else:
            self._server = await asyncio.start_server(
                self._on_connection, host=self.host, port=self.port
            )
            self.port = self._server.sockets[0].getsockname()[1]
        self._aggregator = asyncio.create_task(self._aggregate())
        self._started_at = time.perf_counter()
        return self.endpoint

    @property
    def endpoint(self) -> Endpoint:
        """Where clients connect: ``("tcp", host, port)`` or ``("unix", path)``."""
        if self.transport == "unix":
            return ("unix", self.unix_path)
        return ("tcp", self.host, self.port)

    async def stop(self, drain: bool = True) -> None:
        """Stop accepting, drain in-flight work, and shut the service down.

        With ``drain=True`` (the default) every connection still talking
        gets up to ``drain_timeout_s`` to finish, and everything already
        admitted to the queue is aggregated before the aggregator task
        exits.  ``drain=False`` force-closes immediately (queued frames
        are still aggregated — they were acked).
        """
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        if self._handlers:
            if drain:
                await asyncio.wait(self._handlers, timeout=self.drain_timeout_s)
            for task in list(self._handlers):
                task.cancel()
            await asyncio.gather(*self._handlers, return_exceptions=True)
        await self._queue.join()
        self._aggregator.cancel()
        await asyncio.gather(self._aggregator, return_exceptions=True)
        if self._journal is not None:
            self._journal.close()
        wall = time.perf_counter() - (self._started_at or time.perf_counter())
        self.registry.gauge("collector.wall_s").set(wall)
        if wall > 0:
            ingested = self.registry.counter("collector.sessions_ingested").value
            self.registry.gauge("collector.ingest_rate").set(ingested / wall)
        self.registry.gauge("collector.queue_depth_peak").set(self._queue_peak)
        self._server = None

    def report(self, **meta) -> RunManifest:
        """The collector's run manifest (``collector.*`` rollups)."""
        return self.registry.manifest(
            transport=self.transport, queue_size=self.queue_size, **meta
        )

    # -- connection handling --------------------------------------------

    def _on_connection(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        task = asyncio.create_task(self._handle(reader, writer))
        self._handlers.add(task)
        task.add_done_callback(self._handlers.discard)

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        counters = self.registry.counter
        counters("collector.connections_opened").inc()
        # replies are JSON until the hello exchange negotiates otherwise
        reply_codec = codec_for("json")
        device_id = "?"
        try:
            while True:
                try:
                    body = await asyncio.wait_for(
                        read_body_async(reader, self.max_frame_bytes),
                        timeout=self.read_timeout_s,
                    )
                    frame = decode_any(body)
                except asyncio.TimeoutError:
                    counters("collector.connection_timeouts").inc()
                    return
                except ConnectionClosed:
                    return
                except FrameTooLarge as exc:
                    # the stream is desynchronized past this prefix:
                    # reject loudly, reply if the peer is still there,
                    # and close — never read the claimed body
                    counters("collector.frames.rejected").inc()
                    await self._reply_best_effort(
                        writer, reply_codec.encode(ProtocolError(str(exc)))
                    )
                    return
                except FrameTruncated:
                    # the peer died mid-frame: nothing left to reply to —
                    # count the rejection and fold
                    counters("collector.frames.rejected").inc()
                    return
                except FrameError as exc:
                    counters("collector.malformed_frames").inc()
                    await self._reply_best_effort(
                        writer, reply_codec.encode(ProtocolError(str(exc)))
                    )
                    return
                if isinstance(frame, Result):
                    device_id = frame.device_id or device_id
                    if not await self._admit_result(frame):
                        counters("collector.malformed_frames").inc()
                        return
                    writer.write(reply_codec.encode(Ack(seq=frame.seq)))
                elif isinstance(frame, Batch):
                    device_id = frame.frames[-1].device_id or device_id
                    await self._admit_batch(frame)
                    # a batch's ack is cumulative: the last member's seq
                    # acknowledges every member
                    writer.write(reply_codec.encode(Ack(seq=frame.frames[-1].seq)))
                elif isinstance(frame, Hello):
                    device_id = frame.device_id
                    if frame.proto != PROTO_VERSION:
                        counters("collector.proto_rejected").inc()
                        await self._reply_best_effort(
                            writer, reply_codec.encode(ProtocolError("proto mismatch"))
                        )
                        return
                    # a device is seen once, however many times it
                    # reconnects — `devices_seen` must equal fleet size
                    if frame.device_id not in self._devices:
                        self._devices.add(frame.device_id)
                        counters("collector.devices_seen").inc()
                    chosen = negotiate_codec(frame.codecs, self.codec)
                    reply_codec = codec_for(chosen)
                    counters(f"collector.codec.{chosen}").inc()
                    writer.write(reply_codec.encode(HelloOk(codec=chosen)))
                elif isinstance(frame, Metrics):
                    if frame.snapshot:
                        self.registry.merge_snapshot(frame.snapshot)
                        counters("collector.metrics_frames").inc()
                    writer.write(reply_codec.encode(MetricsOk()))
                elif isinstance(frame, Bye):
                    counters("collector.client_retries").inc(frame.retries)
                    counters("collector.client_reconnects").inc(frame.reconnects)
                    writer.write(reply_codec.encode(ByeOk()))
                    await writer.drain()
                    return
                else:
                    # Ack/HelloOk/MetricsOk/ByeOk/ProtocolError are
                    # server-to-client frames; a client sending one is
                    # confused
                    counters("collector.malformed_frames").inc()
                    return
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            # client went away mid-reply, or stop() force-closed us; any
            # un-acked frame will be resent to the next connection
            return
        finally:
            counters("collector.connections_closed").inc()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _reply_best_effort(writer: asyncio.StreamWriter, data: bytes) -> None:
        """Write + drain a terminal error reply, swallowing peer death.

        Without the drain the typed reply can sit in the transport
        buffer when the handler closes the socket and the peer sees a
        bare reset instead of the error; with it, a peer that is
        already gone must not turn the reply into a handler crash.
        """
        try:
            writer.write(data)
            await writer.drain()
        except (ConnectionError, OSError):
            pass

    async def _admit_result(self, frame: Result) -> bool:
        """Dedup-check one result frame and enqueue it; False = malformed.

        The enqueue is the backpressure point: with the queue full this
        awaits, the connection stops reading, and the client blocks in
        ``send`` until the aggregator catches up.

        Ordering is the whole contract: a seq is marked seen (and
        journaled, and acked) only *after* its ``put`` succeeds.  A
        handler cancelled mid-``put`` — the drain-timeout path of
        :meth:`stop` — has admitted nothing, so the client's resend
        must aggregate rather than dupe-ack.  While an admission is
        blocked in ``put``, a concurrent resend of the same ``(device,
        seq)`` waits on its claim future instead of double-admitting:
        the future resolves True once the original lands (resend →
        dupe-ack) or False if it was abandoned (resend retries the
        admission itself).
        """
        payload = frame.payload
        self.registry.counter("collector.frames_ingested").inc()
        key = (payload.device_id, frame.seq)
        while True:
            seen = self._seen.setdefault(payload.device_id, set())
            if frame.seq in seen:
                # a resend of something already admitted (its ack was
                # lost); re-ack without re-aggregating
                self.registry.counter("collector.dupes_dropped").inc()
                return True
            claim = self._pending.get(key)
            if claim is None:
                break
            if await asyncio.shield(claim):
                self.registry.counter("collector.dupes_dropped").inc()
                return True
            # the original admission was cancelled mid-put: loop and
            # admit this resend ourselves
        claim = asyncio.get_running_loop().create_future()
        self._pending[key] = claim
        try:
            await self._queue.put(payload)
        except BaseException:
            claim.set_result(False)
            raise
        else:
            # no awaits from here to set_result: admission is atomic
            # once the payload is in the queue
            if self._journal is not None:
                try:
                    self._journal.append(frame)
                except (JournalError, OSError):
                    self.registry.counter("collector.journal.errors").inc()
            self._seen.setdefault(payload.device_id, set()).add(frame.seq)
            claim.set_result(True)
        finally:
            self._pending.pop(key, None)
        depth = self._queue.qsize()
        if depth > self._queue_peak:
            self._queue_peak = depth
        self.registry.gauge("collector.queue_depth").set(depth)
        return True

    async def _admit_batch(self, batch: Batch) -> None:
        """Admit a batch: per-member dedup, one enqueue, one journal record.

        Each member carries its own ``(device_id, seq)`` identity and is
        deduplicated exactly as a lone result would be — a resent batch
        overlapping an earlier one admits only the unseen members.  The
        fresh members ride the bounded queue as **one** item and land in
        the journal as **one** record, which is the point: the
        per-result flush/enqueue/ack cost that bounds single-frame
        ingest is paid once per burst.  The same ordering contract
        holds — members are marked seen (and journaled) only after the
        enqueue succeeds, and concurrent resends of an in-flight member
        wait on its claim future.
        """
        counters = self.registry.counter
        counters("collector.frames_ingested").inc(len(batch.frames))
        counters("collector.batch_frames").inc()
        loop = asyncio.get_running_loop()
        fresh: List[Result] = []
        claims: List[asyncio.Future] = []
        keys: List[Tuple[str, int]] = []
        claimed = set()
        try:
            for item in batch.frames:
                key = (item.payload.device_id, item.seq)
                if key in claimed:
                    # a malformed batch repeating a member admits it once
                    counters("collector.dupes_dropped").inc()
                    continue
                while True:
                    seen = self._seen.setdefault(item.payload.device_id, set())
                    if item.seq in seen:
                        counters("collector.dupes_dropped").inc()
                        break
                    claim = self._pending.get(key)
                    if claim is None:
                        fut = loop.create_future()
                        self._pending[key] = fut
                        claimed.add(key)
                        fresh.append(item)
                        claims.append(fut)
                        keys.append(key)
                        break
                    if await asyncio.shield(claim):
                        counters("collector.dupes_dropped").inc()
                        break
                    # the original admission was abandoned: retry ourselves
            if fresh:
                await self._queue.put([item.payload for item in fresh])
        except BaseException:
            for fut in claims:
                fut.set_result(False)
            raise
        else:
            if fresh:
                if self._journal is not None:
                    try:
                        self._journal.append(Batch(frames=tuple(fresh)))
                    except (JournalError, OSError):
                        counters("collector.journal.errors").inc()
                for item, fut in zip(fresh, claims):
                    self._seen.setdefault(item.payload.device_id, set()).add(item.seq)
                    fut.set_result(True)
        finally:
            for key in keys:
                self._pending.pop(key, None)
        depth = self._queue.qsize()
        if depth > self._queue_peak:
            self._queue_peak = depth
        self.registry.gauge("collector.queue_depth").set(depth)

    # -- journal replay -------------------------------------------------

    def _replay(self, recovery: JournalRecovery) -> None:
        """Rebuild dedup + aggregation state from a recovered journal.

        Replay happens before the listener binds, so it never races
        live admissions.  Replayed payloads go through the same
        aggregation rollups as live ones (they were acked — the run's
        totals must include them) but skip the bounded queue and the
        ``on_result`` callback: they already happened.
        """
        unique = 0
        for frame in recovery.records:
            seen = self._seen.setdefault(frame.payload.device_id, set())
            if frame.seq in seen:
                # a journal can hold dupes only if a past life appended
                # twice before dying between journal and mark-seen
                self.registry.counter("collector.journal.replay_dupes").inc()
                continue
            seen.add(frame.seq)
            self._aggregate_payload(frame.payload)
            unique += 1
        if unique:
            self.registry.counter("collector.journal.replayed").inc(unique)
        if recovery.torn:
            self.registry.counter("collector.journal.truncated_bytes").inc(
                recovery.truncated_bytes
            )

    # -- aggregation ----------------------------------------------------

    async def _aggregate(self) -> None:
        """The queue consumer: the only writer of run-level aggregation.

        Queue items are one payload (lone result) or a list of payloads
        (an admitted batch); either way each payload aggregates
        individually.
        """
        while True:
            item = await self._queue.get()
            payloads = item if isinstance(item, list) else (item,)
            try:
                for payload in payloads:
                    try:
                        await self._aggregate_one(payload)
                    except asyncio.CancelledError:
                        raise
                    except Exception:
                        # an aggregation callback failure must not wedge
                        # the queue (stop() joins it) or kill the consumer
                        self.registry.counter("collector.aggregation_errors").inc()
            finally:
                self._queue.task_done()
                self.registry.gauge("collector.queue_depth").set(self._queue.qsize())

    def _aggregate_payload(self, payload: SessionResultPayload) -> None:
        """The synchronous rollups shared by live ingest and replay."""
        self.registry.counter("collector.sessions_ingested").inc()
        if payload.degraded:
            self.registry.counter("collector.sessions_degraded").inc()
        if payload.exact is not None:
            self.registry.counter("collector.sessions_scored").inc()
            if payload.exact:
                self.registry.counter("collector.sessions_exact").inc()
        if payload.metrics is not None:
            self.registry.merge_snapshot(payload.metrics)
        if self.keep_results:
            self.results.append(payload)

    async def _aggregate_one(self, payload: SessionResultPayload) -> None:
        self._aggregate_payload(payload)
        if self.on_result is not None:
            maybe_awaitable = self.on_result(payload)
            if asyncio.iscoroutine(maybe_awaitable):
                await maybe_awaitable


class CollectorHandle:
    """A collector hosted on its own event-loop thread.

    The synchronous façade the rest of the codebase uses::

        cfg = CollectorConfig(transport="unix", unix_path=p)
        with CollectorHandle(cfg) as handle:
            endpoint = handle.endpoint
            ... clients stream into it ...
        # exiting drains and stops the server; handle.server.results is final

    ``stop()`` (or context exit) performs the graceful drain described
    on :meth:`CollectorServer.stop`.
    """

    def __init__(self, config: Optional[CollectorConfig] = None, **server_kwargs) -> None:
        self.server = CollectorServer(config, **server_kwargs)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self.endpoint: Optional[Endpoint] = None

    def start(self) -> Endpoint:
        if self._thread is not None:
            raise RuntimeError("collector handle already started")
        started = threading.Event()
        failure: List[BaseException] = []

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                self.endpoint = loop.run_until_complete(self.server.start())
            except BaseException as exc:  # surface bind errors to start()
                failure.append(exc)
                started.set()
                return
            started.set()
            try:
                loop.run_forever()
            finally:
                loop.close()

        self._thread = threading.Thread(target=run, name="repro-collector", daemon=True)
        self._thread.start()
        started.wait()
        if failure:
            self._thread.join()
            self._thread = None
            raise failure[0]
        return self.endpoint

    def stop(self, drain: bool = True) -> None:
        if self._thread is None or self._loop is None:
            return
        try:
            future = asyncio.run_coroutine_threadsafe(
                self.server.stop(drain=drain), self._loop
            )
            future.result(timeout=self.server.drain_timeout_s + 30.0)
        finally:
            # even when the drain times out or raises, the loop thread
            # must be stopped and the handle reset — otherwise a second
            # stop() (or interpreter exit) hangs on a wedged loop
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=30.0)
            self._thread = None
            self._loop = None

    def __enter__(self) -> "CollectorHandle":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
