"""The asyncio ingestion service the fleet reports into.

A :class:`CollectorServer` accepts length-prefixed frames (see
:mod:`repro.collector.framing`) over TCP or a unix socket, pushes every
accepted result through a **bounded in-flight queue**, and aggregates on
the far side of it into the run's :class:`~repro.obs.MetricsRegistry`
and result list.

Frames arrive as typed objects (:mod:`repro.collector.frames`):
:func:`~repro.collector.frames.decode_any` dispatches on the body's
first byte, so binary and JSON clients coexist on adjacent connections
— the codec chosen in the ``hello`` exchange only governs what the
*server* writes back.  A JSON-only (protocol revision 1) client that
offers no codecs gets JSON replies and completes its run unchanged.

Why a queue at all?  Backpressure.  The connection handlers are I/O
bound and cheap; aggregation (metrics merging, result retention, user
callbacks) is the part that can fall behind under fleet load.  With a
bounded queue, a slow aggregator makes ``queue.put`` await, which stops
that connection's read loop, which fills the kernel socket buffer,
which blocks the client's ``send`` — backpressure propagates to the
device instead of growing server memory without limit.  The ``ack`` for
a result frame is written only *after* the enqueue succeeds, so a
client's retry discipline composes with the server's admission control.

Delivery contract: resends are deduplicated by ``(device_id, seq)``
(counted as ``collector.dupes_dropped`` and re-acked), so a client that
resends until acked gets **exactly-once aggregation** over an
at-least-once transport.

Protocol errors are clean: an oversized length prefix or a peer closing
mid-frame counts ``collector.frames.rejected`` and closes the
connection with a typed error reply where possible — never a raw
``asyncio.IncompleteReadError`` escaping a handler.

Shutdown is a graceful drain: stop accepting, close idle connections,
wait for in-flight handlers, then run the queue dry before the
aggregator exits — nothing admitted is ever dropped.

The server exports ``collector.*`` metrics (ingest counters, codec
negotiation tallies, queue depth gauges, retry tallies reported by
clients at ``bye``); the full table is in ``docs/collector.md``.

Threading: :class:`CollectorServer` is pure asyncio.  Synchronous
callers (the CLI, tests, :class:`~repro.collector.fleet.FleetDriver`)
use :class:`CollectorHandle`, which hosts the server's event loop on a
daemon thread and exposes plain ``start()`` / ``stop()``.
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import Dict, List, Optional, Set, Tuple

from repro.collector.config import CollectorConfig, shim_legacy_kwargs
from repro.collector.frames import (
    Ack,
    Bye,
    ByeOk,
    Hello,
    HelloOk,
    Metrics,
    MetricsOk,
    ProtocolError,
    Result,
    codec_for,
    decode_any,
    negotiate_codec,
)
from repro.collector.framing import (
    PROTO_VERSION,
    ConnectionClosed,
    FrameError,
    FrameTooLarge,
    FrameTruncated,
    SessionResultPayload,
    read_body_async,
)
from repro.obs import MetricsRegistry, RunManifest

#: Endpoint tuples: ``("tcp", host, port)`` or ``("unix", path)``.
Endpoint = Tuple

#: Legacy per-call keywords → the CollectorConfig field each one sets.
_LEGACY_SERVER_KWARGS = {
    "transport": "transport",
    "host": "host",
    "port": "port",
    "unix_path": "unix_path",
    "queue_size": "queue_size",
    "read_timeout_s": "read_timeout_s",
    "drain_timeout_s": "drain_timeout_s",
    "max_frame_bytes": "max_frame_bytes",
}


class CollectorServer:
    """Bounded-queue frame ingestion over TCP or a unix socket.

    Args:
        config: the :class:`~repro.collector.config.CollectorConfig`
            holding every transport/codec/backpressure knob.  The old
            per-call keywords (``transport=``, ``queue_size=``, ...)
            still work through a deprecation shim.
        metrics: the registry aggregation lands in; defaults to a fresh
            enabled :class:`MetricsRegistry` (the collector always
            counts — its report *is* the product).
        keep_results: retain ingested payloads on :attr:`results`
            (aggregation-only deployments can turn this off).
        on_result: optional callback invoked by the aggregator for every
            accepted payload (runs on the event loop — keep it short, or
            rely on the queue bound to absorb it).
    """

    def __init__(
        self,
        config: Optional[CollectorConfig] = None,
        *,
        metrics: Optional[MetricsRegistry] = None,
        keep_results: bool = True,
        on_result=None,
        **legacy,
    ) -> None:
        config = shim_legacy_kwargs(
            config, legacy, "CollectorServer", _LEGACY_SERVER_KWARGS
        )
        self.config = config
        self.transport = config.transport
        self.host = config.host
        self.port = config.port
        self.unix_path = config.unix_path
        self.queue_size = config.queue_size
        self.read_timeout_s = config.read_timeout_s
        self.drain_timeout_s = config.drain_timeout_s
        self.max_frame_bytes = config.max_frame_bytes
        self.codec = config.codec
        self.registry = metrics if metrics is not None else MetricsRegistry()
        self.keep_results = keep_results
        self.on_result = on_result

        self.results: List[SessionResultPayload] = []
        self._queue: Optional[asyncio.Queue] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._aggregator: Optional[asyncio.Task] = None
        self._handlers: Set[asyncio.Task] = set()
        self._seen: Dict[str, Set[int]] = {}
        self._queue_peak = 0
        self._started_at: Optional[float] = None

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> Endpoint:
        """Bind, start serving, and return the connectable endpoint."""
        if self._server is not None:
            raise RuntimeError("collector already started")
        self._queue = asyncio.Queue(maxsize=self.queue_size)
        if self.transport == "unix":
            self._server = await asyncio.start_unix_server(
                self._on_connection, path=self.unix_path
            )
        else:
            self._server = await asyncio.start_server(
                self._on_connection, host=self.host, port=self.port
            )
            self.port = self._server.sockets[0].getsockname()[1]
        self._aggregator = asyncio.create_task(self._aggregate())
        self._started_at = time.perf_counter()
        return self.endpoint

    @property
    def endpoint(self) -> Endpoint:
        """Where clients connect: ``("tcp", host, port)`` or ``("unix", path)``."""
        if self.transport == "unix":
            return ("unix", self.unix_path)
        return ("tcp", self.host, self.port)

    async def stop(self, drain: bool = True) -> None:
        """Stop accepting, drain in-flight work, and shut the service down.

        With ``drain=True`` (the default) every connection still talking
        gets up to ``drain_timeout_s`` to finish, and everything already
        admitted to the queue is aggregated before the aggregator task
        exits.  ``drain=False`` force-closes immediately (queued frames
        are still aggregated — they were acked).
        """
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        if self._handlers:
            if drain:
                await asyncio.wait(self._handlers, timeout=self.drain_timeout_s)
            for task in list(self._handlers):
                task.cancel()
            await asyncio.gather(*self._handlers, return_exceptions=True)
        await self._queue.join()
        self._aggregator.cancel()
        await asyncio.gather(self._aggregator, return_exceptions=True)
        wall = time.perf_counter() - (self._started_at or time.perf_counter())
        self.registry.gauge("collector.wall_s").set(wall)
        if wall > 0:
            ingested = self.registry.counter("collector.sessions_ingested").value
            self.registry.gauge("collector.ingest_rate").set(ingested / wall)
        self.registry.gauge("collector.queue_depth_peak").set(self._queue_peak)
        self._server = None

    def report(self, **meta) -> RunManifest:
        """The collector's run manifest (``collector.*`` rollups)."""
        return self.registry.manifest(
            transport=self.transport, queue_size=self.queue_size, **meta
        )

    # -- connection handling --------------------------------------------

    def _on_connection(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        task = asyncio.create_task(self._handle(reader, writer))
        self._handlers.add(task)
        task.add_done_callback(self._handlers.discard)

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        counters = self.registry.counter
        counters("collector.connections_opened").inc()
        # replies are JSON until the hello exchange negotiates otherwise
        reply_codec = codec_for("json")
        device_id = "?"
        try:
            while True:
                try:
                    body = await asyncio.wait_for(
                        read_body_async(reader, self.max_frame_bytes),
                        timeout=self.read_timeout_s,
                    )
                    frame = decode_any(body)
                except asyncio.TimeoutError:
                    counters("collector.connection_timeouts").inc()
                    return
                except ConnectionClosed:
                    return
                except FrameTooLarge as exc:
                    # the stream is desynchronized past this prefix:
                    # reject loudly, reply if the peer is still there,
                    # and close — never read the claimed body
                    counters("collector.frames.rejected").inc()
                    writer.write(reply_codec.encode(ProtocolError(str(exc))))
                    return
                except FrameTruncated:
                    # the peer died mid-frame: nothing left to reply to —
                    # count the rejection and fold
                    counters("collector.frames.rejected").inc()
                    return
                except FrameError as exc:
                    counters("collector.malformed_frames").inc()
                    writer.write(reply_codec.encode(ProtocolError(str(exc))))
                    return
                if isinstance(frame, Result):
                    device_id = frame.device_id or device_id
                    if not await self._admit_result(frame):
                        counters("collector.malformed_frames").inc()
                        return
                    writer.write(reply_codec.encode(Ack(seq=frame.seq)))
                elif isinstance(frame, Hello):
                    device_id = frame.device_id
                    if frame.proto != PROTO_VERSION:
                        counters("collector.proto_rejected").inc()
                        writer.write(reply_codec.encode(ProtocolError("proto mismatch")))
                        return
                    counters("collector.devices_seen").inc()
                    chosen = negotiate_codec(frame.codecs, self.codec)
                    reply_codec = codec_for(chosen)
                    counters(f"collector.codec.{chosen}").inc()
                    writer.write(reply_codec.encode(HelloOk(codec=chosen)))
                elif isinstance(frame, Metrics):
                    if frame.snapshot:
                        self.registry.merge_snapshot(frame.snapshot)
                        counters("collector.metrics_frames").inc()
                    writer.write(reply_codec.encode(MetricsOk()))
                elif isinstance(frame, Bye):
                    counters("collector.client_retries").inc(frame.retries)
                    counters("collector.client_reconnects").inc(frame.reconnects)
                    writer.write(reply_codec.encode(ByeOk()))
                    await writer.drain()
                    return
                else:
                    # Ack/HelloOk/MetricsOk/ByeOk/ProtocolError are
                    # server-to-client frames; a client sending one is
                    # confused
                    counters("collector.malformed_frames").inc()
                    return
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            # client went away mid-reply, or stop() force-closed us; any
            # un-acked frame will be resent to the next connection
            return
        finally:
            counters("collector.connections_closed").inc()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _admit_result(self, frame: Result) -> bool:
        """Dedup-check one result frame and enqueue it; False = malformed.

        The enqueue is the backpressure point: with the queue full this
        awaits, the connection stops reading, and the client blocks in
        ``send`` until the aggregator catches up.
        """
        payload = frame.payload
        self.registry.counter("collector.frames_ingested").inc()
        seen = self._seen.setdefault(payload.device_id, set())
        if frame.seq in seen:
            # a resend of something already admitted (its ack was lost);
            # re-ack without re-aggregating
            self.registry.counter("collector.dupes_dropped").inc()
            return True
        seen.add(frame.seq)
        await self._queue.put(payload)
        depth = self._queue.qsize()
        if depth > self._queue_peak:
            self._queue_peak = depth
        self.registry.gauge("collector.queue_depth").set(depth)
        return True

    # -- aggregation ----------------------------------------------------

    async def _aggregate(self) -> None:
        """The queue consumer: the only writer of run-level aggregation."""
        while True:
            payload = await self._queue.get()
            try:
                await self._aggregate_one(payload)
            except asyncio.CancelledError:
                raise
            except Exception:
                # an aggregation callback failure must not wedge the
                # queue (stop() joins it) or kill the consumer
                self.registry.counter("collector.aggregation_errors").inc()
            finally:
                self._queue.task_done()
                self.registry.gauge("collector.queue_depth").set(self._queue.qsize())

    async def _aggregate_one(self, payload: SessionResultPayload) -> None:
        self.registry.counter("collector.sessions_ingested").inc()
        if payload.degraded:
            self.registry.counter("collector.sessions_degraded").inc()
        if payload.exact is not None:
            self.registry.counter("collector.sessions_scored").inc()
            if payload.exact:
                self.registry.counter("collector.sessions_exact").inc()
        if payload.metrics is not None:
            self.registry.merge_snapshot(payload.metrics)
        if self.keep_results:
            self.results.append(payload)
        if self.on_result is not None:
            maybe_awaitable = self.on_result(payload)
            if asyncio.iscoroutine(maybe_awaitable):
                await maybe_awaitable


class CollectorHandle:
    """A collector hosted on its own event-loop thread.

    The synchronous façade the rest of the codebase uses::

        cfg = CollectorConfig(transport="unix", unix_path=p)
        with CollectorHandle(cfg) as handle:
            endpoint = handle.endpoint
            ... clients stream into it ...
        # exiting drains and stops the server; handle.server.results is final

    ``stop()`` (or context exit) performs the graceful drain described
    on :meth:`CollectorServer.stop`.
    """

    def __init__(self, config: Optional[CollectorConfig] = None, **server_kwargs) -> None:
        self.server = CollectorServer(config, **server_kwargs)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self.endpoint: Optional[Endpoint] = None

    def start(self) -> Endpoint:
        if self._thread is not None:
            raise RuntimeError("collector handle already started")
        started = threading.Event()
        failure: List[BaseException] = []

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                self.endpoint = loop.run_until_complete(self.server.start())
            except BaseException as exc:  # surface bind errors to start()
                failure.append(exc)
                started.set()
                return
            started.set()
            try:
                loop.run_forever()
            finally:
                loop.close()

        self._thread = threading.Thread(target=run, name="repro-collector", daemon=True)
        self._thread.start()
        started.wait()
        if failure:
            self._thread.join()
            self._thread = None
            raise failure[0]
        return self.endpoint

    def stop(self, drain: bool = True) -> None:
        if self._thread is None or self._loop is None:
            return
        future = asyncio.run_coroutine_threadsafe(self.server.stop(drain=drain), self._loop)
        future.result(timeout=self.server.drain_timeout_s + 30.0)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30.0)
        self._thread = None
        self._loop = None

    def __enter__(self) -> "CollectorHandle":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
