"""The unified collector configuration: one frozen dataclass for the tier.

Before this module existed, every collector entry point —
:class:`~repro.collector.server.CollectorServer`,
:class:`~repro.collector.client.CollectorClient`,
:class:`~repro.collector.fleet.FleetDriver`, and
:func:`repro.api.run_fleet` — grew its own pile of transport keywords
(``transport=``, ``unix_path=``, ``queue_size=``, ``retry=``, ...), and
threading a new knob meant touching all four signatures.
:class:`CollectorConfig` collapses them into one serializable object,
mirroring :class:`~repro.api.AttackConfig`: construct it once, pass it
everywhere, round-trip it through :meth:`to_dict` / :meth:`from_dict`
(manifests embed it the same way they embed the attack config).

The old per-call keywords still work through a one-release deprecation
shim (:func:`repro.core.results.warn_deprecated`), so existing callers
keep running while they migrate.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Dict, Mapping, Optional

import numpy as np

from repro.collector.framing import MAX_FRAME_BYTES
from repro.collector.journal import JOURNAL_SYNC_MODES

#: Codec selection values accepted by :attr:`CollectorConfig.codec`.
CODECS = ("auto", "binary", "json")


@dataclass(frozen=True)
class RetryPolicy:
    """Jittered exponential backoff between delivery attempts.

    Attempt ``k`` (0-based) sleeps
    ``min(max_delay_s, base_delay_s * multiplier**k) * (1 + jitter_frac*u)``
    with ``u`` uniform in ``[0, 1)`` from a seeded RNG — jitter
    de-synchronizes a fleet of devices retrying into the same collector
    without making any single device's schedule nondeterministic.
    """

    max_attempts: int = 8
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    multiplier: float = 2.0
    jitter_frac: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0 or self.jitter_frac < 0:
            raise ValueError("delays and jitter must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")

    def delay_s(self, attempt: int, rng: np.random.Generator) -> float:
        base = min(self.max_delay_s, self.base_delay_s * self.multiplier ** attempt)
        return base * (1.0 + self.jitter_frac * float(rng.random()))

    def to_dict(self) -> Dict[str, object]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "RetryPolicy":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown RetryPolicy fields: {sorted(unknown)}")
        return cls(**data)  # type: ignore[arg-type]


@dataclass(frozen=True)
class CollectorConfig:
    """Every knob of the collector tier in one place.

    Consumed by the server, the client, the fleet driver and the facade;
    serializes round-trip through :meth:`to_dict` / :meth:`from_dict`
    (the nested retry policy serializes as its field dict).

    Attributes:
        transport: ``"tcp"`` or ``"unix"``.
        host / port: TCP bind/connect address (``port=0`` binds free).
        unix_path: filesystem path for the unix-socket transport.
        codec: wire codec policy — ``"auto"`` negotiates the binary
            frame codec when both ends support it and falls back to
            JSON, ``"binary"`` prefers/requires binary (a server stays
            compatible with JSON-only clients; a client errors if the
            server cannot speak binary), ``"json"`` forces the
            length-prefixed JSON wire format of protocol revision 1.
        queue_size: the server's in-flight result bound (backpressure).
        read_timeout_s: server-side idle read timeout per connection.
        drain_timeout_s: how long a stopping server waits for in-flight
            connections.
        timeout_s: client-side socket timeout for connect/send/ack.
        max_frame_bytes: hard cap on one frame body; a length prefix
            beyond it is a protocol error (``FrameTooLarge``), never an
            allocation request.
        retry: the client's backoff schedule for failed deliveries.
        shards: how many collector processes the tier runs.  ``1``
            (default) is the in-process single collector; ``> 1``
            stands up N :class:`CollectorServer` processes behind the
            deterministic device router
            (:mod:`repro.collector.router`).
        journal_dir: directory for the per-shard write-ahead journals
            (:mod:`repro.collector.journal`).  Set it and a killed
            collector replays its journal on restart, making the
            exactly-once contract durable; ``None`` keeps dedup state
            in memory only.  One directory holds exactly one logical
            run — reusing it replays the previous run's results.
        journal_sync: journal durability policy — ``"flush"``
            (default, survives SIGKILL), ``"fsync"`` (survives OS
            crash), ``"none"`` (buffered; throughput experiments).
        pipeline_depth: how many result frames
            :meth:`~repro.collector.client.CollectorClient.send_results`
            keeps in flight before blocking on the oldest ack.  ``1``
            (default) is the classic lock-step ``send → await ack``
            round trip; ``> 1`` pipelines a window of frames per
            connection, amortizing the per-frame syscall and context
            switch — the difference between a device trickling live
            sessions and a backlog upload saturating the tier.  The
            delivery contract is unchanged: frames are acked in order,
            anything unacked when a connection dies is resent, and the
            server's ``(device_id, seq)`` dedup absorbs the overlap.
    """

    transport: str = "tcp"
    host: str = "127.0.0.1"
    port: int = 0
    unix_path: Optional[str] = None
    codec: str = "auto"
    queue_size: int = 256
    read_timeout_s: float = 30.0
    drain_timeout_s: float = 10.0
    timeout_s: float = 10.0
    max_frame_bytes: int = MAX_FRAME_BYTES
    retry: RetryPolicy = RetryPolicy()
    shards: int = 1
    journal_dir: Optional[str] = None
    journal_sync: str = "flush"
    pipeline_depth: int = 1

    def __post_init__(self) -> None:
        if self.transport not in ("tcp", "unix"):
            raise ValueError(f"unknown transport {self.transport!r}")
        if self.transport == "unix" and not self.unix_path:
            raise ValueError("unix transport requires unix_path")
        if self.codec not in CODECS:
            raise ValueError(f"codec must be one of {CODECS}, got {self.codec!r}")
        if self.queue_size < 1:
            raise ValueError("queue_size must be >= 1")
        if self.read_timeout_s <= 0 or self.drain_timeout_s <= 0:
            raise ValueError("timeouts must be positive")
        if self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        if self.max_frame_bytes < 1:
            raise ValueError("max_frame_bytes must be >= 1")
        if not isinstance(self.retry, RetryPolicy):
            raise TypeError("retry must be a RetryPolicy")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.journal_dir is not None and not isinstance(self.journal_dir, str):
            # keep the config JSON-serializable when a Path is passed
            object.__setattr__(self, "journal_dir", str(self.journal_dir))
        if self.pipeline_depth < 1:
            raise ValueError("pipeline_depth must be >= 1")
        if self.journal_sync not in JOURNAL_SYNC_MODES:
            raise ValueError(
                f"journal_sync must be one of {JOURNAL_SYNC_MODES}, "
                f"got {self.journal_sync!r}"
            )

    def with_overrides(self, **overrides) -> "CollectorConfig":
        """A copy with ``overrides`` applied (the deprecation-shim seam)."""
        return replace(self, **overrides) if overrides else self

    # -- serialization --------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "retry":
                value = value.to_dict()
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "CollectorConfig":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown CollectorConfig fields: {sorted(unknown)}")
        kwargs = dict(data)
        retry = kwargs.get("retry")
        if isinstance(retry, Mapping):
            kwargs["retry"] = RetryPolicy.from_dict(retry)
        return cls(**kwargs)  # type: ignore[arg-type]


def shim_legacy_kwargs(
    config: Optional[CollectorConfig],
    legacy: Dict[str, object],
    owner: str,
    allowed: Mapping[str, str],
) -> CollectorConfig:
    """Fold deprecated per-call keywords into a :class:`CollectorConfig`.

    ``allowed`` maps each legacy keyword to the config field it sets.
    Every legacy keyword actually passed emits the one-release
    :func:`~repro.core.results.warn_deprecated` warning; anything else
    is a :class:`TypeError`, exactly as an unknown keyword would be.
    """
    from repro.core.results import warn_deprecated

    unknown = set(legacy) - set(allowed)
    if unknown:
        raise TypeError(
            f"{owner}() got unexpected keyword arguments: {sorted(unknown)}"
        )
    overrides = {}
    for key, value in legacy.items():
        field_name = allowed[key]
        warn_deprecated(
            f"{owner}({key}=...)",
            f"{owner}(config=CollectorConfig({field_name}=...))",
        )
        overrides[field_name] = value
    return (config or CollectorConfig()).with_overrides(**overrides)
