"""The device-side collector client: blocking sockets, retry until acked.

A :class:`CollectorClient` is what one simulated device uses to report
its finished sessions.  It is deliberately synchronous — devices are
plain threads/processes running the CPU-bound attack pipeline, and a
blocking ``send → await ack`` round trip is exactly the shape that lets
the server's bounded queue push back on them (see
:mod:`repro.collector.server`).

Codec negotiation: the client's ``hello`` offers its acceptable wire
codecs (``codec="auto"`` offers binary-then-JSON, ``codec="binary"``
offers binary only, ``codec="json"`` offers nothing — the revision-1
wire shape old servers expect); the server's ``hello_ok`` names the
choice, and every subsequent frame on that connection is encoded with
it.  Result frames on the binary codec are one ``struct`` pack — the
11 counter deltas ride as fixed u64s, no per-field JSON encode.

Reliability discipline:

* every result frame carries a monotonically increasing per-device
  ``seq``;
* a frame is *resent* — over a fresh connection if necessary — until
  its ``ack`` arrives, with **jittered exponential backoff** between
  attempts (:class:`RetryPolicy`);
* the server deduplicates by ``(device_id, seq)``, so the retry loop
  can never double-aggregate a result.

Fault injection reuses the :mod:`repro.faults` profiles: a
:class:`NetworkFaultInjector` maps the plan's transient-ioctl
probability onto **connection drops** (before or after the frame is
written — the "after" case is what exercises the dedup path) and its
wakeup jitter onto **slow reads** of the ack.  The same seeded plan that
makes a device's KGSL layer misbehave makes its uplink flaky, so the
fleet's end-to-end loss accounting is tested under one coherent fault
model.
"""

from __future__ import annotations

import select
import socket
import time
from collections import deque
from dataclasses import dataclass, fields
from typing import Callable, Deque, Dict, Iterable, Iterator, Optional, Union

import numpy as np

from repro import faults
from repro.faults import FaultPlan
from repro.collector.config import CollectorConfig, RetryPolicy, shim_legacy_kwargs
from repro.collector.frames import (
    Ack,
    Bye,
    ByeOk,
    Frame,
    Hello,
    HelloOk,
    Metrics,
    MetricsOk,
    codec_for,
)
from repro.collector.framing import (
    ConnectionClosed,
    FrameError,
    SessionResultPayload,
    read_body_sock,
)
from repro.collector.frames import Batch as BatchFrame
from repro.collector.frames import Result as ResultFrame
from repro.collector.frames import decode_any

__all__ = [
    "ClientStats",
    "CollectorClient",
    "CollectorClientError",
    "NetworkFaultInjector",
    "RetryPolicy",  # relocated to repro.collector.config; re-exported here
]


class CollectorClientError(Exception):
    """A frame could not be delivered within the retry budget."""


@dataclass
class ClientStats:
    """Everything the client did to get its results through."""

    frames_sent: int = 0
    acks_received: int = 0
    retries: int = 0
    reconnects: int = 0
    injected_drops: int = 0
    injected_slow_reads: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class NetworkFaultInjector:
    """Seeded network misbehavior derived from a :class:`FaultPlan`.

    * ``read_error_prob`` → per-frame **connection drop**; half the
      drops land *after* the frame was written (the ack is lost, the
      resend is a duplicate the server must absorb);
    * ``jitter_prob`` / ``jitter_s`` → **slow read**: an exponential
      extra delay before the ack is read.

    The RNG stream is independent of the device's KGSL injector (extra
    stream key), so enabling network faults never perturbs the attack's
    fault sequence.
    """

    _STREAM_KEY = 0xC011EC7

    def __init__(self, plan: FaultPlan, seed_offset: int = 0) -> None:
        self.plan = plan
        self.rng = np.random.default_rng((plan.seed, seed_offset, self._STREAM_KEY))

    def connection_fault(self) -> Optional[str]:
        """``None``, ``"drop_before"`` or ``"drop_after"`` for this frame."""
        if self.plan.read_error_prob and self.rng.random() < self.plan.read_error_prob:
            return "drop_after" if self.rng.random() < 0.5 else "drop_before"
        return None

    def slow_read_delay_s(self) -> float:
        if self.plan.jitter_prob and self.rng.random() < self.plan.jitter_prob:
            return float(self.rng.exponential(self.plan.jitter_s))
        return 0.0


#: Legacy per-call keywords → the CollectorConfig field each one sets.
_LEGACY_CLIENT_KWARGS = {
    "retry": "retry",
    "timeout_s": "timeout_s",
}


class CollectorClient:
    """One device's reliable stream of results into a collector.

    Args:
        endpoint: ``("tcp", host, port)`` or ``("unix", path)`` — what
            :meth:`CollectorServer.start`/``CollectorHandle.start``
            returned.
        device_id: stable identity; the server's dedup key includes it.
        fault_plan: a plan / profile name / ``None`` / ``"auto"``,
            resolved exactly like the attack-side argument; an enabled
            plan turns on :class:`NetworkFaultInjector`.
        config: the :class:`~repro.collector.config.CollectorConfig`
            supplying the wire codec, retry schedule and socket
            timeout (the old ``retry=`` / ``timeout_s=`` keywords keep
            working through a deprecation shim).
        sleep: injectable sleeper (tests pass a no-op to make backoff
            schedules instantaneous).
    """

    def __init__(
        self,
        endpoint,
        device_id: str,
        fault_plan: Union[FaultPlan, None, str] = None,
        config: Optional[CollectorConfig] = None,
        seed_offset: int = 0,
        sleep: Callable[[float], None] = time.sleep,
        **legacy,
    ) -> None:
        kind = endpoint[0]
        if kind not in ("tcp", "unix"):
            raise ValueError(f"unknown endpoint kind {kind!r}")
        config = shim_legacy_kwargs(
            config, legacy, "CollectorClient", _LEGACY_CLIENT_KWARGS
        )
        self.endpoint = tuple(endpoint)
        self.device_id = device_id
        self.config = config
        self.retry = config.retry
        self.timeout_s = config.timeout_s
        self.codec = config.codec
        self.sleep = sleep
        self.stats = ClientStats()
        plan = faults.resolve_plan(fault_plan)
        self._injector = (
            NetworkFaultInjector(plan, seed_offset=seed_offset) if plan else None
        )
        self._backoff_rng = np.random.default_rng((seed_offset, 0x8ACC0FF))
        self._sock: Optional[socket.socket] = None
        self._wire = codec_for("json")
        self._connected_once = False
        self._seq = 0

    @property
    def wire_codec(self) -> str:
        """The codec negotiated on the current connection (``json`` until hello)."""
        return self._wire.name

    # -- connection -----------------------------------------------------

    def _offered_codecs(self):
        if self.codec == "json":
            # offer nothing: the hello is byte-identical to a
            # revision-1 client's, so old servers are none the wiser
            return ()
        if self.codec == "binary":
            return ("binary",)
        return ("binary", "json")

    def _connect(self) -> None:
        if self.endpoint[0] == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            target = self.endpoint[1]
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            target = (self.endpoint[1], self.endpoint[2])
        sock.settimeout(self.timeout_s)
        sock.connect(target)
        self._sock = sock
        self._wire = codec_for("json")
        reply = self._roundtrip(
            Hello(device_id=self.device_id, codecs=self._offered_codecs())
        )
        if not isinstance(reply, HelloOk):
            self._drop_connection()
            raise CollectorClientError(f"collector rejected hello: {reply}")
        # an old server omits the codec field → json, which every
        # policy accepts (codec="binary" is a preference, not a demand,
        # matching the server side of negotiate_codec)
        self._wire = codec_for(reply.codec)

    def _ensure_connected(self) -> None:
        if self._sock is None:
            self._connect()
            if self._connected_once:
                self.stats.reconnects += 1
            self._connected_once = True

    def _drop_connection(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
        self._wire = codec_for("json")

    def _roundtrip(self, frame: Frame) -> Frame:
        self._sock.sendall(self._wire.encode(frame))
        return decode_any(read_body_sock(self._sock))

    # -- delivery -------------------------------------------------------

    def send_result(self, payload: SessionResultPayload) -> int:
        """Deliver one result; returns its ``seq``.  Blocks until acked.

        Raises :class:`CollectorClientError` after ``max_attempts``
        failed deliveries (connection refused, dropped, timed out, or a
        mis-sequenced ack).
        """
        seq = self._seq
        self._seq += 1
        frame = ResultFrame(seq=seq, payload=payload)
        last_error: Optional[Exception] = None
        for attempt in range(self.retry.max_attempts):
            if attempt:
                self.stats.retries += 1
                self.sleep(self.retry.delay_s(attempt - 1, self._backoff_rng))
            try:
                self._ensure_connected()
                fault = self._injector.connection_fault() if self._injector else None
                if fault == "drop_before":
                    self.stats.injected_drops += 1
                    self._drop_connection()
                    raise ConnectionResetError("injected connection drop (before send)")
                self._sock.sendall(self._wire.encode(frame))
                self.stats.frames_sent += 1
                if fault == "drop_after":
                    # the frame is on the wire but we sever before the
                    # ack: the server may have aggregated it, and the
                    # resend must come back deduplicated
                    self.stats.injected_drops += 1
                    self._drop_connection()
                    raise ConnectionResetError("injected connection drop (after send)")
                if self._injector:
                    delay = self._injector.slow_read_delay_s()
                    if delay > 0:
                        self.stats.injected_slow_reads += 1
                        self.sleep(delay)
                reply = decode_any(read_body_sock(self._sock))
                if not isinstance(reply, Ack) or reply.seq != seq:
                    raise FrameError(f"expected ack for seq {seq}, got {reply}")
                self.stats.acks_received += 1
                return seq
            except (OSError, FrameError, ConnectionClosed) as exc:
                last_error = exc
                self._drop_connection()
        raise CollectorClientError(
            f"device {self.device_id}: result seq {seq} undelivered after "
            f"{self.retry.max_attempts} attempts: {last_error}"
        )

    def send_results(
        self,
        payloads: Iterable[SessionResultPayload],
        window: Optional[int] = None,
    ) -> int:
        """Deliver many results in order; returns how many were acked.

        ``window`` (default: the config's ``pipeline_depth``) sets how
        many frames may be in flight before blocking on the oldest ack.
        At ``1`` this is exactly ``send_result`` in a loop — one
        lock-step round trip per frame.  Above ``1`` frames are written
        in bursts and acks drained as they arrive, which amortizes the
        per-frame syscall/context-switch cost that dominates bulk
        uploads into a local collector tier.  Delivery semantics are
        identical either way: in-order acks, resend-on-reconnect, and
        the server's ``(device_id, seq)`` dedup absorbing any overlap.
        """
        if window is None:
            window = self.config.pipeline_depth
        if window <= 1:
            count = 0
            for payload in payloads:
                self.send_result(payload)
                count += 1
            return count
        return self._send_pipelined(iter(payloads), window)

    # -- pipelined delivery ---------------------------------------------

    def _pull(
        self,
        source: Iterator[SessionResultPayload],
        todo: Deque[ResultFrame],
    ) -> Optional[ResultFrame]:
        """Next frame to put on the wire: a requeued one, else a fresh one."""
        if todo:
            return todo.popleft()
        payload = next(source, None)
        if payload is None:
            return None
        frame = ResultFrame(seq=self._seq, payload=payload)
        self._seq += 1
        return frame

    def _ack_ready(self) -> bool:
        return bool(select.select([self._sock], [], [], 0)[0])

    def _read_ack(self, pending: Deque[ResultFrame]) -> int:
        """Consume one ack; returns how many in-flight frames it covers.

        Acks are cumulative (a batch is acknowledged by its last
        member's seq), so an ack for seq *n* retires every pending
        frame with seq ≤ *n*.
        """
        reply = decode_any(read_body_sock(self._sock))
        if not isinstance(reply, Ack):
            raise FrameError(f"expected ack for seq {pending[0].seq}, got {reply}")
        acked = 0
        while pending and pending[0].seq <= reply.seq:
            pending.popleft()
            acked += 1
        if acked == 0:
            raise FrameError(
                f"unexpected ack seq {reply.seq} (oldest in flight: {pending[0].seq})"
            )
        self.stats.acks_received += acked
        return acked

    def _write_burst(
        self,
        burst: Deque[ResultFrame],
        pending: Deque[ResultFrame],
        todo: Deque[ResultFrame],
    ) -> None:
        """Send ``burst`` as one wire frame, sampling faults per write.

        Two or more results pack into a single :class:`Batch` frame —
        one send, one server-side admission, one cumulative ack.  The
        fault injector samples once per **wire write**, matching the
        physical model (a connection drop strikes a send, however many
        results ride it): ``drop_before`` severs with the whole burst
        unsent and requeued, ``drop_after`` puts the burst on the wire
        first — the server admits it, the ack is lost, and the resend
        must come back entirely deduplicated.
        """
        fault = self._injector.connection_fault() if self._injector else None
        if fault == "drop_before":
            while burst:
                todo.appendleft(burst.pop())
            self.stats.injected_drops += 1
            self._drop_connection()
            raise ConnectionResetError("injected connection drop (before send)")
        sent = list(burst)
        burst.clear()
        wire_frame = sent[0] if len(sent) == 1 else BatchFrame(frames=tuple(sent))
        self._sock.sendall(self._wire.encode(wire_frame))
        self.stats.frames_sent += len(sent)
        pending.extend(sent)
        if fault == "drop_after":
            self.stats.injected_drops += 1
            self._drop_connection()
            raise ConnectionResetError("injected connection drop (after send)")

    def _send_pipelined(
        self, source: Iterator[SessionResultPayload], window: int
    ) -> int:
        todo: Deque[ResultFrame] = deque()
        pending: Deque[ResultFrame] = deque()
        acked = 0
        failures = 0  # consecutive cycles without an ack
        last_error: Optional[Exception] = None
        while True:
            try:
                self._ensure_connected()
                burst: Deque[ResultFrame] = deque()
                while len(pending) + len(burst) < window:
                    frame = self._pull(source, todo)
                    if frame is None:
                        break
                    burst.append(frame)
                if not burst and not pending:
                    return acked
                if burst:
                    self._write_burst(burst, pending, todo)
                    # drain whatever acks are already buffered, free
                    while pending and self._ack_ready():
                        acked += self._read_ack(pending)
                        failures = 0
                else:
                    # window full or source exhausted: block on the
                    # oldest ack (with the same slow-read fault the
                    # lock-step path injects)
                    if self._injector:
                        delay = self._injector.slow_read_delay_s()
                        if delay > 0:
                            self.stats.injected_slow_reads += 1
                            self.sleep(delay)
                    acked += self._read_ack(pending)
                    failures = 0
            except (OSError, FrameError, ConnectionClosed) as exc:
                last_error = exc
                self._drop_connection()
                # everything in flight is unacked: resend it first
                while pending:
                    todo.appendleft(pending.pop())
                failures += 1
                self.stats.retries += 1
                if failures >= self.retry.max_attempts:
                    head = todo[0].seq if todo else self._seq
                    raise CollectorClientError(
                        f"device {self.device_id}: result seq {head} "
                        f"undelivered after {failures} consecutive failed "
                        f"cycles: {last_error}"
                    ) from exc
                self.sleep(self.retry.delay_s(failures - 1, self._backoff_rng))

    def send_metrics(self, snapshot: Dict[str, object]) -> None:
        """Ship a device-side ``MetricsRegistry.snapshot()`` for merging.

        Metrics frames ride the same retry loop shape as results but are
        idempotent only in aggregate (counters would double on a resend
        after a lost ack), so they are sent best-effort *once*; a device
        whose metrics frame is lost still has all its results counted.
        """
        try:
            self._ensure_connected()
            reply = self._roundtrip(Metrics(snapshot=snapshot))
            if not isinstance(reply, MetricsOk):
                raise FrameError(f"unexpected metrics reply: {reply}")
        except (OSError, FrameError, ConnectionClosed):
            self._drop_connection()

    def close(self) -> None:
        """Send the ``bye`` tally (best-effort) and close the socket."""
        if self._sock is None and not self._connected_once:
            return
        try:
            self._ensure_connected()
            reply = self._roundtrip(
                Bye(
                    device_id=self.device_id,
                    sent=self.stats.frames_sent,
                    retries=self.stats.retries,
                    reconnects=self.stats.reconnects,
                )
            )
            if not isinstance(reply, ByeOk):
                raise FrameError(f"unexpected bye reply: {reply}")
        except (OSError, FrameError, ConnectionClosed, CollectorClientError):
            pass
        finally:
            self._drop_connection()

    def __enter__(self) -> "CollectorClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
