"""The sharded collector tier: N collector processes behind one router.

One :class:`~repro.collector.server.CollectorServer` tops out at one
process — one event loop, one aggregator, one GIL.  The tier scales it
horizontally the same way :class:`~repro.parallel.plan.ShardPlan`
scales session compute: a **deterministic partition**.
:class:`DeviceRouter` maps every device id to one of ``shards``
collectors with a seed-keyed hash, so a device always reports to the
same shard (its ``(device_id, seq)`` dedup state lives in exactly one
place), any device's routing can be recomputed offline from the config
alone, and no shard ever needs to know about the others.

Each shard is a real OS process (:func:`_shard_worker`, spawned — not
forked — so no event-loop or RNG state leaks across), running a
:class:`~repro.collector.server.CollectorHandle` with its own
write-ahead journal (:mod:`repro.collector.journal`).  The parent
:class:`CollectorTier` owns the lifecycle:

* ``start()`` spawns every shard and waits for each to publish its
  bound endpoint (a JSON file in the journal directory — TCP ports are
  kernel-assigned on first bind, so the parent cannot know them ahead
  of time);
* ``kill(k)`` SIGKILLs shard ``k`` mid-run — the fault this tier is
  built to survive — and ``restart(k)`` respawns it **on the same
  endpoint**, where it replays its journal and resumes exactly-once
  aggregation;
* ``stop()`` SIGTERMs every live shard; each drains gracefully and
  writes its :class:`~repro.obs.RunManifest` to a file, and the parent
  merges them (:meth:`RunManifest.merge`) into the run-level manifest.

Reporting after kills: a shard that died by SIGKILL never wrote a
manifest, but its *restarted* life replayed the journal, so its final
manifest already counts everything the dead life admitted — the merge
counts every unique session exactly once.  The ingested payloads
themselves are recovered by reading the journals back
(:meth:`CollectorTier.journal_results`), deduped ``(device_id, seq)``
first-seen-wins.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import threading
import time
from dataclasses import dataclass
from hashlib import blake2b
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.collector.config import CollectorConfig
from repro.collector.journal import dedupe_records, journal_path, read_journal
from repro.obs import RunManifest

#: How long ``CollectorTier.start``/``restart`` waits for a shard to
#: publish its endpoint before declaring the spawn dead.
SHARD_START_TIMEOUT_S = 30.0

#: How long ``stop()`` gives each shard to drain after SIGTERM.
SHARD_STOP_TIMEOUT_S = 30.0


@dataclass(frozen=True)
class DeviceRouter:
    """Seed-keyed deterministic device → shard partition.

    The hash is :func:`hashlib.blake2b` over the device id bytes —
    *not* Python's builtin ``hash()``, whose per-process salt would
    route the same device to different shards in different processes.
    ``seed`` offsets the partition exactly like
    :class:`~repro.parallel.plan.ShardPlan` offsets session→worker
    assignment, so two runs with different seeds spread hot devices
    differently while each stays fully reproducible.
    """

    shards: int
    seed: int = 0

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be >= 1")

    @classmethod
    def from_config(cls, config: CollectorConfig, seed: int = 0) -> "DeviceRouter":
        return cls(shards=config.shards, seed=seed)

    def shard_of(self, device_id: str) -> int:
        """Which shard ``device_id`` reports to — stable across processes."""
        digest = blake2b(device_id.encode("utf-8"), digest_size=8).digest()
        return (self.seed + int.from_bytes(digest, "big")) % self.shards

    def partition(self, device_ids: Iterable[str]) -> Dict[int, List[str]]:
        """Group device ids by their shard (offline routing table)."""
        out: Dict[int, List[str]] = {k: [] for k in range(self.shards)}
        for device_id in device_ids:
            out[self.shard_of(device_id)].append(device_id)
        return out


# -- shard process ------------------------------------------------------


def _atomic_write(path: Path, text: str) -> None:
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


def _shard_worker(
    shard_index: int,
    config_dict: Dict[str, object],
    endpoint_file: str,
    manifest_file: str,
) -> None:
    """One collector shard: serve until SIGTERM, then drain and report.

    Runs in a spawned child process.  Publishes the bound endpoint to
    ``endpoint_file`` once serving (the parent polls for it), then
    parks until SIGTERM.  A graceful stop drains in-flight connections
    and writes the shard manifest; a SIGKILL skips all of that — which
    is exactly what the journal exists to absorb.
    """
    from repro.collector.server import CollectorHandle

    config = CollectorConfig.from_dict(config_dict)
    handle = CollectorHandle(config, shard_index=shard_index, keep_results=False)
    endpoint = handle.start()

    done = threading.Event()
    signal.signal(signal.SIGTERM, lambda signum, frame: done.set())

    _atomic_write(Path(endpoint_file), json.dumps(list(endpoint)))
    done.wait()
    handle.stop(drain=True)
    manifest = handle.server.report(shard=shard_index)
    _atomic_write(Path(manifest_file), manifest.to_json())


class CollectorTier:
    """N journaled collector shards as one start/kill/restart/stop unit.

    Args:
        config: the tier-wide :class:`CollectorConfig`.  ``shards`` is
            the process count and ``journal_dir`` (required) holds each
            shard's journal plus the endpoint/manifest control files.
            ``transport="tcp"`` binds each shard a kernel-assigned port
            (re-pinned on restart); ``transport="unix"`` gives each
            shard its own socket at ``journal_dir/shard-NNNN.sock``.
        seed: keys the :class:`DeviceRouter` partition.
    """

    def __init__(self, config: CollectorConfig, seed: int = 0) -> None:
        if config.journal_dir is None:
            raise ValueError("CollectorTier requires config.journal_dir")
        self.config = config
        self.shards = config.shards
        self.seed = seed
        self.router = DeviceRouter.from_config(config, seed=seed)
        self.journal_dir = Path(config.journal_dir)
        self._ctx = multiprocessing.get_context("spawn")
        self._procs: List[Optional[multiprocessing.process.BaseProcess]] = [
            None
        ] * self.shards
        self._endpoints: List[Optional[Tuple]] = [None] * self.shards
        self._started = False

    # -- paths ----------------------------------------------------------

    def _endpoint_file(self, k: int) -> Path:
        return self.journal_dir / f"shard-{k:04d}.endpoint.json"

    def _manifest_file(self, k: int) -> Path:
        return self.journal_dir / f"shard-{k:04d}.manifest.json"

    def journal_file(self, k: int) -> Path:
        return journal_path(self.journal_dir, k)

    def _shard_config(self, k: int) -> CollectorConfig:
        """The child's config: same knobs, shard-private bind address."""
        overrides: Dict[str, object] = {}
        if self.config.transport == "unix":
            overrides["unix_path"] = str(self.journal_dir / f"shard-{k:04d}.sock")
        else:
            endpoint = self._endpoints[k]
            # port 0 on first start (kernel assigns); a restart re-pins
            # the learned port so clients mid-retry reconnect unchanged
            overrides["port"] = endpoint[2] if endpoint is not None else 0
        return self.config.with_overrides(**overrides)

    # -- lifecycle ------------------------------------------------------

    def _spawn(self, k: int) -> None:
        endpoint_file = self._endpoint_file(k)
        if endpoint_file.exists():
            endpoint_file.unlink()
        proc = self._ctx.Process(
            target=_shard_worker,
            args=(
                k,
                self._shard_config(k).to_dict(),
                str(endpoint_file),
                str(self._manifest_file(k)),
            ),
            name=f"repro-collector-{k}",
            daemon=True,
        )
        proc.start()
        self._procs[k] = proc

    def _await_endpoint(self, k: int) -> Tuple:
        """Poll for the shard's published endpoint; fail fast if it died."""
        endpoint_file = self._endpoint_file(k)
        deadline = time.monotonic() + SHARD_START_TIMEOUT_S
        while time.monotonic() < deadline:
            if endpoint_file.exists():
                try:
                    endpoint = tuple(
                        json.loads(endpoint_file.read_text(encoding="utf-8"))
                    )
                except (json.JSONDecodeError, OSError):
                    pass  # torn read of the atomic replace; retry
                else:
                    self._endpoints[k] = endpoint
                    return endpoint
            proc = self._procs[k]
            if proc is not None and not proc.is_alive():
                raise RuntimeError(
                    f"collector shard {k} died during startup "
                    f"(exitcode {proc.exitcode})"
                )
            time.sleep(0.01)
        raise RuntimeError(f"collector shard {k} did not publish an endpoint")

    def start(self) -> List[Tuple]:
        """Spawn every shard; returns their endpoints in shard order."""
        if self._started:
            raise RuntimeError("collector tier already started")
        self.journal_dir.mkdir(parents=True, exist_ok=True)
        for k in range(self.shards):
            self._spawn(k)
        for k in range(self.shards):
            self._await_endpoint(k)
        self._started = True
        return list(self._endpoints)

    @property
    def endpoints(self) -> List[Tuple]:
        return [e for e in self._endpoints if e is not None]

    def endpoint_for(self, device_id: str) -> Tuple:
        """Where ``device_id`` reports: the router's shard's endpoint."""
        endpoint = self._endpoints[self.router.shard_of(device_id)]
        if endpoint is None:
            raise RuntimeError("collector tier is not started")
        return endpoint

    def is_alive(self, k: int) -> bool:
        proc = self._procs[k]
        return proc is not None and proc.is_alive()

    def kill(self, k: int) -> None:
        """SIGKILL shard ``k`` — no drain, no manifest, no goodbye."""
        proc = self._procs[k]
        if proc is None:
            raise RuntimeError(f"shard {k} was never started")
        proc.kill()
        proc.join(timeout=SHARD_STOP_TIMEOUT_S)

    def restart(self, k: int) -> Tuple:
        """Respawn a dead shard on its old endpoint; journal replay
        restores its dedup set and aggregation totals."""
        proc = self._procs[k]
        if proc is not None and proc.is_alive():
            raise RuntimeError(f"shard {k} is still alive; kill it first")
        self._spawn(k)
        return self._await_endpoint(k)

    def stop(self) -> None:
        """SIGTERM every live shard and wait for their graceful drains."""
        for proc in self._procs:
            if proc is not None and proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            if proc is not None:
                proc.join(timeout=SHARD_STOP_TIMEOUT_S)

    def __enter__(self) -> "CollectorTier":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- reporting ------------------------------------------------------

    def shard_manifests(self) -> List[RunManifest]:
        """Every manifest the gracefully stopped shards wrote."""
        manifests = []
        for k in range(self.shards):
            path = self._manifest_file(k)
            if path.exists():
                manifests.append(RunManifest.load(path))
        return manifests

    def merged_manifest(self, **meta) -> RunManifest:
        """The cross-shard run manifest (counters sum, spans combine)."""
        meta.setdefault("shards", self.shards)
        manifests = self.shard_manifests()
        if not manifests:
            return RunManifest(meta=dict(meta))
        return RunManifest.merge(manifests, **meta)

    def journal_results(self):
        """Every unique journaled payload, across all shards.

        Returns ``(payloads, dupes)``: the deduped payload list in
        ``(device_id, session seq)`` arrival order per shard, and how
        many journal records were duplicates (a shard killed between
        journal-append and ack can journal a frame its restarted life
        journals again on the resend).
        """
        payloads = []
        dupes = 0
        for k in range(self.shards):
            records = read_journal(
                self.journal_file(k), self.config.max_frame_bytes
            ).records
            unique, shard_dupes = dedupe_records(records)
            dupes += shard_dupes
            payloads.extend(frame.payload for frame in unique)
        return payloads, dupes
