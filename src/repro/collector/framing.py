"""Wire format of the fleet collector: length-prefixed JSON frames.

Every message on a collector connection — in either direction — is one
*frame*: a 4-byte big-endian unsigned length followed by that many bytes
of UTF-8 JSON encoding one object.  The frame ``type`` field selects the
message kind:

client → server
    * ``hello``   — opens a device stream (``device_id``, ``proto``);
    * ``result``  — one :class:`SessionResultPayload` under a
      per-device ``seq`` number (the retry/dedup key);
    * ``metrics`` — a device-side ``MetricsRegistry.snapshot()`` to fold
      into the collector's run registry;
    * ``bye``     — closes the stream and reports client-side tallies
      (frames sent, retries, reconnects).

server → client
    * ``hello_ok`` / ``ack`` / ``metrics_ok`` / ``bye_ok`` — one reply
      per request frame; ``ack`` echoes the result's ``seq``.

The protocol is deliberately request/response per frame: a client knows
a result is durable exactly when its ``ack`` arrives, which is what
makes resend-until-acked safe — the server deduplicates resends by
``(device_id, seq)``, so a lost ack costs one duplicate frame, never a
duplicate *result*.

Length prefixes are capped (:data:`MAX_FRAME_BYTES`); an oversized or
non-JSON frame raises :class:`FrameError`, which the server counts as
``collector.malformed_frames`` and answers by closing the connection.
"""

from __future__ import annotations

import json
import socket
import struct
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

#: Protocol revision carried in the ``hello`` frame.
PROTO_VERSION = 1

#: Hard cap on one frame's JSON body; a length prefix beyond this is
#: treated as a corrupt stream, not an allocation request.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LEN = struct.Struct(">I")


class FrameError(Exception):
    """A malformed, oversized, or truncated frame."""


class ConnectionClosed(FrameError):
    """The peer closed the connection cleanly between frames."""


def encode_frame(obj: Mapping[str, object]) -> bytes:
    """One mapping as a length-prefixed JSON frame."""
    body = json.dumps(obj, separators=(",", ":"), sort_keys=True).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(f"frame body of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    return _LEN.pack(len(body)) + body


def decode_body(body: bytes) -> Dict[str, object]:
    """The JSON object inside one frame body."""
    try:
        obj = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise FrameError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise FrameError(f"frame body must be a JSON object, got {type(obj).__name__}")
    return obj


def parse_length(prefix: bytes, max_bytes: int = MAX_FRAME_BYTES) -> int:
    """Validate and unpack a 4-byte length prefix."""
    if len(prefix) != _LEN.size:
        raise FrameError(f"truncated length prefix ({len(prefix)} bytes)")
    (length,) = _LEN.unpack(prefix)
    if length > max_bytes:
        raise FrameError(f"frame length {length} exceeds cap {max_bytes}")
    return length


async def read_frame_async(reader, max_bytes: int = MAX_FRAME_BYTES) -> Dict[str, object]:
    """Read one frame from an :class:`asyncio.StreamReader`.

    Raises :class:`ConnectionClosed` on clean EOF between frames and
    :class:`FrameError` on EOF mid-frame or a corrupt prefix/body.
    """
    import asyncio

    try:
        prefix = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise ConnectionClosed("peer closed between frames") from exc
        raise FrameError("connection closed inside a length prefix") from exc
    length = parse_length(prefix, max_bytes)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameError("connection closed inside a frame body") from exc
    return decode_body(body)


def read_frame_sock(sock: socket.socket, max_bytes: int = MAX_FRAME_BYTES) -> Dict[str, object]:
    """Read one frame from a blocking socket (the client side)."""

    def read_exactly(n: int) -> bytes:
        chunks = []
        remaining = n
        while remaining:
            chunk = sock.recv(remaining)
            if not chunk:
                if remaining == n and not chunks:
                    raise ConnectionClosed("peer closed between frames")
                raise FrameError("connection closed mid-frame")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    length = parse_length(read_exactly(_LEN.size), max_bytes)
    return decode_body(read_exactly(length))


@dataclass
class SessionResultPayload:
    """The serializable unit one device reports per finished session.

    This is the *shipped* form of a run-level result — everything fleet
    aggregation needs, nothing that drags simulator objects across the
    wire.  ``metrics`` optionally carries the device run's
    ``MetricsRegistry.snapshot()`` (most devices send one consolidated
    ``metrics`` frame instead; see :mod:`repro.collector.fleet`).
    """

    device_id: str
    session_index: int
    text: str
    n_keys: int
    degraded: bool = False
    exact: Optional[bool] = None
    seed: int = 0
    metrics: Optional[Dict[str, object]] = None
    meta: Dict[str, object] = field(default_factory=dict)

    @classmethod
    def from_result(
        cls,
        result,
        device_id: str,
        session_index: int,
        seed: int = 0,
        expected: Optional[str] = None,
        metrics: Optional[Dict[str, object]] = None,
    ) -> "SessionResultPayload":
        """Build from any :class:`~repro.core.results.SessionResult`."""
        text = result.text
        return cls(
            device_id=device_id,
            session_index=session_index,
            text=text,
            n_keys=len(result.keys),
            degraded=bool(getattr(result, "degraded", False)),
            exact=None if expected is None else text == expected,
            seed=seed,
            metrics=metrics,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "device_id": self.device_id,
            "session_index": self.session_index,
            "text": self.text,
            "n_keys": self.n_keys,
            "degraded": self.degraded,
            "exact": self.exact,
            "seed": self.seed,
            "metrics": self.metrics,
            "meta": self.meta,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SessionResultPayload":
        known = {
            "device_id", "session_index", "text", "n_keys", "degraded",
            "exact", "seed", "metrics", "meta",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown SessionResultPayload fields: {sorted(unknown)}")
        kwargs = dict(data)
        kwargs.setdefault("meta", {})
        return cls(**kwargs)  # type: ignore[arg-type]
