"""Byte-level transport of the fleet collector: length-prefixed frames.

Every message on a collector connection — in either direction — is one
*frame*: a 4-byte big-endian unsigned length followed by that many bytes
of frame *body*.  Two body encodings share the wire:

* **JSON** (protocol revision 1, the compatibility fallback): UTF-8
  JSON encoding one object whose ``type`` field selects the message
  kind.  A JSON body always starts with ``{`` (0x7B).
* **binary** (negotiated in the ``hello`` exchange): a struct-packed
  body whose first byte is a kind tag in the 0x80–0x9F range — a value
  no JSON object can start with, so the two encodings are
  self-describing and can interleave on one connection.

The typed frame classes and both codecs live in
:mod:`repro.collector.frames`; this module owns the transport layer
(length prefixes, size caps, exact reads) and the serializable
:class:`SessionResultPayload`.

Length prefixes are capped (:data:`MAX_FRAME_BYTES`); an oversized
prefix raises :class:`FrameTooLarge` and a peer closing mid-frame
raises :class:`FrameError` — both are *clean protocol errors* the
server answers by counting ``collector.frames.rejected`` and closing
the connection, never a raw ``asyncio.IncompleteReadError`` traceback.
"""

from __future__ import annotations

import json
import socket
import struct
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

#: Protocol revision carried in the ``hello`` frame.
PROTO_VERSION = 1

#: Hard cap on one frame's body; a length prefix beyond this is
#: treated as a corrupt stream, not an allocation request.
MAX_FRAME_BYTES = 16 * 1024 * 1024

#: Number of fixed counter-delta slots in a result payload — the 11
#: performance counters of the paper's Table 1.
N_COUNTERS = 11

_LEN = struct.Struct(">I")


class FrameError(Exception):
    """A malformed, oversized, or truncated frame."""


class FrameTooLarge(FrameError):
    """A length prefix above the frame-size cap (a corrupt or hostile peer)."""


class FrameTruncated(FrameError):
    """The peer closed the connection in the middle of a frame."""


class ConnectionClosed(FrameError):
    """The peer closed the connection cleanly between frames."""


def encode_frame(obj: Mapping[str, object]) -> bytes:
    """One mapping as a length-prefixed JSON frame (revision-1 wire form)."""
    body = json.dumps(obj, separators=(",", ":"), sort_keys=True).encode("utf-8")
    return prefix_body(body)


def prefix_body(body: bytes, max_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Wrap an encoded frame body in its length prefix, enforcing the cap."""
    if len(body) > max_bytes:
        raise FrameTooLarge(f"frame body of {len(body)} bytes exceeds {max_bytes}")
    return _LEN.pack(len(body)) + body


def decode_body(body: bytes) -> Dict[str, object]:
    """The JSON object inside one JSON frame body."""
    try:
        obj = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise FrameError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise FrameError(f"frame body must be a JSON object, got {type(obj).__name__}")
    return obj


def parse_length(prefix: bytes, max_bytes: int = MAX_FRAME_BYTES) -> int:
    """Validate and unpack a 4-byte length prefix."""
    if len(prefix) != _LEN.size:
        raise FrameError(f"truncated length prefix ({len(prefix)} bytes)")
    (length,) = _LEN.unpack(prefix)
    if length > max_bytes:
        raise FrameTooLarge(f"frame length {length} exceeds cap {max_bytes}")
    return length


async def read_body_async(reader, max_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Read one frame body from an :class:`asyncio.StreamReader`.

    Raises :class:`ConnectionClosed` on clean EOF between frames,
    :class:`FrameTooLarge` on an oversized prefix, and
    :class:`FrameTruncated` on EOF mid-frame — never the raw
    ``asyncio.IncompleteReadError``.
    """
    import asyncio

    try:
        prefix = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise ConnectionClosed("peer closed between frames") from exc
        raise FrameTruncated("connection closed inside a length prefix") from exc
    length = parse_length(prefix, max_bytes)
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise FrameTruncated("connection closed inside a frame body") from exc


async def read_frame_async(reader, max_bytes: int = MAX_FRAME_BYTES) -> Dict[str, object]:
    """Read one JSON frame from an :class:`asyncio.StreamReader` (legacy)."""
    return decode_body(await read_body_async(reader, max_bytes))


def read_body_sock(sock: socket.socket, max_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Read one frame body from a blocking socket (the client side)."""

    def read_exactly(n: int) -> bytes:
        chunks = []
        remaining = n
        while remaining:
            chunk = sock.recv(remaining)
            if not chunk:
                if remaining == n and not chunks:
                    raise ConnectionClosed("peer closed between frames")
                raise FrameTruncated("connection closed mid-frame")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    length = parse_length(read_exactly(_LEN.size), max_bytes)
    return read_exactly(length)


def read_frame_sock(sock: socket.socket, max_bytes: int = MAX_FRAME_BYTES) -> Dict[str, object]:
    """Read one JSON frame from a blocking socket (legacy)."""
    return decode_body(read_body_sock(sock, max_bytes))


@dataclass
class SessionResultPayload:
    """The serializable unit one device reports per finished session.

    This is the *shipped* form of a run-level result — everything fleet
    aggregation needs, nothing that drags simulator objects across the
    wire.  ``metrics`` optionally carries the device run's
    ``MetricsRegistry.snapshot()`` (most devices send one consolidated
    ``metrics`` frame instead; see :mod:`repro.collector.fleet`).

    ``deltas`` is the session's aggregate change of the 11 selected
    performance counters (Table 1 order, one value per counter) and
    ``mask`` a bitmask of counters whose aggregate is unknown (bit *i*
    set = counter *i* masked).  The pair is exactly the fixed-width
    block the binary codec packs as ``11×u64`` + ``u16`` — the reason
    a result frame needs one :class:`struct.Struct` pack and no
    per-field JSON encoding.
    """

    device_id: str
    session_index: int
    text: str
    n_keys: int
    degraded: bool = False
    exact: Optional[bool] = None
    seed: int = 0
    deltas: Optional[Tuple[int, ...]] = None
    mask: int = 0
    metrics: Optional[Dict[str, object]] = None
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.deltas is not None:
            self.deltas = tuple(int(v) for v in self.deltas)
            if len(self.deltas) != N_COUNTERS:
                raise ValueError(
                    f"deltas must carry {N_COUNTERS} counter values, "
                    f"got {len(self.deltas)}"
                )
            if any(v < 0 for v in self.deltas):
                raise ValueError("counter deltas are non-negative")
        if not 0 <= self.mask < (1 << N_COUNTERS):
            raise ValueError(f"mask must fit {N_COUNTERS} bits, got {self.mask}")

    @classmethod
    def from_result(
        cls,
        result,
        device_id: str,
        session_index: int,
        seed: int = 0,
        expected: Optional[str] = None,
        metrics: Optional[Dict[str, object]] = None,
        deltas: Optional[Tuple[int, ...]] = None,
        mask: int = 0,
    ) -> "SessionResultPayload":
        """Build from any :class:`~repro.core.results.SessionResult`."""
        text = result.text
        return cls(
            device_id=device_id,
            session_index=session_index,
            text=text,
            n_keys=len(result.keys),
            degraded=bool(getattr(result, "degraded", False)),
            exact=None if expected is None else text == expected,
            seed=seed,
            deltas=deltas,
            mask=mask,
            metrics=metrics,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "device_id": self.device_id,
            "session_index": self.session_index,
            "text": self.text,
            "n_keys": self.n_keys,
            "degraded": self.degraded,
            "exact": self.exact,
            "seed": self.seed,
            "deltas": list(self.deltas) if self.deltas is not None else None,
            "mask": self.mask,
            "metrics": self.metrics,
            "meta": self.meta,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SessionResultPayload":
        known = {
            "device_id", "session_index", "text", "n_keys", "degraded",
            "exact", "seed", "deltas", "mask", "metrics", "meta",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown SessionResultPayload fields: {sorted(unknown)}")
        kwargs = dict(data)
        kwargs.setdefault("meta", {})
        if kwargs.get("deltas") is not None:
            kwargs["deltas"] = tuple(kwargs["deltas"])
        kwargs.setdefault("mask", 0)
        return cls(**kwargs)  # type: ignore[arg-type]
