"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``steal``    — end-to-end attack demo on one configuration
* ``train``    — offline phase; writes a model store JSON
* ``attack``   — online phase against a simulated victim, using a store
* ``fleet``    — N simulated devices streaming into one collector
  service (backpressure, retries, dedup; see ``docs/collector.md``)
* ``survey``   — per-key weak-spot report for a keyboard
* ``report``   — regenerate the evaluation figures into a directory
* ``devices``  — list modeled phones, keyboards and apps

The CLI is a thin shell over the public API (``repro.api``); every
command maps onto one or two facade calls so it doubles as
documentation.  ``steal`` and ``attack`` accept ``--fault-profile`` /
``--fault-seed`` to exercise the resilient sampling path against an
unreliable KGSL interface (see ``repro.faults``).
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path
from typing import List, Optional

from repro.api import (
    CHASE,
    KEYBOARDS,
    PHONE_MODELS,
    TARGET_APPS,
    AttackConfig,
    CandidateGenerator,
    DeviceConfig,
    FaultPlan,
    MetricsRegistry,
    app,
    attack,
    bar_chart,
    default_config,
    generate_report,
    keyboard,
    ModelStore,
    phone,
    run_fleet,
    run_per_key_sweep,
    run_sessions,
    simulate,
    train,
)

_FAULT_CHOICES = ("auto", "none", "mild", "harsh")


def _add_fault_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--fault-profile",
        choices=_FAULT_CHOICES,
        default="auto",
        help="inject KGSL faults: none/mild/harsh, or 'auto' to honor "
        "the REPRO_FAULT_PROFILE environment variable (default)",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed for the fault plan RNG (with --fault-profile)",
    )


def _add_workers_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="shard the session batch across N worker processes "
        "(with --sessions > 1); output is byte-identical to --workers 1",
    )


def _add_metrics_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="collect run metrics (sampler/fault/latency/throughput) and "
        "write the JSON run manifest to PATH",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GPU side-channel keystroke inference (ASPLOS'22 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    steal = sub.add_parser("steal", help="train + attack one credential end to end")
    steal.add_argument("credential", nargs="?", default="Tr0ub4dor&3")
    steal.add_argument("--phone", default="oneplus8pro")
    steal.add_argument("--keyboard", default="gboard")
    steal.add_argument("--app", default="chase")
    steal.add_argument("--seed", type=int, default=42)
    steal.add_argument(
        "--sessions",
        type=int,
        default=1,
        help="victim sessions to run concurrently on one session runtime",
    )
    _add_workers_flag(steal)
    _add_fault_flags(steal)
    _add_metrics_flag(steal)

    train_p = sub.add_parser("train", help="offline phase: train and save models")
    train_p.add_argument("output", help="model store JSON path")
    train_p.add_argument("--phone", action="append", default=[])
    train_p.add_argument("--keyboard", action="append", default=[])
    train_p.add_argument("--app", action="append", default=[])

    attack_p = sub.add_parser("attack", help="online phase using a saved store")
    attack_p.add_argument("store", help="model store JSON path")
    attack_p.add_argument("credential")
    attack_p.add_argument("--phone", default="oneplus8pro")
    attack_p.add_argument("--keyboard", default="gboard")
    attack_p.add_argument("--app", default="chase")
    attack_p.add_argument("--seed", type=int, default=42)
    attack_p.add_argument("--guesses", type=int, default=10)
    attack_p.add_argument(
        "--sessions",
        type=int,
        default=1,
        help="victim sessions to run concurrently on one session runtime",
    )
    _add_workers_flag(attack_p)
    _add_fault_flags(attack_p)
    _add_metrics_flag(attack_p)

    fleet = sub.add_parser(
        "fleet",
        help="train, then run N simulated devices streaming results "
        "into one collector service",
    )
    fleet.add_argument("credential", nargs="?", default="Tr0ub4dor&3")
    fleet.add_argument("--devices", type=int, default=3, help="simulated devices")
    fleet.add_argument(
        "--sessions",
        type=int,
        default=2,
        help="victim sessions each device runs and reports",
    )
    fleet.add_argument("--phone", default="oneplus8pro")
    fleet.add_argument("--keyboard", default="gboard")
    fleet.add_argument("--app", default="chase")
    fleet.add_argument("--seed", type=int, default=42)
    fleet.add_argument(
        "--transport",
        choices=("tcp", "unix"),
        default="tcp",
        help="collector transport (unix uses a socket in the cwd's tmp)",
    )
    fleet.add_argument(
        "--queue-size",
        type=int,
        default=256,
        help="collector in-flight queue bound (the backpressure knob)",
    )
    _add_workers_flag(fleet)
    _add_fault_flags(fleet)
    _add_metrics_flag(fleet)

    survey = sub.add_parser("survey", help="per-key weak spots for a keyboard")
    survey.add_argument("--keyboard", default="gboard")
    survey.add_argument("--repeats", type=int, default=6)

    report = sub.add_parser("report", help="regenerate the evaluation figures")
    report.add_argument("output_dir")
    report.add_argument("--scale", type=int, default=1)

    sub.add_parser("devices", help="list modeled phones, keyboards and apps")
    return parser


def _config(phone_name: str, keyboard_name: str) -> DeviceConfig:
    return DeviceConfig(phone=phone(phone_name), keyboard=keyboard(keyboard_name))


def _attack_config(args, **overrides) -> AttackConfig:
    profile = getattr(args, "fault_profile", "auto")
    if profile == "auto":
        fault_plan = "auto"
    else:
        fault_plan = FaultPlan.from_profile(profile, seed=args.fault_seed)
    return AttackConfig(fault_plan=fault_plan, **overrides)


def _fault_summary(result) -> str:
    if result.faults is None or not result.faults.total:
        return ""
    return (
        f"faults   : {result.faults.total} injected "
        f"({result.faults.as_dict()}), degraded={result.degraded}"
    )


def _metrics_registry(args) -> Optional[MetricsRegistry]:
    return MetricsRegistry() if getattr(args, "metrics_out", None) else None


def _write_manifest(args, cfg, registry, command: str, sessions: int) -> None:
    """Snapshot the registry into the manifest file ``--metrics-out``
    names (taken last, so CLI-level rollups are included)."""
    if registry is None:
        return
    manifest = registry.manifest(
        config=cfg.to_dict(), command=command, sessions=sessions
    )
    manifest.write(args.metrics_out)
    print(f"metrics  : wrote run manifest to {args.metrics_out}")


def _run_batched(
    store, cfg, config, target, credential, seed, sessions, registry=None, workers=1
) -> int:
    """Run ``sessions`` concurrent victims — on one session runtime, or
    sharded over ``workers`` processes — and print per-session outcomes
    plus the aggregate accuracy."""
    traces = [
        simulate(config, target, credential, seed=seed + i, config=cfg)
        for i in range(sessions)
    ]
    started = time.perf_counter()
    results = run_sessions(
        store, traces, seed=seed + 1000, config=cfg, metrics=registry,
        workers=workers,
    )
    elapsed = time.perf_counter() - started
    exact = sum(1 for r in results if r.text == credential)
    for i, result in enumerate(results):
        marker = "EXACT" if result.text == credential else "partial"
        print(f"session {i:3d}: {result.text!r:24s} {marker}")
    print(f"typed          : {credential!r}")
    print(f"sessions       : {sessions}" + (f" (workers={workers})" if workers > 1 else ""))
    print(f"exact matches  : {exact}/{sessions} ({exact / sessions:.1%})")
    print(f"throughput     : {sessions / elapsed:.1f} sessions/s")
    if registry is not None:
        # batch-accuracy rollup joins the manifest before it is written
        registry.counter("accuracy.sessions").inc(sessions)
        registry.counter("accuracy.exact_matches").inc(exact)
        registry.gauge("accuracy.exact_rate").set(exact / sessions)
        registry.gauge("cli.wall_s").set(elapsed)
    return 0 if exact * 2 >= sessions else 1


def _cmd_steal(args) -> int:
    config = _config(args.phone, args.keyboard)
    target = app(args.app)
    cfg = _attack_config(args, recognize_device=False)
    registry = _metrics_registry(args)
    print(f"training model for {config.config_key()} / {target.name} ...")
    store = train([(config, target)], config=cfg)
    if args.sessions > 1:
        code = _run_batched(
            store, cfg, config, target, args.credential, args.seed, args.sessions,
            registry=registry, workers=args.workers,
        )
        _write_manifest(args, cfg, registry, "steal", args.sessions)
        return code
    trace = simulate(config, target, args.credential, seed=args.seed, config=cfg)
    result = attack(store, trace, seed=args.seed + 1, config=cfg, metrics=registry)
    print(f"typed    : {args.credential!r}")
    print(f"inferred : {result.text!r}")
    print("outcome  : " + ("EXACT" if result.text == args.credential else "partial"))
    summary = _fault_summary(result)
    if summary:
        print(summary)
    _write_manifest(args, cfg, registry, "steal", 1)
    return 0 if result.text == args.credential else 1


def _cmd_train(args) -> int:
    phones = args.phone or ["oneplus8pro"]
    keyboards = args.keyboard or ["gboard"]
    apps = args.app or ["chase"]
    pairs = [
        (_config(p, k), app(a)) for p in phones for k in keyboards for a in apps
    ]
    print(f"training {len(pairs)} model(s) ...")
    store = train(pairs)
    store.save(args.output)
    print(
        f"wrote {args.output}: {len(store)} models, "
        f"{store.total_size_bytes() / 1024:.1f} KB"
    )
    return 0


def _cmd_attack(args) -> int:
    store = ModelStore.load(args.store)
    config = _config(args.phone, args.keyboard)
    target = app(args.app)
    cfg = _attack_config(args)
    registry = _metrics_registry(args)
    if args.sessions > 1:
        code = _run_batched(
            store, cfg, config, target, args.credential, args.seed, args.sessions,
            registry=registry, workers=args.workers,
        )
        _write_manifest(args, cfg, registry, "attack", args.sessions)
        return code
    trace = simulate(config, target, args.credential, seed=args.seed, config=cfg)
    result = attack(store, trace, seed=args.seed + 1, config=cfg, metrics=registry)
    print(f"recognized: {result.model_key}")
    print(f"typed     : {args.credential!r}")
    print(f"inferred  : {result.text!r}")
    summary = _fault_summary(result)
    if summary:
        print(summary)
    _write_manifest(args, cfg, registry, "attack", 1)
    if result.text != args.credential and args.guesses > 1:
        model = store.get(result.model_key)
        generator = CandidateGenerator(model)
        rank = generator.rank_of(result.online, args.credential, max_candidates=args.guesses)
        if rank is not None:
            print(f"recovered : guess #{rank} of {args.guesses}")
            return 0
        print(f"not recovered within {args.guesses} guesses")
        return 1
    return 0 if result.text == args.credential else 1


def _cmd_fleet(args) -> int:
    config = _config(args.phone, args.keyboard)
    target = app(args.app)
    cfg = _attack_config(args, recognize_device=False)
    registry = _metrics_registry(args)
    unix_path = None
    tmpdir = None
    if args.transport == "unix":
        tmpdir = tempfile.TemporaryDirectory(prefix="repro-fleet-")
        unix_path = str(Path(tmpdir.name) / "collector.sock")
    print(f"training model for {config.config_key()} / {target.name} ...")
    store = train([(config, target)], config=cfg)
    try:
        report = run_fleet(
            store,
            config,
            target,
            args.credential,
            devices=args.devices,
            sessions_per_device=args.sessions,
            seed=args.seed,
            config=cfg,
            workers=args.workers,
            transport=args.transport,
            unix_path=unix_path,
            queue_size=args.queue_size,
            metrics=registry,
        )
    finally:
        if tmpdir is not None:
            tmpdir.cleanup()
    print(
        f"fleet      : {report.devices} devices x {args.sessions} sessions "
        f"(transport={args.transport}, workers={args.workers})"
    )
    print(
        f"ingested   : {report.ingested}/{report.sessions_total} results "
        f"({report.lost} lost, {report.duplicates_dropped} duplicate frames)"
    )
    print(
        f"delivery   : {report.retries} retries, {report.reconnects} reconnects"
    )
    print(
        f"exact      : {report.exact}/{report.sessions_total} "
        f"({report.exact_rate:.1%})"
    )
    print(f"throughput : {report.ingest_rate:.1f} sessions/s ingested")
    for outcome in report.outcomes:
        if outcome.error:
            print(f"device     : {outcome.device_id} FAILED ({outcome.error})")
    if args.metrics_out and report.manifest is not None:
        report.manifest.write(args.metrics_out)
        print(f"metrics    : wrote run manifest to {args.metrics_out}")
    return 0 if report.lost == 0 else 1


def _cmd_survey(args) -> int:
    if args.keyboard not in KEYBOARDS:
        print(f"unknown keyboard {args.keyboard!r}; available: {sorted(KEYBOARDS)}")
        return 2
    config = default_config(keyboard=KEYBOARDS[args.keyboard])
    stats = run_per_key_sweep(config, CHASE, repeats=args.repeats)
    accuracy = {c: correct / total for c, (correct, total) in stats.items() if total}
    worst = dict(sorted(accuracy.items(), key=lambda kv: kv[1])[:12])
    print(bar_chart(worst, title=f"weakest keys on {args.keyboard}", vmax=1.0))
    overall = sum(c for c, _ in stats.values()) / max(1, sum(t for _, t in stats.values()))
    print(f"overall per-key accuracy: {overall:.3f}")
    return 0


def _cmd_report(args) -> int:
    written = generate_report(args.output_dir, scale=args.scale)
    for name, path in written.items():
        print(f"wrote {path}")
    return 0


def _cmd_devices(args) -> int:
    print("phones:")
    for name, spec in sorted(PHONE_MODELS.items()):
        print(f"  {name:12s} {spec.display_name} ({spec.gpu.name}, Android {spec.android.version})")
    print("keyboards:")
    for name, spec in sorted(KEYBOARDS.items()):
        print(f"  {name:12s} {spec.display_name}")
    print("apps:")
    for name, spec in sorted(TARGET_APPS.items()):
        print(f"  {name:14s} {spec.display_name} ({spec.category})")
    return 0


_COMMANDS = {
    "steal": _cmd_steal,
    "train": _cmd_train,
    "attack": _cmd_attack,
    "fleet": _cmd_fleet,
    "survey": _cmd_survey,
    "report": _cmd_report,
    "devices": _cmd_devices,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
