"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``steal``    — end-to-end attack demo on one configuration
* ``train``    — offline phase; writes a model store JSON
* ``attack``   — online phase against a simulated victim, using a store
* ``fleet``    — N simulated devices streaming into one collector
  service (backpressure, retries, dedup; see ``docs/collector.md``)
* ``lifecycle`` — drift → recalibrate → recover demo: one long engine
  session under signature drift, with per-device re-fits and hot model
  swaps (see ``docs/lifecycle.md``)
* ``survey``   — per-key weak-spot report for a keyboard
* ``report``   — regenerate the evaluation figures into a directory
* ``devices``  — list registered phones, keyboards and apps
* ``scenarios`` — list / show / smoke-test the scenario registry
* ``defenses`` — list / show / smoke / sweep the mitigation registry
  (the threat × mitigation matrix; see ``docs/defenses.md``)

The CLI is a thin shell over the public API (``repro.api``); every
command maps onto one or two facade calls so it doubles as
documentation.  ``--phone`` / ``--keyboard`` / ``--app`` /
``--scenario`` / ``--mitigation`` names are validated against their
registries at argument-parse time, so a typo exits with a usage error
(and a closest-match suggestion) before any work starts.  ``steal`` and
``attack`` accept ``--fault-profile`` / ``--fault-seed`` to exercise
the resilient sampling path against an unreliable KGSL interface (see
``repro.faults``), and ``--mitigation`` to run the same attack against
a defended victim.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path
from typing import List, Optional

from repro.api import (
    APP_REGISTRY,
    KEYBOARD_REGISTRY,
    MITIGATION_REGISTRY,
    PHONE_REGISTRY,
    SCENARIO_REGISTRY,
    AttackConfig,
    CandidateGenerator,
    DeviceConfig,
    FaultPlan,
    IoctlError,
    MetricsRegistry,
    MitigationPolicy,
    ProcessContext,
    UnknownNameError,
    app,
    attack,
    bar_chart,
    CALIBRATION_PROFILES,
    CollectorConfig,
    default_config,
    DRIFT_PROFILES,
    format_defense_matrix,
    generate_report,
    keyboard,
    mitigation,
    ModelStore,
    phone,
    run_defense_matrix,
    run_fleet,
    run_lifecycle,
    run_per_key_sweep,
    run_sessions,
    scenario,
    simulate,
    train,
)

_FAULT_CHOICES = ("auto", "none", "mild", "harsh")

_DEFAULT_PHONE = "oneplus8pro"
_DEFAULT_KEYBOARD = "gboard"
_DEFAULT_APP = "chase"


def _registry_name(registry):
    """An argparse ``type=`` validator: the name must exist in
    ``registry``.  Unknown names become a usage error (exit code 2)
    carrying the registry's known-set + did-you-mean message instead of
    a traceback deep inside the attack."""

    def check(value: str) -> str:
        try:
            registry.get(value)
        except UnknownNameError as exc:
            raise argparse.ArgumentTypeError(str(exc))
        return value

    return check


def _add_axis_flags(parser: argparse.ArgumentParser) -> None:
    """``--scenario`` plus per-axis overrides, all registry-validated.
    Axis precedence: explicit flag > scenario axis > workhorse default."""
    parser.add_argument(
        "--scenario",
        default=None,
        type=_registry_name(SCENARIO_REGISTRY),
        metavar="NAME",
        help="run a registered scenario (see 'repro scenarios'); "
        "--phone/--keyboard/--app override individual axes",
    )
    parser.add_argument(
        "--phone", default=None, type=_registry_name(PHONE_REGISTRY),
        metavar="NAME", help=f"phone model (default {_DEFAULT_PHONE})",
    )
    parser.add_argument(
        "--keyboard", default=None, type=_registry_name(KEYBOARD_REGISTRY),
        metavar="NAME", help=f"keyboard (default {_DEFAULT_KEYBOARD})",
    )
    parser.add_argument(
        "--app", default=None, type=_registry_name(APP_REGISTRY),
        metavar="NAME", help=f"target app (default {_DEFAULT_APP})",
    )


def _add_fault_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--fault-profile",
        choices=_FAULT_CHOICES,
        default="auto",
        help="inject KGSL faults: none/mild/harsh, or 'auto' to honor "
        "the REPRO_FAULT_PROFILE environment variable (default)",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed for the fault plan RNG (with --fault-profile)",
    )


def _add_mitigation_flag(parser: argparse.ArgumentParser) -> None:
    check_name = _registry_name(MITIGATION_REGISTRY)
    parser.add_argument(
        "--mitigation",
        default="auto",
        type=lambda v: v if v in ("auto", "none") else check_name(v),
        metavar="NAME",
        help="enforce a registered mitigation policy on the victim "
        "(see 'repro defenses'); 'none' pins the undefended pipeline, "
        "default 'auto' honors the REPRO_MITIGATION environment variable",
    )


def _add_workers_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="shard the session batch across N worker processes "
        "(with --sessions > 1); output is byte-identical to --workers 1",
    )


def _add_metrics_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="collect run metrics (sampler/fault/latency/throughput) and "
        "write the JSON run manifest to PATH",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GPU side-channel keystroke inference (ASPLOS'22 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    steal = sub.add_parser("steal", help="train + attack one credential end to end")
    steal.add_argument("credential", nargs="?", default="Tr0ub4dor&3")
    _add_axis_flags(steal)
    steal.add_argument("--seed", type=int, default=42)
    steal.add_argument(
        "--sessions",
        type=int,
        default=1,
        help="victim sessions to run concurrently on one session runtime",
    )
    _add_workers_flag(steal)
    _add_fault_flags(steal)
    _add_mitigation_flag(steal)
    _add_metrics_flag(steal)

    train_p = sub.add_parser("train", help="offline phase: train and save models")
    train_p.add_argument("output", help="model store JSON path")
    train_p.add_argument(
        "--scenario", action="append", default=[],
        type=_registry_name(SCENARIO_REGISTRY), metavar="NAME",
        help="train the (device, app) pair of a registered scenario "
        "(repeatable; combines with the --phone/--keyboard/--app grid)",
    )
    train_p.add_argument(
        "--phone", action="append", default=[],
        type=_registry_name(PHONE_REGISTRY), metavar="NAME",
    )
    train_p.add_argument(
        "--keyboard", action="append", default=[],
        type=_registry_name(KEYBOARD_REGISTRY), metavar="NAME",
    )
    train_p.add_argument(
        "--app", action="append", default=[],
        type=_registry_name(APP_REGISTRY), metavar="NAME",
    )

    attack_p = sub.add_parser("attack", help="online phase using a saved store")
    attack_p.add_argument("store", help="model store JSON path")
    attack_p.add_argument("credential")
    _add_axis_flags(attack_p)
    attack_p.add_argument("--seed", type=int, default=42)
    attack_p.add_argument("--guesses", type=int, default=10)
    attack_p.add_argument(
        "--sessions",
        type=int,
        default=1,
        help="victim sessions to run concurrently on one session runtime",
    )
    _add_workers_flag(attack_p)
    _add_fault_flags(attack_p)
    _add_mitigation_flag(attack_p)
    _add_metrics_flag(attack_p)

    fleet = sub.add_parser(
        "fleet",
        help="train, then run N simulated devices streaming results "
        "into one collector service",
    )
    fleet.add_argument("credential", nargs="?", default="Tr0ub4dor&3")
    fleet.add_argument("--devices", type=int, default=3, help="simulated devices")
    fleet.add_argument(
        "--sessions",
        type=int,
        default=2,
        help="victim sessions each device runs and reports",
    )
    _add_axis_flags(fleet)
    fleet.add_argument("--seed", type=int, default=42)
    fleet.add_argument(
        "--transport",
        choices=("tcp", "unix"),
        default="tcp",
        help="collector transport (unix uses a socket in the cwd's tmp)",
    )
    fleet.add_argument(
        "--queue-size",
        type=int,
        default=256,
        help="collector in-flight queue bound (the backpressure knob)",
    )
    fleet.add_argument(
        "--codec",
        choices=("auto", "binary", "json"),
        default="auto",
        help="wire codec: auto negotiates the struct-packed binary frames "
        "and falls back to JSON for old peers; binary/json pin the choice",
    )
    fleet.add_argument(
        "--shards",
        type=int,
        default=1,
        help="collector processes; >1 stands up the sharded tier with a "
        "deterministic device router and per-shard write-ahead journals",
    )
    fleet.add_argument(
        "--journal-dir",
        default=None,
        help="directory for the per-shard write-ahead journals (default: "
        "a scratch directory deleted after the run)",
    )
    fleet.add_argument(
        "--kill-drill",
        action="store_true",
        help="SIGKILL one collector shard mid-run and restart it, proving "
        "the journal replay path end to end (requires --shards >= 2)",
    )
    _add_workers_flag(fleet)
    _add_fault_flags(fleet)
    _add_mitigation_flag(fleet)
    _add_metrics_flag(fleet)

    lifecycle_p = sub.add_parser(
        "lifecycle",
        help="drift -> recalibrate -> recover demo on one long engine session",
    )
    lifecycle_p.add_argument("--credential", default="Tr0ub4dor&3")
    lifecycle_p.add_argument(
        "--segments", type=int, default=6,
        help="credential entries streamed through the one engine (default 6)",
    )
    lifecycle_p.add_argument("--seed", type=int, default=24)
    lifecycle_p.add_argument(
        "--drift-profile", default="thermal-harsh",
        choices=sorted(DRIFT_PROFILES),
        help="signature drift reshaping the counter stream "
        "(default thermal-harsh)",
    )
    lifecycle_p.add_argument(
        "--calibration", default="default",
        choices=sorted(CALIBRATION_PROFILES),
        help="recalibration profile; 'off' runs the frozen-model "
        "control arm (default default)",
    )
    lifecycle_p.add_argument(
        "--store-dir", default=None, metavar="DIR",
        help="persist every model generation (offline original + each "
        "re-fit) into a versioned, checksummed store under DIR",
    )
    _add_metrics_flag(lifecycle_p)

    survey = sub.add_parser("survey", help="per-key weak spots for a keyboard")
    survey.add_argument(
        "--keyboard", default=_DEFAULT_KEYBOARD,
        type=_registry_name(KEYBOARD_REGISTRY), metavar="NAME",
    )
    survey.add_argument("--repeats", type=int, default=6)

    report = sub.add_parser("report", help="regenerate the evaluation figures")
    report.add_argument("output_dir")
    report.add_argument("--scale", type=int, default=1)

    sub.add_parser("devices", help="list registered phones, keyboards and apps")

    scenarios_p = sub.add_parser(
        "scenarios",
        help="list, inspect, or smoke-test the scenario registry",
    )
    ssub = scenarios_p.add_subparsers(dest="scenarios_command")
    list_p = ssub.add_parser("list", help="list registered scenarios")
    list_p.add_argument(
        "--tag", default=None,
        help="only scenarios carrying this registry tag (paper, matrix, "
        "web, tier, extension, ...)",
    )
    show_p = ssub.add_parser("show", help="dump one scenario's spec")
    show_p.add_argument(
        "name", type=_registry_name(SCENARIO_REGISTRY), metavar="NAME"
    )
    smoke_p = ssub.add_parser(
        "smoke",
        help="run every registered scenario end to end, one short "
        "session each; any scenario error fails the run",
    )
    smoke_p.add_argument(
        "names", nargs="*", metavar="NAME",
        type=_registry_name(SCENARIO_REGISTRY),
        help="smoke only these scenarios (default: all registered)",
    )
    smoke_p.add_argument(
        "--sweep-repeats", type=int, default=1,
        help="training sweep repeats per model (default 1: fast smoke)",
    )

    defenses_p = sub.add_parser(
        "defenses",
        help="list, inspect, smoke-test, or sweep the mitigation registry",
    )
    dsub = defenses_p.add_subparsers(dest="defenses_command")
    dlist = dsub.add_parser("list", help="list registered mitigation policies")
    dlist.add_argument(
        "--tag", default=None,
        help="only policies carrying this registry tag (paper, "
        "access-control, obfuscation, sweep, composed, ...)",
    )
    dshow = dsub.add_parser("show", help="dump one policy's spec")
    dshow.add_argument(
        "name", type=_registry_name(MITIGATION_REGISTRY), metavar="NAME"
    )
    dsmoke = dsub.add_parser(
        "smoke",
        help="check every registered policy composes, enforces, and "
        "round-trips through its dict form; any failure fails the run",
    )
    dsmoke.add_argument(
        "names", nargs="*", metavar="NAME",
        type=_registry_name(MITIGATION_REGISTRY),
        help="smoke only these policies (default: all registered)",
    )
    dsweep = dsub.add_parser(
        "sweep",
        help="run the attack across scenarios x mitigations and print "
        "the threat x mitigation matrix (docs/defenses.md)",
    )
    dsweep.add_argument(
        "--scenario", action="append", default=[],
        type=_registry_name(SCENARIO_REGISTRY), metavar="NAME",
        help="victim scenario (repeatable; default: pinpad, gboard-chase)",
    )
    dsweep.add_argument(
        "--mitigation", action="append", default=[],
        type=_registry_name(MITIGATION_REGISTRY), metavar="NAME",
        help="policy column (repeatable; default: allow-all, rbac, "
        "rate-limit-30hz, obfuscate-strong, popup-disable)",
    )
    dsweep.add_argument(
        "--sessions", type=int, default=2,
        help="victim sessions per matrix cell (default 2)",
    )
    dsweep.add_argument("--length", type=int, default=8, help="credential length")
    dsweep.add_argument("--seed", type=int, default=7)
    dsweep.add_argument(
        "--fault-profile", choices=_FAULT_CHOICES, default="none",
        help="fault plan active during the sweep (default none)",
    )
    _add_workers_flag(dsweep)
    _add_metrics_flag(dsweep)
    return parser


def _config(phone_name: str, keyboard_name: str) -> DeviceConfig:
    return DeviceConfig(phone=phone(phone_name), keyboard=keyboard(keyboard_name))


def _resolve_axes(args):
    """Resolve ``(device_config, target, scenario_name)`` from the axis
    flags: explicit flag > scenario axis > workhorse default."""
    scn = scenario(args.scenario) if getattr(args, "scenario", None) else None
    phone_name = args.phone or (scn.phone if scn else _DEFAULT_PHONE)
    keyboard_name = args.keyboard or (scn.keyboard if scn else _DEFAULT_KEYBOARD)
    app_name = args.app or (scn.app if scn else _DEFAULT_APP)
    return (
        _config(phone_name, keyboard_name),
        app(app_name),
        scn.name if scn else None,
    )


def _attack_config(args, **overrides) -> AttackConfig:
    profile = getattr(args, "fault_profile", "auto")
    if profile == "auto":
        fault_plan = "auto"
    else:
        fault_plan = FaultPlan.from_profile(profile, seed=args.fault_seed)
    mitigation_name = getattr(args, "mitigation", "auto")
    if mitigation_name == "none":
        mitigation_name = None
    return AttackConfig(
        fault_plan=fault_plan, mitigation=mitigation_name, **overrides
    )


def _fault_summary(result) -> str:
    if result.faults is None or not result.faults.total:
        return ""
    return (
        f"faults   : {result.faults.total} injected "
        f"({result.faults.as_dict()}), degraded={result.degraded}"
    )


def _metrics_registry(args) -> Optional[MetricsRegistry]:
    return MetricsRegistry() if getattr(args, "metrics_out", None) else None


def _write_manifest(args, cfg, registry, command: str, sessions: int) -> None:
    """Snapshot the registry into the manifest file ``--metrics-out``
    names (taken last, so CLI-level rollups are included)."""
    if registry is None:
        return
    manifest = registry.manifest(
        config=cfg.to_dict(), command=command, sessions=sessions
    )
    manifest.write(args.metrics_out)
    print(f"metrics  : wrote run manifest to {args.metrics_out}")


def _run_batched(
    store, cfg, config, target, credential, seed, sessions, registry=None, workers=1
) -> int:
    """Run ``sessions`` concurrent victims — on one session runtime, or
    sharded over ``workers`` processes — and print per-session outcomes
    plus the aggregate accuracy."""
    traces = [
        simulate(config, target, credential, seed=seed + i, config=cfg)
        for i in range(sessions)
    ]
    started = time.perf_counter()
    results = run_sessions(
        store, traces, seed=seed + 1000, config=cfg, metrics=registry,
        workers=workers,
    )
    elapsed = time.perf_counter() - started
    exact = sum(1 for r in results if r.text == credential)
    for i, result in enumerate(results):
        marker = "EXACT" if result.text == credential else "partial"
        print(f"session {i:3d}: {result.text!r:24s} {marker}")
    print(f"typed          : {credential!r}")
    print(f"sessions       : {sessions}" + (f" (workers={workers})" if workers > 1 else ""))
    print(f"exact matches  : {exact}/{sessions} ({exact / sessions:.1%})")
    print(f"throughput     : {sessions / elapsed:.1f} sessions/s")
    if registry is not None:
        # batch-accuracy rollup joins the manifest before it is written
        registry.counter("accuracy.sessions").inc(sessions)
        registry.counter("accuracy.exact_matches").inc(exact)
        registry.gauge("accuracy.exact_rate").set(exact / sessions)
        registry.gauge("cli.wall_s").set(elapsed)
    return 0 if exact * 2 >= sessions else 1


def _cmd_steal(args) -> int:
    config, target, scenario_name = _resolve_axes(args)
    cfg = _attack_config(args, recognize_device=False, scenario=scenario_name)
    registry = _metrics_registry(args)
    print(f"training model for {config.config_key()} / {target.name} ...")
    store = train([(config, target)], config=cfg)
    if args.sessions > 1:
        code = _run_batched(
            store, cfg, config, target, args.credential, args.seed, args.sessions,
            registry=registry, workers=args.workers,
        )
        _write_manifest(args, cfg, registry, "steal", args.sessions)
        return code
    trace = simulate(config, target, args.credential, seed=args.seed, config=cfg)
    result = attack(store, trace, seed=args.seed + 1, config=cfg, metrics=registry)
    print(f"typed    : {args.credential!r}")
    print(f"inferred : {result.text!r}")
    print("outcome  : " + ("EXACT" if result.text == args.credential else "partial"))
    summary = _fault_summary(result)
    if summary:
        print(summary)
    _write_manifest(args, cfg, registry, "steal", 1)
    return 0 if result.text == args.credential else 1


def _cmd_train(args) -> int:
    pairs = []
    for name in args.scenario:
        scn = scenario(name)
        pairs.append((scn.device_config(), scn.app_spec()))
    if args.phone or args.keyboard or args.app or not pairs:
        phones = args.phone or [_DEFAULT_PHONE]
        keyboards = args.keyboard or [_DEFAULT_KEYBOARD]
        apps = args.app or [_DEFAULT_APP]
        pairs.extend(
            (_config(p, k), app(a))
            for p in phones for k in keyboards for a in apps
        )
    print(f"training {len(pairs)} model(s) ...")
    store = train(pairs)
    store.save(args.output)
    print(
        f"wrote {args.output}: {len(store)} models, "
        f"{store.total_size_bytes() / 1024:.1f} KB"
    )
    return 0


def _cmd_attack(args) -> int:
    store = ModelStore.load(args.store)
    config, target, scenario_name = _resolve_axes(args)
    cfg = _attack_config(args, scenario=scenario_name)
    registry = _metrics_registry(args)
    if args.sessions > 1:
        code = _run_batched(
            store, cfg, config, target, args.credential, args.seed, args.sessions,
            registry=registry, workers=args.workers,
        )
        _write_manifest(args, cfg, registry, "attack", args.sessions)
        return code
    trace = simulate(config, target, args.credential, seed=args.seed, config=cfg)
    result = attack(store, trace, seed=args.seed + 1, config=cfg, metrics=registry)
    print(f"recognized: {result.model_key}")
    print(f"typed     : {args.credential!r}")
    print(f"inferred  : {result.text!r}")
    summary = _fault_summary(result)
    if summary:
        print(summary)
    _write_manifest(args, cfg, registry, "attack", 1)
    if result.text != args.credential and args.guesses > 1:
        model = store.get(result.model_key)
        generator = CandidateGenerator(model)
        rank = generator.rank_of(result.online, args.credential, max_candidates=args.guesses)
        if rank is not None:
            print(f"recovered : guess #{rank} of {args.guesses}")
            return 0
        print(f"not recovered within {args.guesses} guesses")
        return 1
    return 0 if result.text == args.credential else 1


def _cmd_fleet(args) -> int:
    if args.shards < 1:
        print("error: --shards must be >= 1", file=sys.stderr)
        return 2
    if args.kill_drill and args.shards < 2:
        print(
            "error: --kill-drill needs --shards >= 2 (the fleet must "
            "survive on the other shards while one is down)",
            file=sys.stderr,
        )
        return 2
    config, target, scenario_name = _resolve_axes(args)
    cfg = _attack_config(args, recognize_device=False, scenario=scenario_name)
    registry = _metrics_registry(args)
    unix_path = None
    tmpdir = None
    if args.transport == "unix" and args.shards == 1:
        # the sharded tier derives per-shard socket paths itself
        tmpdir = tempfile.TemporaryDirectory(prefix="repro-fleet-")
        unix_path = str(Path(tmpdir.name) / "collector.sock")
    print(f"training model for {config.config_key()} / {target.name} ...")
    store = train([(config, target)], config=cfg)
    try:
        from repro.collector.fleet import DRILL_RETRY, FLEET_RETRY, KillDrill

        collector_cfg = CollectorConfig(
            transport=args.transport,
            unix_path=unix_path,
            codec=args.codec,
            queue_size=args.queue_size,
            # a drill takes a shard down for ~a second of process
            # respawn; devices need the patient backoff to ride it out
            retry=DRILL_RETRY if args.kill_drill else FLEET_RETRY,
            shards=args.shards,
            journal_dir=args.journal_dir,
        )
        drill = KillDrill() if args.kill_drill else None
        report = run_fleet(
            store,
            config,
            target,
            args.credential,
            devices=args.devices,
            sessions_per_device=args.sessions,
            seed=args.seed,
            config=cfg,
            workers=args.workers,
            collector=collector_cfg,
            metrics=registry,
            drill=drill,
        )
    finally:
        if tmpdir is not None:
            tmpdir.cleanup()
    print(
        f"fleet      : {report.devices} devices x {args.sessions} sessions "
        f"(transport={args.transport}, codec={args.codec}, "
        f"shards={report.shards}, workers={args.workers})"
    )
    if report.shards > 1:
        drilled = " after a SIGKILL/restart drill" if args.kill_drill else ""
        print(
            f"tier       : {report.shards} collector processes, "
            f"{report.replayed} journal records replayed{drilled}"
        )
    print(
        f"ingested   : {report.ingested}/{report.sessions_total} results "
        f"({report.lost} lost, {report.duplicates_dropped} duplicate frames)"
    )
    print(
        f"delivery   : {report.retries} retries, {report.reconnects} reconnects"
    )
    print(
        f"exact      : {report.exact}/{report.sessions_total} "
        f"({report.exact_rate:.1%})"
    )
    print(f"throughput : {report.ingest_rate:.1f} sessions/s ingested")
    for outcome in report.outcomes:
        if outcome.error:
            print(f"device     : {outcome.device_id} FAILED ({outcome.error})")
    if args.metrics_out and report.manifest is not None:
        report.manifest.write(args.metrics_out)
        print(f"metrics    : wrote run manifest to {args.metrics_out}")
    return 0 if report.lost == 0 else 1


def _cmd_lifecycle(args) -> int:
    registry = _metrics_registry(args)
    report = run_lifecycle(
        credential=args.credential,
        segments=args.segments,
        seed=args.seed,
        drift=args.drift_profile,
        calibration=args.calibration,
        metrics=registry,
        model_dir=args.store_dir,
    )
    calibrating = args.calibration != "off"
    for seg in report.segments:
        state = "drift" if seg.drift_active else "clean"
        swap = "  [re-fit -> swap]" if seg.recalibrated else ""
        outcome = (
            "exact" if seg.exact else f"chars {seg.char_accuracy:.2f}"
        )
        print(
            f"  seg {seg.index}  gen {seg.model_version}  "
            f"thermal x{seg.thermal_factor:.2f}  {state:5s}  "
            f"{seg.inferred!r} ({outcome}){swap}"
        )
    print(f"recalibrations: {report.recalibrations} (model swaps: {report.model_swaps})")
    if args.store_dir:
        print(f"store versions: {report.store_versions} under {args.store_dir}")

    def fmt(value):
        return "n/a" if value is None else f"{value:.2f}"

    print(
        f"exact-credential accuracy: baseline {fmt(report.baseline_exact)}  "
        f"drifted {fmt(report.drifted_exact)}  "
        f"recovered {fmt(report.recovered_exact)}"
    )
    print(f"recovery ratio: {fmt(report.recovery_ratio)}")
    if registry is not None:
        manifest = registry.manifest(
            command="lifecycle",
            sessions=args.segments,
            lifecycle=report.as_dict(),
        )
        manifest.write(args.metrics_out)
        print(f"metrics  : wrote run manifest to {args.metrics_out}")
    if calibrating and report.recovery_ratio is not None:
        return 0 if report.recovery_ratio >= 0.9 else 1
    return 0


def _cmd_survey(args) -> int:
    config = default_config(keyboard=keyboard(args.keyboard))
    stats = run_per_key_sweep(config, app(_DEFAULT_APP), repeats=args.repeats)
    accuracy = {c: correct / total for c, (correct, total) in stats.items() if total}
    worst = dict(sorted(accuracy.items(), key=lambda kv: kv[1])[:12])
    print(bar_chart(worst, title=f"weakest keys on {args.keyboard}", vmax=1.0))
    overall = sum(c for c, _ in stats.values()) / max(1, sum(t for _, t in stats.values()))
    print(f"overall per-key accuracy: {overall:.3f}")
    return 0


def _cmd_report(args) -> int:
    written = generate_report(args.output_dir, scale=args.scale)
    for name, path in written.items():
        print(f"wrote {path}")
    return 0


def _cmd_devices(args) -> int:
    print("phones:")
    for name in PHONE_REGISTRY.names():
        spec = phone(name)
        print(f"  {name:12s} {spec.display_name} ({spec.gpu.name}, Android {spec.android.version})")
    print("keyboards:")
    for name in KEYBOARD_REGISTRY.names():
        print(f"  {name:12s} {keyboard(name).display_name}")
    print("apps:")
    for name in APP_REGISTRY.names():
        spec = app(name)
        print(f"  {name:14s} {spec.display_name} ({spec.category})")
    print(
        f"scenarios: {len(SCENARIO_REGISTRY)} registered "
        "(see 'repro scenarios list')"
    )
    return 0


def _scenario_line(scn) -> str:
    tier = scn.speed_tier or "-"
    tags = ",".join(scn.tags) or "-"
    return (
        f"  {scn.name:22s} kb={scn.keyboard:10s} app={scn.app:12s} "
        f"phone={scn.phone:12s} tier={tier:7s} faults={scn.fault_profile:5s} "
        f"tags={tags}"
    )


def _smoke_credential(scn) -> str:
    """A deterministic 8-char credential drawn from the scenario's
    pool — stable across runs without reaching for an RNG."""
    pool = scn.credential_pool()
    return "".join(pool[(i * 7) % len(pool)] for i in range(8))


def _cmd_scenarios(args) -> int:
    command = getattr(args, "scenarios_command", None) or "list"
    if command == "list":
        names = SCENARIO_REGISTRY.names()
        if getattr(args, "tag", None):
            tagged = {s.name for s in SCENARIO_REGISTRY.tagged(args.tag)}
            names = [n for n in names if n in tagged]
        for name in names:
            print(_scenario_line(scenario(name)))
        print(f"{len(names)} scenario(s)")
        return 0
    if command == "show":
        scn = scenario(args.name)
        for key, value in scn.to_dict().items():
            print(f"{key:14s}: {value!r}")
        pool = scn.credential_pool()
        print(f"{'pool':14s}: {len(pool)} chars ({pool[:20]!r}{'...' if len(pool) > 20 else ''})")
        print(f"{'scene ops':14s}: {len(scn.compile_scene())}")
        return 0
    # smoke: every scenario must train, simulate and attack cleanly.
    names = args.names or SCENARIO_REGISTRY.names()
    failures = []
    for name in names:
        scn = scenario(name)
        credential = _smoke_credential(scn)
        started = time.perf_counter()
        try:
            cfg = AttackConfig(
                scenario=name,
                sweep_repeats=args.sweep_repeats,
                recognize_device=False,
                fault_plan=None,
            )
            store = train(config=cfg)
            trace = simulate(credential=credential, seed=11, config=cfg)
            result = attack(store, trace, seed=12, config=cfg)
        except Exception as exc:  # noqa: BLE001 - any error fails the smoke
            failures.append((name, exc))
            print(f"FAIL  {name:22s} {type(exc).__name__}: {exc}")
            continue
        marker = "exact" if result.text == credential else "partial"
        elapsed = time.perf_counter() - started
        print(f"ok    {name:22s} {marker:7s} ({elapsed:.1f}s)")
    print(f"{len(names) - len(failures)}/{len(names)} scenarios passed")
    return 1 if failures else 0


def _policy_layers(policy) -> str:
    layers = []
    if policy.rbac:
        layers.append("rbac")
    if policy.local_only:
        layers.append("local-only")
    if policy.rate_limit_hz:
        layers.append(f"rate<{policy.rate_limit_hz:g}Hz")
    if policy.quantize_step:
        layers.append(f"quantize%{policy.quantize_step}")
    if policy.noise_strength:
        layers.append(f"noise x{policy.noise_strength:g}")
    if policy.disable_popups:
        layers.append("no-popup")
    return "+".join(layers) or "(no-op)"


def _policy_line(policy) -> str:
    tags = ",".join(policy.tags) or "-"
    return f"  {policy.name:18s} {_policy_layers(policy):34s} tags={tags}"


def _smoke_policy(policy) -> None:
    """One policy's smoke: dict round-trip, order-invariant composition,
    and a live enforcement probe at the KGSL boundary contract."""
    restored = MitigationPolicy.from_dict(policy.to_dict())
    if restored != policy:
        raise AssertionError(f"{policy.name}: dict round-trip changed the spec")
    other = mitigation("defense-in-depth")
    if policy.compose(other) != other.compose(policy):
        raise AssertionError(f"{policy.name}: composition is order-sensitive")
    enforcer = policy.enforcer(seed=3)
    if enforcer is None:
        if policy.enforces_kgsl:
            raise AssertionError(f"{policy.name}: enforcing policy built no enforcer")
        return
    untrusted = ProcessContext()
    try:
        enforcer.check(untrusted, "read", 11, 2)
        denied = False
    except IoctlError:
        denied = True
    if denied != policy.rbac:
        raise AssertionError(
            f"{policy.name}: rbac={policy.rbac} but untrusted read "
            f"{'denied' if denied else 'allowed'}"
        )
    if not denied:
        value = enforcer.filter_value(
            context=untrusted, groupid=11, countable=2, value=100_000, now=0.0
        )
        if not isinstance(value, int) or value < 0:
            raise AssertionError(f"{policy.name}: filter_value returned {value!r}")


def _cmd_defenses(args) -> int:
    command = getattr(args, "defenses_command", None) or "list"
    if command == "list":
        names = MITIGATION_REGISTRY.names()
        if getattr(args, "tag", None):
            tagged = {p.name for p in MITIGATION_REGISTRY.tagged(args.tag)}
            names = [n for n in names if n in tagged]
        for name in names:
            print(_policy_line(mitigation(name)))
        print(f"{len(names)} mitigation policy(ies)")
        return 0
    if command == "show":
        policy = mitigation(args.name)
        for key, value in policy.to_dict().items():
            print(f"{key:20s}: {value!r}")
        print(f"{'layers':20s}: {_policy_layers(policy)}")
        print(f"{'enforces kgsl':20s}: {policy.enforces_kgsl}")
        return 0
    if command == "smoke":
        names = args.names or MITIGATION_REGISTRY.names()
        failures = []
        for name in names:
            try:
                _smoke_policy(mitigation(name))
            except Exception as exc:  # noqa: BLE001 - any error fails the smoke
                failures.append((name, exc))
                print(f"FAIL  {name:18s} {type(exc).__name__}: {exc}")
                continue
            print(f"ok    {name}")
        print(f"{len(names) - len(failures)}/{len(names)} policies passed")
        return 1 if failures else 0
    # sweep: the threat x mitigation matrix over the live attack.
    scenarios = args.scenario or ["pinpad", "gboard-chase"]
    mitigations: List[Optional[str]] = list(
        args.mitigation
        or ["allow-all", "rbac", "rate-limit-30hz", "obfuscate-strong", "popup-disable"]
    )
    profile = args.fault_profile
    fault_plan = {"auto": "auto", "none": None}.get(profile, profile)
    registry = _metrics_registry(args)
    cells = run_defense_matrix(
        scenarios,
        mitigations,
        sessions=args.sessions,
        length=args.length,
        seed=args.seed,
        fault_plan=fault_plan,
        workers=args.workers,
        metrics=registry,
    )
    print(format_defense_matrix(cells))
    if registry is not None:
        manifest = registry.manifest(
            command="defenses-sweep", cells=len(cells), sessions=args.sessions
        )
        manifest.write(args.metrics_out)
        print(f"metrics: wrote run manifest to {args.metrics_out}")
    return 0


_COMMANDS = {
    "steal": _cmd_steal,
    "train": _cmd_train,
    "attack": _cmd_attack,
    "fleet": _cmd_fleet,
    "lifecycle": _cmd_lifecycle,
    "survey": _cmd_survey,
    "report": _cmd_report,
    "devices": _cmd_devices,
    "scenarios": _cmd_scenarios,
    "defenses": _cmd_defenses,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
