"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``steal``    — end-to-end attack demo on one configuration
* ``train``    — offline phase; writes a model store JSON
* ``attack``   — online phase against a simulated victim, using a store
* ``survey``   — per-key weak-spot report for a keyboard
* ``report``   — regenerate the evaluation figures into a directory
* ``devices``  — list modeled phones, keyboards and apps

The CLI is a thin shell over the public API; every command prints the
equivalent library calls so it doubles as documentation.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional



def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GPU side-channel keystroke inference (ASPLOS'22 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    steal = sub.add_parser("steal", help="train + attack one credential end to end")
    steal.add_argument("credential", nargs="?", default="Tr0ub4dor&3")
    steal.add_argument("--phone", default="oneplus8pro")
    steal.add_argument("--keyboard", default="gboard")
    steal.add_argument("--app", default="chase")
    steal.add_argument("--seed", type=int, default=42)
    steal.add_argument(
        "--sessions",
        type=int,
        default=1,
        help="victim sessions to run concurrently on one session runtime",
    )

    train = sub.add_parser("train", help="offline phase: train and save models")
    train.add_argument("output", help="model store JSON path")
    train.add_argument("--phone", action="append", default=[])
    train.add_argument("--keyboard", action="append", default=[])
    train.add_argument("--app", action="append", default=[])

    attack = sub.add_parser("attack", help="online phase using a saved store")
    attack.add_argument("store", help="model store JSON path")
    attack.add_argument("credential")
    attack.add_argument("--phone", default="oneplus8pro")
    attack.add_argument("--keyboard", default="gboard")
    attack.add_argument("--app", default="chase")
    attack.add_argument("--seed", type=int, default=42)
    attack.add_argument("--guesses", type=int, default=10)
    attack.add_argument(
        "--sessions",
        type=int,
        default=1,
        help="victim sessions to run concurrently on one session runtime",
    )

    survey = sub.add_parser("survey", help="per-key weak spots for a keyboard")
    survey.add_argument("--keyboard", default="gboard")
    survey.add_argument("--repeats", type=int, default=6)

    report = sub.add_parser("report", help="regenerate the evaluation figures")
    report.add_argument("output_dir")
    report.add_argument("--scale", type=int, default=1)

    sub.add_parser("devices", help="list modeled phones, keyboards and apps")
    return parser


def _config(phone_name: str, keyboard_name: str):
    from repro.android.keyboard import keyboard
    from repro.android.os_config import DeviceConfig, phone

    return DeviceConfig(phone=phone(phone_name), keyboard=keyboard(keyboard_name))


def _run_batched(attack, config, target, credential, seed, sessions) -> int:
    """Run ``sessions`` concurrent victims on one session runtime and
    print per-session outcomes plus the aggregate accuracy."""
    import time

    from repro.core.pipeline import run_sessions, simulate_credential_entry

    traces = [
        simulate_credential_entry(config, target, credential, seed=seed + i)
        for i in range(sessions)
    ]
    started = time.perf_counter()
    results = run_sessions(attack, traces, seed=seed + 1000)
    elapsed = time.perf_counter() - started
    exact = sum(1 for r in results if r.text == credential)
    for i, result in enumerate(results):
        marker = "EXACT" if result.text == credential else "partial"
        print(f"session {i:3d}: {result.text!r:24s} {marker}")
    print(f"typed          : {credential!r}")
    print(f"sessions       : {sessions}")
    print(f"exact matches  : {exact}/{sessions} ({exact / sessions:.1%})")
    print(f"throughput     : {sessions / elapsed:.1f} sessions/s")
    return 0 if exact * 2 >= sessions else 1


def _cmd_steal(args) -> int:
    from repro.android.apps import app
    from repro.core.model_store import ModelStore
    from repro.core.pipeline import EavesdropAttack, simulate_credential_entry, train_model

    config = _config(args.phone, args.keyboard)
    target = app(args.app)
    print(f"training model for {config.config_key()} / {target.name} ...")
    model = train_model(config, target)
    store = ModelStore()
    store.add(model)
    attack = EavesdropAttack(store, recognize_device=False)
    if args.sessions > 1:
        return _run_batched(
            attack, config, target, args.credential, args.seed, args.sessions
        )
    trace = simulate_credential_entry(config, target, args.credential, seed=args.seed)
    result = attack.run_on_trace(trace, seed=args.seed + 1)
    print(f"typed    : {args.credential!r}")
    print(f"inferred : {result.text!r}")
    print("outcome  : " + ("EXACT" if result.text == args.credential else "partial"))
    return 0 if result.text == args.credential else 1


def _cmd_train(args) -> int:
    from repro.android.apps import app
    from repro.core.pipeline import train_store

    phones = args.phone or ["oneplus8pro"]
    keyboards = args.keyboard or ["gboard"]
    apps = args.app or ["chase"]
    pairs = [
        (_config(p, k), app(a)) for p in phones for k in keyboards for a in apps
    ]
    print(f"training {len(pairs)} model(s) ...")
    store = train_store(pairs)
    store.save(args.output)
    print(
        f"wrote {args.output}: {len(store)} models, "
        f"{store.total_size_bytes() / 1024:.1f} KB"
    )
    return 0


def _cmd_attack(args) -> int:
    from repro.android.apps import app
    from repro.core.guessing import CandidateGenerator
    from repro.core.model_store import ModelStore
    from repro.core.pipeline import EavesdropAttack, simulate_credential_entry

    store = ModelStore.load(args.store)
    config = _config(args.phone, args.keyboard)
    target = app(args.app)
    attack = EavesdropAttack(store)
    if args.sessions > 1:
        return _run_batched(
            attack, config, target, args.credential, args.seed, args.sessions
        )
    trace = simulate_credential_entry(config, target, args.credential, seed=args.seed)
    result = attack.run_on_trace(trace, seed=args.seed + 1)
    print(f"recognized: {result.model_key}")
    print(f"typed     : {args.credential!r}")
    print(f"inferred  : {result.text!r}")
    if result.text != args.credential and args.guesses > 1:
        model = store.get(result.model_key)
        generator = CandidateGenerator(model)
        rank = generator.rank_of(result.online, args.credential, max_candidates=args.guesses)
        if rank is not None:
            print(f"recovered : guess #{rank} of {args.guesses}")
            return 0
        print(f"not recovered within {args.guesses} guesses")
        return 1
    return 0 if result.text == args.credential else 1


def _cmd_survey(args) -> int:
    from repro.analysis.experiments import run_per_key_sweep
    from repro.analysis.reporting import bar_chart
    from repro.android.apps import CHASE
    from repro.android.keyboard import KEYBOARDS
    from repro.android.os_config import default_config

    if args.keyboard not in KEYBOARDS:
        print(f"unknown keyboard {args.keyboard!r}; available: {sorted(KEYBOARDS)}")
        return 2
    config = default_config(keyboard=KEYBOARDS[args.keyboard])
    stats = run_per_key_sweep(config, CHASE, repeats=args.repeats)
    accuracy = {c: correct / total for c, (correct, total) in stats.items() if total}
    worst = dict(sorted(accuracy.items(), key=lambda kv: kv[1])[:12])
    print(bar_chart(worst, title=f"weakest keys on {args.keyboard}", vmax=1.0))
    overall = sum(c for c, _ in stats.values()) / max(1, sum(t for _, t in stats.values()))
    print(f"overall per-key accuracy: {overall:.3f}")
    return 0


def _cmd_report(args) -> int:
    from repro.analysis.report import generate_report

    written = generate_report(args.output_dir, scale=args.scale)
    for name, path in written.items():
        print(f"wrote {path}")
    return 0


def _cmd_devices(args) -> int:
    from repro.android.apps import TARGET_APPS
    from repro.android.keyboard import KEYBOARDS
    from repro.android.os_config import PHONE_MODELS

    print("phones:")
    for name, spec in sorted(PHONE_MODELS.items()):
        print(f"  {name:12s} {spec.display_name} ({spec.gpu.name}, Android {spec.android.version})")
    print("keyboards:")
    for name, spec in sorted(KEYBOARDS.items()):
        print(f"  {name:12s} {spec.display_name}")
    print("apps:")
    for name, spec in sorted(TARGET_APPS.items()):
        print(f"  {name:14s} {spec.display_name} ({spec.category})")
    return 0


_COMMANDS = {
    "steal": _cmd_steal,
    "train": _cmd_train,
    "attack": _cmd_attack,
    "survey": _cmd_survey,
    "report": _cmd_report,
    "devices": _cmd_devices,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
