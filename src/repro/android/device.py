"""The victim device: compiles user events into a GPU render timeline.

:class:`VictimDevice` is the heart of the substrate simulation.  Given a
device configuration, a foreground target app and a time-ordered event
list, it produces the exact sequence of GPU frame renders Android would
execute, including:

* the three PC value changes of each key press (popup appears / text echo
  / popup disappears, paper Fig 3), damage-clipped as the tiler would;
* popup-animation *duplication* frames (Section 5.1);
* cursor blinking at the fixed 0.5 s interval (Section 5.3);
* app-switch overview bursts with <50 ms inter-frame gaps (Section 5.2,
  Fig 13) and random activity while the user is in another app;
* login-screen animations for apps that have them (Section 9.3);
* notification-icon redraws (system noise).

The output is a :class:`SessionTrace` with the render timeline and the
ground truth needed to score the attack.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.android.apps import AppSpec
from repro.android.events import (
    AppSwitchAway,
    AppSwitchBack,
    BackspacePress,
    KeyPress,
    NotificationArrival,
    UserEvent,
    ViewNotificationShade,
    sort_events,
)
from repro.android.geometry import Rect
from repro.android.layers import DrawOp, Layer, Scene
from repro.android.scenes import SceneBuilder, UiState
from repro.android.os_config import DeviceConfig
from repro.gpu import counters as pc
from repro.gpu.counters import CounterIncrement
from repro.gpu.pipeline import AdrenoPipeline, FrameStats
from repro.gpu.timeline import RenderTimeline

#: Touch-to-render latency before a press popup reaches the screen.
INPUT_LATENCY_S = 0.030
#: How long the popup lingers after the key is released before dismissal.
POPUP_LINGER_S = 0.060
#: Fixed cursor blink half-period (Section 5.3: "cursor blinking in most
#: systems has a fixed interval of 0.5 seconds").
CURSOR_BLINK_S = 0.5
#: Duration of the app-switch overview animation.
APP_SWITCH_ANIM_S = 0.35
#: Mean rate of screen-damaging activity while the user is in another app.
AWAY_ACTIVITY_RATE_HZ = 2.5

#: GPU power collapse: Adreno GPUs power down after this much render
#: idleness; the next frame pays a wake-up latency and renders with
#: noisier counters while clocks and DRAM retrain.  This is what makes
#: slow typing *harder* to eavesdrop (paper Fig 21): nearly every press
#: of a slow typist lands on a cold GPU.
GPU_IDLE_COLLAPSE_S = 0.12
#: Extra render latency of the first frame after power collapse.  The
#: longer render widens the window in which a counter read splits the
#: frame's increments — the slow-typing penalty is a split-rate effect,
#: not a counter-noise effect, so the cold jitter factor stays at 1.
WAKEUP_RENDER_S = 0.0015
#: Counter jitter multiplier for cold (post-collapse) frames.
COLD_JITTER_FACTOR = 1.0

#: Process-wide cache of rendered frame statistics.  Scene geometry is
#: fully determined by (device configuration, app, frame identity), and
#: experiment batches compile hundreds of sessions on the same
#: configuration, so pre-jitter render results are shared globally.
_RENDER_CACHE: dict = {}


@dataclass(frozen=True)
class _RenderRequest:
    """A frame scheduled during compilation, materialized in time order."""

    t: float
    cache_key: Optional[tuple]
    scene_fn: object
    label: str


@dataclass(frozen=True)
class GroundTruthPress:
    """One key press as it actually happened on the victim device."""

    t: float
    char: str
    deleted: bool = False


@dataclass
class SessionTrace:
    """Compiled session: render timeline plus scoring ground truth."""

    timeline: RenderTimeline
    config: DeviceConfig
    app: AppSpec
    presses: List[GroundTruthPress] = field(default_factory=list)
    backspaces: List[float] = field(default_factory=list)
    switch_intervals: List[Tuple[float, float]] = field(default_factory=list)
    end_time_s: float = 0.0

    @property
    def final_text(self) -> str:
        """The credential as submitted (backspaces applied)."""
        return "".join(p.char for p in self.presses if not p.deleted)

    @property
    def all_typed(self) -> str:
        """Every character typed, including later-deleted ones."""
        return "".join(p.char for p in self.presses)


class VictimDevice:
    """One victim smartphone running the target app in the foreground."""

    def __init__(
        self,
        config: DeviceConfig,
        app: AppSpec,
        rng: Optional[np.random.Generator] = None,
        render_slowdown: float = 1.0,
    ) -> None:
        if render_slowdown < 1.0:
            raise ValueError("render_slowdown is a multiplier >= 1")
        self.config = config
        self.app = app
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.render_slowdown = render_slowdown
        self.builder = SceneBuilder(config)
        self.pipeline = AdrenoPipeline(config.gpu)
        self._requests: List[_RenderRequest] = []

    # ------------------------------------------------------------------

    def _vsync(self, t: float) -> float:
        return self.builder.display.next_vsync(t)

    def _slow(self, stats: FrameStats) -> FrameStats:
        if self.render_slowdown == 1.0:
            return stats
        return FrameStats(
            increment=stats.increment,
            pixels_touched=stats.pixels_touched,
            render_time_s=stats.render_time_s * self.render_slowdown,
        )

    #: Per-counter multiplicative jitter (sigma).  Primitive counts are
    #: exactly deterministic on real hardware; pixel/tile counts wobble a
    #: little with dithering and bin-walk order; cycle counters depend on
    #: DRAM timing and wobble the most.  This is what makes near-identical
    #: popups (',' vs '.') genuinely confusable, as in the paper's Fig 18.
    _JITTER_SIGMA = {
        "PERF_RAS_SUPERTILE_ACTIVE_CYCLES": 0.010,
        "PERF_LRZ_VISIBLE_PIXEL_AFTER_LRZ": 0.0012,
        "PERF_RAS_8X4_TILES": 0.0010,
        "PERF_RAS_FULLY_COVERED_8X4_TILES": 0.0010,
        "PERF_LRZ_FULL_8X8_TILES": 0.0010,
        "PERF_LRZ_PARTIAL_8X8_TILES": 0.0010,
        "PERF_RAS_SUPER_TILES": 0.0016,
    }

    def _jitter(self, stats: FrameStats, factor: float = 1.0) -> FrameStats:
        values = dict(stats.increment.values)
        for spec in pc.SELECTED_COUNTERS:
            sigma = self._JITTER_SIGMA.get(spec.name)
            if not sigma:
                continue
            cid = spec.counter_id
            amount = values.get(cid, 0)
            if amount:
                noisy = int(
                    round(amount * (1.0 + float(self.rng.normal(0.0, sigma * factor))))
                )
                values[cid] = max(0, noisy)
        return FrameStats(
            increment=CounterIncrement(values=values),
            pixels_touched=stats.pixels_touched,
            render_time_s=stats.render_time_s,
        )

    def _render(self, timeline: RenderTimeline, t: float, scene, label: str) -> None:
        """Schedule an uncacheable (randomly generated) frame."""
        self._requests.append(
            _RenderRequest(t=t, cache_key=None, scene_fn=lambda s=scene: s, label=label)
        )

    def _render_cached(
        self, timeline: RenderTimeline, t: float, cache_key, scene_fn, label: str
    ) -> None:
        """Schedule a frame whose geometry is cacheable by identity."""
        self._requests.append(
            _RenderRequest(t=t, cache_key=cache_key, scene_fn=scene_fn, label=label)
        )

    def _base_stats(self, request: _RenderRequest) -> FrameStats:
        if request.cache_key is None:
            return self._slow(self.pipeline.render(request.scene_fn()))
        full_key = (
            self.config.config_key(),
            self.app.name,
            self.render_slowdown,
            request.cache_key,
        )
        stats = _RENDER_CACHE.get(full_key)
        if stats is None:
            stats = self._slow(self.pipeline.render(request.scene_fn()))
            _RENDER_CACHE[full_key] = stats
        return stats

    def _materialize(self, timeline: RenderTimeline) -> None:
        """Render all scheduled frames in chronological order, applying the
        GPU power-collapse model: a frame starting more than
        ``GPU_IDLE_COLLAPSE_S`` after the previous render finished pays a
        wake-up latency and renders with noisier counters."""
        last_end = -1e9
        for request in sorted(self._requests, key=lambda r: r.t):
            # GPU work starts after the CPU side records and submits the
            # frame — a fraction of a frame after vsync, varying per frame.
            # Without this, frame starts quantize to a handful of phases
            # relative to the attacker's sampling grid.
            submit_delay = float(self.rng.uniform(0.0005, 0.0030))
            start = self._vsync(request.t) + submit_delay
            stats = self._base_stats(request)
            cold = start - last_end > GPU_IDLE_COLLAPSE_S
            if cold:
                stats = FrameStats(
                    increment=stats.increment,
                    pixels_touched=stats.pixels_touched,
                    render_time_s=stats.render_time_s + WAKEUP_RENDER_S,
                )
            stats = self._jitter(stats, factor=COLD_JITTER_FACTOR if cold else 1.0)
            frame = timeline.add_render(start, stats, label=request.label)
            last_end = max(last_end, frame.end_s)
        self._requests = []

    # ------------------------------------------------------------------

    def compile(
        self,
        events: Sequence[UserEvent],
        end_time_s: float,
        launch_at_s: float = 0.0,
    ) -> SessionTrace:
        """Compile an event script into the session's render timeline.

        ``launch_at_s`` is when the target app launches (its cold-start
        full render); the screen is quiet before that, which is what the
        attack's idle watch (Section 3.2) keys on.
        """
        if launch_at_s < 0:
            raise ValueError("launch_at_s must be non-negative")
        if any(e.t <= launch_at_s for e in events):
            raise ValueError("events must happen after the app launch")
        ordered = sort_events(events)
        timeline = RenderTimeline()
        trace = SessionTrace(
            timeline=timeline, config=self.config, app=self.app, end_time_s=end_time_s
        )

        state = UiState(app=self.app)
        in_target = True
        away_since: Optional[float] = None
        anim_phase = 0

        # launch: cold-start full render of the login screen
        self._render_cached(
            timeline,
            launch_at_s,
            ("initial",),
            lambda: self.builder.damage_scene(state, self.builder.display.bounds),
            label="initial",
        )

        for event in ordered:
            if isinstance(event, KeyPress):
                state = self._compile_keypress(timeline, trace, state, event)
            elif isinstance(event, BackspacePress):
                state = self._compile_backspace(timeline, trace, state, event)
            elif isinstance(event, AppSwitchAway):
                self._compile_switch_burst(timeline, event.t, direction="away")
                in_target = False
                away_since = event.t + APP_SWITCH_ANIM_S
            elif isinstance(event, AppSwitchBack):
                assert away_since is not None
                self._compile_away_activity(timeline, away_since, event.t)
                self._compile_switch_burst(timeline, event.t, direction="back")
                trace.switch_intervals.append((away_since - APP_SWITCH_ANIM_S, event.t + APP_SWITCH_ANIM_S))
                in_target = True
                away_since = None
            elif isinstance(event, NotificationArrival):
                state = self._compile_notification(timeline, state, event.t)
            elif isinstance(event, ViewNotificationShade):
                self._compile_shade(timeline, event.t)

        if away_since is not None:
            self._compile_away_activity(timeline, away_since, end_time_s)

        self._compile_cursor_blinks(
            timeline, trace, state, ordered, end_time_s, launch_at_s=launch_at_s
        )
        anim_phase = self._compile_login_animation(
            timeline, state, ordered, end_time_s, launch_at_s=launch_at_s
        )
        del anim_phase
        self._materialize(timeline)
        return trace

    # ------------------------------------------------------------------
    # Per-event compilation
    # ------------------------------------------------------------------

    def _compile_keypress(
        self,
        timeline: RenderTimeline,
        trace: SessionTrace,
        state: UiState,
        event: KeyPress,
    ) -> UiState:
        char = event.char
        if not self.builder.layout.has_key(char):
            raise KeyError(f"keyboard {self.config.keyboard.name!r} has no key {char!r}")
        damage = self.builder.popup_damage(char)

        # 1st change: popup appears (the change used for eavesdropping).
        # With popups disabled the only press feedback is the overlay
        # ripple, whose geometry is the same for every key (Section 9.1).
        press_state = state.with_popup(char)
        if self.config.keyboard.supports_popup:
            press_fn = lambda ps=press_state, dm=damage: self.builder.damage_scene(ps, dm)
        else:
            press_fn = lambda c=char: self.builder.ripple_scene(c)
        press_t = event.t + INPUT_LATENCY_S
        self._render_cached(timeline, press_t, ("press", char), press_fn, label=f"press:{char}")

        # Popup animation may emit a second identical frame (duplication).
        if self.rng.random() < self.config.keyboard.duplicate_popup_prob:
            dup_t = press_t + self.builder.display.frame_interval_s
            self._render_cached(
                timeline, dup_t, ("press", char), press_fn, label=f"press_dup:{char}"
            )

        # 2nd change: key release, text echo appears in the field.
        state = state.typed(char)
        echo_state = state.with_popup(char)
        release_t = event.t + event.duration + INPUT_LATENCY_S
        self._render_cached(
            timeline,
            release_t,
            ("field", state.typed_len, True),
            lambda es=echo_state: self.builder.damage_scene(
                es, self.builder.field_damage(self.app)
            ),
            label=f"echo:{state.typed_len}",
        )

        # 3rd change: popup disappears (or the ripple fades on its overlay).
        if self.config.keyboard.supports_popup:
            dismiss_fn = lambda ds=state, dm=damage: self.builder.damage_scene(ds, dm)
        else:
            dismiss_fn = lambda c=char: self.builder.ripple_scene(c)
        self._render_cached(
            timeline,
            release_t + POPUP_LINGER_S,
            ("dismiss", char),
            dismiss_fn,
            label=f"dismiss:{char}",
        )

        trace.presses.append(GroundTruthPress(t=event.t, char=char))
        return state

    def _compile_backspace(
        self,
        timeline: RenderTimeline,
        trace: SessionTrace,
        state: UiState,
        event: BackspacePress,
    ) -> UiState:
        if state.typed_len == 0:
            return state
        state = state.deleted()
        self._render_cached(
            timeline,
            event.t + INPUT_LATENCY_S,
            ("field", state.typed_len, True),
            lambda bs=state: self.builder.damage_scene(
                bs, self.builder.field_damage(self.app)
            ),
            label=f"backspace:{state.typed_len}",
        )
        trace.backspaces.append(event.t)
        # mark the most recent un-deleted press as deleted
        for i in range(len(trace.presses) - 1, -1, -1):
            press = trace.presses[i]
            if not press.deleted:
                trace.presses[i] = GroundTruthPress(t=press.t, char=press.char, deleted=True)
                break
        return state

    def _compile_switch_burst(self, timeline: RenderTimeline, t: float, direction: str) -> None:
        """The overview animation: a burst of large frames <50 ms apart."""
        interval = self.builder.display.frame_interval_s
        frames = max(8, int(APP_SWITCH_ANIM_S / interval))
        for i in range(frames):
            progress = (i + 1) / frames
            if direction == "back":
                progress = 1.0 - progress * 0.999
            self._render_cached(
                timeline,
                t + i * interval,
                ("overview", round(progress, 6), 3),
                lambda pr=progress: self.builder.overview_scene(pr),
                label=f"switch_{direction}_{i}",
            )

    def _compile_away_activity(self, timeline: RenderTimeline, t0: float, t1: float) -> None:
        """Random screen updates while the user is in another app."""
        if t1 <= t0:
            return
        t = t0
        screen = self.builder.display.resolution
        while True:
            t += self.rng.exponential(1.0 / AWAY_ACTIVITY_RATE_HZ)
            if t >= t1:
                break
            w = int(screen.width * self.rng.uniform(0.2, 0.9))
            h = int(screen.height * self.rng.uniform(0.05, 0.5))
            left = int(self.rng.uniform(0, screen.width - w))
            top = int(self.rng.uniform(0, screen.height - h))
            layer = Layer("other_app")
            layer.add(
                DrawOp(
                    rect=Rect.from_size(left, top, w, h),
                    coverage=float(self.rng.uniform(0.3, 0.9)),
                    primitives=int(self.rng.integers(4, 60)),
                    textured=True,
                    label="other_app_update",
                )
            )
            self._render(timeline, t, Scene([layer]), label="other_app")

    def _compile_notification(
        self, timeline: RenderTimeline, state: UiState, t: float
    ) -> UiState:
        state = replace(state, notification_icons=state.notification_icons + 1)
        self._render_cached(
            timeline,
            t,
            ("notif", state.notification_icons),
            lambda ns=state: self.builder.damage_scene(ns, self.builder.status_bar_damage()),
            label="notification",
        )
        return state

    def _compile_shade(self, timeline: RenderTimeline, t: float) -> None:
        """Pulling the notification shade: two animation bursts (down, up)
        separated by the time the user spends reading notifications."""
        interval = self.builder.display.frame_interval_s
        for i in range(6):
            progress = min(1.0, 0.3 + i * 0.14)
            self._render_cached(
                timeline,
                t + i * interval,
                ("overview", round(progress, 6), 2),
                lambda pr=progress: self.builder.overview_scene(pr, cards=2),
                label=f"shade_down_{i}",
            )
        view_time = 0.9 + float(self.rng.uniform(0.0, 0.8))
        for i in range(6):
            progress = max(0.01, 1.0 - i * 0.17)
            self._render_cached(
                timeline,
                t + view_time + i * interval,
                ("overview", round(progress, 6), 2),
                lambda pr=progress: self.builder.overview_scene(pr, cards=2),
                label=f"shade_up_{i}",
            )

    def _compile_cursor_blinks(
        self,
        timeline: RenderTimeline,
        trace: SessionTrace,
        final_state: UiState,
        events: Sequence[UserEvent],
        end_time_s: float,
        launch_at_s: float = 0.0,
    ) -> None:
        """Cursor blink frames at 0.5 s cadence while the field is idle.

        Android's editor suspends cursor blinking while the user types:
        the blink timer resets on every text change and only fires again
        after half a second of idleness.  Fast typists therefore produce
        almost no blink frames between presses, while a slow typist's
        next press can land exactly on a blink tick — the mechanism
        behind the paper's Fig 21 slow-typing penalty.

        Blink frames damage the text field, so their increments track the
        current input length — they sit on the same Fig 14 staircase as
        the echo frames, merely without the +-2 step.
        """
        # text-change times with the input length after each change; the
        # field gains focus at t=0 with an arbitrary initial phase
        focus_phase = float(self.rng.uniform(0.03, 0.47))
        changes: List[Tuple[float, int]] = [(launch_at_s + focus_phase - CURSOR_BLINK_S, 0)]
        length = 0
        for event in events:
            if isinstance(event, KeyPress):
                length += 1
                changes.append((event.t + event.duration + INPUT_LATENCY_S, length))
            elif isinstance(event, BackspacePress):
                length = max(0, length - 1)
                changes.append((event.t + INPUT_LATENCY_S, length))
        changes.sort()

        away = list(trace.switch_intervals)
        boundaries = changes[1:] + [(end_time_s, length)]
        for (change_t, current_len), (next_t, _) in zip(changes, boundaries):
            t = change_t + CURSOR_BLINK_S
            visible = False  # the first blink after idleness hides the cursor
            while t < next_t:
                if not any(a <= t < b for a, b in away):
                    blink_state = replace(
                        final_state,
                        typed_len=current_len,
                        cursor_on=visible,
                        popup_char=None,
                        key_highlight=None,
                    )
                    self._render_cached(
                        timeline,
                        t,
                        ("field", current_len, visible),
                        lambda bs=blink_state: self.builder.damage_scene(
                            bs, self.builder.field_damage(self.app)
                        ),
                        label=f"cursor_blink:{current_len}:{'on' if visible else 'off'}",
                    )
                visible = not visible
                t += CURSOR_BLINK_S

    def _compile_login_animation(
        self,
        timeline: RenderTimeline,
        state: UiState,
        events: Sequence[UserEvent],
        end_time_s: float,
        launch_at_s: float = 0.0,
    ) -> int:
        anim = self.app.animation
        if anim is None:
            return 0
        phase = 0
        t = launch_at_s + anim.frame_interval_s
        while t < end_time_s:
            self._render_cached(
                timeline,
                t,
                ("anim", phase % 105),
                lambda st=state, ph=phase: self.builder.damage_scene(
                    st, self.builder.animation_damage(st, ph), anim_phase=ph
                ),
                label=f"anim_{phase}",
            )
            phase += 1
            t += anim.frame_interval_s
        return phase
