"""User and system events driving the victim-device simulation.

A session is a time-ordered list of these events; the victim device
compiles them into the GPU render timeline (:mod:`repro.android.device`).
The event vocabulary matches the behaviours the paper studies: key presses
with popups (Section 2.2), backspace corrections (Section 5.3), app
switches (Section 5.2), and the system noise sources of Section 5.1
(notifications; cursor blinking is generated implicitly by the device).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union


@dataclass(frozen=True)
class KeyPress:
    """A character key press on the on-screen keyboard."""

    t: float
    char: str
    duration: float = 0.08

    def __post_init__(self) -> None:
        if len(self.char) != 1:
            raise ValueError(f"KeyPress takes one character, got {self.char!r}")
        if self.duration <= 0:
            raise ValueError("duration must be positive")


@dataclass(frozen=True)
class BackspacePress:
    """A backspace press — deletes one character, shows no popup."""

    t: float
    duration: float = 0.07


@dataclass(frozen=True)
class AppSwitchAway:
    """The user leaves the target app via the app switcher."""

    t: float


@dataclass(frozen=True)
class AppSwitchBack:
    """The user returns to the target app via the app switcher."""

    t: float


@dataclass(frozen=True)
class NotificationArrival:
    """A notification icon appears in the status bar (system noise)."""

    t: float


@dataclass(frozen=True)
class ViewNotificationShade:
    """The user pulls down and releases the notification shade."""

    t: float


UserEvent = Union[
    KeyPress,
    BackspacePress,
    AppSwitchAway,
    AppSwitchBack,
    NotificationArrival,
    ViewNotificationShade,
]


def sort_events(events) -> Tuple[UserEvent, ...]:
    """Events sorted by time; validates alternating app-switch pairing."""
    ordered = tuple(sorted(events, key=lambda e: e.t))
    away = False
    for event in ordered:
        if isinstance(event, AppSwitchAway):
            if away:
                raise ValueError("AppSwitchAway while already away from target app")
            away = True
        elif isinstance(event, AppSwitchBack):
            if not away:
                raise ValueError("AppSwitchBack while already in target app")
            away = False
        elif isinstance(event, (KeyPress, BackspacePress)) and away:
            raise ValueError(
                f"typing event at t={event.t} while away from the target app; "
                "typing in other apps is modeled by the device's away-activity generator"
            )
    return ordered
