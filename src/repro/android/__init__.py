"""Android substrate simulation: display, UI scenes, keyboards, devices."""
