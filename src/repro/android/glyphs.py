"""Synthetic glyph metrics for on-screen keyboard characters.

The side channel works because the popup of each key press draws a large
glyph whose ink coverage, advance width and stroke structure differ per
character, producing per-key-unique amounts of rasterized pixels, occluded
tiles and primitives (paper Section 2.2, Fig 6).  We model each glyph with
three quantities:

* ``ink_fraction`` — fraction of the glyph's bounding box covered by ink.
  Drives the rasterized-pixel (RAS) and visible-pixel (LRZ) counters.
* ``width_fraction`` — advance width relative to the font size (em).
  Drives glyph box area.
* ``strokes`` — number of straight/curved stroke segments used when the
  glyph is drawn as vector geometry in the large popup rendering.  Each
  stroke is one quad = 2 triangles, so this drives the primitive (VPC/LRZ
  prim) counters for popups.

Small text-echo glyphs are drawn as a single textured quad (2 triangles)
regardless of the character.  That is exactly what produces the paper's
Fig 14 signal: PERF_LRZ_VISIBLE_PRIM_AFTER_LRZ moves by +-2 per character
entered or deleted, independent of which character it is.

The per-character values below are synthetic but shaped like a real
sans-serif font: 'i'/'l'/punctuation are narrow with little ink, 'm'/'w'
and '@' are wide and dense.  The paper's observation that ',' and '.'
produce the minimum amount of overdraw — and therefore the worst inference
accuracy (Fig 17c, Fig 18) — emerges from these values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

#: Character set evaluated in the paper's Fig 18, in its display order.
KEYBOARD_CHARACTERS: str = (
    "abcdefghijklmnopqrstuvwxyz"
    "1234567890"
    ",."
    "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    "@#$&-+()/*\"':;!?"
)


@dataclass(frozen=True)
class GlyphMetrics:
    """Geometric description of one character's glyph."""

    char: str
    ink_fraction: float
    width_fraction: float
    strokes: int

    def ink_pixels(self, font_px: int) -> int:
        """Ink pixel count when rendered at ``font_px`` (em square height)."""
        box = self.box_pixels(font_px)
        return int(round(box * self.ink_fraction))

    def box_pixels(self, font_px: int) -> int:
        """Bounding-box pixel count when rendered at ``font_px``."""
        return int(round(font_px * font_px * self.width_fraction))

    def primitives(self, vector: bool) -> int:
        """Triangle count: stroke quads for vector (popup) rendering,
        one textured quad for bitmap (text echo) rendering."""
        if vector:
            return 2 * self.strokes
        return 2


# (ink_fraction, width_fraction, strokes) per character.  Ink fractions are
# relative to the glyph bounding box; width fractions relative to the em.
_GLYPH_TABLE: Dict[str, Tuple[float, float, int]] = {
    # lowercase
    "a": (0.340, 0.55, 4),
    "b": (0.330, 0.57, 3),
    "c": (0.280, 0.52, 3),
    "d": (0.330, 0.57, 3),
    "e": (0.350, 0.55, 4),
    "f": (0.240, 0.35, 3),
    "g": (0.360, 0.57, 4),
    "h": (0.300, 0.56, 3),
    "i": (0.110, 0.24, 2),
    "j": (0.140, 0.26, 3),
    "k": (0.290, 0.52, 3),
    "l": (0.100, 0.24, 1),
    "m": (0.420, 0.86, 5),
    "n": (0.300, 0.56, 3),
    "o": (0.320, 0.56, 4),
    "p": (0.330, 0.57, 3),
    "q": (0.335, 0.57, 3),
    "r": (0.200, 0.37, 2),
    "s": (0.290, 0.50, 5),
    "t": (0.190, 0.33, 2),
    "u": (0.295, 0.56, 3),
    "v": (0.250, 0.50, 2),
    "w": (0.385, 0.78, 4),
    "x": (0.260, 0.50, 2),
    "y": (0.255, 0.50, 3),
    "z": (0.300, 0.50, 3),
    # digits
    "1": (0.140, 0.55, 2),
    "2": (0.320, 0.55, 4),
    "3": (0.330, 0.55, 5),
    "4": (0.300, 0.55, 3),
    "5": (0.330, 0.55, 5),
    "6": (0.345, 0.55, 5),
    "7": (0.220, 0.55, 2),
    "8": (0.380, 0.55, 6),
    "9": (0.345, 0.55, 5),
    "0": (0.360, 0.55, 4),
    # the minimum-overdraw symbols called out by the paper
    ",": (0.035, 0.22, 1),
    ".": (0.028, 0.22, 1),
    # uppercase
    "A": (0.330, 0.66, 6),
    "B": (0.380, 0.62, 5),
    "C": (0.300, 0.64, 5),
    "D": (0.360, 0.66, 5),
    "E": (0.360, 0.58, 6),
    "F": (0.300, 0.54, 5),
    "G": (0.350, 0.68, 6),
    "H": (0.330, 0.66, 5),
    "I": (0.130, 0.26, 4),
    "J": (0.200, 0.44, 5),
    "K": (0.320, 0.62, 5),
    "L": (0.220, 0.52, 3),
    "M": (0.440, 0.82, 7),
    "N": (0.370, 0.68, 5),
    "O": (0.360, 0.70, 6),
    "P": (0.330, 0.60, 5),
    "Q": (0.385, 0.70, 5),
    "R": (0.360, 0.62, 5),
    "S": (0.330, 0.58, 7),
    "T": (0.220, 0.58, 4),
    "U": (0.330, 0.66, 5),
    "V": (0.270, 0.64, 4),
    "W": (0.430, 0.92, 6),
    "X": (0.290, 0.62, 4),
    "Y": (0.240, 0.62, 5),
    "Z": (0.330, 0.58, 5),
    # symbols
    "@": (0.460, 0.90, 7),
    "#": (0.380, 0.62, 4),
    "$": (0.370, 0.56, 6),
    "&": (0.400, 0.68, 6),
    "-": (0.070, 0.40, 1),
    "+": (0.160, 0.48, 2),
    "(": (0.120, 0.30, 2),
    ")": (0.120, 0.30, 2),
    "/": (0.130, 0.34, 1),
    "*": (0.180, 0.44, 3),
    '"': (0.060, 0.30, 2),
    "'": (0.032, 0.18, 1),
    ":": (0.055, 0.22, 2),
    ";": (0.065, 0.22, 2),
    "!": (0.110, 0.24, 2),
    "?": (0.240, 0.50, 4),
    # characters that can appear in credentials but are not in Fig 18
    "•": (0.200, 0.35, 1),  # bullet used by masked password fields
    " ": (0.000, 0.50, 0),
    "_": (0.080, 0.50, 1),
    "=": (0.130, 0.48, 2),
    "%": (0.330, 0.80, 5),
    "^": (0.090, 0.44, 2),
}


def glyph(char: str) -> GlyphMetrics:
    """Look up the glyph metrics for one character.

    Raises:
        KeyError: for characters outside the modeled keyboard set.
    """
    if len(char) != 1:
        raise KeyError(f"glyph() takes a single character, got {char!r}")
    ink, width, strokes = _GLYPH_TABLE[char]
    return GlyphMetrics(char=char, ink_fraction=ink, width_fraction=width, strokes=strokes)


def has_glyph(char: str) -> bool:
    return len(char) == 1 and char in _GLYPH_TABLE


def all_glyphs() -> Dict[str, GlyphMetrics]:
    """All modeled glyphs keyed by character."""
    return {c: glyph(c) for c in _GLYPH_TABLE}
