"""Scene construction: turning UI state into layered draw geometry.

This module builds the layer stacks of Fig 2 in the paper — status bar,
application window, on-screen keyboard, and (during a key press) the popup
window on top — and clips them to *damage rectangles*, because Android's
tiled renderer only re-renders the screen region invalidated by a change
(partial updates).  The damage-clipped scene of each UI event is what the
GPU pipeline model renders, and its counter increment is the raw side
channel signal:

* a key press damages the popup region → large, key-unique increment
  (glyph geometry + which key caps the popup occludes);
* a key release damages the text field → small increment that carries the
  2-primitives-per-character signal of the paper's Fig 14;
* the popup dismissal damages the popup region again, without the popup —
  a constant-valued change the classifier learns to ignore;
* a cursor blink damages the text field, giving the Fig 14 "cursor
  blinking" changes at 0.5 s cadence.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

from repro.android.apps import AppSpec
from repro.android.display import Display
from repro.android.geometry import Rect
from repro.android.glyphs import glyph, has_glyph
from repro.android.keyboard import KeyboardLayout
from repro.android.layers import DrawOp, Layer, Scene, solid_quad
from repro.android.os_config import DeviceConfig

#: Mask character echoed by password fields.
MASK_CHAR = "•"


@dataclass(frozen=True)
class UiState:
    """Everything that determines what the victim screen looks like."""

    app: AppSpec
    typed_len: int = 0
    cursor_on: bool = True
    popup_char: Optional[str] = None
    key_highlight: Optional[str] = None
    notification_icons: int = 2
    last_char: Optional[str] = None

    def with_popup(self, char: Optional[str]) -> "UiState":
        return replace(self, popup_char=char, key_highlight=char)

    def typed(self, char: str) -> "UiState":
        return replace(self, typed_len=self.typed_len + 1, last_char=char)

    def deleted(self) -> "UiState":
        return replace(self, typed_len=max(0, self.typed_len - 1))


class SceneBuilder:
    """Builds damage-clipped scenes for one device configuration."""

    def __init__(self, config: DeviceConfig) -> None:
        self.config = config
        self.display: Display = config.display
        self.layout = KeyboardLayout(config.keyboard, self.display)

    # ------------------------------------------------------------------
    # Layer builders
    # ------------------------------------------------------------------

    def status_bar_layer(self, state: UiState) -> Layer:
        screen = self.display.resolution
        height = int(screen.height * self.config.android.status_bar_fraction)
        layer = Layer("status_bar")
        layer.add(solid_quad(Rect(0, 0, screen.width, height), label="statusbar_bg"))
        icon = max(8, height // 2)
        for i in range(state.notification_icons):
            left = 8 + i * (icon + 6)
            layer.add(
                DrawOp(
                    rect=Rect.from_size(left, (height - icon) // 2, icon, icon),
                    coverage=0.55,
                    primitives=2,
                    textured=True,
                    label=f"notif_icon_{i}",
                )
            )
        # clock glyphs on the right
        clock_w = icon * 3
        layer.add(
            DrawOp(
                rect=Rect.from_size(screen.width - clock_w - 8, (height - icon) // 2, clock_w, icon),
                coverage=0.30,
                primitives=8,
                textured=True,
                label="clock",
            )
        )
        return layer

    def app_layer(self, state: UiState) -> Layer:
        app = state.app
        screen = self.display.resolution
        layer = Layer(f"app:{app.name}")
        layer.add(solid_quad(self.display.bounds, label="app_bg"))

        if app.is_web:
            # Chrome URL bar + tab strip above the page content.
            bar_h = int(screen.height * 0.045)
            bar_top = int(screen.height * self.config.android.status_bar_fraction)
            layer.add(
                solid_quad(Rect(0, bar_top, screen.width, bar_top + bar_h), label="chrome_bar")
            )
            layer.add(
                DrawOp(
                    rect=Rect.from_size(int(screen.width * 0.12), bar_top + 6, int(screen.width * 0.7), bar_h - 12),
                    coverage=0.35,
                    primitives=10,
                    textured=True,
                    label="chrome_url",
                )
            )

        # Decorative widgets (logo, banners, buttons) spread over the top
        # region of the screen; their count/area is the app's fingerprint.
        decor_area = app.decor_area_fraction * screen.pixel_count
        per_widget = decor_area / max(1, app.decor_widgets)
        widget_h = int(per_widget**0.5 * 0.8)
        widget_w = int(per_widget / max(1, widget_h))
        for i in range(app.decor_widgets):
            top = int(screen.height * 0.06) + i * int(widget_h * 1.25)
            left = int(screen.width * 0.08) + (i % 3) * int(screen.width * 0.04)
            layer.add(
                DrawOp(
                    rect=Rect.from_size(left, top, widget_w, widget_h),
                    coverage=0.75,
                    primitives=4,
                    textured=True,
                    label=f"decor_{i}",
                )
            )

        field = app.field_rect(self.display)
        layer.add(solid_quad(field, label="field_bg"))
        layer.add(
            DrawOp(rect=field.inset(-2, -2), coverage=0.06, primitives=8, label="field_border")
        )

        # Echoed content: bullets for password fields, glyphs otherwise.
        font = int(field.height * 0.55)
        advance = int(font * 0.62)
        x = field.left + int(font * 0.4)
        for i in range(state.typed_len):
            shown = MASK_CHAR if app.masks_password else (state.last_char or "a")
            metrics = glyph(shown if has_glyph(shown) else "a")
            g_rect = Rect.from_size(x, field.top + (field.height - font) // 2, advance, font)
            layer.add(
                DrawOp(
                    rect=g_rect,
                    coverage=metrics.ink_fraction,
                    primitives=metrics.primitives(vector=False),
                    textured=True,
                    label=f"echo_{i}",
                )
            )
            x += advance + 2
        if state.cursor_on:
            cursor = Rect.from_size(x + 1, field.top + int(field.height * 0.18), max(2, font // 14), int(field.height * 0.64))
            layer.add(DrawOp(rect=cursor, coverage=1.0, primitives=2, label="cursor"))
        return layer

    @staticmethod
    def _keyboard_page(state: UiState) -> str:
        """Which keyboard page is showing: pressing a shifted or symbol key
        means the whole keyboard is rendered with that page's labels, which
        is a large part of what separates 'u' from 'U' in counter space."""
        char = state.popup_char
        if char is None:
            return "lower"
        if char.isupper():
            return "upper"
        if not (char.islower() or char.isdigit() or char in ",."):
            return "symbol"
        return "lower"

    def keyboard_layer(self, state: UiState) -> Layer:
        layer = Layer(f"keyboard:{self.config.keyboard.name}")
        layer.add(solid_quad(self.layout.bounds, label="kb_bg"))
        scale = self.config.ui_scale
        # The layout owns the per-page label strings (draw order included);
        # qwerty and pinpad layouts return different label sets here.
        for char in self.layout.page_labels(self._keyboard_page(state)):
            geo = self.layout.key(char)
            highlighted = (
                state.key_highlight is not None
                and char.lower() == state.key_highlight.lower()
            )
            layer.add(
                solid_quad(geo.key_rect, label=f"cap_{char}", opaque=True)
                if not highlighted
                else DrawOp(rect=geo.key_rect, coverage=1.0, primitives=2, opaque=True, label=f"cap_hl_{char}")
            )
            metrics = glyph(char)
            font = int(geo.key_rect.height * self.config.keyboard.label_font_fraction * scale)
            label_w = max(2, int(font * metrics.width_fraction))
            label_rect = Rect.from_size(
                (geo.key_rect.left + geo.key_rect.right - label_w) // 2,
                (geo.key_rect.top + geo.key_rect.bottom - font) // 2,
                label_w,
                font,
            )
            layer.add(
                DrawOp(
                    rect=label_rect,
                    coverage=metrics.ink_fraction,
                    primitives=metrics.primitives(vector=False),
                    textured=True,
                    label=f"label_{char}",
                )
            )
        # function keys: shift, backspace, symbols, spacebar, enter
        bs = self.layout.backspace_rect()
        layer.add(solid_quad(bs, label="cap_backspace"))
        layer.add(
            DrawOp(rect=bs.inset(bs.width // 4, bs.height // 3), coverage=0.4, primitives=6, textured=True, label="icon_backspace")
        )
        return layer

    def popup_layer(self, state: UiState) -> Optional[Layer]:
        if state.popup_char is None or not self.config.keyboard.supports_popup:
            return None
        char = state.popup_char
        geo = self.layout.key(char)
        pop = geo.popup_rect
        scale = self.config.ui_scale
        layer = Layer(f"popup:{char}")
        if self.config.keyboard.popup_shadow:
            layer.add(
                DrawOp(rect=pop.inset(-6, -6).translate(0, 4), coverage=0.5, primitives=2, label="popup_shadow")
            )
        layer.add(solid_quad(pop, label="popup_body"))
        metrics = glyph(char)
        font = int(pop.height * self.config.keyboard.popup_font_fraction * scale)
        g_w = max(2, int(font * metrics.width_fraction))
        g_rect = Rect.from_size(
            (pop.left + pop.right - g_w) // 2,
            (pop.top + pop.bottom - font) // 2,
            g_w,
            font,
        )
        layer.add(
            DrawOp(
                rect=g_rect,
                coverage=metrics.ink_fraction,
                primitives=metrics.primitives(vector=True),
                label=f"popup_glyph_{char}",
            )
        )
        return layer

    def animation_layer(self, state: UiState, phase: int) -> Optional[Layer]:
        anim = state.app.animation
        if anim is None:
            return None
        screen = self.display.resolution
        area = anim.area_fraction * screen.pixel_count
        height = int(area**0.5)
        width = int(area / max(1, height))
        # The animated region drifts with the phase so consecutive frames
        # damage slightly different tiles, like a real animation.
        left = int(screen.width * 0.1) + (phase % 7) * 3
        top = int(screen.height * 0.55) + (phase % 5) * 2
        layer = Layer("login_animation")
        layer.add(
            DrawOp(
                rect=Rect.from_size(left, top, width, height),
                coverage=anim.intensity,
                primitives=anim.primitives + (phase % 3) * 2,
                textured=True,
                label=f"anim_{phase}",
            )
        )
        return layer

    # ------------------------------------------------------------------
    # Full scenes and damage clipping
    # ------------------------------------------------------------------

    def full_layers(self, state: UiState, anim_phase: Optional[int] = None) -> List[Layer]:
        """The complete back-to-front layer stack for a UI state."""
        layers = [self.app_layer(state), self.status_bar_layer(state)]
        if anim_phase is not None:
            anim = self.animation_layer(state, anim_phase)
            if anim is not None:
                layers.append(anim)
        layers.append(self.keyboard_layer(state))
        popup = self.popup_layer(state)
        if popup is not None:
            layers.append(popup)
        return layers

    def damage_scene(self, state: UiState, damage: Rect, anim_phase: Optional[int] = None) -> Scene:
        """Scene clipped to the invalidated region — what the GPU renders."""
        scene = Scene()
        for layer in self.full_layers(state, anim_phase):
            clipped = Layer(layer.name)
            for op in layer.ops:
                rect = op.rect.intersect(damage)
                if rect.is_empty:
                    continue
                clipped.add(replace(op, rect=rect))
            if clipped.ops:
                scene.push(clipped)
        return scene

    # ------------------------------------------------------------------
    # Event damages
    # ------------------------------------------------------------------

    def popup_damage(self, char: str) -> Rect:
        geo = self.layout.key(char)
        if not self.config.keyboard.supports_popup:
            # popups disabled (Section 9.1): only the touch ripple overlay
            # invalidates the screen
            return self._ripple_rect(char)
        damage = geo.popup_rect.union(geo.key_rect)
        if self.config.keyboard.popup_shadow:
            damage = damage.inset(-8, -8)
        return damage.intersect(self.display.bounds)

    #: Radius of the touch-feedback ripple drawn when popups are disabled.
    RIPPLE_RADIUS_PX = 44

    def _ripple_rect(self, char: str) -> Rect:
        geo = self.layout.key(char)
        cx = (geo.key_rect.left + geo.key_rect.right) // 2
        cy = (geo.key_rect.top + geo.key_rect.bottom) // 2
        r = self.RIPPLE_RADIUS_PX
        return Rect(cx - r, cy - r, cx + r, cy + r).intersect(self.display.bounds)

    def ripple_scene(self, char: str) -> Scene:
        """The press feedback when popups are disabled (Section 9.1).

        The keyboard draws a translucent ripple on its *overlay* canvas —
        the key caps beneath are not re-rendered — so the frame's geometry
        is identical for every key: the same circle, merely translated.
        Counter increments are therefore (nearly) key-independent, which
        is why disabling popups defeats direct key inference while the
        input-length signal of Section 5.3 survives.
        """
        rect = self._ripple_rect(char)
        layer = Layer("ripple_overlay")
        layer.add(
            DrawOp(
                rect=rect,
                coverage=0.61,  # disc area within its bounding square
                primitives=4,
                opaque=False,
                label="touch_ripple",
            )
        )
        return Scene([layer])

    def field_damage(self, app: AppSpec) -> Rect:
        return app.field_rect(self.display).inset(-4, -4).intersect(self.display.bounds)

    def status_bar_damage(self) -> Rect:
        screen = self.display.resolution
        height = int(screen.height * self.config.android.status_bar_fraction)
        return Rect(0, 0, screen.width, height)

    def animation_damage(self, state: UiState, phase: int) -> Rect:
        layer = self.animation_layer(state, phase)
        if layer is None:
            return Rect(0, 0, 0, 0)
        return layer.bounds().inset(-4, -4).intersect(self.display.bounds)

    # ------------------------------------------------------------------
    # App-switch overview scene (Section 5.2, Fig 13)
    # ------------------------------------------------------------------

    def overview_scene(self, progress: float, cards: int = 3) -> Scene:
        """One frame of the app-switch overview animation.

        The overview shows scaled app cards sliding in; every frame damages
        most of the screen, which is why the PC burst of Fig 13 dwarfs
        typing-induced changes.
        """
        if not 0.0 <= progress <= 1.0:
            raise ValueError("progress must be in [0, 1]")
        screen = self.display.resolution
        scene = Scene()
        base = Layer("overview_bg")
        base.add(solid_quad(self.display.bounds, label="overview_dim"))
        scene.push(base)
        card_layer = Layer("overview_cards")
        card_w = int(screen.width * (0.45 + 0.25 * progress))
        card_h = int(screen.height * (0.55 + 0.25 * progress))
        for i in range(cards):
            left = int(screen.width * 0.1) + i * int(card_w * 0.55)
            top = int(screen.height * 0.18)
            rect = Rect.from_size(left, top, card_w, card_h).intersect(self.display.bounds)
            card_layer.add(solid_quad(rect, label=f"card_{i}"))
            card_layer.add(
                DrawOp(
                    rect=rect.inset(12, 12),
                    coverage=0.6,
                    primitives=26,
                    textured=True,
                    label=f"card_content_{i}",
                )
            )
        scene.push(card_layer)
        return scene
