"""Layered scene model mirroring Android's back-to-front rendering.

Android composites every window out of layers drawn back-to-front
(paper Section 2.1, Fig 2): the activity background, the on-screen
keyboard, and — during a key press — the popup layer on top.  GPU
overdraw happens exactly where upper layers cover lower ones.

A :class:`Scene` is an ordered list of :class:`Layer` objects
(bottom first).  Each layer holds :class:`DrawOp` quads.  The Adreno
pipeline model in :mod:`repro.gpu.pipeline` walks a scene to compute
per-frame increments of the hardware performance counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Tuple

from repro.android.geometry import Rect

#: Vertex components for a plain colored quad: xyzw position + rgba color.
QUAD_COMPONENTS_PER_VERTEX: int = 8
#: Vertex components for a textured quad: xyzw position + rgba color + uv.
TEXTURED_COMPONENTS_PER_VERTEX: int = 10
#: Vertices per quad (two triangles sharing an edge, no index reuse modeled).
VERTICES_PER_QUAD: int = 4


@dataclass(frozen=True)
class DrawOp:
    """One draw call: a quad (or stack of stroke quads) in screen space.

    Attributes:
        rect: screen-space bounding rectangle of the geometry.
        coverage: fraction of ``rect`` actually covered by fragments
            (ink fraction for glyphs, 1.0 for solid quads).
        primitives: triangle count submitted by this op.
        opaque: whether the op occludes content beneath it (lets the LRZ
            pass discard occluded fragments of lower layers).
        textured: textured quads carry more vertex components (uv attrs).
        label: free-form tag for debugging and trace inspection.
    """

    rect: Rect
    coverage: float = 1.0
    primitives: int = 2
    opaque: bool = False
    textured: bool = False
    label: str = ""

    def __post_init__(self) -> None:
        if not 0.0 <= self.coverage <= 1.0:
            raise ValueError(f"coverage must be in [0, 1], got {self.coverage}")
        if self.primitives < 0:
            raise ValueError("primitives must be non-negative")

    @property
    def fragment_pixels(self) -> int:
        """Pixels emitted by the rasterizer for this op (before occlusion)."""
        return int(round(self.rect.area * self.coverage))

    @property
    def vertices(self) -> int:
        quads = max(1, (self.primitives + 1) // 2)
        return quads * VERTICES_PER_QUAD

    @property
    def vertex_components(self) -> int:
        per_vertex = (
            TEXTURED_COMPONENTS_PER_VERTEX if self.textured else QUAD_COMPONENTS_PER_VERTEX
        )
        return self.vertices * per_vertex


@dataclass
class Layer:
    """One Android rendering layer (a window surface or view subtree)."""

    name: str
    ops: List[DrawOp] = field(default_factory=list)

    def add(self, op: DrawOp) -> "Layer":
        self.ops.append(op)
        return self

    def opaque_rects(self) -> List[Rect]:
        """Rectangles this layer fully occludes (opaque ops only)."""
        return [op.rect for op in self.ops if op.opaque and not op.rect.is_empty]

    @property
    def primitives(self) -> int:
        return sum(op.primitives for op in self.ops)

    @property
    def fragment_pixels(self) -> int:
        return sum(op.fragment_pixels for op in self.ops)

    def bounds(self) -> Rect:
        bounds = Rect(0, 0, 0, 0)
        for op in self.ops:
            bounds = bounds.union(op.rect)
        return bounds


@dataclass
class Scene:
    """A full frame's worth of layers, bottom (index 0) to top."""

    layers: List[Layer] = field(default_factory=list)

    def push(self, layer: Layer) -> "Scene":
        self.layers.append(layer)
        return self

    def __iter__(self) -> Iterator[Layer]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    @property
    def total_primitives(self) -> int:
        return sum(layer.primitives for layer in self.layers)

    @property
    def total_fragment_pixels(self) -> int:
        return sum(layer.fragment_pixels for layer in self.layers)

    def bounds(self) -> Rect:
        bounds = Rect(0, 0, 0, 0)
        for layer in self.layers:
            bounds = bounds.union(layer.bounds())
        return bounds

    def op_arrays(self) -> "SceneArrays":
        """Stack every op's fields into parallel numpy arrays.

        This is the render hot path's input: one structured pass over the
        scene instead of per-op Python attribute access inside the
        pipeline (see :meth:`repro.gpu.pipeline.AdrenoPipeline.render`).
        Ops keep scene order (back-to-front, layer-major), so reductions
        over these arrays see exactly the sequence
        :meth:`ops_with_occluders` yields.
        """
        import numpy as np

        rows = [
            (
                index,
                op.rect.left,
                op.rect.top,
                op.rect.right,
                op.rect.bottom,
                op.primitives,
                op.opaque,
                op.textured,
            )
            for index, layer in enumerate(self.layers)
            for op in layer.ops
        ]
        coverage = [
            op.coverage for layer in self.layers for op in layer.ops
        ]
        if rows:
            ints = np.array(rows, dtype=np.int64)
        else:
            ints = np.empty((0, 8), dtype=np.int64)
        return SceneArrays(
            layer=ints[:, 0],
            left=ints[:, 1],
            top=ints[:, 2],
            right=ints[:, 3],
            bottom=ints[:, 4],
            primitives=ints[:, 5],
            opaque=ints[:, 6].astype(bool),
            textured=ints[:, 7].astype(bool),
            coverage=np.array(coverage, dtype=np.float64),
        )

    def ops_with_occluders(self) -> Iterator[Tuple[int, DrawOp, List[Rect]]]:
        """Yield ``(layer_index, op, occluding_rects)`` for every op.

        ``occluding_rects`` are the opaque rectangles of all layers strictly
        above the op's layer — the geometry the LRZ pass tests fragments
        against.  Back-to-front order is preserved.
        """
        opaque_above: List[List[Rect]] = []
        running: List[Rect] = []
        for layer in reversed(self.layers):
            opaque_above.append(list(running))
            running.extend(layer.opaque_rects())
        opaque_above.reverse()
        for index, layer in enumerate(self.layers):
            for op in layer.ops:
                yield index, op, opaque_above[index]


@dataclass
class SceneArrays:
    """One scene's ops as parallel numpy columns (layer-major order).

    ``layer``/``left``/``top``/``right``/``bottom``/``primitives`` are
    int64, ``opaque``/``textured`` bool, ``coverage`` float64 — the
    batched form the vectorized Adreno pipeline composites in one pass.
    """

    layer: "object"
    left: "object"
    top: "object"
    right: "object"
    bottom: "object"
    primitives: "object"
    opaque: "object"
    textured: "object"
    coverage: "object"

    def __len__(self) -> int:
        return int(self.layer.shape[0])


def solid_quad(rect: Rect, label: str = "", opaque: bool = True) -> DrawOp:
    """A fully covered opaque quad — backgrounds, key caps, popup bodies."""
    return DrawOp(rect=rect, coverage=1.0, primitives=2, opaque=opaque, label=label)


def make_scene(layers: Sequence[Layer]) -> Scene:
    return Scene(layers=list(layers))
