"""Integer pixel-space geometry used by the Android scene model.

All screen-space coordinates in the simulator are integer pixels with the
origin at the top-left corner of the display, x growing right and y growing
down, matching the Android window coordinate convention.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Iterator, List, Optional


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle ``[left, right) x [top, bottom)`` in pixels.

    Empty rectangles (zero or negative extent) are permitted and behave as
    the empty set for intersection/area queries.
    """

    left: int
    top: int
    right: int
    bottom: int

    @property
    def width(self) -> int:
        return max(0, self.right - self.left)

    @property
    def height(self) -> int:
        return max(0, self.bottom - self.top)

    @property
    def area(self) -> int:
        return self.width * self.height

    @property
    def is_empty(self) -> bool:
        return self.right <= self.left or self.bottom <= self.top

    @classmethod
    def from_size(cls, left: int, top: int, width: int, height: int) -> "Rect":
        return cls(left, top, left + width, top + height)

    def intersect(self, other: "Rect") -> "Rect":
        """Return the intersection rectangle (possibly empty)."""
        return Rect(
            max(self.left, other.left),
            max(self.top, other.top),
            min(self.right, other.right),
            min(self.bottom, other.bottom),
        )

    def intersects(self, other: "Rect") -> bool:
        return not self.intersect(other).is_empty

    def contains(self, other: "Rect") -> bool:
        if other.is_empty:
            return True
        return (
            self.left <= other.left
            and self.top <= other.top
            and self.right >= other.right
            and self.bottom >= other.bottom
        )

    def contains_point(self, x: int, y: int) -> bool:
        return self.left <= x < self.right and self.top <= y < self.bottom

    def translate(self, dx: int, dy: int) -> "Rect":
        return Rect(self.left + dx, self.top + dy, self.right + dx, self.bottom + dy)

    def inset(self, dx: int, dy: int) -> "Rect":
        """Shrink (positive inset) or grow (negative inset) symmetrically."""
        return Rect(self.left + dx, self.top + dy, self.right - dx, self.bottom - dy)

    def union(self, other: "Rect") -> "Rect":
        """Return the bounding box of both rectangles."""
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        return Rect(
            min(self.left, other.left),
            min(self.top, other.top),
            max(self.right, other.right),
            max(self.bottom, other.bottom),
        )

    def tiles(self, tile_w: int, tile_h: int) -> Iterator["Rect"]:
        """Yield the grid tiles of size ``tile_w x tile_h`` overlapping self.

        Tiles are aligned to the global (0, 0) origin, the way a binning GPU
        aligns its bins to the render-target origin, so a rectangle that is
        not tile-aligned touches partial tiles at its edges.
        """
        if self.is_empty:
            return
        start_x = (self.left // tile_w) * tile_w
        start_y = (self.top // tile_h) * tile_h
        y = start_y
        while y < self.bottom:
            x = start_x
            while x < self.right:
                yield Rect(x, y, x + tile_w, y + tile_h)
                x += tile_w
            y += tile_h

    def tile_counts(self, tile_w: int, tile_h: int) -> "TileCoverage":
        """Count grid tiles fully and partially covered by this rectangle.

        Computed arithmetically (no per-tile loop) and memoized — this is
        the hottest operation in the render pipeline.
        """
        return _tile_counts_cached(self.left, self.top, self.right, self.bottom, tile_w, tile_h)


@lru_cache(maxsize=65536)
def _tile_counts_cached(
    left: int, top: int, right: int, bottom: int, tile_w: int, tile_h: int
) -> "TileCoverage":
    if right <= left or bottom <= top:
        return TileCoverage(full=0, partial=0)
    cols = -(-right // tile_w) - left // tile_w
    rows = -(-bottom // tile_h) - top // tile_h
    full_cols = max(0, right // tile_w - -(-left // tile_w))
    full_rows = max(0, bottom // tile_h - -(-top // tile_h))
    full = full_cols * full_rows
    return TileCoverage(full=full, partial=cols * rows - full)


@dataclass(frozen=True)
class TileCoverage:
    """Counts of fully and partially covered tiles for one coverage query."""

    full: int
    partial: int

    @property
    def total(self) -> int:
        return self.full + self.partial

    def __add__(self, other: "TileCoverage") -> "TileCoverage":
        return TileCoverage(self.full + other.full, self.partial + other.partial)


ZERO_RECT = Rect(0, 0, 0, 0)


def covered_area(rects: Iterable[Rect]) -> int:
    """Exact area of the union of rectangles (sweep over x slabs).

    Used to compute occlusion from several popup/overlay rectangles without
    double counting overlaps.  The rectangle count in any scene is small
    (tens), so an O(n^2) slab sweep is more than fast enough.
    """
    boxes: List[Rect] = [r for r in rects if not r.is_empty]
    if not boxes:
        return 0
    xs = sorted({r.left for r in boxes} | {r.right for r in boxes})
    total = 0
    for x0, x1 in zip(xs, xs[1:]):
        slab_w = x1 - x0
        if slab_w <= 0:
            continue
        intervals = sorted(
            (r.top, r.bottom) for r in boxes if r.left <= x0 and r.right >= x1
        )
        covered = 0
        cur_top: Optional[int] = None
        cur_bottom: Optional[int] = None
        for top, bottom in intervals:
            if cur_top is None:
                cur_top, cur_bottom = top, bottom
                continue
            assert cur_bottom is not None
            if top > cur_bottom:
                covered += cur_bottom - cur_top
                cur_top, cur_bottom = top, bottom
            else:
                cur_bottom = max(cur_bottom, bottom)
        if cur_top is not None and cur_bottom is not None:
            covered += cur_bottom - cur_top
        total += covered * slab_w
    return total
