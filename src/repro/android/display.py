"""Display hardware model: resolutions, refresh rates and frame timing.

The paper evaluates two panel resolutions (Fig 24b) and two refresh rates
(Fig 23): FHD+ 2376x1080 / QHD+ 3168x1440 at 60 Hz or 120 Hz.  The display
object owns frame timing — a frame can only start on a vsync boundary —
which is what couples the attacker's counter-sampling interval to the
screen refresh interval (Section 4: read at most every half refresh
interval).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.android.geometry import Rect


class Resolution(Enum):
    """Panel resolutions evaluated in the paper (portrait orientation)."""

    FHD_PLUS = (1080, 2376)
    QHD_PLUS = (1440, 3168)

    @property
    def width(self) -> int:
        return self.value[0]

    @property
    def height(self) -> int:
        return self.value[1]

    @property
    def pixel_count(self) -> int:
        return self.width * self.height

    @property
    def label(self) -> str:
        if self is Resolution.FHD_PLUS:
            return "FHD+ (2376x1080)"
        return "QHD+ (3168x1440)"


@dataclass(frozen=True)
class Display:
    """A smartphone display panel.

    Attributes:
        resolution: panel resolution.
        refresh_rate_hz: vsync rate, 60 or 120 in the paper's experiments.
    """

    resolution: Resolution = Resolution.FHD_PLUS
    refresh_rate_hz: int = 60

    def __post_init__(self) -> None:
        if self.refresh_rate_hz <= 0:
            raise ValueError("refresh rate must be positive")

    @property
    def frame_interval_s(self) -> float:
        """Seconds between consecutive vsync boundaries."""
        return 1.0 / self.refresh_rate_hz

    @property
    def bounds(self) -> Rect:
        return Rect(0, 0, self.resolution.width, self.resolution.height)

    def next_vsync(self, t: float) -> float:
        """Earliest vsync boundary at or after time ``t`` (seconds)."""
        interval = self.frame_interval_s
        frames = int(t / interval)
        boundary = frames * interval
        if boundary + 1e-12 < t:
            boundary += interval
        return boundary

    def scale(self, fraction_w: float, fraction_h: float) -> Rect:
        """Rectangle covering the given fraction of the panel, top-left
        anchored — a convenience for layout code expressed in fractions."""
        return Rect(
            0,
            0,
            int(self.resolution.width * fraction_w),
            int(self.resolution.height * fraction_h),
        )
