"""Session trace persistence: capture once, attack many.

A compiled :class:`~repro.android.device.SessionTrace` is expensive to
produce (scene rendering) and fully determines every downstream
experiment.  Serializing traces lets the harness reuse captures across
attack variants — and mirrors the paper's workflow of recording device
data once and analyzing it offline.

Ground truth is stored alongside the timeline but in a clearly separated
section, so a loaded trace can be scored without recompilation.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.android.apps import app
from repro.android.device import GroundTruthPress, SessionTrace
from repro.android.keyboard import keyboard
from repro.android.os_config import ANDROID_VERSIONS, DeviceConfig, phone
from repro.gpu.pipeline import FrameStats
from repro.gpu.counters import CounterIncrement
from repro.gpu.timeline import COUNTER_ORDER, RenderTimeline

FORMAT_VERSION = 1


def _config_to_dict(config: DeviceConfig) -> dict:
    return {
        "phone": config.phone.name,
        "keyboard": config.keyboard.name,
        "resolution": config.resolution.name,
        "refresh_rate_hz": config.refresh_rate_hz,
        "android": config.android.version,
        "dark_theme": config.dark_theme,
    }


def _config_from_dict(data: dict) -> DeviceConfig:
    from repro.android.display import Resolution

    return DeviceConfig(
        phone=phone(data["phone"]),
        keyboard=keyboard(data["keyboard"]),
        resolution=Resolution[data["resolution"]],
        refresh_rate_hz=int(data["refresh_rate_hz"]),
        android=ANDROID_VERSIONS[data["android"]],
        dark_theme=bool(data["dark_theme"]),
    )


def save_session(trace: SessionTrace, path: Union[str, Path]) -> None:
    """Write a session trace as compressed npz."""
    frames = trace.timeline.frames
    n = len(frames)
    starts = np.array([f.start_s for f in frames], dtype=float)
    durations = np.array([f.stats.render_time_s for f in frames], dtype=float)
    pixels = np.array([f.stats.pixels_touched for f in frames], dtype=np.int64)
    increments = np.zeros((n, len(COUNTER_ORDER)), dtype=np.int64)
    for i, frame in enumerate(frames):
        for j, cid in enumerate(COUNTER_ORDER):
            increments[i, j] = frame.stats.increment.values.get(cid, 0)
    labels = np.array([f.label for f in frames], dtype=object)

    manifest = {
        "version": FORMAT_VERSION,
        "config": _config_to_dict(trace.config),
        "app": trace.app.name,
        "end_time_s": trace.end_time_s,
        "presses": [
            {"t": p.t, "char": p.char, "deleted": p.deleted} for p in trace.presses
        ],
        "backspaces": list(trace.backspaces),
        "switch_intervals": [list(pair) for pair in trace.switch_intervals],
        "frame_labels": [str(label) for label in labels],
    }
    np.savez_compressed(
        Path(path),
        manifest=np.frombuffer(json.dumps(manifest).encode("utf-8"), dtype=np.uint8),
        starts=starts,
        durations=durations,
        pixels=pixels,
        increments=increments,
    )


def load_session(path: Union[str, Path]) -> SessionTrace:
    """Read a session trace written by :func:`save_session`."""
    with np.load(Path(path), allow_pickle=False) as archive:
        manifest = json.loads(bytes(archive["manifest"]).decode("utf-8"))
        if manifest.get("version") != FORMAT_VERSION:
            raise ValueError(f"unsupported session version {manifest.get('version')!r}")
        timeline = RenderTimeline()
        starts = archive["starts"]
        durations = archive["durations"]
        pixels = archive["pixels"]
        increments = archive["increments"]
        for i, label in enumerate(manifest["frame_labels"]):
            values = {
                cid: int(increments[i, j])
                for j, cid in enumerate(COUNTER_ORDER)
                if increments[i, j]
            }
            timeline.add_render(
                float(starts[i]),
                FrameStats(
                    increment=CounterIncrement(values=values),
                    pixels_touched=int(pixels[i]),
                    render_time_s=float(durations[i]),
                ),
                label=label,
            )
        trace = SessionTrace(
            timeline=timeline,
            config=_config_from_dict(manifest["config"]),
            app=app(manifest["app"]),
            presses=[
                GroundTruthPress(t=p["t"], char=p["char"], deleted=p["deleted"])
                for p in manifest["presses"]
            ],
            backspaces=list(manifest["backspaces"]),
            switch_intervals=[tuple(pair) for pair in manifest["switch_intervals"]],
            end_time_s=float(manifest["end_time_s"]),
        )
        return trace
