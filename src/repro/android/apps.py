"""Target applications and their login screens.

The paper's threat model (Section 3.1) targets credential entry in banking,
investment and credit-report apps — plus their web pages in Chrome.  What
matters to the side channel is only the login screen's *geometry*: where
the input field sits, how much decorative chrome the screen draws, and
whether anything animates while the user types (animation is the
obfuscation defence of Section 9.3, exemplified by the PNC app).

Like :mod:`repro.android.keyboard`, this module is a registry *producer*:
the paper's apps are registered into :data:`APP_REGISTRY` at import time
and :func:`app` resolves names through it, so new targets registered via
:func:`register_app` (from any module) become addressable by the CLI and
the scenario registry.  The legacy constants (``CHASE`` …) remain
importable as deprecated aliases; :data:`TARGET_APPS` / :data:`NATIVE_APPS`
stay snapshots of the paper's evaluation set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.android.display import Display
from repro.android.geometry import Rect
from repro.registry import Registry


@dataclass(frozen=True)
class AnimationSpec:
    """A decorative animation running on the login screen.

    The PNC mobile banking app's animated login page floods the overdraw
    counters and drops the attack to ~30 % accuracy (Section 9.3).

    Attributes:
        area_fraction: animated region size relative to the screen.
        frame_interval_s: how often the animation damages the screen.
        primitives: triangle count re-drawn each animation frame.
        intensity: ink coverage of the animated region.
    """

    area_fraction: float
    frame_interval_s: float
    primitives: int
    intensity: float


@dataclass(frozen=True)
class AppSpec:
    """One target application's login screen.

    Attributes:
        name: short identifier used in experiment tables.
        display_name: product name as in the paper's Fig 19.
        category: banking / investment / credit / web / editor.
        decor_widgets: count of decorative quads (logo, buttons, banners).
        decor_area_fraction: total screen fraction the decor covers.
        field_top_fraction: vertical position of the credential field.
        field_height_fraction: height of the credential field.
        masks_password: whether the field echoes bullets instead of glyphs.
        is_web: rendered inside Chrome (adds browser chrome to the scene).
        animation: decorative login animation, if any.
    """

    name: str
    display_name: str
    category: str
    decor_widgets: int
    decor_area_fraction: float
    field_top_fraction: float
    field_height_fraction: float = 0.055
    masks_password: bool = True
    is_web: bool = False
    animation: Optional[AnimationSpec] = None

    def field_rect(self, display: Display) -> Rect:
        """Pixel rectangle of the credential input field."""
        screen = display.resolution
        top = int(screen.height * self.field_top_fraction)
        height = int(screen.height * self.field_height_fraction)
        left = int(screen.width * 0.08)
        right = int(screen.width * 0.92)
        return Rect(left, top, right, top + height)


#: The app registry: the source of truth for name → spec lookup.
APP_REGISTRY: Registry[AppSpec] = Registry("app")


def register_app(
    spec: AppSpec, tags: Tuple[str, ...] = (), replace: bool = False
) -> AppSpec:
    """Register a target app so :func:`app` (and the CLI, the scenario
    registry, …) can resolve it by name."""
    return APP_REGISTRY.register(spec, tags=tags, replace=replace)


_CHASE = register_app(
    AppSpec(
        name="chase",
        display_name="Chase",
        category="banking",
        decor_widgets=7,
        decor_area_fraction=0.30,
        field_top_fraction=0.330,
    ),
    tags=("paper", "native"),
)

_AMEX = register_app(
    AppSpec(
        name="amex",
        display_name="Amex",
        category="banking",
        decor_widgets=6,
        decor_area_fraction=0.26,
        field_top_fraction=0.305,
    ),
    tags=("paper", "native"),
)

_FIDELITY = register_app(
    AppSpec(
        name="fidelity",
        display_name="Fidelity",
        category="investment",
        decor_widgets=8,
        decor_area_fraction=0.33,
        field_top_fraction=0.355,
    ),
    tags=("paper", "native"),
)

_SCHWAB = register_app(
    AppSpec(
        name="schwab",
        display_name="Schwab",
        category="investment",
        decor_widgets=5,
        decor_area_fraction=0.24,
        field_top_fraction=0.290,
    ),
    tags=("paper", "native"),
)

_MYFICO = register_app(
    AppSpec(
        name="myfico",
        display_name="myFICO",
        category="credit",
        decor_widgets=6,
        decor_area_fraction=0.28,
        field_top_fraction=0.340,
    ),
    tags=("paper", "native"),
)

_EXPERIAN = register_app(
    AppSpec(
        name="experian",
        display_name="Experian",
        category="credit",
        decor_widgets=7,
        decor_area_fraction=0.31,
        field_top_fraction=0.320,
    ),
    tags=("paper", "native"),
)

_CHASE_WEB = register_app(
    AppSpec(
        name="chase.com",
        display_name="chase.com",
        category="web",
        decor_widgets=10,
        decor_area_fraction=0.38,
        field_top_fraction=0.390,
        is_web=True,
    ),
    tags=("paper", "web"),
)

_SCHWAB_WEB = register_app(
    AppSpec(
        name="schwab.com",
        display_name="schwab.com",
        category="web",
        decor_widgets=9,
        decor_area_fraction=0.35,
        field_top_fraction=0.370,
        is_web=True,
    ),
    tags=("paper", "web"),
)

_EXPERIAN_WEB = register_app(
    AppSpec(
        name="experian.com",
        display_name="experian.com",
        category="web",
        decor_widgets=11,
        decor_area_fraction=0.40,
        field_top_fraction=0.405,
        is_web=True,
    ),
    tags=("paper", "web"),
)

# PNC's login page animation, the natural obfuscation of Section 9.3.
_PNC = register_app(
    AppSpec(
        name="pnc",
        display_name="PNC Mobile",
        category="banking",
        decor_widgets=8,
        decor_area_fraction=0.34,
        field_top_fraction=0.345,
        animation=AnimationSpec(
            area_fraction=0.22,
            frame_interval_s=1.0 / 30.0,
            primitives=46,
            intensity=0.6,
        ),
    ),
    tags=("paper", "animated"),
)

#: Apps of the paper's Fig 19 in display order, plus PNC for Section 9.3.
#: A historical snapshot: lookups go through :data:`APP_REGISTRY`.
TARGET_APPS: Dict[str, AppSpec] = {
    app.name: app
    for app in (
        _CHASE,
        _AMEX,
        _FIDELITY,
        _SCHWAB,
        _MYFICO,
        _EXPERIAN,
        _CHASE_WEB,
        _SCHWAB_WEB,
        _EXPERIAN_WEB,
        _PNC,
    )
}

#: Deprecated module-level aliases → registry names (see ``__getattr__``).
_DEPRECATED_SPECS: Dict[str, str] = {
    "CHASE": "chase",
    "AMEX": "amex",
    "FIDELITY": "fidelity",
    "SCHWAB": "schwab",
    "MYFICO": "myfico",
    "EXPERIAN": "experian",
    "CHASE_WEB": "chase.com",
    "SCHWAB_WEB": "schwab.com",
    "EXPERIAN_WEB": "experian.com",
    "PNC": "pnc",
}


def __getattr__(name: str):
    from repro.core.results import warn_deprecated

    if name in _DEPRECATED_SPECS:
        key = _DEPRECATED_SPECS[name]
        warn_deprecated(f"repro.android.apps.{name}", f'app("{key}")')
        return APP_REGISTRY.get(key)
    if name == "NATIVE_APPS":
        warn_deprecated(
            "repro.android.apps.NATIVE_APPS", 'APP_REGISTRY.tagged("native")'
        )
        return APP_REGISTRY.tagged("native")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def app(name: str) -> AppSpec:
    """Resolve a target app by registry name.

    Raises:
        repro.registry.UnknownNameError: (a ``KeyError``) for unknown
            names, with the known set and a closest-match suggestion.
    """
    return APP_REGISTRY.get(name)
