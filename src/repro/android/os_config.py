"""Device models and Android OS configurations (paper Section 7.5).

A classification model is trained per *(device model, configuration)*
pair — the paper's Fig 24 sweeps GPU models, screen resolutions, phone
models sharing a GPU, and Android OS versions.  This module defines those
axes and the resolved :class:`DeviceConfig` bundle the rest of the
simulator consumes.

Android version and vendor skin shift UI metrics slightly (status bar
height, popup corner treatment, font rendering), which changes the
absolute counter values — hence per-configuration models — without
changing their per-key separability, which is why the paper measures
near-identical accuracy across all of them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

from repro.android.display import Display, Resolution
from repro.android.keyboard import KeyboardSpec
from repro.android.keyboard import keyboard as _keyboard_lookup
from repro.gpu.adreno import AdrenoSpec, adreno
from repro.registry import Registry


@dataclass(frozen=True)
class AndroidVersion:
    """An Android OS release with its UI-metric fingerprint."""

    version: str
    api_level: int
    status_bar_fraction: float
    popup_style_scale: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Android {self.version}"


ANDROID_8_1 = AndroidVersion("8.1", 27, status_bar_fraction=0.030, popup_style_scale=0.96)
ANDROID_9 = AndroidVersion("9", 28, status_bar_fraction=0.030, popup_style_scale=0.98)
ANDROID_10 = AndroidVersion("10", 29, status_bar_fraction=0.032, popup_style_scale=1.00)
ANDROID_11 = AndroidVersion("11", 30, status_bar_fraction=0.034, popup_style_scale=1.02)
ANDROID_12 = AndroidVersion("12", 31, status_bar_fraction=0.036, popup_style_scale=1.05)

ANDROID_VERSIONS: Dict[str, AndroidVersion] = {
    v.version: v
    for v in (ANDROID_8_1, ANDROID_9, ANDROID_10, ANDROID_11, ANDROID_12)
}


@dataclass(frozen=True)
class PhoneModel:
    """A smartphone model from the paper's evaluation."""

    name: str
    display_name: str
    gpu: AdrenoSpec
    android: AndroidVersion
    resolution: Resolution
    refresh_rates: Tuple[int, ...] = (60,)
    vendor_ui_scale: float = 1.0
    battery_mah: int = 4000

    @property
    def battery_mwh(self) -> float:
        """Usable battery energy at a nominal 3.85 V cell voltage."""
        return self.battery_mah * 3.85


#: The phone registry: the source of truth for name → model lookup.
PHONE_REGISTRY: Registry[PhoneModel] = Registry("phone")


def register_phone(
    spec: PhoneModel, tags: Tuple[str, ...] = (), replace: bool = False
) -> PhoneModel:
    """Register a phone model so :func:`phone` (and the CLI, the scenario
    registry, …) can resolve it by name."""
    return PHONE_REGISTRY.register(spec, tags=tags, replace=replace)


_LG_V30 = register_phone(
    PhoneModel(
        name="lg_v30",
        display_name="LG V30+",
        gpu=adreno(540),
        android=ANDROID_9,
        resolution=Resolution.QHD_PLUS,
        vendor_ui_scale=0.99,
        battery_mah=3300,
    ),
    tags=("paper",),
)

_PIXEL_2 = register_phone(
    PhoneModel(
        name="pixel2",
        display_name="Google Pixel 2",
        gpu=adreno(540),
        android=ANDROID_10,
        resolution=Resolution.FHD_PLUS,
        vendor_ui_scale=1.00,
        battery_mah=2700,
    ),
    tags=("paper",),
)

_ONEPLUS_7_PRO = register_phone(
    PhoneModel(
        name="oneplus7pro",
        display_name="Oneplus 7 Pro",
        gpu=adreno(640),
        android=ANDROID_11,
        resolution=Resolution.QHD_PLUS,
        refresh_rates=(60, 90),
        vendor_ui_scale=1.01,
        battery_mah=4000,
    ),
    tags=("paper",),
)

_ONEPLUS_8_PRO = register_phone(
    PhoneModel(
        name="oneplus8pro",
        display_name="Oneplus 8 Pro",
        gpu=adreno(650),
        android=ANDROID_11,
        resolution=Resolution.FHD_PLUS,
        refresh_rates=(60, 120),
        vendor_ui_scale=1.01,
        battery_mah=4510,
    ),
    tags=("paper",),
)

_ONEPLUS_9 = register_phone(
    PhoneModel(
        name="oneplus9",
        display_name="Oneplus 9",
        gpu=adreno(660),
        android=ANDROID_11,
        resolution=Resolution.FHD_PLUS,
        refresh_rates=(60, 120),
        vendor_ui_scale=1.01,
        battery_mah=4500,
    ),
    tags=("paper",),
)

_GALAXY_S21 = register_phone(
    PhoneModel(
        name="galaxy_s21",
        display_name="Samsung Galaxy S21",
        gpu=adreno(660),
        android=ANDROID_11,
        resolution=Resolution.FHD_PLUS,
        refresh_rates=(60, 120),
        vendor_ui_scale=1.02,
        battery_mah=4000,
    ),
    tags=("paper",),
)

#: Phones of the paper's Section 7.5 experiments.  A historical snapshot:
#: lookups go through :data:`PHONE_REGISTRY`.
PHONE_MODELS: Dict[str, PhoneModel] = {
    phone.name: phone
    for phone in (
        _LG_V30,
        _PIXEL_2,
        _ONEPLUS_7_PRO,
        _ONEPLUS_8_PRO,
        _ONEPLUS_9,
        _GALAXY_S21,
    )
}

#: Deprecated module-level aliases → registry names (see ``__getattr__``).
_DEPRECATED_SPECS: Dict[str, str] = {
    "LG_V30": "lg_v30",
    "PIXEL_2": "pixel2",
    "ONEPLUS_7_PRO": "oneplus7pro",
    "ONEPLUS_8_PRO": "oneplus8pro",
    "ONEPLUS_9": "oneplus9",
    "GALAXY_S21": "galaxy_s21",
}


def __getattr__(name: str) -> PhoneModel:
    if name in _DEPRECATED_SPECS:
        from repro.core.results import warn_deprecated

        key = _DEPRECATED_SPECS[name]
        warn_deprecated(f"repro.android.os_config.{name}", f'phone("{key}")')
        return PHONE_REGISTRY.get(key)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def phone(name: str) -> PhoneModel:
    """Resolve a phone model by registry name.

    Raises:
        repro.registry.UnknownNameError: (a ``KeyError``) for unknown
            names, with the known set and a closest-match suggestion.
    """
    return PHONE_REGISTRY.get(name)


@dataclass(frozen=True)
class DeviceConfig:
    """A fully resolved victim device configuration.

    This is the unit the paper trains one classification model for: the
    same phone with a different keyboard or resolution counts as a
    different configuration (Section 3.2).
    """

    phone: PhoneModel
    keyboard: KeyboardSpec = _keyboard_lookup("gboard")
    resolution: Resolution = None  # type: ignore[assignment]
    refresh_rate_hz: int = 0
    android: AndroidVersion = None  # type: ignore[assignment]
    dark_theme: bool = True

    def __post_init__(self) -> None:
        if self.resolution is None:
            object.__setattr__(self, "resolution", self.phone.resolution)
        if not self.refresh_rate_hz:
            object.__setattr__(self, "refresh_rate_hz", self.phone.refresh_rates[0])
        if self.android is None:
            object.__setattr__(self, "android", self.phone.android)

    @property
    def gpu(self) -> AdrenoSpec:
        return self.phone.gpu

    @property
    def display(self) -> Display:
        return Display(resolution=self.resolution, refresh_rate_hz=self.refresh_rate_hz)

    @property
    def ui_scale(self) -> float:
        """Combined vendor + OS-version scaling of popup/label metrics."""
        return self.phone.vendor_ui_scale * self.android.popup_style_scale

    def config_key(self) -> str:
        """Stable identifier for the model store (Section 3.2)."""
        return "/".join(
            (
                self.phone.name,
                f"android{self.android.version}",
                self.resolution.name.lower(),
                f"{self.refresh_rate_hz}hz",
                self.keyboard.name,
                "dark" if self.dark_theme else "light",
            )
        )

    def with_android(self, version: str) -> "DeviceConfig":
        return replace(self, android=ANDROID_VERSIONS[version])


def default_config(**overrides) -> DeviceConfig:
    """The paper's workhorse setup: Oneplus 8 Pro + Gboard + FHD+ @60 Hz."""
    return replace(DeviceConfig(phone=_ONEPLUS_8_PRO), **overrides) if overrides else DeviceConfig(phone=_ONEPLUS_8_PRO)
