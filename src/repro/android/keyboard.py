"""On-screen keyboard models: layouts, key geometry and press popups.

The attack exploits the *popup* drawn above a key while it is pressed
(paper Fig 1).  Per-key uniqueness of the GPU counter deltas comes from
two geometric facts modeled here:

* each popup shows a different glyph (different ink, width, strokes);
* each popup sits at a different keyboard position, so it occludes a
  different set of key caps beneath it.

Six keyboards from the paper's Fig 20 are modeled (Microsoft SwiftKey,
Google Keyboard/Gboard, Sogou, Google Pinyin, Go, Grammarly).  They share
the qwerty arrangement but differ in key aspect ratio, popup scale, font
size and popup animation behaviour — the animation is what causes
*duplication* readings on Gboard (Section 5.1: "due to the rich animation
of popups on some keyboards ... one key press may result in two
consecutive PC value changes with the same amount").

This module is a *producer* for the keyboard registry: the specs above
are registered into :data:`KEYBOARD_REGISTRY` at import time, and any
code — including code outside this package, like the PIN-pad keyboard in
:mod:`repro.scenarios.pinpad` — can register further keyboards through
:func:`register_keyboard`.  :func:`keyboard` resolves names through the
registry, so a registered keyboard is addressable everywhere a built-in
one is.  The legacy module-level spec constants (``GBOARD`` …) remain
importable as deprecated aliases; :data:`KEYBOARDS` stays a snapshot of
the paper's Fig 20 set and is no longer the source of truth.

Two key arrangements (``KeyboardSpec.layout``) are supported:

* ``"qwerty"`` — number row + three letter rows + bottom row, with
  upper/symbol pages reached via shift / ?123;
* ``"pinpad"`` — a 3-wide numeric grid (1-9 plus 0), digit-only, as on
  banking PIN entry screens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.android.display import Display
from repro.android.geometry import Rect
from repro.registry import Registry

#: qwerty letter rows (lowercase page; uppercase shares positions via shift).
_LETTER_ROWS: Tuple[str, ...] = ("qwertyuiop", "asdfghjkl", "zxcvbnm")
#: number row shown above the letters (all modeled keyboards have one).
_NUMBER_ROW: str = "1234567890"
#: symbol page rows (reached via the ?123 key; positions reuse the grid).
_SYMBOL_ROWS: Tuple[str, ...] = ("+()/*\"'#$&", "-@!?:;,.", "")

#: Characters that live on the primary page next to the spacebar.
_BOTTOM_ROW_CHARS: str = ",."

#: Per-page label strings drawn by the scene builder.  Order matters:
#: the keyboard layer iterates these strings, so changing an order here
#: changes draw-op order and breaks golden-trace byte parity.
_QWERTY_PAGE_LABELS: Dict[str, str] = {
    "lower": "qwertyuiopasdfghjklzxcvbnm1234567890,.",
    "upper": "QWERTYUIOPASDFGHJKLZXCVBNM1234567890,.",
    "symbol": "1234567890+()/*\"'#$&-@!?:;,.",
}

#: PIN-pad rows: a phone-style numeric grid.
_PINPAD_ROWS: Tuple[str, ...] = ("123", "456", "789", "0")
_PINPAD_CHARS: str = "1234567890"

#: Supported values of :attr:`KeyboardSpec.layout`.
LAYOUT_KINDS: Tuple[str, ...] = ("qwerty", "pinpad")


@dataclass(frozen=True)
class KeyGeometry:
    """Where one key lives and what its popup looks like when pressed."""

    char: str
    key_rect: Rect
    popup_rect: Rect
    page: str  # "lower", "upper", or "symbol"


@dataclass(frozen=True)
class KeyboardSpec:
    """Static parameters of one keyboard app.

    Attributes:
        name: short identifier used in experiment tables (Fig 20 order).
        display_name: human-readable product name.
        height_fraction: share of the screen height the keyboard occupies.
        key_gap_fraction: gap between keys relative to key width.
        popup_scale: popup width/height relative to the key size.
        popup_rise_fraction: how far above the key the popup floats,
            relative to key height.
        popup_font_fraction: popup glyph em size relative to popup height.
        label_font_fraction: key-cap label em size relative to key height.
        duplicate_popup_prob: probability the popup animation emits a
            second identical frame (the *duplication* factor, Section 5.1).
        popup_shadow: whether the popup draws a translucent drop shadow.
        supports_popup: whether key presses draw popups at all.
        layout: key arrangement — ``"qwerty"`` or ``"pinpad"``.
    """

    name: str
    display_name: str
    height_fraction: float
    key_gap_fraction: float
    popup_scale: float
    popup_rise_fraction: float
    popup_font_fraction: float
    label_font_fraction: float
    duplicate_popup_prob: float
    popup_shadow: bool
    supports_popup: bool = True
    layout: str = "qwerty"

    def __post_init__(self) -> None:
        if self.layout not in LAYOUT_KINDS:
            raise ValueError(
                f"unknown keyboard layout {self.layout!r}; known: {list(LAYOUT_KINDS)}"
            )


#: The keyboard registry: the source of truth for name → spec lookup.
KEYBOARD_REGISTRY: Registry[KeyboardSpec] = Registry("keyboard")


def register_keyboard(
    spec: KeyboardSpec, tags: Tuple[str, ...] = (), replace: bool = False
) -> KeyboardSpec:
    """Register a keyboard spec so :func:`keyboard` (and the CLI, the
    scenario registry, …) can resolve it by name."""
    return KEYBOARD_REGISTRY.register(spec, tags=tags, replace=replace)


_GBOARD = register_keyboard(
    KeyboardSpec(
        name="gboard",
        display_name="Google Keyboard",
        height_fraction=0.285,
        key_gap_fraction=0.12,
        popup_scale=1.55,
        popup_rise_fraction=1.15,
        popup_font_fraction=0.58,
        label_font_fraction=0.42,
        duplicate_popup_prob=0.182,
        popup_shadow=True,
    ),
    tags=("paper", "fig20"),
)

_SWIFTKEY = register_keyboard(
    KeyboardSpec(
        name="swift",
        display_name="Microsoft SwiftKey",
        height_fraction=0.270,
        key_gap_fraction=0.08,
        popup_scale=1.45,
        popup_rise_fraction=1.05,
        popup_font_fraction=0.55,
        label_font_fraction=0.40,
        duplicate_popup_prob=0.110,
        popup_shadow=True,
    ),
    tags=("paper", "fig20"),
)

_SOGOU = register_keyboard(
    KeyboardSpec(
        name="sogou",
        display_name="Sogou Keyboard",
        height_fraction=0.300,
        key_gap_fraction=0.10,
        popup_scale=1.60,
        popup_rise_fraction=1.20,
        popup_font_fraction=0.60,
        label_font_fraction=0.44,
        duplicate_popup_prob=0.140,
        popup_shadow=False,
    ),
    tags=("paper", "fig20"),
)

_GOOGLE_PINYIN = register_keyboard(
    KeyboardSpec(
        name="pinyin",
        display_name="Google Pinyin Keyboard",
        height_fraction=0.290,
        key_gap_fraction=0.11,
        popup_scale=1.50,
        popup_rise_fraction=1.10,
        popup_font_fraction=0.57,
        label_font_fraction=0.42,
        duplicate_popup_prob=0.160,
        popup_shadow=True,
    ),
    tags=("paper", "fig20"),
)

_GO_KEYBOARD = register_keyboard(
    KeyboardSpec(
        name="go",
        display_name="Go Keyboard",
        height_fraction=0.280,
        key_gap_fraction=0.09,
        popup_scale=1.40,
        popup_rise_fraction=1.00,
        popup_font_fraction=0.52,
        label_font_fraction=0.38,
        duplicate_popup_prob=0.125,
        popup_shadow=False,
    ),
    tags=("paper", "fig20"),
)

_GRAMMARLY = register_keyboard(
    KeyboardSpec(
        name="grammarly",
        display_name="Grammarly Keyboard",
        height_fraction=0.275,
        key_gap_fraction=0.10,
        popup_scale=1.48,
        popup_rise_fraction=1.08,
        popup_font_fraction=0.55,
        label_font_fraction=0.41,
        duplicate_popup_prob=0.150,
        popup_shadow=True,
    ),
    tags=("paper", "fig20"),
)

#: The paper's Fig 20 evaluation set, keyed by short name.  A historical
#: snapshot: lookups go through :data:`KEYBOARD_REGISTRY`, which may hold
#: more keyboards than these six (e.g. the PIN pad).
KEYBOARDS: Dict[str, KeyboardSpec] = {
    spec.name: spec
    for spec in (_SWIFTKEY, _GBOARD, _SOGOU, _GOOGLE_PINYIN, _GO_KEYBOARD, _GRAMMARLY)
}

#: Deprecated module-level aliases → registry names (see ``__getattr__``).
_DEPRECATED_SPECS: Dict[str, str] = {
    "GBOARD": "gboard",
    "SWIFTKEY": "swift",
    "SOGOU": "sogou",
    "GOOGLE_PINYIN": "pinyin",
    "GO_KEYBOARD": "go",
    "GRAMMARLY": "grammarly",
}


def __getattr__(name: str) -> KeyboardSpec:
    if name in _DEPRECATED_SPECS:
        from repro.core.results import warn_deprecated

        key = _DEPRECATED_SPECS[name]
        warn_deprecated(
            f"repro.android.keyboard.{name}", f'keyboard("{key}")'
        )
        return KEYBOARD_REGISTRY.get(key)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def keyboard(name: str) -> KeyboardSpec:
    """Resolve a keyboard by registry name.

    Raises:
        repro.registry.UnknownNameError: (a ``KeyError``) for unknown
            names, with the known set and a closest-match suggestion.
    """
    return KEYBOARD_REGISTRY.get(name)


class KeyboardLayout:
    """Concrete pixel geometry of one keyboard on one display."""

    def __init__(self, spec: KeyboardSpec, display: Display) -> None:
        self.spec = spec
        self.display = display
        screen = display.resolution
        self.height_px = int(screen.height * spec.height_fraction)
        self.top_px = screen.height - self.height_px
        self.width_px = screen.width
        if spec.layout == "pinpad":
            # digit grid rows (no number/letter split)
            self.rows = len(_PINPAD_ROWS)
        else:
            # number row + 3 letter rows + bottom row
            self.rows = 5
        self.row_height = self.height_px // self.rows
        self._geometry = (
            self._build_pinpad_geometry()
            if spec.layout == "pinpad"
            else self._build_geometry()
        )

    @property
    def bounds(self) -> Rect:
        return Rect(0, self.top_px, self.width_px, self.top_px + self.height_px)

    def _key_rect(self, row: int, col: int, row_len: int) -> Rect:
        """Pixel rectangle of the key at grid position (row, col)."""
        cell_w = self.width_px / row_len
        gap = cell_w * self.spec.key_gap_fraction / 2.0
        left = int(col * cell_w + gap)
        right = int((col + 1) * cell_w - gap)
        top = self.top_px + row * self.row_height + int(self.row_height * 0.06)
        bottom = self.top_px + (row + 1) * self.row_height - int(self.row_height * 0.06)
        return Rect(left, top, right, bottom)

    def _popup_rect(self, key: Rect) -> Rect:
        pop_w = int(key.width * self.spec.popup_scale)
        pop_h = int(key.height * self.spec.popup_scale)
        center_x = (key.left + key.right) // 2
        rise = int(key.height * self.spec.popup_rise_fraction)
        top = key.top - rise - pop_h
        left = center_x - pop_w // 2
        # Clamp into the screen so edge-key popups shift inward, like real
        # keyboards do — another source of per-key positional uniqueness.
        left = max(2, min(left, self.width_px - pop_w - 2))
        top = max(2, top)
        return Rect(left, top, left + pop_w, top + pop_h)

    def _build_geometry(self) -> Dict[str, KeyGeometry]:
        geometry: Dict[str, KeyGeometry] = {}

        def place(char: str, row: int, col: int, row_len: int, page: str) -> None:
            key = self._key_rect(row, col, row_len)
            geometry[char] = KeyGeometry(
                char=char, key_rect=key, popup_rect=self._popup_rect(key), page=page
            )

        for col, char in enumerate(_NUMBER_ROW):
            place(char, 0, col, len(_NUMBER_ROW), "lower")
        for row_index, row_chars in enumerate(_LETTER_ROWS, start=1):
            # middle/bottom letter rows are centered, approximated by using
            # the row's own length as the grid size
            for col, char in enumerate(row_chars):
                place(char, row_index, col, len(row_chars), "lower")
                upper = char.upper()
                key = self._key_rect(row_index, col, len(row_chars))
                geometry[upper] = KeyGeometry(
                    char=upper,
                    key_rect=key,
                    popup_rect=self._popup_rect(key),
                    page="upper",
                )
        for col, char in enumerate(_BOTTOM_ROW_CHARS):
            # comma sits left of the spacebar, period right of it
            grid_col = 1 if char == "," else 8
            place(char, 4, grid_col, 10, "lower")
        for row_index, row_chars in enumerate(_SYMBOL_ROWS):
            for col, char in enumerate(row_chars):
                if char in geometry:
                    continue
                place(char, row_index + 1, col, max(len(row_chars), 8), "symbol")
        return geometry

    def _build_pinpad_geometry(self) -> Dict[str, KeyGeometry]:
        """The 3-wide digit grid: 1-9 over three rows, 0 bottom-center."""
        geometry: Dict[str, KeyGeometry] = {}
        for row_index, row_chars in enumerate(_PINPAD_ROWS):
            for col, char in enumerate(row_chars):
                grid_col = 1 if row_chars == "0" else col  # 0 sits center
                key = self._key_rect(row_index, grid_col, 3)
                geometry[char] = KeyGeometry(
                    char=char,
                    key_rect=key,
                    popup_rect=self._popup_rect(key),
                    page="lower",
                )
        return geometry

    def page_labels(self, page: str) -> str:
        """The key-cap labels the scene builder draws for one page, in
        draw order (the order is part of the golden-trace contract)."""
        if self.spec.layout == "pinpad":
            return _PINPAD_CHARS
        return _QWERTY_PAGE_LABELS[page]

    def key(self, char: str) -> KeyGeometry:
        """Geometry of the key producing ``char``.

        Raises:
            KeyError: if the character has no key on this keyboard.
        """
        try:
            return self._geometry[char]
        except KeyError:
            raise KeyError(f"no key for character {char!r}") from None

    def has_key(self, char: str) -> bool:
        return char in self._geometry

    def characters(self) -> List[str]:
        return sorted(self._geometry)

    def keys_under(self, rect: Rect) -> List[KeyGeometry]:
        """Primary-page keys whose caps intersect ``rect`` (popup occludees)."""
        return [
            geo
            for geo in self._geometry.values()
            if geo.page == "lower" and geo.key_rect.intersects(rect)
        ]

    def backspace_rect(self) -> Rect:
        """The backspace key; pressing it shows no popup on any modeled
        keyboard (Section 5.3).  On qwerty it ends the bottom letter row;
        on the PIN pad it takes the bottom-right grid cell."""
        if self.spec.layout == "pinpad":
            return self._key_rect(len(_PINPAD_ROWS) - 1, 2, 3)
        row = 3
        row_len = len(_LETTER_ROWS[2]) + 2
        return self._key_rect(row, row_len - 1, row_len)
