"""Per-device signature recalibration from streamed suspect signals.

The masked-centroid path already flags keys classified with partial
feature vectors (``EngineStats.low_confidence_keys``), and drift has a
second, louder symptom: key presses whose magnitudes the frozen model
can no longer explain classify as *noise* (``noise_events`` explodes
while ``keys_inferred`` starves).  The :class:`CalibrationService`
consumes both signals per device, and once a :class:`CalibrationPolicy`
threshold trips it re-fits the device's signature from the evidence
vectors the engine retained (:attr:`OnlineEngine.evidence`).

The re-fit is self-supervised — no ground-truth labels exist online.
It exploits the structure of the drift itself: thermal throttling and
geometry shifts are (per-counter) *multiplicative*, so a drifted key
press keeps (approximately) its centroid's direction while its
per-dimension magnitudes scale.  :func:`estimate_drift_ratio` matches
each evidence vector to its nearest key centroid by cosine, takes the
per-dimension median of the observed/centroid ratios over the matched
set, and the service rescales centroids *and* normalization scale by
that ratio — which reproduces the original model's normalized geometry
exactly under uniform scaling (``(v - r·c) / (r·s) = (v/r - c) / s``).

Recalibrated models are written into a
:class:`~repro.core.model_store.VersionedModelStore` (when one is
attached) with full lineage metadata, and hot-swapped into the running
engine by the caller — see :mod:`repro.lifecycle.runner`.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field, fields
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.classifier import ClassificationModel
from repro.core.model_store import ModelStore, VersionedModelStore
from repro.obs import MetricsRegistry, resolve_registry

#: Environment variable selecting the default calibration profile;
#: mirrors ``REPRO_FAULT_PROFILE`` / ``REPRO_DRIFT_PROFILE``.
CALIBRATION_ENV = "REPRO_CALIBRATION"

#: Ratio estimates are clipped into this band: a dimension whose
#: centroid coordinate is ~0 carries no ratio information, and one
#: corrupted read must not swing a centroid by orders of magnitude.
RATIO_CLIP = (0.05, 20.0)

#: A re-fit may raise the acceptance threshold at most this much over
#: the model it replaces (quantization headroom, not a blank check).
CTH_INFLATION_CAP = 2.0


@dataclass(frozen=True)
class CalibrationPolicy:
    """When to re-fit a device's signature, and how much evidence to ask.

    Frozen and serializable, like every other plan in the pipeline, so
    it ships to worker processes inside ``AttackConfig``.
    """

    #: Re-fit once this many low-confidence keys accumulate since the
    #: last calibration (the masked-centroid signal).
    low_confidence_threshold: int = 3
    #: ... or once unexplained deltas exceed this fraction of all deltas
    #: seen in the window (the drift signal: presses classifying as
    #: noise).
    suspect_ratio: float = 0.35
    #: Deltas observed before the suspect ratio is trusted at all.
    min_observations: int = 12
    #: Evidence vectors required before a re-fit is attempted.
    min_evidence: int = 6
    #: Cosine gate for matching an evidence vector to a key centroid.
    match_cosine: float = 0.8
    #: Upper bound on re-fits per device (0 disables recalibration).
    max_refits: int = 8
    #: Informational profile name ("" for hand-built policies).
    profile: str = ""

    def __post_init__(self) -> None:
        if self.low_confidence_threshold < 1:
            raise ValueError("low_confidence_threshold must be >= 1")
        if not 0.0 < self.suspect_ratio <= 1.0:
            raise ValueError("suspect_ratio must be in (0, 1]")
        if self.min_observations < 1:
            raise ValueError("min_observations must be >= 1")
        if self.min_evidence < 1:
            raise ValueError("min_evidence must be >= 1")
        if not 0.0 < self.match_cosine <= 1.0:
            raise ValueError("match_cosine must be in (0, 1]")
        if self.max_refits < 0:
            raise ValueError("max_refits must be >= 0")

    @property
    def enabled(self) -> bool:
        return self.max_refits > 0

    # -- serialization --------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "CalibrationPolicy":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown CalibrationPolicy fields: {sorted(unknown)}")
        return cls(**dict(data))  # type: ignore[arg-type]

    @classmethod
    def from_profile(cls, name: str) -> "CalibrationPolicy":
        try:
            return CALIBRATION_PROFILES[name]
        except KeyError:
            raise ValueError(
                f"unknown calibration profile {name!r}; "
                f"available: {sorted(CALIBRATION_PROFILES)}"
            ) from None


#: Named calibration profiles.
CALIBRATION_PROFILES: Dict[str, CalibrationPolicy] = {
    "off": CalibrationPolicy(max_refits=0, profile="off"),
    "default": CalibrationPolicy(profile="default"),
    # trips faster, asks for less evidence: for short sessions
    "eager": CalibrationPolicy(
        low_confidence_threshold=2,
        suspect_ratio=0.25,
        min_observations=8,
        min_evidence=4,
        profile="eager",
    ),
    # waits for overwhelming evidence: for fleets that fear bad swaps
    "conservative": CalibrationPolicy(
        low_confidence_threshold=6,
        suspect_ratio=0.6,
        min_observations=24,
        min_evidence=12,
        max_refits=2,
        profile="conservative",
    ),
}


def resolve_calibration(
    calibration: Union["CalibrationPolicy", None, str] = None,
) -> Optional[CalibrationPolicy]:
    """Normalize the public ``calibration`` argument.

    ``"auto"`` reads ``REPRO_CALIBRATION`` (a profile name, resolving to
    ``None`` when unset); a profile name selects that profile; ``None``
    disables recalibration; a policy is used as-is (``None`` if it
    cannot re-fit).
    """
    if calibration is None:
        return None
    if isinstance(calibration, str):
        if calibration == "auto":
            name = os.environ.get(CALIBRATION_ENV, "").strip().lower()
            if not name or name == "off":
                return None
            policy = CalibrationPolicy.from_profile(name)
            return policy if policy.enabled else None
        policy = CalibrationPolicy.from_profile(calibration)
        return policy if policy.enabled else None
    return calibration if calibration.enabled else None


def estimate_drift_ratio(
    model: ClassificationModel,
    evidence: Sequence[np.ndarray],
    match_cosine: float = 0.8,
) -> Optional[np.ndarray]:
    """Per-dimension drift ratio between evidence vectors and the model.

    Thin wrapper over :func:`estimate_refit` returning only the ratio.
    """
    refit = estimate_refit(model, evidence, match_cosine=match_cosine)
    return None if refit is None else refit[0]


def estimate_refit(
    model: ClassificationModel,
    evidence: Sequence[np.ndarray],
    match_cosine: float = 0.8,
) -> Optional[Tuple[np.ndarray, float]]:
    """Drift ratio *and* acceptance threshold for a re-fit of ``model``.

    Each evidence vector is matched to the nearest centroid — *any*
    label: drift is physical, so key presses, popup dismissals, and
    field redraws all scale by the same per-counter factors, and every
    matched pair estimates the same ratio.  Vectors below
    ``match_cosine`` against everything the model knows (app switches,
    genuine noise) are discarded.  For the matched set, the
    per-dimension ratio ``observed / centroid`` is taken where the
    centroid coordinate is meaningfully nonzero, and the median over
    vectors is returned (robust to the odd mismatched pair).  Returns
    ``None`` when nothing matches.

    The second element is the re-fit acceptance threshold: drift also
    moves the *noise floor* — a throttled GPU serves smaller increments,
    so per-read integer quantization is relatively larger against the
    rescaled signatures — and a re-fit that keeps the trained ``cth``
    silently drops borderline presses.  The threshold is re-estimated
    from the matched evidence's own residual distances under the
    rescaled model (90th percentile with headroom), never below the
    current ``cth`` and never above :data:`CTH_INFLATION_CAP` times it.
    """
    if not len(evidence):
        return None
    centroids = model.centroids
    scaled_c = centroids / model.scale
    c_norms = np.linalg.norm(scaled_c, axis=1)
    usable = c_norms > 0
    if not usable.any():
        return None
    matrix = np.vstack([np.asarray(vec, dtype=float) for vec in evidence])
    scaled_v = matrix / model.scale
    v_norms = np.linalg.norm(scaled_v, axis=1)
    keep = v_norms > 0
    if not keep.any():
        return None
    cosines = (scaled_v[keep] @ scaled_c[usable].T) / (
        v_norms[keep][:, None] * c_norms[usable][None, :]
    )
    best = np.argmax(cosines, axis=1)
    matched = cosines[np.arange(len(best)), best] >= match_cosine
    if not matched.any():
        return None
    obs = matrix[keep][matched]
    ref = centroids[usable][best[matched]]
    # the drift's dominant component is a shared scalar (thermal): the
    # least-squares scalar fit of each pair anchors dimensions whose own
    # ratio is unreliable (small centroid coordinates, counts rounded to
    # zero) instead of silently pinning them to 1.0
    pair_scaled_v = scaled_v[keep][matched]
    pair_scaled_c = scaled_c[usable][best[matched]]
    denom = np.einsum("ij,ij->i", pair_scaled_c, pair_scaled_c)
    scalars = np.einsum("ij,ij->i", pair_scaled_v, pair_scaled_c) / denom
    global_ratio = float(np.median(scalars))
    # reject scalar outliers before the per-dimension fit: a render split
    # leaves *half*-magnitude evidence vectors whose direction still
    # matches perfectly, and they would drag every estimate low
    inliers = np.abs(scalars - global_ratio) <= 0.25 * abs(global_ratio)
    if inliers.sum() >= 3:
        obs = obs[inliers]
        ref = ref[inliers]
        global_ratio = float(np.median(scalars[inliers]))
    # a dimension only yields its own ratio where the centroid is
    # meaningfully nonzero; tiny coordinates divide noise by noise
    floor = 0.2 * np.abs(ref).max(axis=1, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratios = np.where(np.abs(ref) > np.maximum(floor, 1e-9), obs / ref, np.nan)
    with warnings.catch_warnings():
        # a dimension with no usable pair is an all-NaN column; the
        # global scalar fills it below, so the nanmedian warning is moot
        warnings.simplefilter("ignore", RuntimeWarning)
        ratio = np.nanmedian(ratios, axis=0)
    ratio = np.where(np.isfinite(ratio), ratio, global_ratio)
    ratio = np.clip(ratio, RATIO_CLIP[0], RATIO_CLIP[1])
    # residual acceptance threshold: (v - r·c) / (r·s) == (v/r - c) / s
    residual = (obs / ratio[None, :] - ref) / model.scale[None, :]
    dists = np.sqrt(np.einsum("ij,ij->i", residual, residual))
    cth = 1.15 * float(np.percentile(dists, 90))
    cth = min(max(model.cth, cth), CTH_INFLATION_CAP * model.cth)
    return ratio, cth


def rescale_model(
    model: ClassificationModel,
    ratio: np.ndarray,
    cth: Optional[float] = None,
    lineage: Optional[Dict[str, object]] = None,
) -> ClassificationModel:
    """The recalibrated model: centroids *and* normalization scale are
    multiplied per-dimension by ``ratio``, preserving the trained
    normalized geometry exactly under uniform drift; ``cth`` optionally
    replaces the acceptance threshold (see :func:`estimate_refit`)."""
    metadata = dict(model.metadata)
    record = {
        "ratio": [round(float(r), 4) for r in ratio],
        "generation": int(metadata.get("recalibration", {}).get("generation", 0)) + 1,
    }
    if cth is not None:
        record["cth"] = round(float(cth), 4)
    if lineage:
        record.update(lineage)
    metadata["recalibration"] = record
    return ClassificationModel(
        labels=model.labels,
        centroids=model.centroids * ratio[None, :],
        scale=model.scale * ratio,
        cth=model.cth if cth is None else cth,
        model_key=model.model_key,
        metadata=metadata,
    )


@dataclass
class DeviceWindow:
    """Per-device suspect-signal accumulation since the last re-fit."""

    deltas_seen: int = 0
    noise_events: int = 0
    low_confidence_keys: int = 0
    keys_inferred: int = 0
    evidence: List[np.ndarray] = field(default_factory=list)
    refits: int = 0
    observations: int = 0

    @property
    def suspect_fraction(self) -> float:
        """Fraction of the window's deltas that were *unexplained*.

        Only evidence vectors (deltas no centroid could explain) count —
        reject-class noise like popup dismissals is a large fraction of
        a perfectly healthy stream and must not look like drift.
        """
        if not self.deltas_seen:
            return 0.0
        return (len(self.evidence) + self.low_confidence_keys) / self.deltas_seen

    def reset_window(self) -> None:
        self.deltas_seen = 0
        self.noise_events = 0
        self.low_confidence_keys = 0
        self.keys_inferred = 0
        self.evidence = []


class CalibrationService:
    """Streaming per-device recalibration decisions and re-fits.

    One service instance watches any number of devices.  Callers feed it
    engine statistics (full :class:`~repro.core.online.EngineStats` or
    per-segment deltas thereof) plus drained evidence vectors via
    :meth:`observe`; :meth:`should_recalibrate` applies the policy; and
    :meth:`recalibrate` produces the re-fit model, records lineage, and
    (when a :class:`VersionedModelStore` is attached) persists it as the
    next version.  All decisions land in ``calibration.*`` counters when
    a metrics registry is attached.
    """

    def __init__(
        self,
        policy: Optional[CalibrationPolicy] = None,
        store: Optional[VersionedModelStore] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.policy = policy if policy is not None else CalibrationPolicy()
        self.store = store
        self.metrics = resolve_registry(metrics)
        self._windows: Dict[str, DeviceWindow] = {}
        #: First model seen per device: every re-fit is estimated against
        #: this base, so successive generations never compound the noise
        #: of their predecessors' estimates.
        self._base: Dict[str, ClassificationModel] = {}

    def window(self, device_id: str) -> DeviceWindow:
        window = self._windows.get(device_id)
        if window is None:
            window = self._windows[device_id] = DeviceWindow()
        return window

    @property
    def devices(self) -> List[str]:
        return sorted(self._windows)

    # ------------------------------------------------------------------

    def observe(
        self,
        device_id: str,
        stats,
        evidence: Sequence[np.ndarray] = (),
    ) -> DeviceWindow:
        """Fold one observation window's engine stats + evidence in."""
        window = self.window(device_id)
        window.observations += 1
        window.deltas_seen += int(getattr(stats, "deltas_seen", 0))
        window.noise_events += int(getattr(stats, "noise_events", 0))
        window.low_confidence_keys += int(getattr(stats, "low_confidence_keys", 0))
        window.keys_inferred += int(getattr(stats, "keys_inferred", 0))
        window.evidence.extend(np.asarray(vec, dtype=float) for vec in evidence)
        if self.metrics.enabled:
            self.metrics.counter("calibration.observations").inc()
            if getattr(stats, "low_confidence_keys", 0):
                self.metrics.counter("calibration.low_confidence_keys").inc(
                    int(stats.low_confidence_keys)
                )
            if len(evidence):
                self.metrics.counter("calibration.evidence_collected").inc(
                    len(evidence)
                )
        return window

    def should_recalibrate(self, device_id: str) -> bool:
        """Whether the policy threshold has tripped for this device."""
        policy = self.policy
        if not policy.enabled:
            return False
        window = self.window(device_id)
        if window.refits >= policy.max_refits:
            return False
        if len(window.evidence) < policy.min_evidence:
            return False
        if window.low_confidence_keys >= policy.low_confidence_threshold:
            return True
        return (
            window.deltas_seen >= policy.min_observations
            and window.suspect_fraction >= policy.suspect_ratio
        )

    def recalibrate(
        self, device_id: str, model: ClassificationModel
    ) -> Optional[ClassificationModel]:
        """Re-fit ``model`` for this device from the accumulated evidence.

        Returns the recalibrated model (also persisted as the next store
        version when a versioned store is attached), or ``None`` when
        the evidence doesn't match key signatures well enough to trust a
        re-fit.  The device's suspect window resets either way — the
        evidence has been consumed.
        """
        window = self.window(device_id)
        if self.metrics.enabled:
            self.metrics.counter("calibration.triggers").inc()
        # estimate against the device's *base* model, not the current
        # generation: evidence vectors are raw observations, and fitting
        # base × fresh_ratio every time keeps estimation noise from
        # compounding across generations
        base = self._base.setdefault(device_id, model)
        refit_estimate = estimate_refit(
            base, window.evidence, match_cosine=self.policy.match_cosine
        )
        evidence_used = len(window.evidence)
        lineage: Dict[str, object] = {
            "device_id": device_id,
            "evidence": evidence_used,
            "low_confidence_keys": window.low_confidence_keys,
            "noise_events": window.noise_events,
            "suspect_fraction": round(window.suspect_fraction, 4),
        }
        window.reset_window()
        if refit_estimate is None:
            if self.metrics.enabled:
                self.metrics.counter("calibration.refits_rejected").inc()
            return None
        ratio, cth = refit_estimate
        window.refits += 1
        lineage["generation"] = window.refits
        refit = rescale_model(base, ratio, cth=cth, lineage=lineage)
        if self.store is not None:
            snapshot = ModelStore()
            snapshot.add(refit)
            lineage = dict(lineage)
            lineage["parent_version"] = self.store.latest_version() or 0
            version = self.store.save(snapshot, lineage=lineage)
            lineage["version"] = version
        if self.metrics.enabled:
            self.metrics.counter("calibration.refits").inc()
            self.metrics.counter("calibration.evidence_used").inc(evidence_used)
        return refit
